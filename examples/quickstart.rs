//! Quickstart: a 4-replica partially replicated store.
//!
//! Replicas form a ring; each adjacent pair shares one register. We write
//! at several replicas, let the (non-FIFO, randomly delayed) network
//! drain, read the values back, and verify replica-centric causal
//! consistency with the trace checker.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use prcc::core::{System, Value};
use prcc::net::DelayModel;
use prcc::sharegraph::{topology, RegisterId, ReplicaId};

fn main() {
    let r = ReplicaId::new;
    let x = RegisterId::new;

    // Ring of 4: register i is shared by replicas i and i+1 (mod 4).
    let graph = topology::ring(4);
    println!(
        "share graph: {} replicas, {} undirected edges",
        graph.num_replicas(),
        graph.num_undirected_edges()
    );

    let mut sys = System::builder(graph)
        .delay(DelayModel::Uniform { min: 1, max: 20 }) // non-FIFO
        .seed(42)
        .build();
    println!(
        "timestamp counters per replica: {:?}",
        sys.timestamp_counters()
    );

    // Causally chained writes: replica 1 sees replica 0's write before
    // issuing its own.
    sys.write(r(0), x(0), Value::from("hello"));
    sys.run_to_quiescence();
    sys.write(r(1), x(1), Value::from("world"));
    sys.run_to_quiescence();

    // Concurrent writes from opposite sides of the ring.
    sys.write(r(2), x(2), Value::from(1u64));
    sys.write(r(3), x(3), Value::from(2u64));
    sys.run_to_quiescence();

    println!("replica 1 reads x0 = {:?}", sys.read(r(1), x(0)));
    println!("replica 2 reads x1 = {:?}", sys.read(r(2), x(1)));
    println!("replica 3 reads x2 = {:?}", sys.read(r(3), x(2)));
    println!("replica 0 reads x3 = {:?}", sys.read(r(0), x(3)));

    let report = sys.check();
    println!(
        "checker: {} applies verified, consistent = {}",
        report.applies_checked,
        report.is_consistent()
    );
    let m = sys.metrics();
    println!(
        "traffic: {} data msgs, {} metadata bytes, mean visibility {:.1} ticks",
        m.data_messages,
        m.metadata_bytes,
        m.mean_visibility()
    );
    assert!(report.is_consistent());
}
