//! Capacity planning: before deploying a placement, ask what its
//! causality metadata will cost — the workflow the paper's results enable.
//!
//! Given a proposed register placement, this example prints, per replica:
//! the exact counter count (Definition 5), the compressed count
//! (Appendix D), the lower bound it must respect (Section 4 / Theorem 15),
//! and what emulating full replication would cost instead. It then runs a
//! short simulation under heterogeneous per-link delays to project message
//! rates and tail latency.
//!
//! ```text
//! cargo run --example capacity_planning
//! ```

use prcc::net::DelayModel;
use prcc::sharegraph::analysis::edge_stats;
use prcc::sharegraph::{topology, LoopConfig, ReplicaId, TimestampGraphs};
use prcc::sim::{run_scenario, ScenarioConfig, WorkloadConfig};
use prcc::timestamp::bits::timestamp_bits;
use prcc::timestamp::compress_replica;
use std::collections::HashMap;

fn main() {
    // The placement under review: 6 datacenters, ring-shared regional
    // registers, a few local ones, one global.
    let g = topology::geo_placement(6, 3, 1, 9);
    let m = 10_000; // expected updates per replica before rotation

    println!(
        "proposed placement: {} replicas, {} registers, {} storage cells\n",
        g.num_replicas(),
        g.placement().num_registers(),
        g.placement().storage_cells()
    );

    let graphs = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
    println!(
        "{:<9} {:>9} {:>11} {:>12} {:>12}",
        "replica", "counters", "compressed", "bits@10k", "VC bits"
    );
    for tg in graphs.iter() {
        let comp = compress_replica(&g, tg);
        println!(
            "{:<9} {:>9} {:>11} {:>12} {:>12}",
            tg.replica().to_string(),
            tg.len(),
            comp.rank_compressed,
            timestamp_bits(comp.rank_compressed, m),
            timestamp_bits(g.num_replicas(), m),
        );
    }

    let stats = edge_stats(&g);
    println!(
        "\nstructure: overhead factor {:.2} (1.0 = tree floor), far-edge fraction {:.2}",
        stats.overhead_factor, stats.far_edge_fraction
    );

    // Heterogeneous links: the ring hop between DC 0 and DC 5 crosses an
    // ocean.
    let mut overrides = HashMap::new();
    overrides.insert((ReplicaId::new(0), ReplicaId::new(5)), 80u64);
    overrides.insert((ReplicaId::new(5), ReplicaId::new(0)), 80u64);
    let report = run_scenario(
        &g,
        &ScenarioConfig {
            workload: WorkloadConfig {
                writes_per_replica: 50,
                zipf_theta: 0.9,
                seed: 1,
            },
            delay: DelayModel::PerLink {
                default: 5,
                overrides,
            },
            net_seed: 1,
            steps_between_ops: 2,
            ..Default::default()
        },
    );
    println!("\nprojected from simulation (50 writes/replica, zipf 0.9):");
    println!(
        "  messages:        {} data + {} meta",
        report.data_messages, report.meta_messages
    );
    println!("  metadata bytes:  {}", report.metadata_bytes);
    println!(
        "  visibility:      p50 {} / p99 {} / max {} ticks",
        report.p50_visibility, report.p99_visibility, report.max_visibility
    );
    println!("  worst staleness: {} versions", report.max_staleness);
    println!("  consistent:      {}", report.consistent);
    assert!(report.consistent);
}
