//! A geo-replicated social-network backend — the workload that motivates
//! partial replication in the paper's introduction.
//!
//! Five datacenters in a ring. Each DC stores its local users' timelines
//! (private registers), shares a "regional" register with each ring
//! neighbor, and replicates a few global registers everywhere. We run a
//! skewed (Zipf) write workload under the paper's edge-indexed algorithm
//! and under the full-replication vector-clock baseline, and print the
//! head-to-head: storage, messages, metadata bytes, latency.
//!
//! ```text
//! cargo run --example geo_social
//! ```

use prcc::net::DelayModel;
use prcc::sharegraph::topology;
use prcc::sim::{run_head_to_head, ScenarioConfig, WorkloadConfig};

fn main() {
    // 5 DCs, 6 private registers each, 2 global registers.
    let graph = topology::geo_placement(5, 6, 2, 7);
    println!(
        "geo placement: {} DCs, {} registers, {} storage cells ({} with full replication)",
        graph.num_replicas(),
        graph.placement().num_registers(),
        graph.placement().storage_cells(),
        graph.num_replicas() * graph.placement().num_registers(),
    );

    let cfg = ScenarioConfig {
        workload: WorkloadConfig {
            writes_per_replica: 40,
            zipf_theta: 0.99, // skewed towards hot timelines
            seed: 2026,
        },
        delay: DelayModel::LongTail {
            base: 5,
            p_slow: 0.05,
            slow_factor: 20,
        },
        net_seed: 2026,
        steps_between_ops: 3,
        ..Default::default()
    };

    let (edge, vc) = run_head_to_head(&graph, &cfg);
    println!("\n-- paper's algorithm (edge-indexed timestamps) --");
    println!("{edge}");
    println!("\n-- full-replication emulation (vector clocks + metadata broadcast) --");
    println!("{vc}");

    let edge_msgs = edge.data_messages + edge.meta_messages;
    let vc_msgs = vc.data_messages + vc.meta_messages;
    println!("\nhead-to-head:");
    println!(
        "  messages:       {edge_msgs} vs {vc_msgs}  ({}x fewer under partial replication)",
        vc_msgs / edge_msgs.max(1)
    );
    println!(
        "  metadata bytes: {} vs {}",
        edge.metadata_bytes, vc.metadata_bytes
    );
    println!(
        "  mean visibility:{:.1} vs {:.1} ticks",
        edge.mean_visibility, vc.mean_visibility
    );
    println!("  consistent:     {} / {}", edge.consistent, vc.consistent);
    assert!(edge.consistent && vc.consistent);
    assert!(edge_msgs < vc_msgs);
}
