//! Small-scope model checking: exhaustively verify the algorithm over
//! EVERY delivery interleaving of a causal-chain scenario, then show the
//! explorer automatically finding the counterexample interleaving for a
//! truncated (under-tracking) configuration.
//!
//! ```text
//! cargo run --example model_check
//! ```

use prcc::core::{Scenario, TrackerKind};
use prcc::sharegraph::{topology, LoopConfig, RegisterId, ReplicaId};

fn main() {
    let r = ReplicaId::new;
    let x = RegisterId::new;

    // Scenario: a causal chain around a ring of 5 — each write fires only
    // after its predecessor has been applied at the issuer.
    println!("scenario: causal chain around ring(5), all interleavings\n");

    let mut exact = Scenario::new(topology::ring(5));
    let u0 = exact.write(r(1), x(0)); // register 0 is shared with r0
    let u1 = exact.write_after(r(1), x(1), [u0]);
    let u2 = exact.write_after(r(2), x(2), [u1]);
    let u3 = exact.write_after(r(3), x(3), [u2]);
    exact.write_after(r(4), x(4), [u3]); // register 4 is shared with r0

    let res = exact.explore();
    println!("exact edge-indexed tracker:  {res}");
    assert!(res.verified());

    let mut truncated =
        Scenario::new(topology::ring(5)).tracker(TrackerKind::EdgeIndexed(LoopConfig::bounded(4)));
    let v0 = truncated.write(r(1), x(0));
    let v1 = truncated.write_after(r(1), x(1), [v0]);
    let v2 = truncated.write_after(r(2), x(2), [v1]);
    let v3 = truncated.write_after(r(3), x(3), [v2]);
    truncated.write_after(r(4), x(4), [v3]);

    let res_t = truncated.explore();
    println!("loop-cap-4 (under-tracking): {res_t}");
    assert!(res_t.violations > 0);

    let mut vc = Scenario::new(topology::ring(5)).tracker(TrackerKind::VectorClock);
    let w0 = vc.write(r(1), x(0));
    let w1 = vc.write_after(r(1), x(1), [w0]);
    let w2 = vc.write_after(r(2), x(2), [w1]);
    let w3 = vc.write_after(r(3), x(3), [w2]);
    vc.write_after(r(4), x(4), [w3]);
    let res_vc = vc.explore();
    println!("vector-clock baseline:       {res_vc}");
    assert!(res_vc.verified());

    println!("\nThe exact algorithm is safe in EVERY interleaving; the truncated");
    println!("variant has a concrete violating schedule the explorer found — the");
    println!("executable form of Theorem 8's necessity argument.");
}
