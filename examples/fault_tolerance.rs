//! Fault injection: what the paper's channel assumptions buy.
//!
//! The model assumes reliable, exactly-once channels. This example shows
//! (a) that *at-least-once* is actually enough — duplicate deliveries are
//! suppressed by the delivery predicate `J` — and (b) that genuine loss
//! breaks liveness in a way the trace checker pinpoints.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use prcc::core::{System, Value};
use prcc::net::{DelayModel, FaultPlan};
use prcc::sharegraph::{topology, RegisterId, ReplicaId};

fn main() {
    let r = ReplicaId::new;
    let x = RegisterId::new;

    // --- Duplication: harmless ---
    let mut sys = System::builder(topology::ring(5))
        .faults(FaultPlan::duplicating(0.4))
        .delay(DelayModel::Uniform { min: 1, max: 20 })
        .seed(7)
        .build();
    for round in 0..10u64 {
        for i in 0..5u32 {
            sys.write(r(i), x(i), Value::from(round));
        }
        sys.run_to_quiescence();
    }
    let stats = sys.net_stats();
    let rep = sys.check();
    println!("duplication run:");
    println!("  messages sent:        {}", stats.sent);
    println!("  duplicates injected:  {}", stats.duplicated);
    println!(
        "  updates applied:      {} (exactly once each)",
        sys.metrics().applies
    );
    println!(
        "  duplicate copies left in pending (never admissible): {}",
        sys.stuck_pending()
    );
    println!("  causally consistent:  {}", rep.is_consistent());
    assert!(rep.is_consistent());
    assert_eq!(sys.metrics().applies, 50);

    // --- Loss: liveness breaks, and the checker says where ---
    let mut lossy = System::builder(topology::path(3))
        .faults(FaultPlan::none().kill_link(r(0), r(1)))
        .delay(DelayModel::Fixed(1))
        .seed(0)
        .build();
    lossy.write(r(0), x(0), Value::from(1u64));
    lossy.write(r(1), x(1), Value::from(2u64));
    lossy.run_to_quiescence();
    let rep = lossy.check();
    println!("\ndead-link run (r0 → r1 severed):");
    for v in &rep.violations {
        println!("  checker: {v}");
    }
    println!(
        "  r2 still received the unaffected update: {:?}",
        lossy.read(r(2), x(1))
    );
    assert!(!rep.is_consistent());
    assert_eq!(rep.liveness_violations().count(), 1);

    println!("\nThe predicate J admits each update exactly once (at-least-once");
    println!("channels suffice); genuine loss surfaces as a checkable liveness");
    println!("violation rather than silent divergence.");
}
