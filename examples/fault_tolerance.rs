//! Fault tolerance: the session layer restores the paper's channel
//! assumptions on a hostile network.
//!
//! The model assumes reliable, exactly-once channels. Three acts:
//!
//! 1. **Drop storm without protection** — 40% loss permanently parks
//!    causally blocked updates; the trace checker pinpoints each one.
//! 2. **The same storm with the session layer** — retransmission with
//!    exponential backoff heals every loss; duplicates are suppressed by
//!    the dedup window before the protocol ever sees them.
//! 3. **Crash and recovery** — a replica dies mid-run, restarts from its
//!    snapshot + write-ahead log, and catches up via its peers'
//!    retransmissions plus its own catch-up announcements.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use prcc::core::{System, Value};
use prcc::net::{DelayModel, FaultPlan, FaultSchedule, SessionConfig};
use prcc::sharegraph::{topology, RegisterId, ReplicaId};

fn drive(sys: &mut System) {
    let r = ReplicaId::new;
    let x = RegisterId::new;
    for round in 0..10u64 {
        for i in 0..5u32 {
            if !sys.is_crashed(r(i)) {
                sys.write(r(i), x(i), Value::from(round));
            }
        }
        for _ in 0..20 {
            sys.step();
        }
    }
    sys.run_to_quiescence();
}

fn main() {
    let storm = FaultPlan {
        drop_prob: 0.4,
        duplicate_prob: 0.2,
        ..Default::default()
    };

    // --- Act 1: the storm, unprotected ---
    let mut bare = System::builder(topology::ring(5))
        .faults(storm.clone())
        .delay(DelayModel::Uniform { min: 1, max: 20 })
        .seed(7)
        .build();
    drive(&mut bare);
    let rep = bare.check();
    println!("drop storm, no session layer:");
    println!("  messages dropped:     {}", bare.net_stats().dropped);
    println!("  stuck in pending:     {}", bare.stuck_pending());
    println!(
        "  liveness violations:  {}",
        rep.liveness_violations().count()
    );
    assert!(!rep.is_consistent(), "40% loss should break liveness");

    // --- Act 2: same storm, session layer armed ---
    let mut healed = System::builder(topology::ring(5))
        .fault_schedule(FaultSchedule::from_plan(storm))
        .session(SessionConfig::default())
        .delay(DelayModel::Uniform { min: 1, max: 20 })
        .seed(7)
        .build();
    drive(&mut healed);
    let stats = healed.session_stats().expect("session enabled");
    let rep = healed.check();
    println!("\nsame storm, session layer armed:");
    println!("  messages dropped:     {}", healed.net_stats().dropped);
    println!("  retransmissions:      {}", stats.retransmits);
    println!("  duplicates suppressed:{}", stats.dup_suppressed);
    println!("  acks sent:            {}", stats.acks_sent);
    println!("  stuck in pending:     {}", healed.stuck_pending());
    println!("  causally consistent:  {}", rep.is_consistent());
    assert!(rep.is_consistent());
    assert_eq!(healed.stuck_pending(), 0);
    assert!(stats.retransmits > 0);

    // --- Act 3: crash, restart, catch up ---
    let r = ReplicaId::new;
    let schedule = FaultSchedule::from_plan(FaultPlan::dropping(0.2))
        .crash(r(2), 5, 2000)
        .partition([r(0)], [r(3)], 50, 400);
    let mut recovered = System::builder(topology::ring(5))
        .fault_schedule(schedule)
        .session(SessionConfig::default())
        .delay(DelayModel::Uniform { min: 1, max: 20 })
        .seed(11)
        .build();
    drive(&mut recovered);
    let stats = recovered.session_stats().expect("session enabled");
    let catch_up = recovered.catch_up_stats();
    let rep = recovered.check();
    println!("\ncrash of r2 at t=5, restart at t=2000 (plus 20% loss and a partition):");
    println!(
        "  deliveries lost to the crash: {}",
        recovered.lost_to_crash()
    );
    println!("  catch-up frames sent:         {}", stats.catch_up_sent);
    println!("  retransmissions:              {}", stats.retransmits);
    println!("  restart -> caught up:         {} ticks", catch_up.max());
    println!("  causally consistent:          {}", rep.is_consistent());
    assert!(rep.is_consistent());
    assert_eq!(recovered.stuck_pending(), 0);
    assert!(stats.catch_up_sent > 0);

    println!("\nRetransmission + WAL recovery + catch-up restore the reliable");
    println!("exactly-once channels the algorithm assumes; the checker confirms");
    println!("the healed executions are indistinguishable from fault-free ones.");
}
