//! The Hélary–Milani counterexamples (Section 3.2, Appendix A):
//! the original minimal-hoop condition over-tracks (Figure 8a) and the
//! modified one under-tracks (Figure 8b) — checked live against our loop
//! machinery and the consistency checker.
//!
//! ```text
//! cargo run --example hm_counterexample
//! ```

use prcc::core::{System, Value};
use prcc::net::DelayModel;
use prcc::sharegraph::hoops::{Hoop, HoopVariant};
use prcc::sharegraph::paper_examples::{ce_regs, figure8a, figure8b, CE};
use prcc::sharegraph::{exists_loop, EdgeId, LoopConfig, RegisterId};

fn main() {
    // ---------------- Figure 8a: over-tracking ----------------
    let g8a = figure8a();
    let hoop = Hoop {
        register: ce_regs::X,
        path: vec![CE.j, CE.b1, CE.b2, CE.i, CE.a1, CE.a2, CE.k],
    };
    println!("Figure 8a — cycle j–b1–b2–i–a1–a2–k, x shared by {{j,k}}:");
    println!(
        "  minimal x-hoop through i (HM Def 18)?   {}",
        hoop.is_minimal(&g8a, HoopVariant::Original)
    );
    println!(
        "  (i, e_jk)-loop exists (our Def 4)?      {}",
        exists_loop(&g8a, CE.i, EdgeId::new(CE.j, CE.k), LoopConfig::EXHAUSTIVE)
    );
    println!(
        "  (i, e_kj)-loop exists?                  {}",
        exists_loop(&g8a, CE.i, EdgeId::new(CE.k, CE.j), LoopConfig::EXHAUSTIVE)
    );

    // Run the full system — replica i never tracks x, yet consistency
    // holds on every seed.
    let mut all_ok = true;
    for seed in 0..10 {
        let mut sys = System::builder(g8a.clone())
            .delay(DelayModel::Uniform { min: 1, max: 40 })
            .seed(seed)
            .build();
        for round in 0..3u64 {
            for reg in 0..g8a.placement().num_registers() as u32 {
                for &h in g8a.placement().holders(RegisterId::new(reg)) {
                    sys.write(h, RegisterId::new(reg), Value::from(round));
                }
                sys.step();
            }
        }
        sys.run_to_quiescence();
        all_ok &= sys.check().is_consistent();
    }
    println!("  10 seeded runs WITHOUT i tracking x:    all consistent = {all_ok}");
    println!("  ⇒ HM's original condition over-tracks.\n");
    assert!(all_ok);

    // ---------------- Figure 8b: under-tracking ----------------
    let g8b = figure8b();
    let hoop_b = Hoop {
        register: ce_regs::X,
        path: vec![CE.j, CE.b1, CE.b2, CE.i, CE.a1, CE.a2, CE.k],
    };
    println!("Figure 8b — same cycle, but only y is multi-shared:");
    println!(
        "  minimal x-hoop through i (HM Def 20)?   {}",
        hoop_b.is_minimal(&g8b, HoopVariant::Modified)
    );
    println!(
        "  (i, e_kj)-loop exists (our Def 4)?      {}",
        exists_loop(&g8b, CE.i, EdgeId::new(CE.k, CE.j), LoopConfig::EXHAUSTIVE)
    );

    // Adversarial run with e_kj dropped from E_i: safety breaks.
    let run = |drop: bool| -> usize {
        let mut b = System::builder(g8b.clone())
            .delay(DelayModel::Fixed(1))
            .seed(0);
        if drop {
            b = b.drop_edge(CE.i, EdgeId::new(CE.k, CE.j));
        }
        let mut sys = b.build();
        sys.hold_link(CE.k, CE.j);
        sys.write(CE.k, ce_regs::X, Value::from(1u64));
        for (who, reg) in [
            (CE.k, 6u32),
            (CE.a2, 7),
            (CE.a1, 5),
            (CE.i, 4),
            (CE.b2, 1),
            (CE.b1, 3),
        ] {
            sys.write(who, RegisterId::new(reg), Value::from(0u64));
            sys.run_to_quiescence();
        }
        sys.release_link(CE.k, CE.j);
        sys.run_to_quiescence();
        sys.check().safety_violations().count()
    };
    let with_edge = run(false);
    let without_edge = run(true);
    println!("  adversarial run, i tracks e_kj:         {with_edge} safety violations");
    println!("  adversarial run, i oblivious to e_kj:   {without_edge} safety violations");
    println!("  ⇒ HM's modified condition under-tracks; Theorem 8's edge set is exact.");
    assert_eq!(with_edge, 0);
    assert!(without_edge > 0);
}
