//! Breaking the ring (Appendix D, Figure 13): trade metadata size for
//! propagation latency by routing one register's updates through virtual
//! registers instead of a direct link.
//!
//! ```text
//! cargo run --example ring_breaking
//! ```

use prcc::core::{RoutedRing, System, TrackerKind, Value};
use prcc::net::DelayModel;
use prcc::sharegraph::{topology, LoopConfig, RegisterId, ReplicaId};

fn main() {
    let n = 8;
    let r = ReplicaId::new;
    let x = RegisterId::new;

    // Plain ring: every replica must track all 2n directed edges.
    let mut plain = System::builder(topology::ring(n))
        .tracker(TrackerKind::EdgeIndexed(LoopConfig::EXHAUSTIVE))
        .delay(DelayModel::Fixed(5))
        .seed(1)
        .build();
    println!(
        "plain ring(n={n}):   counters per replica = {:?}",
        plain.timestamp_counters()
    );

    // Broken ring: the edge between r7 and r0 is severed; writes to their
    // shared register ride virtual registers the long way around.
    let mut routed = RoutedRing::new(n, DelayModel::Fixed(5), 1);
    println!(
        "broken ring(n={n}):  counters per replica = {:?}",
        routed.timestamp_counters()
    );

    // Same write load on both.
    for round in 0..5u64 {
        for i in 0..n as u32 {
            plain.write(r(i), x(i), Value::from(round));
            routed.write(r(i), x(i), Value::from(round));
        }
        plain.run_to_quiescence();
        routed.run_to_quiescence();
    }

    let pm = plain.metrics();
    let rm = routed.metrics();
    println!("\n                       plain      broken");
    println!(
        "metadata bytes:   {:>10} {:>10}",
        pm.metadata_bytes, rm.metadata_bytes
    );
    println!(
        "messages:         {:>10} {:>10}",
        pm.data_messages + pm.meta_messages,
        rm.data_messages + rm.meta_messages
    );
    println!(
        "max visibility:   {:>10} {:>10}",
        pm.max_visibility, rm.max_visibility
    );
    println!(
        "mean visibility:  {:>10.1} {:>10.1}",
        pm.mean_visibility(),
        rm.mean_visibility()
    );
    println!(
        "consistent:       {:>10} {:>10}",
        plain.check().is_consistent(),
        routed.check().is_consistent()
    );

    // The broken register still converges across the severed edge.
    routed.write(r(0), routed.broken_register(), Value::from(12345u64));
    routed.run_to_quiescence();
    println!(
        "\nwrite at r0 to the broken register, read at r{}: {:?}",
        n - 1,
        routed.read(r((n - 1) as u32), routed.broken_register())
    );
    assert!(plain.check().is_consistent());
    assert!(routed.check().is_consistent());
}
