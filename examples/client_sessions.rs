//! Client-server sessions (Section 6, Appendix E): a mobile client
//! migrating between edge servers that share no registers, with its
//! session causality carried by the client timestamp `μ_c`.
//!
//! ```text
//! cargo run --example client_sessions
//! ```

use prcc::core::client_server::ClientServerSystem;
use prcc::core::Value;
use prcc::net::DelayModel;
use prcc::sharegraph::{
    topology, AugmentedShareGraph, ClientAssignment, ClientId, RegisterId, ReplicaId,
};

fn main() {
    let r = ReplicaId::new;
    let x = RegisterId::new;
    let c = ClientId::new;

    // Five edge servers in a path; registers i shared by servers i, i+1.
    let graph = topology::path(5);
    // A "mobile" client roams between the two ends; a "local" client sits
    // in the middle.
    let mut clients = ClientAssignment::new(5);
    clients.assign(c(0), [r(0), r(4)]);
    clients.assign(c(1), [r(2)]);
    let aug = AugmentedShareGraph::new(graph, clients);

    // The augmented graphs grow: servers must track client-induced edges.
    let auggraphs = aug.augmented_timestamp_graphs();
    for i in 0..5u32 {
        println!(
            "server {i}: tracks {} edges (augmented)",
            auggraphs.of(r(i)).len()
        );
    }

    let mut sys = ClientServerSystem::new(aug, DelayModel::Uniform { min: 1, max: 15 }, 99);

    // Session: the mobile client posts at server 0, flies across the
    // world, and posts a follow-up at server 4. The second post is
    // causally after the first even though servers 0 and 4 never talk.
    let w1 = sys.write(c(0), r(0), x(0), Value::from("post: departing SFO"));
    let w2 = sys.write(c(0), r(4), x(3), Value::from("post: landed in NRT"));
    sys.run_to_quiescence();
    println!(
        "\nmobile client session: write1 done={}, write2 done={}",
        sys.is_write_done(w1),
        sys.is_write_done(w2)
    );

    // The local client at server 2 reads both registers; causal order
    // guarantees it can never see the follow-up's effects without the
    // original (both propagate through servers 1–3).
    let rd0 = sys.read(c(1), r(2), x(1));
    sys.run_to_quiescence();
    println!(
        "local client read x1 at server 2: {:?}",
        sys.read_result(rd0)
    );

    // More session traffic to exercise the predicates.
    for round in 0..5u64 {
        sys.write(c(1), r(2), x(1), Value::from(round));
        sys.write(c(0), r(4), x(3), Value::from(round * 10));
        sys.write(c(0), r(0), x(0), Value::from(round * 100));
        sys.run_to_quiescence();
    }

    let report = sys.check();
    println!(
        "\nchecker: consistent = {}, blocked requests = {}",
        report.is_consistent(),
        sys.blocked_requests()
    );
    println!(
        "mobile client's timestamp: {} counters ({} bytes)",
        sys.client_timestamp(c(0)).num_counters(),
        sys.client_timestamp(c(0)).wire_size_bytes()
    );
    assert!(report.is_consistent());
    assert_eq!(sys.blocked_requests(), 0);
}
