//! # prcc — Partially Replicated Causally Consistent shared memory
//!
//! A production-quality reproduction of *"Partially Replicated Causally
//! Consistent Shared Memory: Lower Bounds and An Algorithm"* (Xiang &
//! Vaidya; brief announcement at PODC 2018).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`sharegraph`] — share graphs, `(i, e_jk)`-loops, timestamp graphs
//!   (Definitions 3–5), hoops, client-server augmented graphs;
//! * [`timestamp`] — edge-indexed vector timestamps (`advance`/`merge`/
//!   predicate `J`, Section 3.3), vector-clock baseline, compression,
//!   lower-bound formulas;
//! * [`net`] — deterministic simulated network and a threaded transport
//!   (reliable, asynchronous, non-FIFO channels);
//! * [`core`] — the replica prototype (Section 2.1), complete simulated
//!   deployments, the client-server protocol (Appendix E), dummy
//!   registers, ring breaking, loop truncation (Appendix D);
//! * [`sim`] — workload generation and scenario measurement;
//! * [`checker`] — protocol-independent causal-consistency verification.
//!
//! ## Quickstart
//!
//! ```
//! use prcc::core::{System, Value};
//! use prcc::sharegraph::{topology, ReplicaId, RegisterId};
//!
//! // Four replicas in a ring, one shared register per adjacent pair.
//! let mut sys = System::builder(topology::ring(4)).seed(1).build();
//! sys.write(ReplicaId::new(0), RegisterId::new(0), Value::from(7u64));
//! sys.run_to_quiescence();
//! assert_eq!(
//!     sys.read(ReplicaId::new(1), RegisterId::new(0)),
//!     Some(&Value::from(7u64))
//! );
//! assert!(sys.check().is_consistent());
//! ```

#![warn(missing_docs)]

pub use prcc_checker as checker;
pub use prcc_core as core;
pub use prcc_net as net;
pub use prcc_sharegraph as sharegraph;
pub use prcc_sim as sim;
pub use prcc_timestamp as timestamp;
