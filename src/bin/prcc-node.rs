//! `prcc-node` — one replica of a PRCC cluster as a real OS process,
//! its peers reachable over TCP.
//!
//! ```text
//! prcc-node --config cluster.toml --id 2     # run replica 2 of the cluster
//! prcc-node --launch 3 [--topology ring:3] [--wire compressed] [--rounds 6]
//! ```
//!
//! **Node mode** reads a static cluster config (a small TOML subset, see
//! below), starts a [`NodeRuntime`] on the configured listen address,
//! drives its share of the seeded single-writer workload
//! ([`NetWorkload`] — a pure function of the share graph, so processes
//! never exchange it), waits for quiescence, and emits a line-oriented
//! report on stdout: store fingerprint, canonical store lines, the
//! node's event log, and socket statistics. It then blocks until the
//! driver writes a line on stdin (or closes it) before shutting down —
//! a node must outlive its peers' retransmission windows even after it
//! is locally quiescent.
//!
//! **Driver mode** (`--launch n`) picks n loopback ports, writes the
//! config, spawns n child `prcc-node` processes, collects their
//! reports, and gates them differentially: every node's store must be
//! byte-identical to an in-process [`ThreadedCluster`] oracle run of
//! the same workload, and the merged cross-process event trace must
//! pass the causal-consistency checker. The summary is printed as JSON;
//! the exit status is non-zero on any mismatch.
//!
//! Config format:
//!
//! ```toml
//! [cluster]
//! topology = "ring:3"      # ring:n path:n star:leaves tree:n grid:wxh clique:nxr
//! wire = "compressed"      # raw | projected | compressed | adaptive
//! rounds = 6               # writes per register
//! session = true           # arm per-link retransmission (recommended)
//!
//! [[node]]
//! id = 0
//! addr = "127.0.0.1:47311"
//! # ... one [[node]] per replica
//! ```

use prcc::checker::{check, UpdateId};
use prcc::core::runtime::{NodeRuntime, ThreadedCluster};
use prcc::core::{ClusterConfig, NodeEvent, WireMode};
use prcc::net::{BoundListener, DelayModel, SessionConfig, TcpNetConfig, TcpStatsSnapshot};
use prcc::sharegraph::{topology, RegisterId, ReplicaId, ShareGraph};
use prcc::sim::netrun::{merge_node_events, store_fingerprint, store_lines, NetWorkload};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const USAGE: &str = "prcc-node — one replica of a PRCC cluster over real TCP\n\
     \n\
     usage: prcc-node --config <file> --id <n>        run one replica\n\
     \x20      prcc-node --launch <n> [options]          drive an n-process loopback cluster\n\
     \n\
     driver options:\n\
     \x20  --topology <spec>     ring:n path:n star:n tree:n grid:wxh clique:nxr (default ring:<n>)\n\
     \x20  --wire <mode>         raw | projected | compressed | adaptive (default compressed)\n\
     \x20  --rounds <k>          writes per register (default 6)\n\
     \x20  --timeout-secs <s>    per-node quiescence timeout (default 60)\n";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{USAGE}");
        return;
    }
    let code = if flag(&args, "--launch").is_some() {
        run_driver(&args)
    } else {
        run_node(&args)
    };
    std::process::exit(code);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_topology(spec: &str) -> Result<ShareGraph, String> {
    let (kind, arg) = spec.split_once(':').unwrap_or((spec, ""));
    let num = |s: &str| {
        s.parse::<usize>()
            .map_err(|_| format!("bad numeric argument '{s}' in topology '{spec}'"))
    };
    Ok(match kind {
        "ring" => topology::ring(num(arg)?),
        "path" => topology::path(num(arg)?),
        "star" => topology::star(num(arg)?),
        "tree" => topology::binary_tree(num(arg)?),
        "grid" => match arg.split_once('x') {
            Some((w, h)) => topology::grid(num(w)?, num(h)?),
            None => return Err(format!("grid topology needs wxh, got '{arg}'")),
        },
        "clique" => match arg.split_once('x') {
            Some((n, r)) => topology::clique_full(num(n)?, num(r)?),
            None => return Err(format!("clique topology needs nxr, got '{arg}'")),
        },
        other => return Err(format!("unknown topology '{other}'")),
    })
}

fn parse_wire(s: &str) -> Result<WireMode, String> {
    Ok(match s {
        "raw" => WireMode::Raw,
        "projected" => WireMode::Projected,
        "compressed" => WireMode::Compressed,
        "adaptive" => WireMode::Adaptive,
        other => return Err(format!("unknown wire mode '{other}'")),
    })
}

fn wire_name(w: WireMode) -> &'static str {
    match w {
        WireMode::Raw => "raw",
        WireMode::Projected => "projected",
        WireMode::Compressed => "compressed",
        WireMode::Adaptive => "adaptive",
    }
}

/// A session tuned for loopback round trips, so any startup shed is
/// repaired within a few tens of milliseconds.
fn loopback_session() -> SessionConfig {
    SessionConfig {
        rto_base: 20,
        rto_max: 200,
        jitter: 5,
        ack_delay: 0,
    }
}

// ---------------------------------------------------------------------------
// Cluster config: a hand-rolled parser for the tiny TOML subset above.
// The build is fully offline, so no external TOML crate is available —
// and the subset (two table kinds, string/int/bool values) does not
// justify vendoring one.
// ---------------------------------------------------------------------------

struct ClusterSpec {
    topology: String,
    wire: WireMode,
    rounds: u64,
    session: bool,
    /// `(id, addr)` per node, sorted by id after parsing.
    nodes: Vec<(u32, SocketAddr)>,
}

impl ClusterSpec {
    fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig {
            wire: self.wire,
            session: self.session.then(loopback_session),
            ..ClusterConfig::default()
        }
    }

    fn to_toml(&self) -> String {
        let mut s = format!(
            "[cluster]\ntopology = \"{}\"\nwire = \"{}\"\nrounds = {}\nsession = {}\n",
            self.topology,
            wire_name(self.wire),
            self.rounds,
            self.session
        );
        for (id, addr) in &self.nodes {
            s.push_str(&format!("\n[[node]]\nid = {id}\naddr = \"{addr}\"\n"));
        }
        s
    }
}

fn parse_config(text: &str) -> Result<ClusterSpec, String> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Cluster,
        Node,
    }
    let mut section = Section::None;
    let mut topology_spec = None;
    let mut wire = WireMode::Compressed;
    let mut rounds = 6u64;
    let mut session = true;
    let mut nodes: Vec<(Option<u32>, Option<SocketAddr>)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("config line {}: {msg}", lineno + 1);
        if line == "[cluster]" {
            section = Section::Cluster;
            continue;
        }
        if line == "[[node]]" {
            section = Section::Node;
            nodes.push((None, None));
            continue;
        }
        if line.starts_with('[') {
            return Err(at(format!("unknown section '{line}'")));
        }
        let (key, value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| at(format!("expected key = value, got '{line}'")))?;
        let unquote = |v: &str| -> Result<String, String> {
            let inner = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| at(format!("expected a quoted string for '{key}'")))?;
            Ok(inner.to_string())
        };
        match section {
            Section::Cluster => match key {
                "topology" => topology_spec = Some(unquote(value)?),
                "wire" => wire = parse_wire(&unquote(value)?).map_err(at)?,
                "rounds" => {
                    rounds = value
                        .parse()
                        .map_err(|_| at(format!("bad integer '{value}'")))?
                }
                "session" => {
                    session = value
                        .parse()
                        .map_err(|_| at(format!("bad bool '{value}'")))?
                }
                other => return Err(at(format!("unknown cluster key '{other}'"))),
            },
            Section::Node => {
                let node = nodes.last_mut().expect("section implies an entry");
                match key {
                    "id" => {
                        node.0 = Some(
                            value
                                .parse()
                                .map_err(|_| at(format!("bad integer '{value}'")))?,
                        )
                    }
                    "addr" => {
                        node.1 = Some(
                            unquote(value)?
                                .parse()
                                .map_err(|_| at(format!("bad socket address '{value}'")))?,
                        )
                    }
                    other => return Err(at(format!("unknown node key '{other}'"))),
                }
            }
            Section::None => return Err(at("key outside any section".into())),
        }
    }

    let topology = topology_spec.ok_or("config is missing cluster.topology")?;
    let mut resolved = Vec::with_capacity(nodes.len());
    for (i, (id, addr)) in nodes.into_iter().enumerate() {
        resolved.push((
            id.ok_or(format!("node entry {i} is missing 'id'"))?,
            addr.ok_or(format!("node entry {i} is missing 'addr'"))?,
        ));
    }
    resolved.sort_by_key(|(id, _)| *id);
    Ok(ClusterSpec {
        topology,
        wire,
        rounds,
        session,
        nodes: resolved,
    })
}

// ---------------------------------------------------------------------------
// Node mode
// ---------------------------------------------------------------------------

fn run_node(args: &[String]) -> i32 {
    match try_run_node(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("prcc-node: {e}");
            1
        }
    }
}

fn try_run_node(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--config").ok_or("node mode needs --config <file>")?;
    let id: u32 = flag(args, "--id")
        .ok_or("node mode needs --id <n>")?
        .parse()
        .map_err(|_| "bad --id")?;
    let timeout = Duration::from_secs(
        flag(args, "--timeout-secs")
            .map(|s| s.parse().map_err(|_| "bad --timeout-secs"))
            .transpose()?
            .unwrap_or(60),
    );
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let spec = parse_config(&text)?;
    let g = parse_topology(&spec.topology)?;
    if spec.nodes.len() != g.num_replicas() {
        return Err(format!(
            "config has {} node entries but topology '{}' has {} replicas",
            spec.nodes.len(),
            spec.topology,
            g.num_replicas()
        ));
    }
    let me = ReplicaId::new(id);
    let my_addr = spec
        .nodes
        .iter()
        .find(|(i, _)| *i == id)
        .map(|(_, a)| *a)
        .ok_or(format!("config has no node entry for id {id}"))?;
    let peers: HashMap<ReplicaId, SocketAddr> = spec
        .nodes
        .iter()
        .filter(|(i, _)| *i != id)
        .map(|(i, a)| (ReplicaId::new(*i), *a))
        .collect();

    let wl = NetWorkload::new(&g, spec.rounds);
    let expected = wl.expected_applies(&g, me);
    let bound = BoundListener::bind(me, my_addr).map_err(|e| format!("bind {my_addr}: {e}"))?;
    let rt = NodeRuntime::start(
        g.clone(),
        spec.cluster_config(),
        TcpNetConfig::default(),
        bound,
        peers,
    )
    .map_err(|e| format!("start node {id}: {e}"))?;

    for round in 0..spec.rounds {
        for &x in wl.registers_of(me) {
            rt.write(x, prcc::sim::netrun::write_value(x, round));
        }
    }
    let quiescent = rt.wait_quiescent(expected, timeout);

    let view = rt.store_snapshot();
    let stats = rt.tcp_stats();
    let mut out = String::new();
    out.push_str(&format!("node {id}\n"));
    out.push_str(&format!("fingerprint {:016x}\n", store_fingerprint(&view)));
    out.push_str(&format!("applied {}\n", rt.total_applied()));
    out.push_str(&format!("sent {}\n", rt.total_sent()));
    out.push_str(&format!("quiescent {quiescent}\n"));
    for line in store_lines(&view) {
        out.push_str(&format!("store {line}\n"));
    }
    for ev in rt.events() {
        match ev {
            NodeEvent::Issue { id, register } => out.push_str(&format!(
                "event I {} {} {}\n",
                id.issuer.raw(),
                id.seq,
                register.raw()
            )),
            NodeEvent::Apply { id } => {
                out.push_str(&format!("event A {} {}\n", id.issuer.raw(), id.seq))
            }
        }
    }
    out.push_str(&format!(
        "stats {} {} {} {} {} {} {} {} {}\n",
        stats.write_syscalls,
        stats.read_syscalls,
        stats.bytes_sent,
        stats.bytes_received,
        stats.frames_sent,
        stats.frames_received,
        stats.reconnects,
        stats.shed_outbound,
        stats.decode_errors,
    ));
    out.push_str("end\n");
    let stdout = std::io::stdout();
    let mut h = stdout.lock();
    h.write_all(out.as_bytes()).map_err(|e| e.to_string())?;
    h.flush().map_err(|e| e.to_string())?;

    // Stay up until the driver releases us (or closes our stdin): peers
    // may still be pulling this node's frames through retransmission.
    let applied = rt.total_applied();
    let mut release = String::new();
    let _ = std::io::stdin().lock().read_line(&mut release);
    drop(rt);
    if quiescent {
        Ok(())
    } else {
        Err(format!(
            "node {id} timed out before quiescence ({applied} / {expected} applies)"
        ))
    }
}

// ---------------------------------------------------------------------------
// Driver mode
// ---------------------------------------------------------------------------

struct NodeReport {
    id: u32,
    fingerprint: String,
    quiescent: bool,
    store: Vec<String>,
    events: Vec<NodeEvent>,
    stats: TcpStatsSnapshot,
}

fn parse_report(lines: &[String]) -> Result<NodeReport, String> {
    let mut id = None;
    let mut fingerprint = String::new();
    let mut quiescent = false;
    let mut store = Vec::new();
    let mut events = Vec::new();
    let mut stats = TcpStatsSnapshot::default();
    let mut saw_end = false;
    for line in lines {
        let mut parts = line.split(' ');
        let key = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        let int = |s: &&str| -> Result<u64, String> {
            s.parse().map_err(|_| format!("bad report line '{line}'"))
        };
        match key {
            "node" => id = Some(int(&rest[0])? as u32),
            "fingerprint" => fingerprint = rest[0].to_string(),
            "applied" | "sent" => {}
            "quiescent" => quiescent = rest[0] == "true",
            "store" => store.push(rest.join(" ")),
            "event" => {
                let uid = UpdateId {
                    issuer: ReplicaId::new(int(&rest[1])? as u32),
                    seq: int(&rest[2])?,
                };
                events.push(match rest[0] {
                    "I" => NodeEvent::Issue {
                        id: uid,
                        register: RegisterId::new(int(&rest[3])? as u32),
                    },
                    "A" => NodeEvent::Apply { id: uid },
                    other => return Err(format!("bad event kind '{other}'")),
                });
            }
            "stats" => {
                let v: Vec<u64> = rest.iter().map(int).collect::<Result<_, _>>()?;
                if v.len() != 9 {
                    return Err(format!("bad stats line '{line}'"));
                }
                stats = TcpStatsSnapshot {
                    write_syscalls: v[0],
                    read_syscalls: v[1],
                    bytes_sent: v[2],
                    bytes_received: v[3],
                    frames_sent: v[4],
                    frames_received: v[5],
                    reconnects: v[6],
                    shed_outbound: v[7],
                    decode_errors: v[8],
                };
            }
            "end" => saw_end = true,
            other => return Err(format!("unknown report key '{other}'")),
        }
    }
    if !saw_end {
        return Err("truncated report (no 'end' line)".into());
    }
    Ok(NodeReport {
        id: id.ok_or("report has no 'node' line")?,
        fingerprint,
        quiescent,
        store,
        events,
        stats,
    })
}

fn run_driver(args: &[String]) -> i32 {
    match try_run_driver(args) {
        Ok(ok) => {
            if ok {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("prcc-node --launch: {e}");
            1
        }
    }
}

fn try_run_driver(args: &[String]) -> Result<bool, String> {
    let n: usize = flag(args, "--launch")
        .expect("checked by caller")
        .parse()
        .map_err(|_| "bad --launch <n>")?;
    if n < 2 {
        return Err("--launch needs at least 2 nodes".into());
    }
    let topology_spec = flag(args, "--topology").unwrap_or_else(|| format!("ring:{n}"));
    let wire = parse_wire(&flag(args, "--wire").unwrap_or_else(|| "compressed".into()))?;
    let rounds: u64 = flag(args, "--rounds")
        .map(|s| s.parse().map_err(|_| "bad --rounds"))
        .transpose()?
        .unwrap_or(6);
    let timeout_secs: u64 = flag(args, "--timeout-secs")
        .map(|s| s.parse().map_err(|_| "bad --timeout-secs"))
        .transpose()?
        .unwrap_or(60);

    let g = parse_topology(&topology_spec)?;
    if g.num_replicas() != n {
        return Err(format!(
            "--launch {n} but topology '{topology_spec}' has {} replicas",
            g.num_replicas()
        ));
    }

    // Pick n free loopback ports: bind ephemeral, record, release. The
    // children re-bind them from the written config; on loopback the
    // window for another process to steal one is negligible.
    let addrs: Vec<SocketAddr> = (0..n)
        .map(|_| {
            let l = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| e.to_string())?;
            l.local_addr().map_err(|e| e.to_string())
        })
        .collect::<Result<_, String>>()?;
    let spec = ClusterSpec {
        topology: topology_spec.clone(),
        wire,
        rounds,
        session: true,
        nodes: (0..n).map(|i| (i as u32, addrs[i])).collect(),
    };
    let config_path =
        std::env::temp_dir().join(format!("prcc-cluster-{}-{n}.toml", std::process::id()));
    std::fs::write(&config_path, spec.to_toml()).map_err(|e| e.to_string())?;

    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let started = Instant::now();
    let mut children = Vec::with_capacity(n);
    for i in 0..n {
        let child = Command::new(&exe)
            .arg("--config")
            .arg(&config_path)
            .arg("--id")
            .arg(i.to_string())
            .arg("--timeout-secs")
            .arg(timeout_secs.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn node {i}: {e}"))?;
        children.push(child);
    }

    // Pull each child's report on its own thread — a node's report must
    // never back up behind another node's unread pipe.
    let mut readers = Vec::with_capacity(n);
    for child in &mut children {
        let stdout = child.stdout.take().expect("stdout was piped");
        readers.push(std::thread::spawn(
            move || -> Result<Vec<String>, String> {
                let mut lines = Vec::new();
                for line in BufReader::new(stdout).lines() {
                    let line = line.map_err(|e| e.to_string())?;
                    let done = line == "end";
                    lines.push(line);
                    if done {
                        break;
                    }
                }
                Ok(lines)
            },
        ));
    }
    let mut reports: Vec<NodeReport> = Vec::with_capacity(n);
    let mut failures: Vec<String> = Vec::new();
    for (i, reader) in readers.into_iter().enumerate() {
        match reader.join().expect("reader thread must not panic") {
            Ok(lines) => match parse_report(&lines) {
                Ok(r) => reports.push(r),
                Err(e) => failures.push(format!("node {i}: {e}")),
            },
            Err(e) => failures.push(format!("node {i}: read report: {e}")),
        }
    }
    // All reports are in (every node quiescent), so every update has
    // landed everywhere — release the children.
    for child in &mut children {
        if let Some(stdin) = child.stdin.as_mut() {
            let _ = stdin.write_all(b"exit\n");
        }
    }
    for (i, mut child) in children.into_iter().enumerate() {
        match child.wait() {
            Ok(status) if !status.success() => {
                failures.push(format!("node {i} exited with {status}"))
            }
            Err(e) => failures.push(format!("wait node {i}: {e}")),
            _ => {}
        }
    }
    let _ = std::fs::remove_file(&config_path);
    let elapsed = started.elapsed();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("prcc-node --launch: {f}");
        }
        return Ok(false);
    }
    reports.sort_by_key(|r| r.id);

    // Differential gate 1: every socket-run store is byte-identical to
    // the in-process oracle's.
    let oracle =
        ThreadedCluster::with_config(g.clone(), DelayModel::Fixed(0), 1, spec.cluster_config());
    let wl = NetWorkload::new(&g, rounds);
    wl.drive(&oracle);
    oracle.settle();
    let mut stores_match = true;
    for r in &reports {
        let want = store_lines(&oracle.store_snapshot(ReplicaId::new(r.id)));
        if r.store != want {
            stores_match = false;
            eprintln!(
                "prcc-node --launch: node {} store diverges from oracle\n  got:  {:?}\n  want: {:?}",
                r.id, r.store, want
            );
        }
    }
    let oracle_consistent = oracle.check().is_consistent();

    // Differential gate 2: the merged cross-process trace is causally
    // consistent.
    let logs: Vec<Vec<NodeEvent>> = reports.iter().map(|r| r.events.clone()).collect();
    let trace = merge_node_events(&logs);
    let report = check(&trace, g.placement());
    let consistent = report.is_consistent();
    if !consistent {
        eprintln!(
            "prcc-node --launch: merged trace violates causal consistency: {:?}",
            report.violations
        );
    }

    let all_quiescent = reports.iter().all(|r| r.quiescent);
    let bytes_on_wire: u64 = reports.iter().map(|r| r.stats.bytes_sent).sum();
    let write_syscalls: u64 = reports.iter().map(|r| r.stats.write_syscalls).sum();
    let sheds: u64 = reports.iter().map(|r| r.stats.shed_outbound).sum();
    let decode_errors: u64 = reports.iter().map(|r| r.stats.decode_errors).sum();
    let fingerprints: Vec<String> = reports.iter().map(|r| r.fingerprint.clone()).collect();
    let ok = stores_match && consistent && oracle_consistent && all_quiescent;

    println!("{{");
    println!("  \"topology\": \"{topology_spec}\",");
    println!("  \"wire\": \"{}\",", wire_name(wire));
    println!("  \"nodes\": {n},");
    println!("  \"rounds\": {rounds},");
    println!("  \"total_writes\": {},", wl.total_writes());
    println!("  \"elapsed_ms\": {},", elapsed.as_millis());
    println!("  \"all_quiescent\": {all_quiescent},");
    println!("  \"stores_match\": {stores_match},");
    println!("  \"consistent\": {consistent},");
    println!("  \"bytes_on_wire\": {bytes_on_wire},");
    println!("  \"write_syscalls\": {write_syscalls},");
    println!("  \"shed_outbound\": {sheds},");
    println!("  \"decode_errors\": {decode_errors},");
    println!(
        "  \"fingerprints\": [{}],",
        fingerprints
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("  \"ok\": {ok}");
    println!("}}");
    Ok(ok)
}
