//! `prcc` — command-line tool for exploring partially replicated causally
//! consistent shared memory.
//!
//! ```text
//! prcc inspect ring:6            # share graph, timestamp graphs, compression
//! prcc run ring:6 --tracker vc   # drive a workload, print the measured report
//! prcc explore ring:4 --chain 4  # model-check a causal chain over all interleavings
//! prcc help
//! ```

use prcc::core::{BatchPolicy, Scenario, TrackerKind, WireMode};
use prcc::net::{DelayModel, FaultPlan, FaultSchedule, SessionConfig};
use prcc::sharegraph::{
    paper_examples, topology, LoopConfig, RegisterId, ReplicaId, ShareGraph, TimestampGraphs,
};
use prcc::sim::{run_scenario, ScenarioConfig, WorkloadConfig};
use prcc::timestamp::compress_replica;

fn usage() -> ! {
    eprintln!(
        "usage: prcc <command> [args]\n\
         \n\
         commands:\n\
           inspect <topology>                    print share/timestamp graphs + compression\n\
           run <topology> [options]              run a workload and print the report\n\
           explore <topology> --chain <len>      model-check a causal chain\n\
           dot <topology> [--replica <i>]        emit Graphviz (share graph, or one timestamp graph)\n\
         \n\
         topologies:\n\
           ring:<n>  path:<n>  star:<leaves>  tree:<n>  grid:<w>x<h>\n\
           clique:<n>x<registers>  geo:<dcs>  fig3  fig5  fig8a  fig8b\n\
         \n\
         run options:\n\
           --tracker edge|vc|trunc:<l>   causality tracker (default edge)\n\
           --wire raw|projected|compressed  metadata wire codec (default compressed)\n\
           --writes <n>                  writes per replica (default 20)\n\
           --zipf <theta>                register skew (default 0.9)\n\
           --seed <s>                    workload/network seed (default 0)\n\
           --drop <p>                    drop each message with probability p\n\
           --crash <r@t1:t2[,...]>       crash replica r at t1, restart at t2\n\
           --partition <a|b@t1:t2>       sever side a from side b during [t1,t2)\n\
                                         (sides are comma-separated replica lists)\n\
           --no-session                  disable the reliable-delivery session layer\n\
                                         (faults then cause permanent loss)\n\
           --batch <count>[:<bytes>:<window>]  sender-side update coalescing policy\n\
           --no-batch                    ship every update as a singleton frame\n\
           --clients <n>                 drive n client sessions through the serving\n\
                                         tier on a threaded cluster and report routing\n\
                                         + session-guarantee stats; composes with\n\
                                         --crash/--drop/--partition (the schedule runs\n\
                                         live under the serving workload: sessions\n\
                                         fail over, overload sheds, availability is\n\
                                         reported)"
    );
    std::process::exit(2);
}

fn parse_topology(spec: &str) -> ShareGraph {
    let (kind, arg) = match spec.split_once(':') {
        Some((k, a)) => (k, a),
        None => (spec, ""),
    };
    let num = |s: &str| -> usize {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad numeric argument '{s}' in topology '{spec}'");
            std::process::exit(2);
        })
    };
    match kind {
        "ring" => topology::ring(num(arg)),
        "path" => topology::path(num(arg)),
        "star" => topology::star(num(arg)),
        "tree" => topology::binary_tree(num(arg)),
        "grid" => match arg.split_once('x') {
            Some((w, h)) => topology::grid(num(w), num(h)),
            None => usage(),
        },
        "clique" => match arg.split_once('x') {
            Some((n, r)) => topology::clique_full(num(n), num(r)),
            None => usage(),
        },
        "geo" => topology::geo_placement(num(arg), 3, 1, 0),
        "fig3" => paper_examples::figure3(),
        "fig5" => paper_examples::figure5(),
        "fig8a" => paper_examples::figure8a(),
        "fig8b" => paper_examples::figure8b(),
        _ => usage(),
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|p| args.get(p + 1).cloned())
}

fn cmd_inspect(g: &ShareGraph) {
    println!(
        "share graph: {} replicas, {} registers, {} undirected edges, connected = {}",
        g.num_replicas(),
        g.placement().num_registers(),
        g.num_undirected_edges(),
        g.is_connected()
    );
    for i in g.replicas() {
        let regs: Vec<String> = g
            .placement()
            .registers_of(i)
            .iter()
            .map(|x| x.to_string())
            .collect();
        println!("  {i}: stores {{{}}}", regs.join(", "));
    }
    println!("\ntimestamp graphs (Definition 5):");
    let graphs = TimestampGraphs::build(g, LoopConfig::EXHAUSTIVE);
    for tg in graphs.iter() {
        let far: Vec<String> = tg
            .edges()
            .iter()
            .filter(|e| !e.touches(tg.replica()))
            .map(|e| e.to_string())
            .collect();
        let comp = compress_replica(g, tg);
        println!(
            "  {}: {} counters (compressed {}), far edges: {}",
            tg.replica(),
            tg.len(),
            comp.rank_compressed,
            if far.is_empty() {
                "-".to_owned()
            } else {
                far.join(" ")
            }
        );
    }
    println!(
        "\ntotal counters: {} (vector-clock baseline would use {} per replica)",
        graphs.total_counters(),
        g.num_replicas()
    );
}

fn cmd_run(g: &ShareGraph, args: &[String]) {
    let tracker = match flag(args, "--tracker").as_deref() {
        None | Some("edge") => TrackerKind::EdgeIndexed(LoopConfig::EXHAUSTIVE),
        Some("vc") => TrackerKind::VectorClock,
        Some(t) if t.starts_with("trunc:") => {
            let l: usize = t[6..].parse().unwrap_or_else(|_| usage());
            TrackerKind::EdgeIndexed(LoopConfig::bounded(l))
        }
        Some(_) => usage(),
    };
    let writes = flag(args, "--writes")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(20);
    let zipf = flag(args, "--zipf")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0.9);
    let seed = flag(args, "--seed")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0);
    let wire_mode = match flag(args, "--wire").as_deref() {
        None | Some("compressed") => WireMode::Compressed,
        Some("projected") => WireMode::Projected,
        Some("raw") => WireMode::Raw,
        Some(_) => usage(),
    };
    let (faults, have_faults) = parse_faults(args);
    let session = if have_faults && !args.iter().any(|a| a == "--no-session") {
        Some(SessionConfig::default())
    } else {
        None
    };
    let batch = if args.iter().any(|a| a == "--no-batch") {
        BatchPolicy::unbatched()
    } else if let Some(spec) = flag(args, "--batch") {
        parse_batch(&spec)
    } else {
        BatchPolicy::default()
    };
    let clients = flag(args, "--clients")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0);
    let report = run_scenario(
        g,
        &ScenarioConfig {
            tracker,
            workload: WorkloadConfig {
                writes_per_replica: writes,
                zipf_theta: zipf,
                seed,
            },
            delay: DelayModel::default(),
            net_seed: seed,
            steps_between_ops: 2,
            dummies: vec![],
            staleness_probes: 4,
            wire_mode,
            faults,
            session,
            batch,
            clients,
        },
    );
    println!("{report}");
    println!(
        "details: {} safety / {} liveness violations, mean pending wait {:.2}, \
         payload {} B, storage {} cells",
        report.safety_violations,
        report.liveness_violations,
        report.mean_pending_wait,
        report.payload_bytes,
        report.storage_cells
    );
    if clients > 0 {
        println!(
            "clients: {} sessions, {} ops ({} local / {} forwarded), \
             {} ryw + {} mr blocks",
            clients,
            report.client_ops,
            report.ops_routed_local,
            report.ops_forwarded,
            report.ryw_blocks,
            report.mr_blocks
        );
        println!(
            "serving resilience: availability {:.4}, {} failovers, \
             {} shed, {} timed out",
            report.client_availability, report.failovers, report.ops_shed, report.op_timeouts
        );
    }
    if have_faults {
        println!(
            "faults: {} retransmits, {} dups suppressed, {} acks, \
             catch-up p50/max {}/{} ticks, {} lost to crash, {} stuck",
            report.retransmits,
            report.dup_suppressed,
            report.acks_sent,
            report.catch_up_p50,
            report.catch_up_max,
            report.lost_to_crash,
            report.stuck_pending
        );
    }
    if !report.consistent {
        std::process::exit(1);
    }
}

/// Parses `--batch <count>[:<bytes>:<window>]` into a [`BatchPolicy`]
/// (omitted bytes/window keep the defaults).
fn parse_batch(spec: &str) -> BatchPolicy {
    let mut policy = BatchPolicy::default();
    let mut parts = spec.split(':');
    let num = |s: &str| -> usize {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad numeric argument '{s}' in --batch '{spec}'");
            std::process::exit(2);
        })
    };
    if let Some(c) = parts.next() {
        policy.batch_count = num(c);
    }
    if let Some(b) = parts.next() {
        policy.batch_bytes = num(b);
    }
    if let Some(w) = parts.next() {
        policy.flush_after = num(w) as u64;
    }
    policy
}

/// Parses `--drop`, `--crash`, and `--partition` into a fault schedule.
/// Returns the schedule and whether any fault flag was present.
fn parse_faults(args: &[String]) -> (FaultSchedule, bool) {
    fn replica(s: &str) -> ReplicaId {
        ReplicaId::new(s.parse().unwrap_or_else(|_| {
            eprintln!("bad replica id '{s}'");
            std::process::exit(2);
        }))
    }
    fn tick(s: &str) -> u64 {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad tick '{s}'");
            std::process::exit(2);
        })
    }
    // Splits "<head>@t1:t2".
    fn window(s: &str) -> (&str, u64, u64) {
        let Some((head, span)) = s.split_once('@') else {
            eprintln!("expected '<...>@t1:t2' in '{s}'");
            std::process::exit(2);
        };
        let Some((t1, t2)) = span.split_once(':') else {
            eprintln!("expected '@t1:t2' in '{s}'");
            std::process::exit(2);
        };
        (head, tick(t1), tick(t2))
    }

    let mut have = false;
    let mut schedule = FaultSchedule::default();
    if let Some(p) = flag(args, "--drop") {
        have = true;
        let p: f64 = p.parse().unwrap_or_else(|_| usage());
        schedule = FaultSchedule::from_plan(FaultPlan::dropping(p));
    }
    if let Some(spec) = flag(args, "--crash") {
        have = true;
        for ev in spec.split(',') {
            let (r, at, restart) = window(ev);
            schedule = schedule.crash(replica(r), at, restart);
        }
    }
    if let Some(spec) = flag(args, "--partition") {
        have = true;
        let (sides, from, until) = window(&spec);
        let Some((a, b)) = sides.split_once('|') else {
            eprintln!("expected 'a,..|b,..@t1:t2' in '{spec}'");
            std::process::exit(2);
        };
        let side = |s: &str| -> Vec<ReplicaId> { s.split(',').map(replica).collect() };
        schedule = schedule.partition(side(a), side(b), from, until);
    }
    (schedule, have)
}

fn cmd_explore(g: &ShareGraph, args: &[String]) {
    let chain: usize = flag(args, "--chain")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(3);
    // Build a causal chain along a walk through the share graph: each
    // replica writes a register shared with the next hop, firing only
    // after the previous link has been applied locally.
    let mut walk = vec![ReplicaId::new(0)];
    let mut seen = vec![false; g.num_replicas()];
    seen[0] = true;
    while walk.len() < chain + 1 {
        let cur = *walk.last().expect("non-empty walk");
        let Some(&next) = g.neighbors(cur).iter().find(|n| !seen[n.index()]) else {
            break;
        };
        seen[next.index()] = true;
        walk.push(next);
    }
    let mut scenario = Scenario::new(g.clone());
    let mut prev: Option<usize> = None;
    for w in walk.windows(2) {
        let reg = g
            .placement()
            .shared(w[0], w[1])
            .first()
            .expect("adjacent replicas share a register");
        let idx = match prev {
            None => scenario.write(w[0], reg),
            Some(p) => scenario.write_after(w[0], reg, [p]),
        };
        prev = Some(idx);
    }
    let res = scenario.explore();
    println!("explored: {res}");
    if !res.verified() {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => usage(),
    };
    if cmd == "help" || cmd == "--help" {
        usage();
    }
    let topo = rest.first().map(String::as_str).unwrap_or_else(|| usage());
    let g = parse_topology(topo);
    match cmd {
        "inspect" => cmd_inspect(&g),
        "run" => cmd_run(&g, rest),
        "explore" => cmd_explore(&g, rest),
        "dot" => {
            use prcc::sharegraph::dot;
            match flag(rest, "--replica") {
                Some(i) => {
                    let i: u32 = i.parse().unwrap_or_else(|_| usage());
                    let tg = prcc::sharegraph::TimestampGraph::build(
                        &g,
                        ReplicaId::new(i),
                        LoopConfig::EXHAUSTIVE,
                    );
                    print!("{}", dot::timestamp_graph_to_dot(&g, &tg));
                }
                None => print!("{}", dot::share_graph_to_dot(&g)),
            }
        }
        _ => usage(),
    }
    // Quiet the unused-import lints for ids used only in some branches.
    let _ = (ReplicaId::new(0), RegisterId::new(0));
}
