//! Experiment harness for the PRCC reproduction: one module per
//! experiment (see `DESIGN.md` for the per-experiment index), a shared
//! table type, and the `report` binary that regenerates every table.

#![warn(missing_docs)]

pub mod e10_head_to_head;
pub mod e11_exhaustive;
pub mod e12_density;
pub mod e13_faults;
pub mod e1_structure;
pub mod e2_oblivious;
pub mod e3_helary_milani;
pub mod e4_sizes;
pub mod e5_compression;
pub mod e6_dummies;
pub mod e7_ring_breaking;
pub mod e8_truncation;
pub mod e9_client_server;
pub mod table;

pub use table::{experiments_to_json, Experiment};

/// Runs every experiment in order.
pub fn run_all() -> Vec<Experiment> {
    vec![
        e1_structure::run(),
        e2_oblivious::run(),
        e3_helary_milani::run(),
        e4_sizes::run(),
        e5_compression::run(),
        e6_dummies::run(),
        e7_ring_breaking::run(),
        e8_truncation::run(),
        e9_client_server::run(),
        e10_head_to_head::run(),
        e11_exhaustive::run(),
        e12_density::run(),
        e13_faults::run(),
    ]
}

/// Runs one experiment by id (`"e1"`–`"e13"`, case-insensitive).
pub fn run_one(id: &str) -> Option<Experiment> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => Some(e1_structure::run()),
        "e2" => Some(e2_oblivious::run()),
        "e3" => Some(e3_helary_milani::run()),
        "e4" => Some(e4_sizes::run()),
        "e5" => Some(e5_compression::run()),
        "e6" => Some(e6_dummies::run()),
        "e7" => Some(e7_ring_breaking::run()),
        "e8" => Some(e8_truncation::run()),
        "e9" => Some(e9_client_server::run()),
        "e10" => Some(e10_head_to_head::run()),
        "e11" => Some(e11_exhaustive::run()),
        "e12" => Some(e12_density::run()),
        "e13" => Some(e13_faults::run()),
        _ => None,
    }
}
