//! E7 — breaking the ring (Appendix D, Figure 13): metadata shrinks from
//! `2n` counters to tree-sized `2·N_i`, while writes to the broken
//! register pay multi-hop propagation latency.

use crate::table::Experiment;
use prcc_core::{RoutedRing, System, TrackerKind, Value};
use prcc_net::DelayModel;
use prcc_sharegraph::{topology, LoopConfig, RegisterId, ReplicaId};

/// Per-deployment sample: (max counters, mean visibility, max visibility,
/// consistent).
type DeploymentSample = (usize, f64, u64, bool);

/// Drives the same per-register write load through a plain ring and a
/// broken ring, returning one [`DeploymentSample`] per deployment.
fn measure(n: usize, seed: u64) -> (DeploymentSample, DeploymentSample) {
    let writes_per_reg = 5u64;

    // Plain ring.
    let mut plain = System::builder(topology::ring(n))
        .tracker(TrackerKind::EdgeIndexed(LoopConfig::EXHAUSTIVE))
        .delay(DelayModel::Fixed(5))
        .seed(seed)
        .build();
    for round in 0..writes_per_reg {
        for i in 0..n as u32 {
            plain.write(ReplicaId::new(i), RegisterId::new(i), Value::from(round));
        }
        plain.run_to_quiescence();
    }
    let pm = plain.metrics();
    let p = (
        plain.timestamp_counters().into_iter().max().unwrap_or(0),
        pm.mean_visibility(),
        pm.max_visibility,
        plain.check().is_consistent(),
    );

    // Broken ring.
    let mut routed = RoutedRing::new(n, DelayModel::Fixed(5), seed);
    for round in 0..writes_per_reg {
        for i in 0..n as u32 {
            routed.write(ReplicaId::new(i), RegisterId::new(i), Value::from(round));
        }
        routed.run_to_quiescence();
    }
    let rm = routed.metrics();
    let r = (
        routed.timestamp_counters().into_iter().max().unwrap_or(0),
        rm.mean_visibility(),
        rm.max_visibility,
        routed.check().is_consistent(),
    );
    (p, r)
}

/// Runs E7.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "E7",
        "Breaking the ring via virtual registers (App. D, Fig 13)",
        "Ring: every timestamp has 2n counters. Broken ring (tree): at \
         most 4 counters regardless of n — but the broken register's \
         updates traverse n−1 hops, inflating worst-case visibility.",
        &[
            "n",
            "ring counters",
            "broken counters",
            "ring max vis",
            "broken max vis",
            "ring consistent",
            "broken consistent",
        ],
    );

    let mut all_ok = true;
    let mut counters_shrink = true;
    let mut latency_grows = true;
    for n in [4usize, 6, 8, 10] {
        let ((pc, _pmean, pmax, pok), (rc, _rmean, rmax, rok)) = measure(n, 7);
        e.row([
            n.to_string(),
            pc.to_string(),
            rc.to_string(),
            pmax.to_string(),
            rmax.to_string(),
            pok.to_string(),
            rok.to_string(),
        ]);
        all_ok &= pok && rok;
        counters_shrink &= rc < pc && pc == 2 * n && rc <= 4;
        latency_grows &= rmax > pmax;
    }
    e.check(all_ok, "both deployments causally consistent at every n");
    e.check(
        counters_shrink,
        "broken ring: counters ≤ 4 (tree bound) vs 2n in the ring",
    );
    e.check(
        latency_grows,
        "broken register pays multi-hop latency (max visibility grows)",
    );
    e.note("The counter gap widens linearly in n — the paper's motivation for restricted communication.");
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_matches_paper() {
        let e = super::run();
        assert!(e.verdict, "{e}");
    }
}
