//! E8 — sacrificing causality via `l`-hop loop truncation (Appendix D).
//!
//! Capping the loop search at `l` edges removes far-edge counters. The
//! result is safe as long as single-hop messages beat `(l)`-hop chains,
//! and becomes unsound under adversarial reordering once a dependency
//! chain longer than the cap exists. The sweep shows timestamp size
//! falling with `l` while the adversarial execution flips from safe to
//! violated exactly when the cap drops below the ring's loop length.

use crate::table::Experiment;
use prcc_core::{System, TrackerKind, Value};
use prcc_net::DelayModel;
use prcc_sharegraph::{topology, LoopConfig, RegisterId, ReplicaId, TimestampGraphs};

const N: usize = 8;

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}
fn x(i: u32) -> RegisterId {
    RegisterId::new(i)
}

/// The ring-adversarial execution: hold r1 → r0, chain the long way,
/// deliver out of order. Returns (safety violations, consistent).
fn adversarial(cfg: LoopConfig) -> (usize, bool) {
    let mut sys = System::builder(topology::ring(N))
        .tracker(TrackerKind::EdgeIndexed(cfg))
        .delay(DelayModel::Fixed(1))
        .seed(0)
        .build();
    sys.hold_link(r(1), r(0));
    sys.write(r(1), x(0), Value::from(1u64));
    for i in 1..N as u32 {
        sys.write(r(i), x(i), Value::from(u64::from(i) + 1));
        sys.run_to_quiescence();
    }
    sys.release_link(r(1), r(0));
    sys.run_to_quiescence();
    let rep = sys.check();
    (rep.safety_violations().count(), rep.is_consistent())
}

/// Runs E8.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "E8",
        "l-hop truncated tracking: size vs soundness (App. D)",
        "Counters per replica drop from 2n (exact) to 4 (incident only) \
         as the loop cap shrinks; the adversarial reordering violates \
         safety for every cap below the ring's loop length n, and never \
         for the exact algorithm.",
        &[
            "loop cap (edges)",
            "counters/replica",
            "safety violations",
            "consistent",
        ],
    );

    let g = topology::ring(N);
    let mut exact_ok = false;
    let mut truncated_all_violate = true;
    for cap in [3usize, 4, 5, 6, 7, N] {
        let cfg = if cap == N {
            LoopConfig::EXHAUSTIVE
        } else {
            LoopConfig::bounded(cap)
        };
        let graphs = TimestampGraphs::build(&g, cfg);
        let counters = graphs.of(r(0)).len();
        let (viol, ok) = adversarial(cfg);
        e.row([
            if cap == N {
                format!("{N} (exact)")
            } else {
                cap.to_string()
            },
            counters.to_string(),
            viol.to_string(),
            ok.to_string(),
        ]);
        if cap == N {
            exact_ok = ok && counters == 2 * N;
        } else {
            truncated_all_violate &= !ok && counters < 2 * N;
        }
    }
    e.check(
        exact_ok,
        "exact tracking: 2n counters, adversarial run consistent",
    );
    e.check(
        truncated_all_violate,
        "every truncated cap < n: fewer counters but safety violated under reordering",
    );

    // The safe regime: loosely synchronous delivery (fixed delays, chains
    // can't outrun single hops).
    let mut sys = System::builder(topology::ring(N))
        .tracker(TrackerKind::EdgeIndexed(LoopConfig::bounded(4)))
        .delay(DelayModel::Fixed(1))
        .seed(1)
        .build();
    for round in 0..5u64 {
        for i in 0..N as u32 {
            sys.write(r(i), x(i), Value::from(round));
        }
        sys.run_to_quiescence();
    }
    let ok = sys.check().is_consistent();
    e.check(
        ok,
        "cap 4 under loosely-synchronous (fixed) delays: still consistent",
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_matches_paper() {
        let e = super::run();
        assert!(e.verdict, "{e}");
    }
}
