//! Generates `BENCH_throughput.json`: end-to-end update throughput and
//! read latency of the threaded runtime, ring / tree / clique at n = 8,
//! batched pipeline on vs off, 1..8 concurrent writer threads.
//!
//! Each writer owns one replica and one of its registers and issues its
//! writes as pipelined bursts ([`ThreadedCluster::write_burst`]), so the
//! replica threads coalesce under the configured [`BatchPolicy`].
//! Throughput is measured over the whole pipeline — first issue until
//! every remote holder has applied every update — and read latency is
//! sampled from a separate thread hammering the lock-free snapshot
//! path *while* the cluster is under load.
//!
//! Usage:
//!   cargo run --release -p prcc-bench --bin throughput_report > BENCH_throughput.json
//!
//! Flags:
//!   --quick   small sweep (CI smoke: 1 and 8 writers, fewer writes)
//!   --check   exit non-zero unless batched updates/sec beats unbatched
//!             by >= 2x on clique(8) at the maximum writer count

use prcc_core::{BatchPolicy, ClusterConfig, ThreadedCluster, Value};
use prcc_net::{DelayModel, SessionConfig};
use prcc_sharegraph::{topology, RegisterId, ReplicaId, ShareGraph};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const N: usize = 8;

struct Row {
    topology: &'static str,
    batch: &'static str,
    writers: usize,
    writes: usize,
    updates_per_sec: f64,
    applies_per_sec: f64,
    read_ns: f64,
    wire_bytes: usize,
    retransmits: usize,
}

fn build(topology: &str) -> ShareGraph {
    match topology {
        "ring" => topology::ring(N),
        "tree" => topology::binary_tree(N),
        "clique" => topology::clique_full(N, 2),
        _ => unreachable!(),
    }
}

/// One register per writer, claimed greedily so writers mostly avoid
/// sharing a register. A topology with fewer registers than writers
/// (e.g. a tree's leaf) falls back to sharing — concurrent writers are
/// fine for causal consistency, the workload just stops being
/// single-writer there.
fn claim_registers(g: &ShareGraph, writers: usize) -> Vec<(ReplicaId, RegisterId)> {
    let mut used = Vec::new();
    let mut out = Vec::new();
    for w in 0..writers {
        let r = ReplicaId::new((w % N) as u32);
        let regs = g.placement().registers_of(r);
        let x = regs
            .iter()
            .find(|x| !used.contains(x))
            .or_else(|| regs.first())
            .expect("every replica stores a register");
        used.push(x);
        out.push((r, x));
    }
    out
}

fn run_once(g: &ShareGraph, batch: bool, writers: usize, writes_per_writer: usize) -> Row {
    let cfg = ClusterConfig {
        session: Some(SessionConfig::default()),
        batch: if batch {
            BatchPolicy::default()
        } else {
            BatchPolicy::unbatched()
        },
        ingress_depth: 8192,
        ..ClusterConfig::default()
    };
    let cluster = ThreadedCluster::with_config(g.clone(), DelayModel::Fixed(1), 42, cfg);
    let assignments = claim_registers(g, writers);
    let expected_applies: usize = assignments
        .iter()
        .map(|&(_, x)| writes_per_writer * (g.placement().holders(x).len() - 1))
        .sum();
    let total_writes = writers * writes_per_writer;

    let done = AtomicBool::new(false);
    let row = {
        let cluster = &cluster;
        let done = &done;
        let (probe_r, probe_x) = assignments[0];
        std::thread::scope(|s| {
            // Latency probe: reads the lock-free snapshot while writers
            // and appliers are running flat out.
            let probe = s.spawn(move || {
                let mut ns = 0u128;
                let mut count = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    std::hint::black_box(cluster.read(probe_r, probe_x));
                    ns += t.elapsed().as_nanos();
                    count += 1;
                }
                (ns, count)
            });

            let t0 = Instant::now();
            std::thread::scope(|inner| {
                for &(r, x) in &assignments {
                    inner.spawn(move || {
                        let burst: Vec<_> = (0..writes_per_writer)
                            .map(|k| (x, Value::from(k as u64)))
                            .collect();
                        cluster.write_burst(r, &burst);
                    });
                }
            });
            // Drain: every remote holder applies every update (the
            // session layer repairs any shed frame, so this terminates).
            let deadline = t0 + Duration::from_secs(120);
            while cluster.total_applied() < expected_applies {
                if Instant::now() > deadline {
                    eprintln!(
                        "throughput run stalled: {}/{} applies",
                        cluster.total_applied(),
                        expected_applies
                    );
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            let elapsed = t0.elapsed();
            done.store(true, Ordering::Relaxed);
            let (ns, count) = probe.join().expect("probe thread");
            let secs = elapsed.as_secs_f64();
            Row {
                topology: "",
                batch: "",
                writers,
                writes: total_writes,
                updates_per_sec: total_writes as f64 / secs,
                applies_per_sec: expected_applies as f64 / secs,
                read_ns: ns as f64 / count.max(1) as f64,
                wire_bytes: cluster.total_wire_bytes(),
                retransmits: cluster.total_retransmits(),
            }
        })
    };
    assert!(
        cluster.check().is_consistent(),
        "throughput run must stay causally consistent"
    );
    row
}

fn measure(
    topology: &'static str,
    batch: bool,
    writers: usize,
    writes_per_writer: usize,
    reps: usize,
) -> Row {
    let g = build(topology);
    let mut rows: Vec<Row> = (0..reps)
        .map(|_| run_once(&g, batch, writers, writes_per_writer))
        .collect();
    rows.sort_by(|a, b| a.updates_per_sec.total_cmp(&b.updates_per_sec));
    let mut row = rows.remove(rows.len() / 2);
    row.topology = topology;
    row.batch = if batch { "on" } else { "off" };
    row
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    let writer_counts: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8] };
    let (writes_per_writer, reps) = if quick { (300, 1) } else { (800, 3) };

    let mut rows = Vec::new();
    for &topology in &["ring", "tree", "clique"] {
        for batch in [true, false] {
            for &w in writer_counts {
                rows.push(measure(topology, batch, w, writes_per_writer, reps));
            }
        }
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"bench\":\"throughput/{}\",\"n\":{},\"batch\":\"{}\",\"writers\":{},\
\"writes\":{},\"updates_per_sec\":{:.0},\"applies_per_sec\":{:.0},\
\"read_ns\":{:.0},\"wire_bytes\":{},\"retransmits\":{}}}",
                r.topology,
                N,
                r.batch,
                r.writers,
                r.writes,
                r.updates_per_sec,
                r.applies_per_sec,
                r.read_ns,
                r.wire_bytes,
                r.retransmits
            )
        })
        .collect();

    println!("{{");
    println!(
        "  \"description\": \"threaded-runtime pipeline throughput: pipelined writer bursts, \
batched vs unbatched shipping, lock-free snapshot reads probed under load; updates/sec is \
first-issue to last-remote-apply\","
    );
    println!("  \"command\": \"cargo run --release -p prcc-bench --bin throughput_report\",");
    println!("  \"results\": [");
    println!("{}", json_rows.join(",\n"));
    println!("  ]");
    println!("}}");

    if check {
        let max_w = *writer_counts.last().expect("writer counts");
        let find = |batch: &str| {
            rows.iter()
                .find(|r| r.topology == "clique" && r.writers == max_w && r.batch == batch)
                .unwrap_or_else(|| {
                    eprintln!("check: clique({N}) writers={max_w} batch={batch} row missing");
                    std::process::exit(1);
                })
        };
        let on = find("on").updates_per_sec;
        let off = find("off").updates_per_sec;
        if on < 2.0 * off {
            eprintln!(
                "check FAILED: clique({N}) batched {on:.0} up/s < 2x unbatched {off:.0} up/s"
            );
            std::process::exit(1);
        }
        eprintln!(
            "check ok: clique({N}) batched {on:.0} up/s vs unbatched {off:.0} ({:.1}x)",
            on / off
        );
    }
}
