//! Generates `BENCH_net.json`: the socket transport's cost profile —
//! update throughput, delivery latency, bytes per message **as written
//! to the kernel** (framing, session headers, handshakes, acks and
//! retransmits all included), and write syscalls per update — for
//! ring / clique share graphs under raw and compressed wire modes,
//! with write coalescing on and off.
//!
//! Every run is a real loopback TCP cluster ([`ThreadedCluster::with_tcp`]):
//! one OS thread per replica, one kernel socket per ordered replica
//! pair, the per-connection delta codec doing the framing. The workload
//! is the deterministic single-writer schedule from `prcc_sim::netrun`,
//! driven as per-replica bursts so the outbound path (not the driver
//! thread) is the bottleneck being measured.
//!
//! Usage:
//!   cargo run --release -p prcc-bench --bin net_report > BENCH_net.json
//!
//! Flags:
//!   --quick   fewer rounds (CI smoke)
//!   --check   exit non-zero unless, on clique(24) compressed:
//!             bytes_per_message stays <= 530 on the real wire, and
//!             coalesced writes deliver >= 1.5x the updates/s of the
//!             frame-per-syscall baseline

use prcc_core::runtime::ThreadedCluster;
use prcc_core::{cluster_codec, BatchMsg, ClusterConfig, Metadata, UpdateMsg, Value, WireMode};
use prcc_net::{BoundListener, SessionConfig, SessionFrame, TcpEndpoint, TcpNetConfig, Transport};
use prcc_sharegraph::{topology, LoopConfig, RegisterId, ReplicaId, ShareGraph, TimestampGraphs};
use prcc_sim::netrun::{write_value, NetWorkload};
use prcc_timestamp::{TsRegistry, VectorClock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Row {
    topology: &'static str,
    n: usize,
    mode: &'static str,
    coalesce: bool,
    writes: usize,
    deliveries: usize,
    elapsed_ms: f64,
    updates_per_sec: f64,
    p50_delivery_us: f64,
    p99_delivery_us: f64,
    bytes_per_message: f64,
    syscalls_per_update: f64,
}

fn build(topology: &str, n: usize) -> ShareGraph {
    match topology {
        "ring" => topology::ring(n),
        "clique" => topology::clique_full(n, 2),
        _ => unreachable!(),
    }
}

/// Transport-isolated pump: one-update session frames through a single
/// kernel socket with the real cluster codec, protocol stack (timestamp
/// advance, session bookkeeping, applies) out of the path. This is the
/// apples-to-apples syscall-batching measurement: both runs push
/// byte-identical frames, only how many frames each `write(2)` carries
/// differs.
fn pump_once(coalesce: bool, frames: u64) -> (f64, f64, f64) {
    let g = topology::path(2);
    let registry = Arc::new(TsRegistry::new(
        &g,
        TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE),
    ));
    let (src, dst) = (ReplicaId::new(0), ReplicaId::new(1));
    let cfg = TcpNetConfig {
        coalesce,
        // Queues deep enough to hold the whole pump: neither side ever
        // blocks on backpressure, so the timed window is pure transport
        // work, not scheduler ping-pong.
        outbox_depth: frames as usize + 16,
        ingress_depth: frames as usize + 16,
        ..TcpNetConfig::default()
    };
    let b0 = BoundListener::bind(src, ([127, 0, 0, 1], 0).into()).expect("bind");
    let b1 = BoundListener::bind(dst, ([127, 0, 0, 1], 0).into()).expect("bind");
    let (a0, a1) = (b0.local_addr(), b1.local_addr());
    let e0 = TcpEndpoint::start(
        b0,
        HashMap::from([(dst, a1)]),
        cfg.clone(),
        cluster_codec(src, registry.clone()),
    )
    .expect("endpoint 0");
    let e1 = TcpEndpoint::start(
        b1,
        HashMap::from([(src, a0)]),
        cfg,
        cluster_codec(dst, registry),
    )
    .expect("endpoint 1");
    let h0 = e0.handle();
    let h1 = e1.handle();

    // One shared metadata Arc: the pump measures the transport, not
    // allocator traffic in the frame factory.
    let meta = Arc::new(Metadata::Vector(VectorClock::from_values(vec![1, 0])));
    let frame = |seq: u64| {
        SessionFrame::Bare(BatchMsg {
            updates: vec![UpdateMsg {
                issuer: src,
                seq,
                register: RegisterId::new(0),
                value: Some(Value::U64(seq)),
                meta: meta.clone(),
                transit: None,
            }],
        })
    };
    // Prime the connection so the handshake is outside the timed window.
    assert!(h0.send(dst, frame(0)));
    assert!(h1.recv_timeout(Duration::from_secs(10)).is_some());

    let receiver = std::thread::spawn(move || {
        let mut got = 0u64;
        while got < frames {
            if h1.recv_timeout(Duration::from_secs(10)).is_none() {
                panic!("pump lost frames at {got}");
            }
            got += 1;
        }
    });
    // The timed window is the *write path*: submission until every
    // frame has been handed to the kernel — the leg write coalescing
    // actually optimizes. Delivery is verified right after, outside the
    // window (the receiver runs concurrently throughout).
    let t0 = Instant::now();
    for seq in 1..=frames {
        while !h0.send(dst, frame(seq)) {
            std::thread::yield_now();
        }
    }
    while e0.stats().frames_sent < frames + 1 {
        std::thread::sleep(Duration::from_micros(200));
    }
    let elapsed = t0.elapsed();
    receiver.join().expect("receiver");
    let stats = e0.stats();
    e0.shutdown();
    e1.shutdown();
    (
        frames as f64 / elapsed.as_secs_f64(),
        stats.write_syscalls as f64 / frames as f64,
        stats.bytes_sent as f64 / frames as f64,
    )
}

/// Loopback-tuned session: the RTO sits well above a loopback round
/// trip *under CPU contention* (every replica thread shares the bench
/// machine), so retransmissions stay rare and the byte columns measure
/// the codec, not recovery noise.
fn session() -> SessionConfig {
    SessionConfig {
        rto_base: 400,
        rto_max: 2000,
        jitter: 20,
        ack_delay: 0,
    }
}

fn run_once(g: &ShareGraph, mode: WireMode, coalesce: bool, rounds: u64) -> Row {
    let config = ClusterConfig {
        wire: mode,
        session: Some(session()),
        // One session frame per update: small-update workloads are where
        // the syscall path matters, and with message batching disabled
        // the coalesce on/off columns differ *only* in how many frames
        // each `write(2)` carries.
        batch: prcc_core::BatchPolicy {
            batch_count: 1,
            ..prcc_core::BatchPolicy::default()
        },
        ..ClusterConfig::default()
    };
    let tcp = TcpNetConfig {
        coalesce,
        ..TcpNetConfig::default()
    };
    let cluster =
        ThreadedCluster::with_tcp(g.clone(), config, tcp).expect("loopback cluster must start");
    let wl = NetWorkload::new(g, rounds);

    let t0 = Instant::now();
    // One driver thread per writing replica, each submitting its whole
    // schedule as one pipelined burst: every node writes concurrently
    // and the measured bottleneck is the outbound socket path, not the
    // driver's command round trips.
    std::thread::scope(|s| {
        for i in g.replicas() {
            let regs = wl.registers_of(i);
            if regs.is_empty() {
                continue;
            }
            let cluster = &cluster;
            s.spawn(move || {
                let batch: Vec<_> = (0..rounds)
                    .flat_map(|round| regs.iter().map(move |&x| (x, write_value(x, round))))
                    .collect();
                cluster.write_burst(i, &batch);
            });
        }
    });
    cluster.settle();
    let elapsed = t0.elapsed();

    let deliveries = cluster.total_applied();
    let writes = wl.total_writes();
    let mut lat = cluster.delivery_latencies_nanos();
    lat.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() - 1) as f64 * p).round() as usize;
        lat[idx] as f64 / 1_000.0
    };
    let stats = cluster.tcp_stats().expect("tcp cluster reports stats");
    let bytes: u64 = stats.iter().map(|s| s.bytes_sent).sum();
    let syscalls: u64 = stats.iter().map(|s| s.write_syscalls).sum();
    assert!(
        cluster.check().is_consistent(),
        "bench run must stay consistent"
    );

    Row {
        topology: "",
        n: g.num_replicas(),
        mode: match mode {
            WireMode::Raw => "raw",
            WireMode::Projected => "projected",
            WireMode::Compressed => "compressed",
            WireMode::Adaptive => "adaptive",
        },
        coalesce,
        writes,
        deliveries,
        elapsed_ms: elapsed.as_secs_f64() * 1_000.0,
        updates_per_sec: deliveries as f64 / elapsed.as_secs_f64(),
        p50_delivery_us: pct(0.50),
        p99_delivery_us: pct(0.99),
        bytes_per_message: bytes as f64 / deliveries.max(1) as f64,
        syscalls_per_update: syscalls as f64 / deliveries.max(1) as f64,
    }
}

/// Median-of-`reps` on throughput; the byte and syscall columns are
/// deterministic up to retransmission noise, so the median run's values
/// are reported as-is.
fn measure(
    topology: &'static str,
    n: usize,
    mode: WireMode,
    coalesce: bool,
    rounds: u64,
    reps: usize,
) -> Row {
    let g = build(topology, n);
    let mut runs: Vec<Row> = (0..reps)
        .map(|_| run_once(&g, mode, coalesce, rounds))
        .collect();
    runs.sort_by(|a, b| {
        a.updates_per_sec
            .partial_cmp(&b.updates_per_sec)
            .expect("throughput is finite")
    });
    let mut row = runs.swap_remove(runs.len() / 2);
    row.topology = topology;
    row
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    let reps = if quick { 3 } else { 5 };
    let modes = [WireMode::Raw, WireMode::Compressed];

    // Rounds are sized per topology: the ring gets a deep per-link
    // frame stream (fan-out 1, tiny frames); the clique's fan-out-23
    // frames are larger and fewer per link.
    let mut rows = Vec::new();
    for &(topology, n, rounds) in &[
        ("ring", 12usize, if quick { 1500 } else { 4000 }),
        ("clique", 24usize, if quick { 150 } else { 400 }),
    ] {
        for mode in modes {
            for coalesce in [true, false] {
                rows.push(measure(topology, n, mode, coalesce, rounds, reps));
            }
        }
    }

    // Transport-isolated coalescing A/B: median of `reps` pumps.
    let pump_frames = if quick { 20_000 } else { 60_000 };
    let pump = |coalesce: bool| -> (f64, f64, f64) {
        let mut runs: Vec<(f64, f64, f64)> = (0..reps)
            .map(|_| pump_once(coalesce, pump_frames))
            .collect();
        runs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("throughput is finite"));
        runs[runs.len() / 2]
    };
    let pump_on = pump(true);
    let pump_off = pump(false);

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"bench\":\"net/{}\",\"n\":{},\"mode\":\"{}\",\"coalesce\":{},\
\"writes\":{},\"deliveries\":{},\"elapsed_ms\":{:.1},\"updates_per_sec\":{:.0},\
\"p50_delivery_us\":{:.1},\"p99_delivery_us\":{:.1},\"bytes_per_message\":{:.2},\
\"syscalls_per_update\":{:.2}}}",
                r.topology,
                r.n,
                r.mode,
                r.coalesce,
                r.writes,
                r.deliveries,
                r.elapsed_ms,
                r.updates_per_sec,
                r.p50_delivery_us,
                r.p99_delivery_us,
                r.bytes_per_message,
                r.syscalls_per_update
            )
        })
        .collect();

    let pump_rows = [("true", pump_on), ("false", pump_off)]
        .iter()
        .map(|(c, (fps, spf, bpf))| {
            format!(
                "    {{\"bench\":\"net/pump\",\"n\":2,\"mode\":\"vector\",\"coalesce\":{c},\
\"frames\":{pump_frames},\"frames_per_sec\":{fps:.0},\"syscalls_per_frame\":{spf:.3},\
\"bytes_per_frame\":{bpf:.2}}}"
            )
        })
        .collect::<Vec<_>>();

    println!("{{");
    println!(
        "  \"description\": \"socket transport cost over real loopback TCP clusters; \
bytes_per_message divides total bytes written to the kernel (framing, session headers, \
handshakes, acks, retransmits) by per-recipient update deliveries; delivery latency is \
issue-to-apply across replica threads; coalesce=false writes one frame per syscall; \
net/pump rows push byte-identical one-update frames through a single socket with the \
protocol stack out of the path, isolating the syscall-batching effect\","
    );
    println!("  \"command\": \"cargo run --release -p prcc-bench --bin net_report\",");
    println!("  \"results\": [");
    println!("{},", json_rows.join(",\n"));
    println!("{}", pump_rows.join(",\n"));
    println!("  ]");
    println!("}}");

    if check {
        let find = |topology: &str, mode: &str, coalesce: bool| {
            rows.iter()
                .find(|r| r.topology == topology && r.mode == mode && r.coalesce == coalesce)
                .unwrap_or_else(|| {
                    eprintln!("check: {topology} {mode} coalesce={coalesce} row missing");
                    std::process::exit(1);
                })
        };
        let mut failed = false;

        // Gate 1: the dense-graph byte ceiling holds on the real wire.
        // BENCH_wire's clique(24) compressed metadata floor is 530 B per
        // message at the codec level; the per-connection delta stream's
        // zero-run packing must keep the *entire* kernel-visible cost —
        // values, session headers, frame prefixes, acks — under that
        // same number.
        let comp = find("clique", "compressed", true);
        if comp.bytes_per_message > 530.0 {
            eprintln!(
                "check FAILED: clique(24) compressed {:.2} B/message on the wire > 530",
                comp.bytes_per_message
            );
            failed = true;
        } else {
            eprintln!(
                "check ok: clique(24) compressed {:.2} B/message on the wire (<= 530)",
                comp.bytes_per_message
            );
        }

        // Gate 2: write coalescing pays on the syscall path itself.
        // Byte-identical frames through one socket, only the frames-per-
        // `write(2)` batching flipped — the pump isolates exactly the
        // effect this transport claims.
        let speedup = pump_on.0 / pump_off.0.max(1.0);
        if speedup < 1.5 {
            eprintln!(
                "check FAILED: pump coalescing speedup {:.2}x < 1.5x ({:.0} vs {:.0} frames/s)",
                speedup, pump_on.0, pump_off.0
            );
            failed = true;
        } else {
            eprintln!(
                "check ok: pump coalescing speedup {:.2}x ({:.0} vs {:.0} frames/s, \
{:.3} vs {:.3} syscalls/frame)",
                speedup, pump_on.0, pump_off.0, pump_on.1, pump_off.1
            );
        }

        if failed {
            std::process::exit(1);
        }
    }
}
