//! Generates `BENCH_pending.json`: the scan vs wakeup pending-drain
//! comparison (predicate-evaluation counts and wall-clock) plus the
//! indexed vs re-intersecting predicate `J` micro-benchmark.
//!
//! Usage: `cargo run --release -p prcc-bench --bin pending_report > BENCH_pending.json`

use prcc_core::{CausalityTracker, EdgeTracker, PendingMode, Replica, Value};
use prcc_sharegraph::{topology, LoopConfig, RegisterId, ReplicaId, TimestampGraphs};
use prcc_timestamp::TsRegistry;
use std::sync::Arc;
use std::time::Instant;

fn make_burst(n: usize, mode: PendingMode) -> (Replica, Vec<prcc_core::UpdateMsg>) {
    let g = topology::path(2);
    let reg = Arc::new(TsRegistry::new(
        &g,
        TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE),
    ));
    let r0 = ReplicaId::new(0);
    let r1 = ReplicaId::new(1);
    let mut sender = Replica::new(
        r0,
        g.placement().registers_of(r0).clone(),
        Box::new(EdgeTracker::new(reg.clone(), r0)) as Box<dyn CausalityTracker>,
    );
    let mut msgs = Vec::with_capacity(n);
    for i in 0..n {
        let (m, _) = sender
            .write(RegisterId::new(0), Value::from(i as u64), vec![r1])
            .unwrap();
        msgs.push(m);
    }
    msgs.reverse();
    let receiver = Replica::new_with_mode(
        r1,
        g.placement().registers_of(r1).clone(),
        Box::new(EdgeTracker::new(reg, r1)) as Box<dyn CausalityTracker>,
        mode,
    );
    (receiver, msgs)
}

/// One drain of a reversed burst: returns (elapsed ns, predicate evals).
fn drain_once(n: usize, mode: PendingMode) -> (u128, u64) {
    let (mut receiver, msgs) = make_burst(n, mode);
    let start = Instant::now();
    let mut applied = 0;
    for m in msgs {
        applied += receiver.receive(m).len();
    }
    let elapsed = start.elapsed().as_nanos();
    assert_eq!(applied, n);
    (elapsed, receiver.predicate_evals())
}

/// Median wall-clock over `reps` drains plus the (deterministic)
/// predicate-evaluation count.
fn measure(n: usize, mode: PendingMode, reps: usize) -> (u128, u64) {
    let mut times: Vec<u128> = Vec::with_capacity(reps);
    let mut evals = 0;
    for _ in 0..reps {
        let (t, e) = drain_once(n, mode);
        times.push(t);
        evals = e;
    }
    times.sort_unstable();
    (times[times.len() / 2], evals)
}

/// Times one predicate evaluation path (ns/op over `iters` calls).
fn predicate_ns_per_op(indexed: bool, ring: usize, iters: u64) -> f64 {
    let graph = topology::ring(ring);
    let reg = TsRegistry::new(
        &graph,
        TimestampGraphs::build(&graph, LoopConfig::EXHAUSTIVE),
    );
    let r0 = ReplicaId::new(0);
    let r1 = ReplicaId::new(1);
    let mut t0 = reg.new_timestamp(r0);
    reg.advance(&mut t0, RegisterId::new(0));
    let incoming = t0.clone();
    let t1 = reg.new_timestamp(r1);
    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..iters {
        let ok = if indexed {
            reg.ready(
                std::hint::black_box(&t1),
                r0,
                std::hint::black_box(&incoming),
            )
        } else {
            reg.ready_scan(
                std::hint::black_box(&t1),
                r0,
                std::hint::black_box(&incoming),
            )
        };
        acc += ok as u64;
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    assert_eq!(acc, iters, "the probe update must always be ready");
    elapsed / iters as f64
}

fn main() {
    let reps = 25;
    let mut rows = Vec::new();
    for n in [16usize, 64, 256] {
        let (scan_ns, scan_evals) = measure(n, PendingMode::Scan, reps);
        let (wake_ns, wake_evals) = measure(n, PendingMode::Wakeup, reps);
        rows.push(format!(
            "    {{\"bench\":\"pending_drain/reversed_burst\",\"n\":{n},\
\"scan_predicate_evals\":{scan_evals},\"wakeup_predicate_evals\":{wake_evals},\
\"eval_ratio\":{:.2},\"scan_median_ns\":{scan_ns},\"wakeup_median_ns\":{wake_ns},\
\"speedup\":{:.2}}}",
            scan_evals as f64 / wake_evals as f64,
            scan_ns as f64 / wake_ns as f64,
        ));
    }
    let iters = 2_000_000u64;
    for ring in [6usize, 12, 24] {
        let indexed = predicate_ns_per_op(true, ring, iters);
        let scan = predicate_ns_per_op(false, ring, iters);
        rows.push(format!(
            "    {{\"bench\":\"predicate_eval/ring\",\"n\":{ring},\
\"indexed_ns_per_op\":{indexed:.2},\"scan_ns_per_op\":{scan:.2},\
\"speedup\":{:.2}}}",
            scan / indexed,
        ));
    }
    println!("{{");
    println!("  \"description\": \"scan vs dependency-counting wakeup pending drain (reversed FIFO burst, path(2)); indexed vs re-intersecting predicate J (ring)\",");
    println!("  \"command\": \"cargo run --release -p prcc-bench --bin pending_report\",");
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
