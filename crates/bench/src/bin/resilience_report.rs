//! Generates `BENCH_resilience.json`: serving-tier availability and
//! failover behavior under seeded fault storms — crash/restart windows,
//! probabilistic drops, and link flaps driven live beneath Zipf-skewed
//! open-loop sessions on a [`ThreadedCluster`].
//!
//! Three rows: a fault-free baseline (the resilience machinery must be
//! pay-for-use: zero failovers, zero shed ops, every op acked), a
//! clique crash storm (two staggered crashes plus 30% drops), and a
//! ring storm (crash plus flapping link plus 20% drops). Every row is
//! verified from the trace: causal consistency, zero session-guarantee
//! violations among acked ops, and zero acked-write loss (acked ⇒
//! durable ⇒ survives into every holder's converged final store). A row
//! that fails verification aborts the report.
//!
//! Usage:
//!   cargo run --release -p prcc-bench --bin resilience_report > BENCH_resilience.json
//!
//! Flags:
//!   --quick   small sweep (CI smoke: fewer sessions, shorter storms)
//!   --check   exit non-zero unless the baseline is failover-free at
//!             full availability, every storm keeps availability >= 0.5
//!             with at least one failover and every scripted restart
//!             completed, and (full mode) the baseline sustains >= 100k
//!             ops/sec

use prcc_net::{FaultPlan, FaultSchedule};
use prcc_sharegraph::{topology, ReplicaId, ShareGraph};
use prcc_sim::serving::{run_serving_scenario, ServingRunReport, ServingScenarioConfig};

const N: usize = 8;

struct Row {
    bench: String,
    sessions: usize,
    ops: u64,
    attempted: u64,
    availability: f64,
    ops_per_sec: f64,
    failovers: u64,
    failover_p50_ns: u64,
    failover_max_ns: u64,
    ops_shed: u64,
    op_timeouts: u64,
    writes_abandoned: u64,
    restarts: usize,
    consistent: bool,
    session_violations: usize,
    acked_write_loss: usize,
}

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}

fn row(bench: &str, g: &ShareGraph, cfg: &ServingScenarioConfig) -> Row {
    let rep: ServingRunReport = run_serving_scenario(g, cfg);
    if !rep.consistent || rep.session_violations != 0 || rep.acked_write_loss != 0 {
        eprintln!("resilience run {bench} failed verification: {rep}");
        std::process::exit(1);
    }
    Row {
        bench: format!("resilience/{bench}"),
        sessions: rep.sessions,
        ops: rep.ops,
        attempted: rep.attempted,
        availability: rep.availability,
        ops_per_sec: rep.ops_per_sec,
        failovers: rep.stats.failovers,
        failover_p50_ns: rep.failover_p50_ns,
        failover_max_ns: rep.failover_max_ns,
        ops_shed: rep.stats.ops_shed,
        op_timeouts: rep.stats.op_timeouts,
        writes_abandoned: rep.stats.writes_abandoned,
        restarts: rep.restarts,
        consistent: rep.consistent,
        session_violations: rep.session_violations,
        acked_write_loss: rep.acked_write_loss,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);

    // The baseline mirrors client_report's headline configuration so the
    // two JSON artifacts stay comparable: clique(8, 2 registers), Zipf
    // s = 1.0, 10k sessions (2k in quick mode).
    let (sessions, ops_per_session) = if quick { (2_000, 20) } else { (10_000, 12) };
    let base_cfg = ServingScenarioConfig {
        sessions,
        ops_per_session,
        write_ratio: 0.1,
        zipf_theta: 1.0,
        workers,
        seed: 42,
        flush_quantum: 64,
        ..Default::default()
    };
    // Storm scripts are sized to the workload's wall clock (one tick is
    // 200 µs): the first crash lands a few ms in, the last restart well
    // before the drivers drain, so failover and recovery both run under
    // live load.
    let clique_storm = if quick {
        FaultSchedule::from_plan(FaultPlan::dropping(0.3))
            .crash(r(0), 10, 300)
            .crash(r(3), 50, 400)
    } else {
        FaultSchedule::from_plan(FaultPlan::dropping(0.3))
            .crash(r(0), 25, 1000)
            .crash(r(3), 250, 1250)
    };
    let ring_storm = if quick {
        FaultSchedule::from_plan(FaultPlan::dropping(0.2))
            .crash(r(1), 10, 350)
            .flap(r(4), r(5), 0, 40, 40, 4)
    } else {
        FaultSchedule::from_plan(FaultPlan::dropping(0.2))
            .crash(r(1), 25, 1100)
            .flap(r(4), r(5), 0, 100, 100, 6)
    };

    let clique = topology::clique_full(N, 2);
    let ring = topology::ring(N);
    let rows = [
        row("baseline-clique", &clique, &base_cfg),
        row(
            "clique-crash-storm",
            &clique,
            &ServingScenarioConfig {
                faults: clique_storm,
                durability: Some(256),
                ..base_cfg.clone()
            },
        ),
        row(
            "ring-storm",
            &ring,
            &ServingScenarioConfig {
                sessions: sessions / 2,
                faults: ring_storm,
                durability: Some(256),
                ..base_cfg.clone()
            },
        ),
    ];

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"bench\":\"{}\",\"n\":{},\"sessions\":{},\"ops\":{},\"attempted\":{},\
\"availability\":{:.4},\"ops_per_sec\":{:.0},\"failovers\":{},\"failover_p50_ns\":{},\
\"failover_max_ns\":{},\"ops_shed\":{},\"op_timeouts\":{},\"writes_abandoned\":{},\
\"restarts\":{},\"consistent\":{},\"session_violations\":{},\"acked_write_loss\":{}}}",
                r.bench,
                N,
                r.sessions,
                r.ops,
                r.attempted,
                r.availability,
                r.ops_per_sec,
                r.failovers,
                r.failover_p50_ns,
                r.failover_max_ns,
                r.ops_shed,
                r.op_timeouts,
                r.writes_abandoned,
                r.restarts,
                r.consistent,
                r.session_violations,
                r.acked_write_loss
            )
        })
        .collect();

    println!("{{");
    println!(
        "  \"description\": \"serving-tier fault tolerance: availability, failover latency, and \
degradation counters under seeded crash/drop/flap storms driven live beneath Zipf-skewed \
sessions; every row is trace-verified (causal consistency, zero session-guarantee violations \
among acked ops, zero acked-write loss) and the fault-free baseline must pay nothing for the \
resilience machinery\","
    );
    println!("  \"command\": \"cargo run --release -p prcc-bench --bin resilience_report\",");
    println!("  \"results\": [");
    println!("{}", json_rows.join(",\n"));
    println!("  ]");
    println!("}}");

    if check {
        let baseline = &rows[0];
        if baseline.failovers != 0
            || baseline.ops_shed != 0
            || baseline.op_timeouts != 0
            || baseline.writes_abandoned != 0
            || baseline.restarts != 0
            || baseline.ops != baseline.attempted
        {
            eprintln!(
                "check FAILED: fault-free baseline exercised resilience paths \
({} failovers, {} shed, {} timeouts, {}/{} ops)",
                baseline.failovers,
                baseline.ops_shed,
                baseline.op_timeouts,
                baseline.ops,
                baseline.attempted
            );
            std::process::exit(1);
        }
        if !quick && baseline.ops_per_sec < 100_000.0 {
            eprintln!(
                "check FAILED: fault-free baseline {:.0} ops/s < 100k at {} sessions",
                baseline.ops_per_sec, baseline.sessions
            );
            std::process::exit(1);
        }
        for (storm, restarts_expected) in [(&rows[1], 2usize), (&rows[2], 1usize)] {
            if storm.failovers == 0 {
                eprintln!("check FAILED: {} recorded no failovers", storm.bench);
                std::process::exit(1);
            }
            if storm.restarts != restarts_expected {
                eprintln!(
                    "check FAILED: {} completed {}/{} scripted restarts",
                    storm.bench, storm.restarts, restarts_expected
                );
                std::process::exit(1);
            }
            if storm.availability < 0.5 {
                eprintln!(
                    "check FAILED: {} availability {:.4} < 0.5",
                    storm.bench, storm.availability
                );
                std::process::exit(1);
            }
        }
        eprintln!(
            "check ok: baseline {:.0} ops/s failover-free; storms at availability {:.4}/{:.4} \
with {}+{} failovers, all restarts completed, 0 violations, 0 acked-write loss",
            rows[0].ops_per_sec,
            rows[1].availability,
            rows[2].availability,
            rows[1].failovers,
            rows[2].failovers
        );
    }
}
