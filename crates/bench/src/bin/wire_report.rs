//! Generates `BENCH_wire.json`: metadata bytes-per-update and send /
//! receive wall-clock for the three wire modes (raw, projected,
//! compressed) across ring / binary-tree / clique share graphs.
//!
//! Usage:
//!   cargo run --release -p prcc-bench --bin wire_report > BENCH_wire.json
//!
//! Flags:
//!   --quick   small sweep (CI smoke: ring/tree/clique at n = 12 only)
//!   --check   exit non-zero unless compressed bytes-per-update beats raw
//!             on ring(12) (the wire codec's headline case)

use prcc_core::{System, Value, WireMode};
use prcc_net::DelayModel;
use prcc_sharegraph::{topology, ShareGraph};
use std::time::Instant;

struct Row {
    topology: &'static str,
    n: usize,
    mode: &'static str,
    writes: usize,
    messages: usize,
    metadata_bytes: usize,
    bytes_per_update: f64,
    ns_per_send: f64,
    ns_per_receive: f64,
}

fn build(topology: &str, n: usize) -> ShareGraph {
    match topology {
        "ring" => topology::ring(n),
        "tree" => topology::binary_tree(n),
        "clique" => topology::clique_full(n, 2),
        _ => unreachable!(),
    }
}

/// One measured run: every replica writes one of its registers,
/// `rounds` times, with the network drained after the write phase.
fn run_once(g: &ShareGraph, mode: WireMode, rounds: usize) -> (usize, usize, u128, u128, usize) {
    let mut sys = System::builder(g.clone())
        .wire_mode(mode)
        .delay(DelayModel::Fixed(1))
        .seed(42)
        .build();
    let per_replica: Vec<_> = g
        .replicas()
        .map(|i| {
            (
                i,
                g.placement()
                    .registers_of(i)
                    .iter()
                    .next()
                    .expect("every replica stores a register"),
            )
        })
        .collect();

    let mut send_ns = 0u128;
    let mut recv_ns = 0u128;
    let mut writes = 0usize;
    for round in 0..rounds {
        for &(i, x) in &per_replica {
            let t = Instant::now();
            sys.write(i, x, Value::from(round as u64));
            send_ns += t.elapsed().as_nanos();
            writes += 1;
        }
        // Interleaved drain so timestamps accumulate causal structure
        // (and delta frames see realistic counter movement).
        let t = Instant::now();
        for _ in 0..per_replica.len() {
            sys.step();
        }
        recv_ns += t.elapsed().as_nanos();
    }
    let t = Instant::now();
    sys.run_to_quiescence();
    recv_ns += t.elapsed().as_nanos();

    assert!(
        sys.check().is_consistent(),
        "bench run must stay consistent"
    );
    let m = sys.metrics();
    let messages = m.data_messages + m.meta_messages;
    (writes, messages, send_ns, recv_ns, m.metadata_bytes)
}

fn measure(topology: &'static str, n: usize, mode: WireMode, rounds: usize, reps: usize) -> Row {
    let g = build(topology, n);
    let mut send_times = Vec::new();
    let mut recv_times = Vec::new();
    let (mut writes, mut messages, mut bytes) = (0, 0, 0);
    for _ in 0..reps {
        let (w, msg, s, r, b) = run_once(&g, mode, rounds);
        writes = w;
        messages = msg;
        bytes = b;
        send_times.push(s);
        recv_times.push(r);
    }
    send_times.sort_unstable();
    recv_times.sort_unstable();
    let mode_name = match mode {
        WireMode::Raw => "raw",
        WireMode::Projected => "projected",
        WireMode::Compressed => "compressed",
    };
    Row {
        topology,
        n,
        mode: mode_name,
        writes,
        messages,
        metadata_bytes: bytes,
        bytes_per_update: bytes as f64 / messages.max(1) as f64,
        ns_per_send: send_times[send_times.len() / 2] as f64 / writes.max(1) as f64,
        ns_per_receive: recv_times[recv_times.len() / 2] as f64 / messages.max(1) as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    let sizes: &[usize] = if quick { &[12] } else { &[6, 12, 24] };
    let (rounds, reps) = if quick { (10, 3) } else { (40, 5) };

    let mut rows = Vec::new();
    for &topology in &["ring", "tree", "clique"] {
        for &n in sizes {
            for mode in [WireMode::Raw, WireMode::Projected, WireMode::Compressed] {
                rows.push(measure(topology, n, mode, rounds, reps));
            }
        }
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"bench\":\"wire/{}\",\"n\":{},\"mode\":\"{}\",\"writes\":{},\
\"messages\":{},\"metadata_bytes\":{},\"bytes_per_update\":{:.2},\
\"ns_per_send\":{:.0},\"ns_per_receive\":{:.0}}}",
                r.topology,
                r.n,
                r.mode,
                r.writes,
                r.messages,
                r.metadata_bytes,
                r.bytes_per_update,
                r.ns_per_send,
                r.ns_per_receive
            )
        })
        .collect();

    println!("{{");
    println!(
        "  \"description\": \"metadata wire cost per update under raw / projected / compressed \
framing; ns/send covers advance+encode+enqueue per write, ns/receive covers \
delivery+J+merge+apply per message\","
    );
    println!("  \"command\": \"cargo run --release -p prcc-bench --bin wire_report\",");
    println!("  \"results\": [");
    println!("{}", json_rows.join(",\n"));
    println!("  ]");
    println!("}}");

    if check {
        let find = |mode: &str| {
            rows.iter()
                .find(|r| r.topology == "ring" && r.n == 12 && r.mode == mode)
                .unwrap_or_else(|| {
                    eprintln!("check: ring(12) {mode} row missing");
                    std::process::exit(1);
                })
        };
        let raw = find("raw").bytes_per_update;
        let compressed = find("compressed").bytes_per_update;
        if compressed >= raw {
            eprintln!("check FAILED: ring(12) compressed {compressed:.2} B/update >= raw {raw:.2}");
            std::process::exit(1);
        }
        eprintln!(
            "check ok: ring(12) compressed {compressed:.2} B/update vs raw {raw:.2} ({:.1}x)",
            raw / compressed
        );
    }
}
