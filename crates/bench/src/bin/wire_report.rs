//! Generates `BENCH_wire.json`: metadata wire cost and send / receive
//! wall-clock for the four wire modes (raw, projected, compressed,
//! adaptive) across ring / binary-tree / clique share graphs.
//!
//! Two byte metrics, two denominators:
//! * `bytes_per_update` — total metadata bytes / client **writes**: what
//!   one write costs across its whole fan-out (the README/DESIGN
//!   framing).
//! * `bytes_per_message` — total metadata bytes / **messages**: what one
//!   per-recipient frame carries on the wire.
//!
//! Earlier revisions reported the per-message number under the
//! per-update label; both are now emitted explicitly.
//!
//! Usage:
//!   cargo run --release -p prcc-bench --bin wire_report > BENCH_wire.json
//!
//! Flags:
//!   --quick   small sweep (CI smoke: ring/tree/clique at n = 12 and 24)
//!   --check   exit non-zero unless, on ring(12), compressed beats raw on
//!             bytes, and on clique(24): compressed ns/send stays within
//!             5x of raw, the compression ratio stays >= 8x, and
//!             bytes_per_message stays <= 530

use prcc_core::{System, Value, WireMode};
use prcc_net::DelayModel;
use prcc_sharegraph::{topology, ShareGraph};
use std::time::Instant;

struct Row {
    topology: &'static str,
    n: usize,
    mode: &'static str,
    writes: usize,
    messages: usize,
    metadata_bytes: usize,
    bytes_per_update: f64,
    bytes_per_message: f64,
    ns_per_send: f64,
    ns_per_receive: f64,
}

fn build(topology: &str, n: usize) -> ShareGraph {
    match topology {
        "ring" => topology::ring(n),
        "tree" => topology::binary_tree(n),
        "clique" => topology::clique_full(n, 2),
        _ => unreachable!(),
    }
}

/// One measured run: every replica writes one of its registers,
/// `rounds` times, with the network drained after the write phase.
fn run_once(g: &ShareGraph, mode: WireMode, rounds: usize) -> (usize, usize, u128, u128, usize) {
    let mut sys = System::builder(g.clone())
        .wire_mode(mode)
        .delay(DelayModel::Fixed(1))
        .seed(42)
        .build();
    let per_replica: Vec<_> = g
        .replicas()
        .map(|i| {
            (
                i,
                g.placement()
                    .registers_of(i)
                    .iter()
                    .next()
                    .expect("every replica stores a register"),
            )
        })
        .collect();

    let mut send_ns = 0u128;
    let mut recv_ns = 0u128;
    let mut writes = 0usize;
    for round in 0..rounds {
        for &(i, x) in &per_replica {
            let t = Instant::now();
            sys.write(i, x, Value::from(round as u64));
            send_ns += t.elapsed().as_nanos();
            writes += 1;
        }
        // Interleaved drain so timestamps accumulate causal structure
        // (and delta frames see realistic counter movement).
        let t = Instant::now();
        for _ in 0..per_replica.len() {
            sys.step();
        }
        recv_ns += t.elapsed().as_nanos();
    }
    let t = Instant::now();
    sys.run_to_quiescence();
    recv_ns += t.elapsed().as_nanos();

    assert!(
        sys.check().is_consistent(),
        "bench run must stay consistent"
    );
    assert_eq!(
        sys.net_stats().codec_demotions,
        0,
        "registry layouts must never demote"
    );
    let m = sys.metrics();
    let messages = m.data_messages + m.meta_messages;
    (writes, messages, send_ns, recv_ns, m.metadata_bytes)
}

fn measure(topology: &'static str, n: usize, mode: WireMode, rounds: usize, reps: usize) -> Row {
    let g = build(topology, n);
    let mut send_times = Vec::new();
    let mut recv_times = Vec::new();
    let (mut writes, mut messages, mut bytes) = (0, 0, 0);
    for _ in 0..reps {
        let (w, msg, s, r, b) = run_once(&g, mode, rounds);
        writes = w;
        messages = msg;
        bytes = b;
        send_times.push(s);
        recv_times.push(r);
    }
    send_times.sort_unstable();
    recv_times.sort_unstable();
    let mode_name = match mode {
        WireMode::Raw => "raw",
        WireMode::Projected => "projected",
        WireMode::Compressed => "compressed",
        WireMode::Adaptive => "adaptive",
    };
    Row {
        topology,
        n,
        mode: mode_name,
        writes,
        messages,
        metadata_bytes: bytes,
        bytes_per_update: bytes as f64 / writes.max(1) as f64,
        bytes_per_message: bytes as f64 / messages.max(1) as f64,
        ns_per_send: send_times[send_times.len() / 2] as f64 / writes.max(1) as f64,
        ns_per_receive: recv_times[recv_times.len() / 2] as f64 / messages.max(1) as f64,
    }
}

const MODES: [WireMode; 4] = [
    WireMode::Raw,
    WireMode::Projected,
    WireMode::Compressed,
    WireMode::Adaptive,
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    // The quick sweep keeps n = 24 so the CI gate exercises the dense
    // fan-out the encode-once path exists for.
    let sizes: &[usize] = if quick { &[12, 24] } else { &[6, 12, 24] };
    let (rounds, reps) = if quick { (10, 3) } else { (40, 5) };

    let mut rows = Vec::new();
    for &topology in &["ring", "tree", "clique"] {
        for &n in sizes {
            for mode in MODES {
                rows.push(measure(topology, n, mode, rounds, reps));
            }
        }
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"bench\":\"wire/{}\",\"n\":{},\"mode\":\"{}\",\"writes\":{},\
\"messages\":{},\"metadata_bytes\":{},\"bytes_per_update\":{:.2},\
\"bytes_per_message\":{:.2},\"ns_per_send\":{:.0},\"ns_per_receive\":{:.0}}}",
                r.topology,
                r.n,
                r.mode,
                r.writes,
                r.messages,
                r.metadata_bytes,
                r.bytes_per_update,
                r.bytes_per_message,
                r.ns_per_send,
                r.ns_per_receive
            )
        })
        .collect();

    println!("{{");
    println!(
        "  \"description\": \"metadata wire cost under raw / projected / compressed / adaptive \
framing; bytes_per_update divides by client writes (whole fan-out), bytes_per_message by \
per-recipient messages; ns/send covers advance+encode+enqueue per write, ns/receive covers \
delivery+J+merge+apply per message\","
    );
    println!("  \"command\": \"cargo run --release -p prcc-bench --bin wire_report\",");
    println!("  \"results\": [");
    println!("{}", json_rows.join(",\n"));
    println!("  ]");
    println!("}}");

    if check {
        let find = |topology: &str, n: usize, mode: &str| {
            rows.iter()
                .find(|r| r.topology == topology && r.n == n && r.mode == mode)
                .unwrap_or_else(|| {
                    eprintln!("check: {topology}({n}) {mode} row missing");
                    std::process::exit(1);
                })
        };
        let mut failed = false;

        // Gate 1: the codec's headline byte win on ring(12).
        let raw = find("ring", 12, "raw");
        let comp = find("ring", 12, "compressed");
        if comp.bytes_per_update >= raw.bytes_per_update {
            eprintln!(
                "check FAILED: ring(12) compressed {:.2} B/update >= raw {:.2}",
                comp.bytes_per_update, raw.bytes_per_update
            );
            failed = true;
        } else {
            eprintln!(
                "check ok: ring(12) compressed {:.2} B/update vs raw {:.2} ({:.1}x)",
                comp.bytes_per_update,
                raw.bytes_per_update,
                raw.bytes_per_update / comp.bytes_per_update
            );
        }

        // Gate 2: dense-graph CPU tax. Encode-once fan-out must keep
        // clique(24) compressed sends within 5x of raw.
        let raw24 = find("clique", 24, "raw");
        let comp24 = find("clique", 24, "compressed");
        let tax = comp24.ns_per_send / raw24.ns_per_send.max(1.0);
        if tax > 5.0 {
            eprintln!(
                "check FAILED: clique(24) compressed {:.0} ns/send is {tax:.1}x raw {:.0} (> 5x)",
                comp24.ns_per_send, raw24.ns_per_send
            );
            failed = true;
        } else {
            eprintln!(
                "check ok: clique(24) compressed {:.0} ns/send is {tax:.1}x raw {:.0}",
                comp24.ns_per_send, raw24.ns_per_send
            );
        }

        // Gate 3: the byte win must not regress while chasing CPU.
        let ratio = raw24.bytes_per_message / comp24.bytes_per_message.max(1.0);
        if ratio < 8.0 {
            eprintln!(
                "check FAILED: clique(24) compression ratio {ratio:.1}x < 8x \
(raw {:.2} vs compressed {:.2} B/message)",
                raw24.bytes_per_message, comp24.bytes_per_message
            );
            failed = true;
        } else {
            eprintln!("check ok: clique(24) compression ratio {ratio:.1}x");
        }
        if comp24.bytes_per_message > 530.0 {
            eprintln!(
                "check FAILED: clique(24) compressed {:.2} B/message > 530",
                comp24.bytes_per_message
            );
            failed = true;
        } else {
            eprintln!(
                "check ok: clique(24) compressed {:.2} B/message <= 530",
                comp24.bytes_per_message
            );
        }

        if failed {
            std::process::exit(1);
        }
    }
}
