//! Parameter sweeps producing CSV series — the figure-shaped data behind
//! experiments E7, E8 and E10.
//!
//! ```text
//! sweep ring      # ring size n vs counters & visibility (plain vs broken)
//! sweep rf        # replication factor vs messages & metadata (edge vs VC)
//! sweep zipf      # workload skew vs staleness & visibility
//! sweep cap       # loop cap vs counters & adversarial violations (ring 8)
//! ```

use prcc_core::{RoutedRing, System, TrackerKind, Value};
use prcc_net::DelayModel;
use prcc_sharegraph::topology::{self, RandomPlacementConfig};
use prcc_sharegraph::{LoopConfig, RegisterId, ReplicaId, TimestampGraphs};
use prcc_sim::{run_head_to_head, run_scenario, ScenarioConfig, WorkloadConfig};

fn sweep_ring() {
    println!("n,plain_counters,broken_counters,plain_max_vis,broken_max_vis");
    for n in [4usize, 6, 8, 10, 12, 16] {
        let mut plain = System::builder(topology::ring(n))
            .delay(DelayModel::Fixed(5))
            .seed(1)
            .build();
        let mut routed = RoutedRing::new(n, DelayModel::Fixed(5), 1);
        for round in 0..3u64 {
            for i in 0..n as u32 {
                plain.write(ReplicaId::new(i), RegisterId::new(i), Value::from(round));
                routed.write(ReplicaId::new(i), RegisterId::new(i), Value::from(round));
            }
            plain.run_to_quiescence();
            routed.run_to_quiescence();
        }
        assert!(plain.check().is_consistent() && routed.check().is_consistent());
        println!(
            "{n},{},{},{},{}",
            plain.timestamp_counters().iter().max().unwrap(),
            routed.timestamp_counters().iter().max().unwrap(),
            plain.metrics().max_visibility,
            routed.metrics().max_visibility,
        );
    }
}

fn sweep_rf() {
    println!(
        "rf,edge_msgs,vc_msgs,edge_meta_bytes,vc_meta_bytes,edge_bytes_per_msg,vc_bytes_per_msg"
    );
    for rf in [2usize, 3, 4, 5, 7, 10] {
        let g = topology::random_connected_placement(RandomPlacementConfig {
            replicas: 10,
            registers: 30,
            replication_factor: rf,
            seed: rf as u64,
        });
        let cfg = ScenarioConfig {
            workload: WorkloadConfig {
                writes_per_replica: 20,
                zipf_theta: 0.9,
                seed: 11,
            },
            net_seed: 11,
            steps_between_ops: 3,
            ..Default::default()
        };
        let (edge, vc) = run_head_to_head(&g, &cfg);
        assert!(edge.consistent && vc.consistent, "rf={rf}");
        let em = edge.data_messages + edge.meta_messages;
        let vm = vc.data_messages + vc.meta_messages;
        println!(
            "{rf},{em},{vm},{},{},{:.1},{:.1}",
            edge.metadata_bytes,
            vc.metadata_bytes,
            edge.metadata_bytes as f64 / em.max(1) as f64,
            vc.metadata_bytes as f64 / vm.max(1) as f64,
        );
    }
}

fn sweep_zipf() {
    println!("theta,mean_staleness,max_staleness,p50_vis,p99_vis");
    let g = topology::geo_placement(5, 4, 1, 2);
    for theta in [0.0f64, 0.5, 0.9, 1.2, 1.5] {
        let report = run_scenario(
            &g,
            &ScenarioConfig {
                workload: WorkloadConfig {
                    writes_per_replica: 40,
                    zipf_theta: theta,
                    seed: 5,
                },
                delay: DelayModel::LongTail {
                    base: 5,
                    p_slow: 0.1,
                    slow_factor: 20,
                },
                net_seed: 5,
                steps_between_ops: 1,
                staleness_probes: 10,
                ..Default::default()
            },
        );
        assert!(report.consistent, "theta={theta}");
        println!(
            "{theta},{:.2},{},{},{}",
            report.mean_staleness,
            report.max_staleness,
            report.p50_visibility,
            report.p99_visibility,
        );
    }
}

fn sweep_cap() {
    const N: usize = 8;
    println!("cap,counters_per_replica,adversarial_violations");
    for cap in 3..=N {
        let cfg = if cap == N {
            LoopConfig::EXHAUSTIVE
        } else {
            LoopConfig::bounded(cap)
        };
        let graphs = TimestampGraphs::build(&topology::ring(N), cfg);
        let counters = graphs.of(ReplicaId::new(0)).len();
        // The held-link adversarial chain (Appendix D / Theorem 8).
        let mut sys = System::builder(topology::ring(N))
            .tracker(TrackerKind::EdgeIndexed(cfg))
            .delay(DelayModel::Fixed(1))
            .seed(0)
            .build();
        sys.hold_link(ReplicaId::new(1), ReplicaId::new(0));
        sys.write(ReplicaId::new(1), RegisterId::new(0), Value::from(1u64));
        for i in 1..N as u32 {
            sys.write(ReplicaId::new(i), RegisterId::new(i), Value::from(2u64));
            sys.run_to_quiescence();
        }
        sys.release_link(ReplicaId::new(1), ReplicaId::new(0));
        sys.run_to_quiescence();
        let violations = sys.check().safety_violations().count();
        println!("{cap},{counters},{violations}");
    }
}

fn sweep_clients() {
    // A client spanning k replicas of a path(8): its timestamp indexes
    // the union of the augmented graphs of everything it touches.
    use prcc_sharegraph::{AugmentedShareGraph, ClientAssignment, ClientId};
    use prcc_timestamp::ClientTsRegistry;
    println!("span,client_counters,max_replica_counters");
    let n = 8;
    for span in 1..=n {
        let g = topology::path(n);
        let mut clients = ClientAssignment::new(n);
        let replicas: Vec<ReplicaId> = (0..span as u32).map(ReplicaId::new).collect();
        clients.assign(ClientId::new(0), replicas);
        let aug = AugmentedShareGraph::new(g, clients);
        let reg = ClientTsRegistry::new(&aug);
        let client_counters = reg.client_edges(ClientId::new(0)).len();
        let max_replica = (0..n as u32)
            .map(|i| reg.peer().graphs().of(ReplicaId::new(i)).len())
            .max()
            .unwrap();
        println!("{span},{client_counters},{max_replica}");
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    match arg.as_str() {
        "ring" => sweep_ring(),
        "rf" => sweep_rf(),
        "zipf" => sweep_zipf(),
        "cap" => sweep_cap(),
        "clients" => sweep_clients(),
        "all" | "" => {
            sweep_ring();
            println!();
            sweep_rf();
            println!();
            sweep_zipf();
            println!();
            sweep_cap();
            println!();
            sweep_clients();
        }
        other => {
            eprintln!("unknown sweep '{other}' (expected ring|rf|zipf|cap|clients|all)");
            std::process::exit(2);
        }
    }
}
