//! Regenerates the experiment tables of the PRCC reproduction.
//!
//! Usage:
//!
//! ```text
//! report              # run all experiments, print tables
//! report e4 e7        # run selected experiments
//! report --json all   # machine-readable output
//! ```

use prcc_bench::{run_all, run_one, Experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let experiments: Vec<Experiment> = if ids.is_empty() || ids.iter().any(|a| *a == "all") {
        run_all()
    } else {
        let mut out = Vec::new();
        for id in &ids {
            match run_one(id) {
                Some(e) => out.push(e),
                None => {
                    eprintln!("unknown experiment '{id}' (expected e1..e10 or all)");
                    std::process::exit(2);
                }
            }
        }
        out
    };

    if json {
        println!("{}", prcc_bench::experiments_to_json(&experiments));
    } else {
        let mut all_ok = true;
        for e in &experiments {
            println!("{e}");
            all_ok &= e.verdict;
        }
        println!(
            "== summary: {}/{} experiments match the paper ==",
            experiments.iter().filter(|e| e.verdict).count(),
            experiments.len()
        );
        if !all_ok {
            std::process::exit(1);
        }
    }
}
