//! Generates `BENCH_faults.json`: the E13 fault sweep — drop probability
//! × crash count on a ring with the session layer armed, reporting
//! delivery-latency percentiles, retransmit overhead, duplicate
//! suppression, and restart-to-caught-up time.
//!
//! Usage:
//!   cargo run --release -p prcc-bench --bin fault_report > BENCH_faults.json
//!
//! Flags:
//!   --quick   small sweep (CI smoke: ring(5), 4 writes/replica)
//!   --check   exit non-zero unless every swept cell converges (zero
//!             stuck updates, checker-clean) and the retransmission
//!             machinery demonstrably engages at high drop rates

use prcc_bench::e13_faults::run_cell;

struct Row {
    drop_prob: f64,
    crashes: usize,
    writes: usize,
    retransmits: usize,
    dup_suppressed: usize,
    acks_sent: usize,
    p50_visibility: u64,
    p99_visibility: u64,
    catch_up_p50: u64,
    catch_up_max: u64,
    stuck_pending: usize,
    lost_to_crash: usize,
    consistent: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    let (n, writes_per_replica) = if quick { (5, 4) } else { (8, 12) };

    let mut rows = Vec::new();
    for &drop_prob in &[0.0, 0.1, 0.3, 0.5] {
        for crashes in 0usize..3 {
            let r = run_cell(n, drop_prob, crashes, writes_per_replica);
            rows.push(Row {
                drop_prob,
                crashes,
                writes: r.writes,
                retransmits: r.retransmits,
                dup_suppressed: r.dup_suppressed,
                acks_sent: r.acks_sent,
                p50_visibility: r.p50_visibility,
                p99_visibility: r.p99_visibility,
                catch_up_p50: r.catch_up_p50,
                catch_up_max: r.catch_up_max,
                stuck_pending: r.stuck_pending,
                lost_to_crash: r.lost_to_crash,
                consistent: r.consistent,
            });
        }
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"bench\":\"faults/ring\",\"n\":{},\"drop_prob\":{:.1},\"crashes\":{},\
\"writes\":{},\"retransmits\":{},\"dup_suppressed\":{},\"acks_sent\":{},\
\"p50_visibility\":{},\"p99_visibility\":{},\"catch_up_p50\":{},\"catch_up_max\":{},\
\"stuck_pending\":{},\"lost_to_crash\":{},\"consistent\":{}}}",
                n,
                r.drop_prob,
                r.crashes,
                r.writes,
                r.retransmits,
                r.dup_suppressed,
                r.acks_sent,
                r.p50_visibility,
                r.p99_visibility,
                r.catch_up_p50,
                r.catch_up_max,
                r.stuck_pending,
                r.lost_to_crash,
                r.consistent
            )
        })
        .collect();

    println!("{{");
    println!(
        "  \"description\": \"E13 fault sweep: drop probability x crash count on ring({n}) with \
the reliable-delivery session layer; visibility latencies in sim ticks, catch-up measured \
from restart to last owed update applied\","
    );
    println!("  \"command\": \"cargo run --release -p prcc-bench --bin fault_report\",");
    println!("  \"results\": [");
    println!("{}", json_rows.join(",\n"));
    println!("  ]");
    println!("}}");

    if check {
        let mut failed = false;
        for r in &rows {
            if !r.consistent || r.stuck_pending != 0 {
                eprintln!(
                    "check FAILED: drop={:.1} crashes={} did not converge \
                     (stuck={}, consistent={})",
                    r.drop_prob, r.crashes, r.stuck_pending, r.consistent
                );
                failed = true;
            }
        }
        let fault_free = rows
            .iter()
            .find(|r| r.drop_prob == 0.0 && r.crashes == 0)
            .expect("sweep includes the fault-free cell");
        if fault_free.retransmits != 0 {
            eprintln!(
                "check FAILED: fault-free cell retransmitted {} times",
                fault_free.retransmits
            );
            failed = true;
        }
        if !rows.iter().any(|r| r.drop_prob >= 0.3 && r.retransmits > 0) {
            eprintln!("check FAILED: high drop rates never exercised retransmission");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "check ok: all {} cells converge; max retransmits {} (drop 0.5), \
             catch-up max {} ticks",
            rows.len(),
            rows.iter().map(|r| r.retransmits).max().unwrap_or(0),
            rows.iter().map(|r| r.catch_up_max).max().unwrap_or(0)
        );
    }
}
