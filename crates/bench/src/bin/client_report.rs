//! Generates `BENCH_clients.json`: client-op throughput and latency of
//! the serving tier multiplexing many Zipf-skewed sessions onto a
//! [`ThreadedCluster`], versus the naive serial baseline (one client,
//! one op at a time, every op — reads included — a blocking command
//! round trip into a single replica thread of the same cluster).
//!
//! Every row is verified from the trace: causal consistency of the
//! cluster trace and zero session-guarantee violations in the served-op
//! log. A row that fails either check aborts the report.
//!
//! Usage:
//!   cargo run --release -p prcc-bench --bin client_report > BENCH_clients.json
//!
//! Flags:
//!   --quick        small sweep (CI smoke: fewer sessions/ops, clique only)
//!   --check        exit non-zero unless the headline multiplexed run beats
//!                  the serial baseline by >= 2x (quick) and, in full mode,
//!                  sustains >= 100k ops/sec at 10k sessions on clique(8)
//!                  with zero session-guarantee violations
//!   --closed-loop  add a closed-loop latency row: the same headline
//!                  workload with every op flushed and polled before the
//!                  next is issued, so measured write p50/p99 is pure
//!                  service latency with no open-loop coalescing
//!                  residency (a buffered write's completion otherwise
//!                  waits for its flush quantum, inflating the tail)

use prcc_core::{ThreadedCluster, Value};
use prcc_net::DelayModel;
use prcc_sharegraph::{topology, ReplicaId, ShareGraph};
use prcc_sim::serving::{run_serving_scenario, ServingRunReport, ServingScenarioConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const N: usize = 8;

struct Row {
    bench: String,
    registers: usize,
    zipf: f64,
    sessions: usize,
    ops: u64,
    write_ratio: f64,
    closed_loop: bool,
    ops_per_sec: f64,
    read_p50_ns: u64,
    read_p99_ns: u64,
    write_p50_ns: u64,
    write_p99_ns: u64,
    routed_local: u64,
    forwarded: u64,
    ryw_blocks: u64,
    mr_blocks: u64,
    consistent: bool,
    session_violations: usize,
}

fn build(topology: &str) -> ShareGraph {
    match topology {
        "ring" => topology::ring(N),
        "tree" => topology::binary_tree(N),
        "clique" => topology::clique_full(N, 2),
        _ => unreachable!(),
    }
}

fn tier_row(topology: &str, cfg: &ServingScenarioConfig) -> Row {
    tier_row_on(build(topology), topology, cfg)
}

/// Like [`tier_row`] but on an explicit graph — the register-count
/// sweep builds `clique_full(N, k)` for growing `k`.
fn tier_row_on(g: ShareGraph, label: &str, cfg: &ServingScenarioConfig) -> Row {
    let r: ServingRunReport = run_serving_scenario(&g, cfg);
    if !r.consistent || r.session_violations != 0 {
        eprintln!("serving run on {label} failed verification: {r}");
        std::process::exit(1);
    }
    Row {
        bench: format!("serving/{label}"),
        registers: g.placement().num_registers(),
        zipf: cfg.zipf_theta,
        sessions: r.sessions,
        ops: r.ops,
        write_ratio: cfg.write_ratio,
        closed_loop: cfg.flush_quantum == 1,
        ops_per_sec: r.ops_per_sec,
        read_p50_ns: r.read_p50_ns,
        read_p99_ns: r.read_p99_ns,
        write_p50_ns: r.write_p50_ns,
        write_p99_ns: r.write_p99_ns,
        routed_local: r.stats.ops_routed_local,
        forwarded: r.stats.ops_forwarded,
        ryw_blocks: r.stats.ryw_blocks,
        mr_blocks: r.stats.mr_blocks,
        consistent: r.consistent,
        session_violations: r.session_violations,
    }
}

/// The serial baseline: the naive serving design the tier replaces —
/// every client op, reads included, is a blocking command round trip
/// into one replica thread of the same threaded cluster (no lock-free
/// snapshot reads, no write coalescing, no concurrency). One client,
/// one op in flight at a time, served authoritatively by replica 0 of
/// the clique via [`ThreadedCluster::read_at`] /
/// [`ThreadedCluster::write`].
fn serial_baseline(ops: usize, write_ratio: f64, seed: u64) -> Row {
    let g = build("clique");
    let cluster = ThreadedCluster::new(g.clone(), DelayModel::Fixed(1), seed);
    let r0 = ReplicaId::new(0);
    let regs: Vec<_> = g.placement().registers_of(r0).iter().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    for k in 0..ops {
        let x = regs[k % regs.len()];
        if rng.gen_bool(write_ratio) {
            std::hint::black_box(cluster.write(r0, x, Value::from(k as u64)));
        } else {
            std::hint::black_box(cluster.read_at(r0, x));
        }
    }
    let elapsed = t0.elapsed();
    cluster.settle();
    let consistent = cluster.check().is_consistent();
    let violations = 0usize;
    if !consistent {
        eprintln!("serial baseline failed verification");
        std::process::exit(1);
    }
    Row {
        bench: "serving/serial-baseline".to_owned(),
        registers: g.placement().num_registers(),
        zipf: 0.0,
        sessions: 1,
        ops: ops as u64,
        write_ratio,
        closed_loop: true,
        ops_per_sec: ops as f64 / elapsed.as_secs_f64(),
        read_p50_ns: 0,
        read_p99_ns: 0,
        write_p50_ns: 0,
        write_p99_ns: 0,
        routed_local: ops as u64,
        forwarded: 0,
        ryw_blocks: 0,
        mr_blocks: 0,
        consistent,
        session_violations: violations,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let closed_loop = args.iter().any(|a| a == "--closed-loop");
    let registers_sweep = args.iter().any(|a| a == "--registers");

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let write_ratio = 0.1;

    // The headline configuration the acceptance gate runs against:
    // clique(8, 2 registers), Zipf s = 1.0, 10k sessions (2k in quick
    // mode).
    let (headline_sessions, ops_per_session, base_ops) = if quick {
        (2_000, 20, 5_000)
    } else {
        (10_000, 12, 20_000)
    };
    let headline_cfg = ServingScenarioConfig {
        sessions: headline_sessions,
        ops_per_session,
        write_ratio,
        zipf_theta: 1.0,
        workers,
        seed: 42,
        // Flush/poll more often than the default: write-completion
        // latency is dominated by coalescing residency, and at bench
        // scale the extra flushes cost little throughput.
        flush_quantum: 64,
        ..Default::default()
    };

    let mut rows = Vec::new();
    rows.push(serial_baseline(base_ops, write_ratio, 42));
    rows.push(tier_row("clique", &headline_cfg));
    if closed_loop {
        // Same headline workload, but every op is flushed and polled
        // before the next is issued: write completion latency is pure
        // service time, with no share of the flush quantum's residency.
        let mut row = tier_row(
            "clique",
            &ServingScenarioConfig {
                flush_quantum: 1,
                ..headline_cfg.clone()
            },
        );
        row.bench = "serving/clique-closed-loop".to_owned();
        rows.push(row);
    }
    if !quick {
        rows.push(tier_row(
            "clique",
            &ServingScenarioConfig {
                zipf_theta: 0.0,
                ..headline_cfg.clone()
            },
        ));
        for topo in ["ring", "tree"] {
            rows.push(tier_row(
                topo,
                &ServingScenarioConfig {
                    sessions: 4_000,
                    ops_per_session: 15,
                    zipf_theta: 1.0,
                    ..headline_cfg.clone()
                },
            ));
        }
    }
    if registers_sweep {
        // O(delta) scaling evidence: the same clique session load over a
        // register space growing 256x. A clone-the-world publish would
        // scale its per-write cost with the register count; the sharded
        // copy-on-write store must keep write percentiles near-flat
        // (gated at 2x in --check).
        for k in [64usize, 1024, 16384] {
            let mut row = tier_row_on(
                topology::clique_full(N, k),
                "clique-registers",
                &ServingScenarioConfig {
                    sessions: if quick { 1_000 } else { 4_000 },
                    ops_per_session: if quick { 15 } else { 12 },
                    zipf_theta: 1.0,
                    ..headline_cfg.clone()
                },
            );
            row.bench = format!("serving/clique-{k}reg");
            rows.push(row);
        }
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"bench\":\"{}\",\"n\":{},\"registers\":{},\"zipf\":{:.1},\"sessions\":{},\"ops\":{},\
\"write_ratio\":{:.2},\"closed_loop\":{},\"ops_per_sec\":{:.0},\"read_p50_ns\":{},\
\"read_p99_ns\":{},\"write_p50_ns\":{},\"write_p99_ns\":{},\"routed_local\":{},\
\"forwarded\":{},\"ryw_blocks\":{},\"mr_blocks\":{},\"consistent\":{},\
\"session_violations\":{}}}",
                r.bench,
                N,
                r.registers,
                r.zipf,
                r.sessions,
                r.ops,
                r.write_ratio,
                r.closed_loop,
                r.ops_per_sec,
                r.read_p50_ns,
                r.read_p99_ns,
                r.write_p50_ns,
                r.write_p99_ns,
                r.routed_local,
                r.forwarded,
                r.ryw_blocks,
                r.mr_blocks,
                r.consistent,
                r.session_violations
            )
        })
        .collect();

    println!("{{");
    println!(
        "  \"description\": \"serving-tier client throughput: Zipf-skewed open-loop sessions \
multiplexed onto the threaded cluster (sharded session tables, lock-free guarantee-checked \
snapshot reads, coalesced write ingress) vs the naive serial baseline (every op a blocking \
round trip into one replica thread); \
every row is trace-verified for causal consistency and session guarantees\","
    );
    println!(
        "  \"command\": \"cargo run --release -p prcc-bench --bin client_report -- \
--closed-loop --registers\","
    );
    println!("  \"results\": [");
    println!("{}", json_rows.join(",\n"));
    println!("  ]");
    println!("}}");

    if check {
        let baseline = rows
            .iter()
            .find(|r| r.bench == "serving/serial-baseline")
            .expect("baseline row");
        let headline = rows
            .iter()
            .find(|r| r.bench == "serving/clique" && (r.zipf - 1.0).abs() < 1e-9)
            .expect("headline row");
        // 1.5x, down from the pre-pipelined 2x: serving writes are now
        // acked sub-millisecond (the workers park for the flushed
        // batch's acks instead of racing on), and on few-core hosts
        // that parked time comes straight out of read-serving
        // throughput. The old gate held 2x at ~9 ms write p50; the new
        // pair (1.5x AND the latency gates below) is strictly harder —
        // see EXPERIMENTS.md for the measured tradeoff.
        if headline.ops_per_sec < 1.5 * baseline.ops_per_sec {
            eprintln!(
                "check FAILED: multiplexed {:.0} ops/s < 1.5x serial baseline {:.0} ops/s",
                headline.ops_per_sec, baseline.ops_per_sec
            );
            std::process::exit(1);
        }
        if !quick && headline.ops_per_sec < 100_000.0 {
            eprintln!(
                "check FAILED: headline {:.0} ops/s < 100k at {} sessions",
                headline.ops_per_sec, headline.sessions
            );
            std::process::exit(1);
        }
        // The pipelined-replica / O(delta)-publish headline: client
        // write acks must be sub-millisecond at the median in full mode
        // (2 ms in the smaller, noisier quick sweep).
        let p50_budget_ns: u64 = if quick { 2_000_000 } else { 1_000_000 };
        if headline.write_p50_ns > p50_budget_ns {
            eprintln!(
                "check FAILED: headline write p50 {} ns > {} ns budget",
                headline.write_p50_ns, p50_budget_ns
            );
            std::process::exit(1);
        }
        // O(delta) publishes: growing the register space 256x may not
        // inflate the median write ack. (A clone-per-publish store
        // fails this by an order of magnitude.)
        let sweep = |k: usize| {
            rows.iter()
                .find(move |r| r.bench == format!("serving/clique-{k}reg"))
        };
        if let (Some(small), Some(big)) = (sweep(64), sweep(16384)) {
            if big.write_p50_ns > 2 * small.write_p50_ns.max(1) {
                eprintln!(
                    "check FAILED: write p50 at 16384 regs ({} ns) > 2x p50 at 64 regs ({} ns)",
                    big.write_p50_ns, small.write_p50_ns
                );
                std::process::exit(1);
            }
            eprintln!(
                "register sweep ok: write p50 {} ns at 64 regs, {} ns at 16384 regs",
                small.write_p50_ns, big.write_p50_ns
            );
        }
        eprintln!(
            "check ok: {} sessions at {:.0} ops/s ({:.1}x serial baseline {:.0}), 0 violations",
            headline.sessions,
            headline.ops_per_sec,
            headline.ops_per_sec / baseline.ops_per_sec,
            baseline.ops_per_sec
        );
        if let Some(cl) = rows
            .iter()
            .find(|r| r.bench == "serving/clique-closed-loop")
        {
            eprintln!(
                "closed-loop write p50 {} ns / p99 {} ns (open-loop {} / {} ns: \
residency bias {:.1}x at p50)",
                cl.write_p50_ns,
                cl.write_p99_ns,
                headline.write_p50_ns,
                headline.write_p99_ns,
                headline.write_p50_ns.max(1) as f64 / cl.write_p50_ns.max(1) as f64
            );
        }
    }
}
