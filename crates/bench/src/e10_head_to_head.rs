//! E10 — partial replication (edge-indexed) vs emulated full replication
//! (vector clock + metadata broadcast) across replication factors.
//!
//! The trade-off the paper's introduction motivates: partial replication
//! saves storage and update traffic; its price is larger per-replica
//! timestamps on densely-shared graphs — while on sparse graphs
//! (tree/ring-like placements) the edge-indexed timestamp is competitive
//! with, and the message count strictly better than, the full-replication
//! baseline.

use crate::table::Experiment;
use prcc_core::{TrackerKind, WireMode};
use prcc_sharegraph::topology::{self, RandomPlacementConfig};
use prcc_sim::{run_head_to_head, run_scenario, ScenarioConfig, WorkloadConfig};

/// Runs E10.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "E10",
        "Partial vs full replication: storage, traffic, metadata, latency",
        "Partial replication wins storage cells and message count at every \
         replication factor; the vector-clock baseline wins per-message \
         metadata only when the share graph is dense. Both stay causally \
         consistent.",
        &[
            "placement",
            "tracker",
            "storage",
            "msgs",
            "meta bytes",
            "bytes/msg",
            "vis p50/p99",
            "staleness",
            "consistent",
        ],
    );

    let replicas = 10;
    let mut all_consistent = true;
    let mut partial_fewer_msgs = true;

    let mut run_case = |name: &str, g: &prcc_sharegraph::ShareGraph| {
        let cfg = ScenarioConfig {
            workload: WorkloadConfig {
                writes_per_replica: 20,
                zipf_theta: 0.9,
                seed: 11,
            },
            net_seed: 11,
            steps_between_ops: 3,
            ..Default::default()
        };
        let (edge, vc) = run_head_to_head(g, &cfg);
        for r in [&edge, &vc] {
            let msgs = r.data_messages + r.meta_messages;
            e.row([
                name.to_owned(),
                r.tracker.clone(),
                r.storage_cells.to_string(),
                msgs.to_string(),
                r.metadata_bytes.to_string(),
                format!("{:.0}", r.metadata_bytes as f64 / msgs.max(1) as f64),
                format!("{}/{}", r.p50_visibility, r.p99_visibility),
                format!("{:.2}", r.mean_staleness),
                r.consistent.to_string(),
            ]);
        }
        (edge, vc)
    };

    for (name, factor) in [("rf=2", 2usize), ("rf=3", 3), ("rf=5", 5)] {
        let g = topology::random_connected_placement(RandomPlacementConfig {
            replicas,
            registers: 30,
            replication_factor: factor,
            seed: factor as u64,
        });
        let (edge, vc) = run_case(name, &g);
        all_consistent &= edge.consistent && vc.consistent;
        partial_fewer_msgs &=
            edge.data_messages + edge.meta_messages < vc.data_messages + vc.meta_messages;
    }
    // A sparse placement where the edge-indexed timestamp is small.
    let tree = topology::binary_tree(replicas);
    let (edge_t, vc_t) = run_case("binary tree", &tree);
    all_consistent &= edge_t.consistent && vc_t.consistent;

    // Wire-codec ablation on the tree: the same edge-indexed run under
    // raw, projected, and compressed metadata framing. `meta bytes` is
    // what each mode actually put on the wire.
    let mut wire_bytes = std::collections::HashMap::new();
    for (label, mode) in [
        ("tree [wire=raw]", WireMode::Raw),
        ("tree [wire=projected]", WireMode::Projected),
        ("tree [wire=compressed]", WireMode::Compressed),
    ] {
        let r = run_scenario(
            &tree,
            &ScenarioConfig {
                workload: WorkloadConfig {
                    writes_per_replica: 20,
                    zipf_theta: 0.9,
                    seed: 11,
                },
                net_seed: 11,
                steps_between_ops: 3,
                wire_mode: mode,
                ..Default::default()
            },
        );
        let msgs = r.data_messages + r.meta_messages;
        e.row([
            label.to_owned(),
            r.tracker.clone(),
            r.storage_cells.to_string(),
            msgs.to_string(),
            r.metadata_bytes.to_string(),
            format!("{:.0}", r.metadata_bytes as f64 / msgs.max(1) as f64),
            format!("{}/{}", r.p50_visibility, r.p99_visibility),
            format!("{:.2}", r.mean_staleness),
            r.consistent.to_string(),
        ]);
        all_consistent &= r.consistent;
        wire_bytes.insert(mode, r.metadata_bytes);
    }
    e.check(
        wire_bytes[&WireMode::Projected] <= wire_bytes[&WireMode::Raw]
            && wire_bytes[&WireMode::Compressed] < wire_bytes[&WireMode::Projected],
        "wire codec: compressed < projected ≤ raw metadata bytes on the tree",
    );

    // Third comparator: Full-Track-style explicit dependency lists at two
    // workload lengths — metadata grows with history, unlike both
    // timestamp schemes.
    let dep_cfg = |writes: usize| ScenarioConfig {
        tracker: TrackerKind::FullDeps,
        workload: WorkloadConfig {
            writes_per_replica: writes,
            zipf_theta: 0.9,
            seed: 11,
        },
        net_seed: 11,
        steps_between_ops: 3,
        ..Default::default()
    };
    let g_dep = topology::ring(8);
    let dep_short = run_scenario(&g_dep, &dep_cfg(10));
    let dep_long = run_scenario(&g_dep, &dep_cfg(40));
    for (label, r) in [
        ("ring8 (80 writes)", &dep_short),
        ("ring8 (320 writes)", &dep_long),
    ] {
        let msgs = r.data_messages + r.meta_messages;
        e.row([
            label.to_owned(),
            r.tracker.clone(),
            r.storage_cells.to_string(),
            msgs.to_string(),
            r.metadata_bytes.to_string(),
            format!("{:.0}", r.metadata_bytes as f64 / msgs.max(1) as f64),
            format!("{}/{}", r.p50_visibility, r.p99_visibility),
            format!("{:.2}", r.mean_staleness),
            r.consistent.to_string(),
        ]);
    }
    e.check(
        dep_short.consistent && dep_long.consistent,
        "full-deps baseline is causally consistent (it carries the whole closure)",
    );
    let short_bpm = dep_short.metadata_bytes as f64
        / (dep_short.data_messages + dep_short.meta_messages) as f64;
    let long_bpm =
        dep_long.metadata_bytes as f64 / (dep_long.data_messages + dep_long.meta_messages) as f64;
    e.check(
        long_bpm > 2.0 * short_bpm,
        "full-deps metadata per message grows with history (4x writes ⇒ >2x bytes/msg)",
    );

    e.check(all_consistent, "every configuration is causally consistent");
    e.check(
        partial_fewer_msgs,
        "partial replication sends fewer messages at every replication factor",
    );
    let edge_bpm =
        edge_t.metadata_bytes as f64 / (edge_t.data_messages + edge_t.meta_messages).max(1) as f64;
    let vc_bpm =
        vc_t.metadata_bytes as f64 / (vc_t.data_messages + vc_t.meta_messages).max(1) as f64;
    e.check(
        edge_bpm <= vc_bpm,
        "on a tree, edge-indexed metadata per message ≤ the R-length vector clock's",
    );
    e.note(
        "Crossover: as the share graph densifies (higher rf), edge-indexed \
         bytes/msg overtake the R-vector — the paper's flexibility-vs-\
         metadata trade-off.",
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_matches_paper() {
        let e = super::run();
        assert!(e.verdict, "{e}");
    }
}
