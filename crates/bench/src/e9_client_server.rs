//! E9 — the client-server architecture (Section 6, Appendix E):
//! spanning clients add augmented edges, growing the replicas' timestamp
//! graphs; client timestamps cover `∪ Ê_i`; sessions stay causally
//! consistent across replicas that share no registers.

use crate::table::Experiment;
use prcc_core::client_server::ClientServerSystem;
use prcc_core::Value;
use prcc_net::DelayModel;
use prcc_sharegraph::{
    topology, AugmentedShareGraph, ClientAssignment, ClientId, LoopConfig, RegisterId, ReplicaId,
    TimestampGraphs,
};

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}
fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

/// Runs E9.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "E9",
        "Client-server: augmented timestamp graphs & session causality",
        "A client spanning two replicas adds augmented edges: replicas \
         must track edges no peer-to-peer loop requires; client vectors \
         index ∪ Ê_i over R_c; cross-replica sessions remain causally \
         consistent.",
        &[
            "configuration",
            "replica/client",
            "tracked counters",
            "note",
        ],
    );

    // Path of 5 replicas; client 0 spans the endpoints.
    let g = topology::path(5);
    let plain = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);

    let mut clients = ClientAssignment::new(5);
    clients.assign(c(0), [r(0), r(4)]);
    clients.assign(c(1), [r(2)]);
    let aug = AugmentedShareGraph::new(g.clone(), clients);
    let auggraphs = aug.augmented_timestamp_graphs();

    let mut grew = false;
    for i in g.replicas() {
        let p = plain.of(i).len();
        let a = auggraphs.of(i).len();
        grew |= a > p;
        e.row([
            "path(5) + spanning client".to_owned(),
            i.to_string(),
            format!("{p} → {a}"),
            if a > p {
                "augmented edges added".to_owned()
            } else {
                "unchanged".to_owned()
            },
        ]);
    }
    let reg = prcc_timestamp::ClientTsRegistry::new(&aug);
    for cid in [c(0), c(1)] {
        e.row([
            "client vector".to_owned(),
            cid.to_string(),
            reg.client_edges(cid).len().to_string(),
            "indexes ∪ Ê_i over R_c".to_owned(),
        ]);
    }
    e.check(
        grew,
        "the spanning client grows at least one replica's edge set",
    );
    e.check(
        reg.client_edges(c(0)).len() >= reg.client_edges(c(1)).len(),
        "the spanning client's vector covers at least the single-replica client's",
    );

    // Session-causality run: client 0 alternates replicas; checker must
    // pass and the session's writes must respect order at the middle
    // replicas.
    let mut sys = ClientServerSystem::new(aug, DelayModel::Uniform { min: 1, max: 20 }, 5);
    for round in 0..5u64 {
        sys.write(c(0), r(0), RegisterId::new(0), Value::from(round * 2));
        sys.write(c(0), r(4), RegisterId::new(3), Value::from(round * 2 + 1));
        sys.run_to_quiescence();
    }
    let rep = sys.check();
    e.check(
        rep.is_consistent(),
        "alternating cross-replica session is causally consistent",
    );
    e.check(
        sys.blocked_requests() == 0,
        "no request starves (liveness of J₁/J₂)",
    );

    // Randomized mixed-session workload over several seeds.
    use prcc_sim::{run_client_scenario, ClientScenarioConfig};
    let g2 = topology::grid(3, 2);
    let mut cl2 = ClientAssignment::new(6);
    cl2.assign(c(0), [r(0), r(5)]);
    cl2.assign(c(1), [r(2), r(3)]);
    cl2.assign(c(2), [r(1)]);
    let mut all_ok = true;
    let mut max_counters = 0;
    for seed in 0..5 {
        let rep = run_client_scenario(
            &g2,
            &cl2,
            &ClientScenarioConfig {
                ops_per_client: 12,
                write_ratio: 0.6,
                seed,
                ..Default::default()
            },
        );
        all_ok &= rep.consistent && rep.blocked == 0;
        max_counters = max_counters.max(rep.client_counters_max);
    }
    e.row([
        "grid(3x2), 3 clients, 5 seeds".to_owned(),
        "mixed sessions".to_owned(),
        max_counters.to_string(),
        "randomized reads+writes".to_owned(),
    ]);
    e.check(
        all_ok,
        "randomized client sessions: consistent with no starved requests on every seed",
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_matches_paper() {
        let e = super::run();
        assert!(e.verdict, "{e}");
    }
}
