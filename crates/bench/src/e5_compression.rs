//! E5 — timestamp compression (Appendix D): rank / atom analysis across
//! placements with linearly dependent edge counters.

use crate::table::Experiment;
use prcc_sharegraph::{topology, LoopConfig, Placement, ReplicaId, ShareGraph, TimestampGraphs};
use prcc_timestamp::{compress_replica, TsRegistry};
use std::sync::Arc;

/// The Appendix D worked example as seen from a replica that tracks all
/// four of `j`'s outgoing edges: `X_j1={x}, X_j2={y}, X_j3={z},
/// X_j4={x,y,z}` — plus an extra register connecting the observer into a
/// loop so it actually tracks them.
fn appendix_d_observer() -> ShareGraph {
    // Replicas: j=0, r1=1, r2=2, r3=3, r4=4, observer i=5.
    // j's outgoing edges carry x(0), y(1), z(2), xyz(→ r4 shares all 3).
    // A cycle j–r4–i–…–j makes i track j's edges; simplest: registers
    // linking i to j and to r1..r4 so loops exist.
    ShareGraph::new(
        Placement::builder(6)
            .share(0, [0, 1, 4]) // x: j, r1, r4
            .share(1, [0, 2, 4]) // y: j, r2, r4
            .share(2, [0, 3, 4]) // z: j, r3, r4
            .share(3, [0, 5]) // link j – i
            .share(4, [4, 5]) // link r4 – i
            .share(5, [1, 5]) // link r1 – i
            .share(6, [2, 5]) // link r2 – i
            .share(7, [3, 5]) // link r3 – i
            .build(),
    )
}

/// Runs E5.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "E5",
        "Timestamp compression (Appendix D)",
        "When an edge's register set is a linear combination of others \
         (X_j4 = X_j1 ∪ X_j2 ∪ X_j3), its counter can be dropped: stored \
         counters fall from |E_i| to Σ_j rank(O_j); full replication \
         collapses to R; independent-register rings don't compress.",
        &[
            "placement",
            "replica",
            "uncompressed",
            "rank-compressed",
            "atom-compressed",
            "ratio",
            "wire expl/common",
        ],
    );

    // Mean explicit vs common counters over all incoming wire layouts of
    // replica `i` — what the wire codec actually ships after dropping
    // derived rows (the dynamic counterpart of the static rank analysis).
    let wire_cols = |g: &ShareGraph, reg: &TsRegistry, i: u32| -> String {
        let i = ReplicaId::new(i);
        let (mut expl, mut common, mut pairs) = (0usize, 0usize, 0usize);
        for k in g.replicas().filter(|&k| k != i) {
            let l = reg.wire_layout(i, k);
            if l.common_len() == 0 {
                continue;
            }
            expl += l.num_explicit();
            common += l.common_len();
            pairs += 1;
        }
        if pairs == 0 {
            "-".to_owned()
        } else {
            format!(
                "{:.1}/{:.1}",
                expl as f64 / pairs as f64,
                common as f64 / pairs as f64
            )
        }
    };

    let mut add_case = |name: &str, g: &ShareGraph, replicas: &[u32]| {
        let graphs = TimestampGraphs::build(g, LoopConfig::EXHAUSTIVE);
        let reg = Arc::new(TsRegistry::new(g, graphs.clone()));
        for &i in replicas {
            let tg = graphs.of(ReplicaId::new(i));
            let c = compress_replica(g, tg);
            e.row([
                name.to_owned(),
                format!("r{i}"),
                c.uncompressed.to_string(),
                c.rank_compressed.to_string(),
                c.atom_compressed.to_string(),
                format!("{:.2}", c.ratio()),
                wire_cols(g, &reg, i),
            ]);
        }
    };

    let obs = appendix_d_observer();
    add_case("appendix-D nested", &obs, &[5]);
    let clique = topology::clique_full(6, 10);
    add_case("clique_full(6)", &clique, &[0]);
    let ring = topology::ring(8);
    add_case("ring(8)", &ring, &[0]);
    let geo = topology::geo_placement(5, 3, 2, 1);
    add_case("geo(5 dcs, 2 global)", &geo, &[0, 2]);

    // Claim checks.
    let graphs = TimestampGraphs::build(&obs, LoopConfig::EXHAUSTIVE);
    let c_obs = compress_replica(&obs, graphs.of(ReplicaId::new(5)));
    e.check(
        c_obs.rank_compressed < c_obs.uncompressed,
        "nested example: the dependent edge counter is eliminated",
    );
    let cg = TimestampGraphs::build(&clique, LoopConfig::EXHAUSTIVE);
    let c_cl = compress_replica(&clique, cg.of(ReplicaId::new(0)));
    e.check(
        c_cl.rank_compressed == 6,
        "clique: compressed size equals R (vector clock)",
    );
    let rg = TimestampGraphs::build(&ring, LoopConfig::EXHAUSTIVE);
    let c_ring = compress_replica(&ring, rg.of(ReplicaId::new(0)));
    e.check(
        c_ring.rank_compressed == c_ring.uncompressed,
        "independent-register ring: no compression possible",
    );

    // The wire codec reaches the same conclusions per pair: a clique
    // sender's derived rows collapse, a ring sender's never do.
    let creg = TsRegistry::new(
        &clique,
        TimestampGraphs::build(&clique, LoopConfig::EXHAUSTIVE),
    );
    let cl = creg.wire_layout(ReplicaId::new(0), ReplicaId::new(1));
    e.check(
        cl.num_explicit() < cl.common_len(),
        "clique wire layout drops linearly derived counters",
    );
    let rreg = TsRegistry::new(&ring, TimestampGraphs::build(&ring, LoopConfig::EXHAUSTIVE));
    let rl = rreg.wire_layout(ReplicaId::new(0), ReplicaId::new(1));
    e.check(
        rl.num_explicit() == rl.common_len(),
        "ring wire layout keeps every counter explicit",
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_matches_paper() {
        let e = super::run();
        assert!(e.verdict, "{e}");
    }
}
