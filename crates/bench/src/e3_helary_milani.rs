//! E3 — the Hélary–Milani correction (Section 3.2, Appendix A).
//!
//! * Figure 8a: the loop is a *minimal x-hoop* under the original
//!   Definition 18, so HM would force replica `i` to track `x` — yet no
//!   `(i, e)-loop` exists and a full simulated run without that tracking
//!   stays consistent (**over-tracking**).
//! * Figure 8b: the loop is *not* minimal under the modified
//!   Definition 20, so modified-HM says `i` may ignore `x` — yet Theorem 8
//!   requires `e_kj ∈ E_i`, and dropping it produces a safety violation
//!   (**under-tracking**).

use crate::table::Experiment;
use prcc_core::{System, TrackerKind, Value};
use prcc_net::DelayModel;
use prcc_sharegraph::hoops::{Hoop, HoopVariant};
use prcc_sharegraph::paper_examples::{ce_regs, figure8a, figure8b, CE};
use prcc_sharegraph::{exists_loop, EdgeId, LoopConfig, RegisterId};

/// The adversarial run on Figure 8b: hold `k → j` on an `x`-write, thread
/// the dependency around the 7-cycle through `i`, deliver the cycle's last
/// hop to `j` first. Returns (safety violations, liveness violations).
fn fig8b_adversarial(drop_ekj_at_i: bool) -> (usize, usize) {
    let g = figure8b();
    // Unique cycle-edge register ids from the constructor:
    // x=0 (j,k), y=1 (b1,b2,a1), 3 (j,b1), 4 (b2,i), 5 (i,a1), 6 (a2,k),
    // 7 (a1,a2).
    let mut b = System::builder(g).delay(DelayModel::Fixed(1)).seed(0);
    if drop_ekj_at_i {
        b = b.drop_edge(CE.i, EdgeId::new(CE.k, CE.j));
    }
    let mut sys = b.build();
    sys.hold_link(CE.k, CE.j);
    sys.write(CE.k, ce_regs::X, Value::from(1u64)); // u0, held toward j
    sys.write(CE.k, RegisterId::new(6), Value::from(2u64)); // k → a2
    sys.run_to_quiescence();
    sys.write(CE.a2, RegisterId::new(7), Value::from(3u64)); // a2 → a1
    sys.run_to_quiescence();
    sys.write(CE.a1, RegisterId::new(5), Value::from(4u64)); // a1 → i
    sys.run_to_quiescence();
    sys.write(CE.i, RegisterId::new(4), Value::from(5u64)); // i → b2
    sys.run_to_quiescence();
    sys.write(CE.b2, ce_regs::Y, Value::from(6u64)); // b2 → b1 (and a1)
    sys.run_to_quiescence();
    sys.write(CE.b1, RegisterId::new(3), Value::from(7u64)); // b1 → j
    sys.run_to_quiescence();
    sys.release_link(CE.k, CE.j);
    sys.run_to_quiescence();
    let rep = sys.check();
    (
        rep.safety_violations().count(),
        rep.liveness_violations().count(),
    )
}

/// Runs E3.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "E3",
        "Correction to Hélary–Milani minimal hoops (Figs 8a, 8b)",
        "Original Def. 18 over-tracks (Fig 8a: minimal hoop but no loop); \
         modified Def. 20 under-tracks (Fig 8b: no minimal hoop but \
         Theorem 8 requires e_kj, and dropping it breaks safety).",
        &[
            "figure",
            "criterion",
            "says i tracks x?",
            "loop machinery",
            "simulated outcome",
        ],
    );

    // --- Figure 8a ---
    let g8a = figure8a();
    let hoop_a = Hoop {
        register: ce_regs::X,
        path: vec![CE.j, CE.b1, CE.b2, CE.i, CE.a1, CE.a2, CE.k],
    };
    let hm_orig_says_track = hoop_a.is_minimal(&g8a, HoopVariant::Original);
    let loop_jk = exists_loop(&g8a, CE.i, EdgeId::new(CE.j, CE.k), LoopConfig::EXHAUSTIVE);
    let loop_kj = exists_loop(&g8a, CE.i, EdgeId::new(CE.k, CE.j), LoopConfig::EXHAUSTIVE);

    // Simulate Figure 8a with the exact algorithm (which does NOT track x
    // at i) under an adversarial-style workload: writes on every register
    // at every holder, multiple rounds, wide delays.
    let mut consistent_8a = true;
    for seed in 0..5 {
        let mut sys = System::builder(g8a.clone())
            .tracker(TrackerKind::EdgeIndexed(LoopConfig::EXHAUSTIVE))
            .delay(DelayModel::Uniform { min: 1, max: 50 })
            .seed(seed)
            .build();
        for round in 0..3u64 {
            for reg in 0..g8a.placement().num_registers() as u32 {
                for &h in g8a.placement().holders(RegisterId::new(reg)) {
                    sys.write(h, RegisterId::new(reg), Value::from(round));
                }
                for _ in 0..3 {
                    sys.step();
                }
            }
        }
        sys.run_to_quiescence();
        consistent_8a &= sys.check().is_consistent() && sys.stuck_pending() == 0;
    }
    e.row([
        "8a",
        "HM original (Def 18)",
        if hm_orig_says_track { "yes" } else { "no" },
        "no (i,e_jk)/(i,e_kj)-loop",
        if consistent_8a {
            "consistent WITHOUT tracking x"
        } else {
            "inconsistent"
        },
    ]);
    e.check(
        hm_orig_says_track,
        "Fig 8a loop is a minimal x-hoop per Def 18",
    );
    e.check(
        !loop_jk && !loop_kj,
        "no (i, e_jk)- or (i, e_kj)-loop exists",
    );
    e.check(
        consistent_8a,
        "simulation: i never tracks x, yet every run is causally consistent ⇒ Def 18 over-tracks",
    );

    // --- Figure 8b ---
    let g8b = figure8b();
    let hoop_b = Hoop {
        register: ce_regs::X,
        path: vec![CE.j, CE.b1, CE.b2, CE.i, CE.a1, CE.a2, CE.k],
    };
    let hm_mod_says_track = hoop_b.is_minimal(&g8b, HoopVariant::Modified);
    let loop_kj_b = exists_loop(&g8b, CE.i, EdgeId::new(CE.k, CE.j), LoopConfig::EXHAUSTIVE);
    let (safety_full, live_full) = fig8b_adversarial(false);
    let (safety_drop, _live_drop) = fig8b_adversarial(true);
    e.row([
        "8b",
        "HM modified (Def 20)",
        if hm_mod_says_track { "yes" } else { "no" },
        "(i,e_kj)-loop exists",
        if safety_drop > 0 {
            "dropping e_kj ⇒ safety violation"
        } else {
            "no violation"
        },
    ]);
    e.check(
        !hm_mod_says_track,
        "Fig 8b hoop is NOT minimal per Def 20 (y held by 3 hoop replicas)",
    );
    e.check(loop_kj_b, "but Theorem 8 requires e_kj ∈ E_i");
    e.check(
        safety_full + live_full == 0,
        "exact algorithm survives the adversarial execution",
    );
    e.check(
        safety_drop > 0,
        "dropping e_kj at i ⇒ safety violation ⇒ Def 20 under-tracks",
    );

    // Quantify HM over-tracking on random placements: for each replica i
    // and register x it does not store, compare "HM (Def 18) requires i to
    // transmit info about x" against "some tracked far edge of i carries
    // x" (the loop-based requirement).
    use prcc_sharegraph::hoops::helary_milani_tracked_registers;
    use prcc_sharegraph::topology::{random_connected_placement, RandomPlacementConfig};
    use prcc_sharegraph::{LoopConfig as LC, TimestampGraphs};
    let mut hm_total = 0usize;
    let mut ours_total = 0usize;
    let mut hm_only = 0usize;
    for seed in 0..4 {
        let g = random_connected_placement(RandomPlacementConfig {
            replicas: 6,
            registers: 6,
            replication_factor: 2,
            seed,
        });
        let graphs = TimestampGraphs::build(&g, LC::EXHAUSTIVE);
        for i in g.replicas() {
            let hm = helary_milani_tracked_registers(&g, i, HoopVariant::Original, 8);
            let tg = graphs.of(i);
            for xr in 0..g.placement().num_registers() as u32 {
                let reg = RegisterId::new(xr);
                if g.placement().stores(i, reg) {
                    continue;
                }
                let hm_says = hm.contains(reg);
                let ours_says = tg
                    .edges()
                    .iter()
                    .any(|ed| !ed.touches(i) && g.edge_registers(*ed).contains(reg));
                hm_total += usize::from(hm_says);
                ours_total += usize::from(ours_says);
                hm_only += usize::from(hm_says && !ours_says);
            }
        }
    }
    e.row([
        "random×4".to_owned(),
        "aggregate (replica, register) pairs".to_owned(),
        format!("HM: {hm_total}"),
        format!("loops: {ours_total}"),
        format!("{hm_only} pairs over-tracked by HM"),
    ]);
    e.check(
        hm_total >= ours_total,
        "HM's original condition requires at least as much tracking as Theorem 8",
    );
    e.note(format!(
        "Across 4 random placements HM requires {hm_total} foreign-register \
         trackings vs {ours_total} by the loop condition ({hm_only} saved)."
    ));
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_matches_paper() {
        let e = super::run();
        assert!(e.verdict, "{e}");
    }
}
