//! E6 — dummy registers (Appendix D): trading extra metadata messages and
//! false dependencies for a reshaped share graph.
//!
//! Sweep: a ring of 6 progressively gains dummy copies until every
//! replica subscribes to every register (full-replication emulation).
//! Measured: message counts, metadata bytes, pending-buffer wait (the
//! visible cost of false dependencies), and compressed timestamp size
//! (which collapses toward R as the emulation approaches full
//! replication).

use crate::table::Experiment;
use prcc_sharegraph::LoopConfig;
use prcc_sharegraph::{topology, Placement, RegisterId, ReplicaId, ShareGraph, TimestampGraphs};
use prcc_sim::{run_scenario, ScenarioConfig, WorkloadConfig};
use prcc_timestamp::compress_replica;

/// Builds the dummy list for "fraction" of the missing (replica,
/// register) pairs, in a deterministic order.
fn dummies_for(g: &ShareGraph, count: usize) -> Vec<(ReplicaId, RegisterId)> {
    let mut all = Vec::new();
    for r in g.replicas() {
        for x in 0..g.placement().num_registers() as u32 {
            if !g.placement().stores(r, RegisterId::new(x)) {
                all.push((r, RegisterId::new(x)));
            }
        }
    }
    all.truncate(count);
    all
}

/// Compressed timestamp size (max over replicas) for the ring plus the
/// given dummies.
fn compressed_max(g: &ShareGraph, dummies: &[(ReplicaId, RegisterId)]) -> usize {
    let mut sets: Vec<prcc_sharegraph::RegSet> = g
        .replicas()
        .map(|i| g.placement().registers_of(i).clone())
        .collect();
    for (r, x) in dummies {
        sets[r.index()].insert(*x);
    }
    let eff = ShareGraph::new(Placement::from_sets(sets));
    let graphs = TimestampGraphs::build(&eff, LoopConfig::EXHAUSTIVE);
    eff.replicas()
        .map(|i| compress_replica(&eff, graphs.of(i)).rank_compressed)
        .max()
        .unwrap_or(0)
}

/// Runs E6.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "E6",
        "Dummy registers: metadata messages vs timestamp size (App. D)",
        "Adding dummy copies raises message count (metadata-only traffic) \
         and false-dependency buffering, while full emulation drives the \
         compressed timestamp to R — the vector-clock trade-off.",
        &[
            "dummies",
            "msgs (data+meta)",
            "meta msgs",
            "meta bytes",
            "mean wait",
            "compressed max",
            "consistent",
        ],
    );

    let g = topology::ring(6);
    let max_dummies = 6 * 6 - g.placement().storage_cells(); // 36 − 12 = 24
    let sweep = [0usize, 6, 12, max_dummies];
    let mut first = None;
    let mut last = None;
    for &k in &sweep {
        let dummies = dummies_for(&g, k);
        let report = run_scenario(
            &g,
            &ScenarioConfig {
                workload: WorkloadConfig {
                    writes_per_replica: 15,
                    zipf_theta: 0.0,
                    seed: 4,
                },
                net_seed: 4,
                dummies: dummies.clone(),
                ..Default::default()
            },
        );
        let comp = compressed_max(&g, &dummies);
        e.row([
            k.to_string(),
            (report.data_messages + report.meta_messages).to_string(),
            report.meta_messages.to_string(),
            report.metadata_bytes.to_string(),
            format!("{:.2}", report.mean_pending_wait),
            comp.to_string(),
            report.consistent.to_string(),
        ]);
        if k == 0 {
            first = Some((report.clone(), comp));
        }
        if k == max_dummies {
            last = Some((report, comp));
        }
    }
    let (r0, _c0) = first.expect("sweep ran");
    let (rf, cf) = last.expect("sweep ran");
    e.check(
        r0.consistent && rf.consistent,
        "all sweep points causally consistent",
    );
    e.check(
        rf.meta_messages > r0.meta_messages,
        "dummy copies add metadata-only messages",
    );
    e.check(
        rf.data_messages + rf.meta_messages > r0.data_messages + r0.meta_messages,
        "total message count rises with dummies",
    );
    e.check(
        cf == 6,
        "full emulation compresses the timestamp to R = 6 (vector clock)",
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_matches_paper() {
        let e = super::run();
        assert!(e.verdict, "{e}");
    }
}
