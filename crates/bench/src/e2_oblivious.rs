//! E2 — Theorem 8 in action: a replica oblivious to any edge of its
//! timestamp graph loses safety or liveness.
//!
//! One adversarial execution per case of the proof (Section 3.4):
//!
//! * Case 1/2 (incident edges): dropping `e_01` from the receiver's graph
//!   makes the sender's updates un-orderable — the conservative predicate
//!   blocks forever (liveness violation).
//! * Case 3 (far edge with an `(i, e_jk)`-loop): dropping `e_21` from
//!   `E_0` in a ring lets a causal chain outrun a held dependency —
//!   safety violation at the chain's sink.

use crate::table::Experiment;
use prcc_core::{System, Value};
use prcc_net::DelayModel;
use prcc_sharegraph::{edge, topology, RegisterId, ReplicaId};

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}
fn x(i: u32) -> RegisterId {
    RegisterId::new(i)
}

/// Outcome of one oblivious run.
struct Outcome {
    safety: usize,
    liveness: usize,
    stuck: usize,
}

/// Case 1/2: drop the incident edge `e_01` from replica 1's graph, then
/// send two FIFO-dependent updates out of order.
fn incident_case(drop: bool) -> Outcome {
    let mut b = System::builder(topology::path(2))
        .delay(DelayModel::Fixed(1))
        .seed(0);
    if drop {
        b = b.drop_edge(r(1), edge(0, 1));
    }
    let mut sys = b.build();
    sys.write(r(0), x(0), Value::from(1u64));
    sys.write(r(0), x(0), Value::from(2u64));
    sys.run_to_quiescence();
    let rep = sys.check();
    Outcome {
        safety: rep.safety_violations().count(),
        liveness: rep.liveness_violations().count(),
        stuck: sys.stuck_pending(),
    }
}

/// Case 3: ring of 6, replica 0 oblivious to far edge `e_21`. Hold the
/// direct r2 → r1 delivery of an `x_1` write, thread the dependency the
/// long way around through r0, and let r0's (crippled) timestamp fail to
/// warn r1.
fn far_edge_case(drop: bool) -> Outcome {
    let mut b = System::builder(topology::ring(6))
        .delay(DelayModel::Fixed(1))
        .seed(0);
    if drop {
        b = b.drop_edge(r(0), edge(2, 1));
    }
    let mut sys = b.build();
    // u0: r2 writes register 1 (shared r1, r2) — held toward r1.
    sys.hold_link(r(2), r(1));
    sys.write(r(2), x(1), Value::from(10u64));
    // Chain r2 → r3 → r4 → r5 → r0 around the far side of the ring.
    sys.write(r(2), x(2), Value::from(11u64));
    sys.run_to_quiescence();
    sys.write(r(3), x(3), Value::from(12u64));
    sys.run_to_quiescence();
    sys.write(r(4), x(4), Value::from(13u64));
    sys.run_to_quiescence();
    sys.write(r(5), x(5), Value::from(14u64));
    sys.run_to_quiescence();
    // r0 now (transitively) depends on u0; it writes register 0 → r1.
    sys.write(r(0), x(0), Value::from(15u64));
    sys.run_to_quiescence();
    // Finally the held u0 arrives.
    sys.release_link(r(2), r(1));
    sys.run_to_quiescence();
    let rep = sys.check();
    Outcome {
        safety: rep.safety_violations().count(),
        liveness: rep.liveness_violations().count(),
        stuck: sys.stuck_pending(),
    }
}

/// Runs E2.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "E2",
        "Obliviousness to any tracked edge breaks consistency (Thm 8)",
        "Each edge class of E_i is necessary: dropping an incident edge \
         (Cases 1–2) or a loop-certified far edge (Case 3) produces a \
         safety or liveness violation; the full algorithm never does.",
        &[
            "case",
            "dropped edge",
            "safety viol.",
            "liveness viol.",
            "stuck pending",
        ],
    );

    let full_inc = incident_case(false);
    let obl_inc = incident_case(true);
    e.row([
        "incident (full E_i)".to_owned(),
        "-".to_owned(),
        full_inc.safety.to_string(),
        full_inc.liveness.to_string(),
        full_inc.stuck.to_string(),
    ]);
    e.row([
        "incident (oblivious)".to_owned(),
        "e(r0->r1) @ r1".to_owned(),
        obl_inc.safety.to_string(),
        obl_inc.liveness.to_string(),
        obl_inc.stuck.to_string(),
    ]);
    let full_far = far_edge_case(false);
    let obl_far = far_edge_case(true);
    e.row([
        "far edge (full E_i)".to_owned(),
        "-".to_owned(),
        full_far.safety.to_string(),
        full_far.liveness.to_string(),
        full_far.stuck.to_string(),
    ]);
    e.row([
        "far edge (oblivious)".to_owned(),
        "e(r2->r1) @ r0".to_owned(),
        obl_far.safety.to_string(),
        obl_far.liveness.to_string(),
        obl_far.stuck.to_string(),
    ]);

    e.check(
        full_inc.safety + full_inc.liveness == 0,
        "exact algorithm consistent in the incident-edge execution",
    );
    e.check(
        obl_inc.safety + obl_inc.liveness > 0,
        "oblivious incident edge ⇒ violation (conservative predicate blocks: liveness)",
    );
    e.check(
        full_far.safety + full_far.liveness == 0,
        "exact algorithm consistent in the far-edge execution",
    );
    e.check(
        obl_far.safety > 0,
        "oblivious far edge ⇒ SAFETY violation (chain outruns held dependency)",
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_matches_paper() {
        let e = super::run();
        assert!(e.verdict, "{e}");
    }
}
