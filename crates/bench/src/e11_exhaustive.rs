//! E11 (extension) — exhaustive small-scope verification.
//!
//! Beyond the paper: for small scenarios we enumerate **every** delivery
//! interleaving of the asynchronous non-FIFO network and check causal
//! consistency in each. The exact algorithm verifies on all scenarios;
//! under-tracking configurations (oblivious replicas, truncated loops)
//! yield concrete counterexample schedules — Theorem 8's "there exists an
//! execution" made mechanical.

use crate::table::Experiment;
use prcc_core::{Scenario, TrackerKind};
use prcc_sharegraph::{edge, topology, LoopConfig, RegisterId, ReplicaId, ShareGraph};

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}
fn x(i: u32) -> RegisterId {
    RegisterId::new(i)
}

/// A causal chain around the first `len` replicas of a ring.
fn ring_chain(g: &ShareGraph, len: usize, kind: TrackerKind) -> Scenario {
    let mut s = Scenario::new(g.clone()).tracker(kind);
    let mut prev = None;
    for i in 0..len as u32 {
        let idx = match prev {
            None => s.write(r(i.max(1)), x(0)), // first: r1 writes reg 0
            Some(p) => s.write_after(r(i), x(i), [p]),
        };
        prev = Some(idx);
    }
    s
}

/// Concurrent writers plus a dependent reader-writer.
fn mixed_scenario(kind: TrackerKind) -> Scenario {
    let g = topology::grid(2, 2); // 4 replicas, 4 edges
    let mut s = Scenario::new(g).tracker(kind);
    let a = s.write(r(0), x(0)); // shared r0-r1 (grid register layout)
    let b = s.write(r(3), x(3)); // far corner
    s.write_after(r(1), x(2), [a]);
    s.write_after(r(2), x(3), [b]);
    s
}

/// Runs E11.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "E11",
        "Exhaustive interleaving verification (extension)",
        "The exact algorithm is consistent in EVERY delivery interleaving \
         of each scenario; oblivious/truncated configurations have \
         machine-found counterexample schedules.",
        &[
            "scenario",
            "tracker",
            "states",
            "terminal runs",
            "violating",
            "verified",
        ],
    );

    let add = |name: &str, s: &Scenario, expect_ok: bool, exp: &mut Experiment| {
        let res = s.explore();
        exp.row([
            name.to_owned(),
            match format!("{s:?}").contains("VectorClock") {
                true => "vector-clock".to_owned(),
                false => "edge-indexed".to_owned(),
            },
            res.states.to_string(),
            res.executions.to_string(),
            res.violations.to_string(),
            res.verified().to_string(),
        ]);
        exp.check(
            res.verified() == expect_ok,
            format!(
                "{name}: expected {}",
                if expect_ok {
                    "verified"
                } else {
                    "counterexample"
                }
            ),
        );
    };

    let exact = TrackerKind::EdgeIndexed(LoopConfig::EXHAUSTIVE);
    let trunc3 = TrackerKind::EdgeIndexed(LoopConfig::bounded(3));

    // Chain around ring(4) — exact verifies, 3-cap does not.
    let g4 = topology::ring(4);
    let mut chain_exact = Scenario::new(g4.clone());
    let c0 = chain_exact.write(r(1), x(0));
    let c1 = chain_exact.write_after(r(1), x(1), [c0]);
    let c2 = chain_exact.write_after(r(2), x(2), [c1]);
    chain_exact.write_after(r(3), x(3), [c2]);
    add("ring4 chain", &chain_exact, true, &mut e);

    let mut chain_trunc = Scenario::new(g4.clone()).tracker(trunc3);
    let t0 = chain_trunc.write(r(1), x(0));
    let t1 = chain_trunc.write_after(r(1), x(1), [t0]);
    let t2 = chain_trunc.write_after(r(2), x(2), [t1]);
    chain_trunc.write_after(r(3), x(3), [t2]);
    add("ring4 chain (loop cap 3)", &chain_trunc, false, &mut e);

    // Oblivious incident edge on a pair.
    let mut obl = Scenario::new(topology::path(2)).drop_edge(r(1), edge(0, 1));
    obl.write(r(0), x(0));
    obl.write(r(0), x(0));
    add("pair FIFO (oblivious e_01)", &obl, false, &mut e);

    // Mixed concurrent scenario on a grid.
    add("grid2x2 mixed", &mixed_scenario(exact), true, &mut e);
    add(
        "grid2x2 mixed (VC)",
        &mixed_scenario(TrackerKind::VectorClock),
        true,
        &mut e,
    );

    // Longer chain: ring(5) with chain length 5 via helper.
    let chain5 = ring_chain(&topology::ring(5), 5, exact);
    add("ring5 chain", &chain5, true, &mut e);

    // Client-server: a migrating client over a path, all interleavings of
    // request service and update delivery (Appendix E protocol).
    {
        use prcc_core::CsScenario;
        use prcc_sharegraph::{AugmentedShareGraph, ClientAssignment, ClientId};
        let g = topology::path(3);
        let mut clients = ClientAssignment::new(3);
        clients.assign(ClientId::new(0), [r(0), r(2)]);
        clients.assign(ClientId::new(1), [r(1)]);
        let mut s = CsScenario::new(AugmentedShareGraph::new(g, clients));
        s.write(ClientId::new(0), r(0), x(0));
        s.write(ClientId::new(0), r(2), x(1));
        let w = s.write(ClientId::new(0), r(0), x(0));
        s.write_after(ClientId::new(1), r(1), x(0), [w]);
        let res = s.explore();
        e.row([
            "client-server migration".to_owned(),
            "edge-indexed (App E)".to_owned(),
            res.states.to_string(),
            res.executions.to_string(),
            res.violations.to_string(),
            res.verified().to_string(),
        ]);
        e.check(
            res.verified(),
            "client-server migration verified over every interleaving",
        );
    }

    e.note(
        "States are deduplicated by per-replica apply-order fingerprints; \
            'terminal runs' counts distinct quiescent outcomes.",
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_matches_expectations() {
        let e = super::run();
        assert!(e.verdict, "{e}");
    }
}
