//! Plain-text experiment tables, printable and JSON-serializable.

use std::fmt;

/// One experiment's output: a titled table plus free-form notes.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Short id, e.g. `"E4"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper claims / what shape to expect.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Observations appended below the table.
    pub notes: Vec<String>,
    /// Whether the measured shape matches the paper's claim.
    pub verdict: bool,
}

impl Experiment {
    /// Starts an experiment table.
    pub fn new(id: &str, title: &str, claim: &str, headers: &[&str]) -> Self {
        Experiment {
            id: id.to_owned(),
            title: title.to_owned(),
            claim: claim.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            verdict: true,
        }
    }

    /// Appends one row (stringifies each cell).
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Appends an observation note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Records a claim-check: all must hold for the verdict to stay true.
    pub fn check(&mut self, ok: bool, what: impl Into<String>) {
        let what = what.into();
        if ok {
            self.notes.push(format!("✔ {what}"));
        } else {
            self.notes.push(format!("✘ FAILED: {what}"));
            self.verdict = false;
        }
    }

    /// Serializes to a JSON object (hand-rolled — the offline build has
    /// no serde; field layout matches the former derive output).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json_field(&mut out, "id", &json_string(&self.id));
        json_field(&mut out, "title", &json_string(&self.title));
        json_field(&mut out, "claim", &json_string(&self.claim));
        json_field(&mut out, "headers", &json_string_array(&self.headers));
        let rows: Vec<String> = self.rows.iter().map(|r| json_string_array(r)).collect();
        json_field(&mut out, "rows", &format!("[{}]", rows.join(",")));
        json_field(&mut out, "notes", &json_string_array(&self.notes));
        out.push_str(&format!("\"verdict\":{}", self.verdict));
        out.push('}');
        out
    }
}

fn json_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("\"{key}\":{value},"));
}

fn json_string_array(items: &[String]) -> String {
    let parts: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", parts.join(","))
}

/// Escapes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a slice of experiments to a pretty-printed JSON array (one
/// experiment object per line).
pub fn experiments_to_json(experiments: &[Experiment]) -> String {
    let parts: Vec<String> = experiments
        .iter()
        .map(|e| format!("  {}", e.to_json()))
        .collect();
    format!("[\n{}\n]", parts.join(",\n"))
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {}: {} ==", self.id, self.title)?;
        writeln!(f, "claim: {}", self.claim)?;
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:width$} |", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  {n}")?;
        }
        writeln!(
            f,
            "verdict: {}",
            if self.verdict {
                "MATCHES PAPER"
            } else {
                "MISMATCH"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip() {
        let mut e = Experiment::new("E0", "demo", "demo claim", &["a", "b"]);
        e.row(["x", "y"]);
        e.row([1.to_string(), 2.to_string()]);
        e.note("note");
        e.check(true, "good");
        let s = e.to_string();
        assert!(s.contains("E0"));
        assert!(s.contains("| x"));
        assert!(s.contains("✔ good"));
        assert!(s.contains("MATCHES PAPER"));
        assert!(e.verdict);
    }

    #[test]
    fn failed_check_flips_verdict() {
        let mut e = Experiment::new("E0", "demo", "c", &["a"]);
        e.check(false, "bad");
        assert!(!e.verdict);
        assert!(e.to_string().contains("MISMATCH"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut e = Experiment::new("E0", "demo", "c", &["a", "b"]);
        e.row(["only-one"]);
    }

    #[test]
    fn json_serializable() {
        let mut e = Experiment::new("E1", "t", "c", &["h"]);
        e.row(["v"]);
        let js = e.to_json();
        assert!(js.contains("\"id\":\"E1\""));
        assert!(js.contains("\"rows\":[[\"v\"]]"));
        assert!(js.contains("\"verdict\":true"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let arr = experiments_to_json(&[Experiment::new("E1", "t", "c", &[])]);
        assert!(arr.starts_with("[\n"));
        assert!(arr.ends_with("\n]"));
    }
}
