//! Plain-text experiment tables, printable and JSON-serializable.

use serde::Serialize;
use std::fmt;

/// One experiment's output: a titled table plus free-form notes.
#[derive(Debug, Clone, Serialize)]
pub struct Experiment {
    /// Short id, e.g. `"E4"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper claims / what shape to expect.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Observations appended below the table.
    pub notes: Vec<String>,
    /// Whether the measured shape matches the paper's claim.
    pub verdict: bool,
}

impl Experiment {
    /// Starts an experiment table.
    pub fn new(
        id: &str,
        title: &str,
        claim: &str,
        headers: &[&str],
    ) -> Self {
        Experiment {
            id: id.to_owned(),
            title: title.to_owned(),
            claim: claim.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            verdict: true,
        }
    }

    /// Appends one row (stringifies each cell).
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Appends an observation note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Records a claim-check: all must hold for the verdict to stay true.
    pub fn check(&mut self, ok: bool, what: impl Into<String>) {
        let what = what.into();
        if ok {
            self.notes.push(format!("✔ {what}"));
        } else {
            self.notes.push(format!("✘ FAILED: {what}"));
            self.verdict = false;
        }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {}: {} ==", self.id, self.title)?;
        writeln!(f, "claim: {}", self.claim)?;
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:width$} |", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  {n}")?;
        }
        writeln!(
            f,
            "verdict: {}",
            if self.verdict { "MATCHES PAPER" } else { "MISMATCH" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip() {
        let mut e = Experiment::new("E0", "demo", "demo claim", &["a", "b"]);
        e.row(["x", "y"]);
        e.row([1.to_string(), 2.to_string()]);
        e.note("note");
        e.check(true, "good");
        let s = e.to_string();
        assert!(s.contains("E0"));
        assert!(s.contains("| x"));
        assert!(s.contains("✔ good"));
        assert!(s.contains("MATCHES PAPER"));
        assert!(e.verdict);
    }

    #[test]
    fn failed_check_flips_verdict() {
        let mut e = Experiment::new("E0", "demo", "c", &["a"]);
        e.check(false, "bad");
        assert!(!e.verdict);
        assert!(e.to_string().contains("MISMATCH"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut e = Experiment::new("E0", "demo", "c", &["a", "b"]);
        e.row(["only-one"]);
    }

    #[test]
    fn json_serializable() {
        let mut e = Experiment::new("E1", "t", "c", &["h"]);
        e.row(["v"]);
        let js = serde_json::to_string(&e).unwrap();
        assert!(js.contains("\"id\":\"E1\""));
    }
}
