//! E4 — timestamp sizes vs topology and the Section 4 lower bounds.
//!
//! Closed forms the paper derives: trees need `2·N_i` counters
//! (`2·N_i·log m` bits, tight); cycles need `2n`; full replication
//! compresses to `R` (a vector clock, also tight).

use crate::table::Experiment;
use prcc_sharegraph::{topology, LoopConfig, ReplicaId, ShareGraph, TimestampGraphs};
use prcc_timestamp::bits::{
    cycle_lower_bound_bits, full_replication_lower_bound_bits, timestamp_bits,
    tree_lower_bound_bits,
};
use prcc_timestamp::compress_replica;

/// Update bound `m` used for bit counts.
const M: u64 = 1000;

struct TopoCase {
    name: &'static str,
    graph: ShareGraph,
    /// Closed-form lower bound per replica, if the paper gives one.
    bound_bits: Option<fn(&ShareGraph, ReplicaId) -> u64>,
}

fn tree_bound(g: &ShareGraph, i: ReplicaId) -> u64 {
    tree_lower_bound_bits(g.degree(i), M)
}
fn cycle_bound(g: &ShareGraph, _i: ReplicaId) -> u64 {
    cycle_lower_bound_bits(g.num_replicas(), M)
}
fn clique_bound(g: &ShareGraph, _i: ReplicaId) -> u64 {
    full_replication_lower_bound_bits(g.num_replicas(), M)
}

/// Runs E4.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "E4",
        "Timestamp sizes vs topology, against the Section 4 lower bounds",
        "Tree: 2·N_i counters (tight). Cycle(n): 2n counters (tight). \
         Clique/full replication: compresses to R — the vector clock. \
         Bits use m = 1000 updates per replica.",
        &[
            "topology",
            "replica",
            "counters",
            "compressed",
            "VC baseline",
            "bits (ours)",
            "bits (compressed)",
            "lower bound bits",
        ],
    );

    let cases = [
        TopoCase {
            name: "star(5) [tree]",
            graph: topology::star(5),
            bound_bits: Some(tree_bound),
        },
        TopoCase {
            name: "binary_tree(15)",
            graph: topology::binary_tree(15),
            bound_bits: Some(tree_bound),
        },
        TopoCase {
            name: "ring(8) [cycle]",
            graph: topology::ring(8),
            bound_bits: Some(cycle_bound),
        },
        TopoCase {
            name: "clique_full(6)",
            graph: topology::clique_full(6, 12),
            bound_bits: Some(clique_bound),
        },
        TopoCase {
            name: "grid(4x4)",
            graph: topology::grid(4, 4),
            bound_bits: None,
        },
        TopoCase {
            name: "figure5",
            graph: prcc_sharegraph::paper_examples::figure5(),
            bound_bits: None,
        },
    ];

    for case in &cases {
        let graphs = TimestampGraphs::build(&case.graph, LoopConfig::EXHAUSTIVE);
        let vc = case.graph.num_replicas();
        // Representative replicas: min and max counter counts.
        let mut reps: Vec<ReplicaId> = case.graph.replicas().collect();
        reps.sort_by_key(|&i| graphs.of(i).len());
        let show: Vec<ReplicaId> = if reps.len() > 2 {
            vec![reps[0], *reps.last().unwrap()]
        } else {
            reps.clone()
        };
        for i in show {
            let tg = graphs.of(i);
            let comp = compress_replica(&case.graph, tg);
            let bound = case
                .bound_bits
                .map(|f| f(&case.graph, i).to_string())
                .unwrap_or_else(|| "-".to_owned());
            e.row([
                case.name.to_owned(),
                i.to_string(),
                tg.len().to_string(),
                comp.rank_compressed.to_string(),
                vc.to_string(),
                timestamp_bits(tg.len(), M).to_string(),
                timestamp_bits(comp.rank_compressed, M).to_string(),
                bound,
            ]);
        }
    }

    // Claim checks.
    let star = topology::star(5);
    let sg = TimestampGraphs::build(&star, LoopConfig::EXHAUSTIVE);
    e.check(
        star.replicas()
            .all(|i| sg.of(i).len() == 2 * star.degree(i)),
        "tree: counters = 2·N_i for every replica (matches the tight bound)",
    );
    let ring = topology::ring(8);
    let rg = TimestampGraphs::build(&ring, LoopConfig::EXHAUSTIVE);
    e.check(
        ring.replicas().all(|i| rg.of(i).len() == 16),
        "cycle(8): counters = 2n = 16 for every replica",
    );
    let clique = topology::clique_full(6, 12);
    let cg = TimestampGraphs::build(&clique, LoopConfig::EXHAUSTIVE);
    e.check(
        clique
            .replicas()
            .all(|i| compress_replica(&clique, cg.of(i)).rank_compressed == 6),
        "full replication: compressed counters = R = 6 (vector clock recovered)",
    );
    e.check(
        clique.replicas().all(|i| {
            timestamp_bits(compress_replica(&clique, cg.of(i)).rank_compressed, M)
                == full_replication_lower_bound_bits(6, M)
        }),
        "full replication: compressed bits equal the R·log m lower bound",
    );

    // Theorem 15 witness: verify a prefix conflict clique pairwise
    // (Definition 13) on representative instances — the construction whose
    // full family has size m^{|E_i|}.
    use prcc_checker::verify_prefix_clique;
    use prcc_sharegraph::EdgeId;
    let hub = ReplicaId::new(0);
    let star_tg = sg.of(hub);
    let star_clique = verify_prefix_clique(
        &star,
        star_tg,
        &[
            EdgeId::new(hub, ReplicaId::new(1)),
            EdgeId::new(ReplicaId::new(1), hub),
        ],
        3,
    );
    e.check(
        star_clique == Ok(9),
        "Thm 15 witness (tree): 3² pairwise-conflicting causal pasts verified on a spoke",
    );
    let ring_tg = rg.of(ReplicaId::new(0));
    let ring_clique = verify_prefix_clique(
        &ring,
        ring_tg,
        &[
            EdgeId::new(ReplicaId::new(1), ReplicaId::new(0)),
            EdgeId::new(ReplicaId::new(2), ReplicaId::new(1)), // far edge
        ],
        2,
    );
    e.check(
        ring_clique == Ok(4),
        "Thm 15 witness (cycle): far-edge counts participate in the conflict clique",
    );
    e.note(format!(
        "Full prefix family ⇒ σ^0(m) ≥ m^|E_0|: ring(8) gives {} bits at m = {M} — \
         matching the 2n·log m closed form.",
        prcc_checker::prefix_clique_bits(ring_tg, M).round()
    ));
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_matches_paper() {
        let e = super::run();
        assert!(e.verdict, "{e}");
        assert!(e.rows.len() >= 10);
    }
}
