//! E13 (extension) — fault sweep: robustness cost of the session layer.
//!
//! The paper assumes reliable exactly-once channels; the session layer
//! (retransmission + WAL recovery + catch-up) re-establishes them on top
//! of lossy links and crashing replicas. This experiment sweeps drop
//! probability × crash count on a ring and measures what that costs:
//! retransmission overhead, duplicate suppression, visibility-latency
//! inflation, and restart-to-caught-up time — with the hard gate that
//! every swept cell still converges (zero stuck updates, checker-clean).

use crate::table::Experiment;
use prcc_net::{FaultPlan, FaultSchedule, SessionConfig};
use prcc_sharegraph::{topology, ReplicaId};
use prcc_sim::{run_scenario, RunReport, ScenarioConfig, WorkloadConfig};

/// One swept cell: ring(`n`), `drop_prob` loss + light duplication, and
/// `crashes` crash/restart events at staggered times.
pub fn run_cell(n: usize, drop_prob: f64, crashes: usize, writes_per_replica: usize) -> RunReport {
    let mut faults = FaultSchedule::from_plan(FaultPlan {
        drop_prob,
        duplicate_prob: if drop_prob > 0.0 { 0.1 } else { 0.0 },
        ..Default::default()
    });
    for c in 0..crashes {
        // Spread crashes over distinct replicas and disjoint windows so
        // the cluster is never fully down.
        let r = ReplicaId::new(((1 + 2 * c) % n) as u32);
        let at = 200 + 700 * c as u64;
        faults = faults.crash(r, at, at + 400);
    }
    run_scenario(
        &topology::ring(n),
        &ScenarioConfig {
            workload: WorkloadConfig {
                writes_per_replica,
                zipf_theta: 0.0,
                seed: 13,
            },
            net_seed: 13,
            staleness_probes: 0,
            faults,
            session: Some(SessionConfig::default()),
            ..Default::default()
        },
    )
}

/// Runs E13.
pub fn run() -> Experiment {
    run_sized(8, 12)
}

/// [`run`] with explicit scale (quick CI mode uses a smaller sweep).
pub fn run_sized(n: usize, writes_per_replica: usize) -> Experiment {
    let mut e = Experiment::new(
        "E13",
        "Fault sweep: session-layer robustness cost (extension)",
        "For every drop rate \u{2264} 0.5 and up to 2 crash/restart events the \
         session layer restores convergence (zero stuck updates, checker \
         clean); retransmissions scale with the drop rate and catch-up \
         time stays bounded.",
        &[
            "drop",
            "crashes",
            "writes",
            "retransmits",
            "dup-suppressed",
            "vis p50",
            "vis p99",
            "catch-up p50",
            "catch-up max",
            "stuck",
            "consistent",
        ],
    );

    let mut fault_free_p99 = 0u64;
    for &drop in &[0.0, 0.1, 0.3, 0.5] {
        for crashes in 0usize..3 {
            let r = run_cell(n, drop, crashes, writes_per_replica);
            if drop == 0.0 && crashes == 0 {
                fault_free_p99 = r.p99_visibility;
            }
            e.row([
                format!("{drop:.1}"),
                crashes.to_string(),
                r.writes.to_string(),
                r.retransmits.to_string(),
                r.dup_suppressed.to_string(),
                r.p50_visibility.to_string(),
                r.p99_visibility.to_string(),
                r.catch_up_p50.to_string(),
                r.catch_up_max.to_string(),
                r.stuck_pending.to_string(),
                r.consistent.to_string(),
            ]);
            e.check(
                r.consistent && r.stuck_pending == 0,
                format!("drop={drop:.1} crashes={crashes} converges checker-clean"),
            );
            if drop == 0.0 && crashes == 0 {
                e.check(
                    r.retransmits == 0,
                    "fault-free run needs zero retransmissions",
                );
            }
            if drop >= 0.3 {
                e.check(
                    r.retransmits > 0,
                    format!("drop={drop:.1} actually exercises retransmission"),
                );
            }
        }
    }
    e.note(format!(
        "fault-free visibility p99 baseline: {fault_free_p99} ticks; \
         the remaining rows show the latency price of each fault mix"
    ));
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_converges_everywhere() {
        let e = run_sized(5, 4);
        assert!(e.verdict, "E13 verdict failed:\n{:?}", e.notes);
        assert_eq!(e.rows.len(), 12);
    }
}
