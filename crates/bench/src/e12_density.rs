//! E12 (extension) — metadata density vs sharing density.
//!
//! The paper's trade-off in structural form: as replication factor grows,
//! `(i, e_jk)`-loops proliferate and the necessary edge set `E_i` swells
//! from the tree floor (`2·N_i`) toward the clique ceiling
//! (`R·(R−1)` uncompressed). Certificate lengths shrink at the same time —
//! denser graphs have shorter loops, which also means Appendix D's
//! truncation saves little there.

use crate::table::Experiment;
use prcc_sharegraph::analysis::{certificate_length_histogram, edge_stats};
use prcc_sharegraph::topology::{self, RandomPlacementConfig};

/// Runs E12.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "E12",
        "Metadata density vs sharing density (extension)",
        "Overhead factor |E_i| / 2N_i rises from 1.0 (trees) toward the \
         clique ceiling as sharing densifies; loop certificates get \
         shorter, so truncation saves less on dense graphs.",
        &[
            "placement",
            "avg counters",
            "max",
            "far-edge frac",
            "overhead",
            "mode cert len",
        ],
    );

    let mode_of = |hist: &[usize]| -> String {
        hist.iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .filter(|(_, &c)| c > 0)
            .map(|(k, _)| k.to_string())
            .unwrap_or_else(|| "-".to_owned())
    };

    let mut overheads = Vec::new();
    let mut cases: Vec<(String, prcc_sharegraph::ShareGraph)> = vec![
        ("tree(15)".into(), topology::binary_tree(15)),
        ("ring(8)".into(), topology::ring(8)),
        ("grid(3x3)".into(), topology::grid(3, 3)),
    ];
    for rf in [2usize, 3, 5] {
        cases.push((
            format!("random rf={rf}"),
            topology::random_connected_placement(RandomPlacementConfig {
                replicas: 8,
                registers: 16,
                replication_factor: rf,
                seed: rf as u64,
            }),
        ));
    }
    cases.push(("clique(6)".into(), topology::clique_full(6, 8)));

    for (name, g) in &cases {
        let s = edge_stats(g);
        let hist = certificate_length_histogram(g);
        e.row([
            name.clone(),
            format!("{:.1}", s.avg_counters),
            s.max_counters.to_string(),
            format!("{:.2}", s.far_edge_fraction),
            format!("{:.2}", s.overhead_factor),
            mode_of(&hist),
        ]);
        overheads.push((name.clone(), s.overhead_factor));
    }

    let tree_oh = overheads[0].1;
    let clique_oh = overheads.last().unwrap().1;
    e.check(
        (tree_oh - 1.0).abs() < 1e-9,
        "tree: overhead factor exactly 1.0 (only incident edges)",
    );
    e.check(
        clique_oh > 2.0,
        "clique: overhead well above the tree floor",
    );
    // Random placements: rf=5 at least as dense as rf=2.
    let rf2 = overheads
        .iter()
        .find(|(n, _)| n == "random rf=2")
        .unwrap()
        .1;
    let rf5 = overheads
        .iter()
        .find(|(n, _)| n == "random rf=5")
        .unwrap()
        .1;
    e.check(
        rf5 >= rf2,
        "denser random sharing ⇒ overhead factor does not decrease",
    );
    // Certificates: ring's are the full cycle, clique's are triangles.
    let ring_hist = certificate_length_histogram(&topology::ring(8));
    let clique_hist = certificate_length_histogram(&topology::clique_full(6, 8));
    e.check(
        ring_hist[8] > 0 && ring_hist[3..8].iter().all(|&c| c == 0),
        "ring(8): every certificate is the full 8-cycle",
    );
    e.check(
        clique_hist[3] > 0 && clique_hist[4..].iter().sum::<usize>() == 0,
        "clique: every certificate is a triangle",
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_matches_expectations() {
        let e = super::run();
        assert!(e.verdict, "{e}");
    }
}
