//! E1 — timestamp-graph edge sets on the paper's worked examples
//! (Figures 3 and 5, Definitions 4–5).

use crate::table::Experiment;
use prcc_sharegraph::{edge, paper_examples, LoopConfig, ReplicaId, TimestampGraphs};

/// Runs E1.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "E1",
        "Timestamp graphs on the paper's examples (Figs 3, 5)",
        "Figure 5b: replica 1 tracks e_43 but not e_34, e_32 but not e_23; \
         a path share graph (Fig 3) induces no far edges at all.",
        &["graph", "replica", "|E_i|", "tracked far edges"],
    );

    // Figure 3: the path-shaped example.
    let g3 = paper_examples::figure3();
    let graphs3 = TimestampGraphs::build(&g3, LoopConfig::EXHAUSTIVE);
    for tg in graphs3.iter() {
        let far: Vec<String> = tg
            .edges()
            .iter()
            .filter(|ed| !ed.touches(tg.replica()))
            .map(|ed| ed.to_string())
            .collect();
        e.row([
            "fig3".to_owned(),
            format!("{}", tg.replica()),
            tg.len().to_string(),
            if far.is_empty() {
                "-".to_owned()
            } else {
                far.join(" ")
            },
        ]);
    }
    let no_far_edges = graphs3
        .iter()
        .all(|tg| tg.edges().iter().all(|ed| ed.touches(tg.replica())));
    e.check(no_far_edges, "Fig 3 (a path): only incident edges tracked");

    // Figure 5: the worked example.
    let g5 = paper_examples::figure5();
    let graphs5 = TimestampGraphs::build(&g5, LoopConfig::EXHAUSTIVE);
    for tg in graphs5.iter() {
        let far: Vec<String> = tg
            .edges()
            .iter()
            .filter(|ed| !ed.touches(tg.replica()))
            .map(|ed| ed.to_string())
            .collect();
        e.row([
            "fig5".to_owned(),
            format!("{}", tg.replica()),
            tg.len().to_string(),
            if far.is_empty() {
                "-".to_owned()
            } else {
                far.join(" ")
            },
        ]);
    }
    let g1 = graphs5.of(ReplicaId::new(0));
    e.check(
        g1.contains(edge(3, 2)),
        "e_43 ∈ G_1 (paper: (1,2,3,4) is a (1,e_43)-loop)",
    );
    e.check(
        !g1.contains(edge(2, 3)),
        "e_34 ∉ G_1 (paper: (1,4,3,2) is not a (1,e_34)-loop)",
    );
    e.check(g1.contains(edge(2, 1)), "e_32 ∈ G_1");
    e.check(!g1.contains(edge(1, 2)), "e_23 ∉ G_1");
    e.note("Directionality: timestamp edges are not necessarily bidirectional.");
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_matches_paper() {
        let e = super::run();
        assert!(e.verdict, "{e}");
        assert_eq!(e.rows.len(), 8);
    }
}
