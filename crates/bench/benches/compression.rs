//! Bench: timestamp compression analysis (Appendix D) — rank and atom
//! computation over edge register-set matrices.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_sharegraph::RegSet;
use prcc_sharegraph::{topology, LoopConfig, ReplicaId, TimestampGraphs};
use prcc_timestamp::compress::{atoms, rank};
use prcc_timestamp::compress_replica;

fn bench_rank(c: &mut Criterion) {
    let mut g = c.benchmark_group("compression_rank");
    for rows in [4usize, 16, 64] {
        // Overlapping register sets: row k covers registers k..k+8.
        let mat: Vec<RegSet> = (0..rows)
            .map(|k| RegSet::from_indices((k as u32)..(k as u32 + 8)))
            .collect();
        g.bench_with_input(BenchmarkId::new("rank", rows), &mat, |b, mat| {
            b.iter(|| rank(black_box(mat)))
        });
        g.bench_with_input(BenchmarkId::new("atoms", rows), &mat, |b, mat| {
            b.iter(|| atoms(black_box(mat)))
        });
    }
    g.finish();
}

fn bench_replica_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("compress_replica");
    let clique = topology::clique_full(8, 16);
    let graphs = TimestampGraphs::build(&clique, LoopConfig::EXHAUSTIVE);
    g.bench_function("clique8x16", |b| {
        b.iter(|| compress_replica(black_box(&clique), graphs.of(ReplicaId::new(0))))
    });
    let geo = topology::geo_placement(6, 4, 2, 0);
    let geo_graphs = TimestampGraphs::build(&geo, LoopConfig::EXHAUSTIVE);
    g.bench_function("geo6", |b| {
        b.iter(|| compress_replica(black_box(&geo), geo_graphs.of(ReplicaId::new(0))))
    });
    g.finish();
}

criterion_group!(benches, bench_rank, bench_replica_compression);
criterion_main!(benches);
