//! Bench: the consistency checker — happened-before construction and
//! full safety/liveness verification on traces of increasing size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_checker::{check, HbGraph, Trace};
use prcc_core::{System, Value};
use prcc_net::DelayModel;
use prcc_sharegraph::{topology, Placement, RegisterId, ReplicaId};

/// Generates a consistent trace by running the real protocol.
fn make_trace(writes_per_replica: u64) -> (Trace, Placement) {
    let g = topology::ring(6);
    let placement = g.placement().clone();
    let mut sys = System::builder(g)
        .delay(DelayModel::Uniform { min: 1, max: 10 })
        .seed(1)
        .build();
    for round in 0..writes_per_replica {
        for i in 0..6u32 {
            sys.write(ReplicaId::new(i), RegisterId::new(i), Value::from(round));
        }
        for _ in 0..4 {
            sys.step();
        }
    }
    sys.run_to_quiescence();
    (sys.trace().clone(), placement)
}

fn bench_hb_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("hb_build");
    for n in [20u64, 80, 320] {
        let (trace, _) = make_trace(n);
        g.bench_with_input(
            BenchmarkId::new("updates", trace.num_updates()),
            &trace,
            |b, t| b.iter(|| HbGraph::build(black_box(t))),
        );
    }
    g.finish();
}

fn bench_full_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("consistency_check");
    g.sample_size(20);
    for n in [20u64, 80] {
        let (trace, placement) = make_trace(n);
        g.bench_with_input(
            BenchmarkId::new("updates", trace.num_updates()),
            &(trace, placement),
            |b, (t, p)| b.iter(|| check(black_box(t), black_box(p))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_hb_build, bench_full_check);
criterion_main!(benches);
