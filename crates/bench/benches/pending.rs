//! Bench: pending-buffer drain — the replica's step-4 loop under
//! out-of-order bursts, scan vs dependency-counting wakeup (DESIGN §6
//! "pending-set scheduling" ablation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_core::{CausalityTracker, EdgeTracker, PendingMode, Replica, Value};
use prcc_sharegraph::{topology, LoopConfig, RegisterId, ReplicaId, TimestampGraphs};
use prcc_timestamp::TsRegistry;
use std::sync::Arc;

/// Builds `n` updates from replica 0 to replica 1 and returns them
/// reversed (worst-case ordering for the scan-based drain).
fn make_burst(n: usize, mode: PendingMode) -> (Replica, Vec<prcc_core::UpdateMsg>) {
    let g = topology::path(2);
    let reg = Arc::new(TsRegistry::new(
        &g,
        TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE),
    ));
    let r0 = ReplicaId::new(0);
    let r1 = ReplicaId::new(1);
    let mut sender = Replica::new(
        r0,
        g.placement().registers_of(r0).clone(),
        Box::new(EdgeTracker::new(reg.clone(), r0)) as Box<dyn CausalityTracker>,
    );
    let mut msgs = Vec::with_capacity(n);
    for i in 0..n {
        let (m, _) = sender
            .write(RegisterId::new(0), Value::from(i as u64), vec![r1])
            .unwrap();
        msgs.push(m);
    }
    msgs.reverse();
    let receiver = Replica::new_with_mode(
        r1,
        g.placement().registers_of(r1).clone(),
        Box::new(EdgeTracker::new(reg, r1)) as Box<dyn CausalityTracker>,
        mode,
    );
    (receiver, msgs)
}

fn bench_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("pending_drain");
    g.sample_size(20);
    for (label, mode) in [("scan", PendingMode::Scan), ("wakeup", PendingMode::Wakeup)] {
        for n in [16usize, 64, 256] {
            g.bench_with_input(
                BenchmarkId::new(format!("reversed_burst/{label}"), n),
                &n,
                |b, &n| {
                    b.iter_batched(
                        || make_burst(n, mode),
                        |(mut receiver, msgs)| {
                            let mut applied = 0;
                            for m in msgs {
                                applied += receiver.receive(black_box(m)).len();
                            }
                            assert_eq!(applied, n);
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_drain);
criterion_main!(benches);
