//! Bench: the interleaving explorer — state-space size and throughput of
//! exhaustive verification as the scenario grows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_core::Scenario;
use prcc_sharegraph::{topology, RegisterId, ReplicaId};

fn chain_scenario(n: usize) -> Scenario {
    let g = topology::ring(n);
    let mut s = Scenario::new(g);
    let mut prev = None;
    for i in 1..n as u32 {
        let idx = match prev {
            None => s.write(ReplicaId::new(1), RegisterId::new(0)),
            Some(p) => s.write_after(ReplicaId::new(i), RegisterId::new(i), [p]),
        };
        prev = Some(idx);
    }
    s
}

fn concurrent_scenario(writers: usize) -> Scenario {
    let g = topology::clique_full(writers, 1);
    let mut s = Scenario::new(g);
    for i in 0..writers as u32 {
        s.write(ReplicaId::new(i), RegisterId::new(0));
    }
    s
}

fn bench_explore(c: &mut Criterion) {
    let mut g = c.benchmark_group("explore");
    g.sample_size(10);
    for n in [4usize, 5, 6] {
        let s = chain_scenario(n);
        g.bench_with_input(BenchmarkId::new("ring_chain", n), &s, |b, s| {
            b.iter(|| black_box(s).explore())
        });
    }
    for w in [3usize, 4] {
        let s = concurrent_scenario(w);
        g.bench_with_input(BenchmarkId::new("concurrent_clique", w), &s, |b, s| {
            b.iter(|| black_box(s).explore())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
