//! Bench: the routed protocol — plain ring vs broken ring end-to-end, and
//! the RoutedSystem surgery cost on general graphs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_core::{RoutedRing, RoutedSystem, System, Value};
use prcc_net::DelayModel;
use prcc_sharegraph::{topology, RegisterId, ReplicaId};

fn drive_ring(n: usize) {
    let mut sys = System::builder(topology::ring(n))
        .delay(DelayModel::Fixed(2))
        .seed(1)
        .build();
    for round in 0..5u64 {
        for i in 0..n as u32 {
            sys.write(ReplicaId::new(i), RegisterId::new(i), Value::from(round));
        }
        sys.run_to_quiescence();
    }
    assert!(sys.check().is_consistent());
}

fn drive_broken(n: usize) {
    let mut sys = RoutedRing::new(n, DelayModel::Fixed(2), 1);
    for round in 0..5u64 {
        for i in 0..n as u32 {
            sys.write(ReplicaId::new(i), RegisterId::new(i), Value::from(round));
        }
        sys.run_to_quiescence();
    }
    assert!(sys.check().is_consistent());
}

fn bench_ring_vs_broken(c: &mut Criterion) {
    let mut g = c.benchmark_group("routed_ring");
    g.sample_size(10);
    for n in [6usize, 10] {
        g.bench_with_input(BenchmarkId::new("plain", n), &n, |b, &n| {
            b.iter(|| drive_ring(black_box(n)))
        });
        g.bench_with_input(BenchmarkId::new("broken", n), &n, |b, &n| {
            b.iter(|| drive_broken(black_box(n)))
        });
    }
    g.finish();
}

fn bench_surgery(c: &mut Criterion) {
    let mut g = c.benchmark_group("routed_surgery");
    g.sample_size(10);
    let grid = topology::grid(4, 4);
    g.bench_function("grid4x4_one_break", |b| {
        b.iter(|| {
            RoutedSystem::new(
                black_box(&grid),
                &[(ReplicaId::new(0), ReplicaId::new(1))],
                DelayModel::Fixed(1),
                0,
            )
            .expect("routable")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ring_vs_broken, bench_surgery);
criterion_main!(benches);
