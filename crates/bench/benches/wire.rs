//! Microbenchmarks of the wire codec's send path: single-pair encode,
//! full clique fan-out (the encode-once case), and the frame primitives
//! underneath — the numbers behind BENCH_wire.json's ns/send column.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_core::{Metadata, WireCodec, WireMode};
use prcc_sharegraph::{topology, LoopConfig, RegisterId, ReplicaId, TimestampGraphs};
use prcc_timestamp::{TsRegistry, WireEncoder};
use std::sync::Arc;

fn registry(g: &prcc_sharegraph::ShareGraph) -> Arc<TsRegistry> {
    Arc::new(TsRegistry::new(
        g,
        TimestampGraphs::build(g, LoopConfig::EXHAUSTIVE),
    ))
}

/// One advanced metadata Arc per round, pre-built so only codec cost is
/// on the clock.
fn advancing_metas(reg: &TsRegistry, sender: ReplicaId, rounds: usize) -> Vec<Arc<Metadata>> {
    let mut ts = reg.new_timestamp(sender);
    (0..rounds)
        .map(|k| {
            reg.advance(&mut ts, RegisterId::new((k % 2) as u32));
            Arc::new(Metadata::Edge(ts.clone()))
        })
        .collect()
}

/// Fan-out of one write on clique_full(n, 2): n−1 recipients, identical
/// streams — the dense case the encode-once path exists for.
fn bench_clique_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_fanout");
    group.sample_size(20);
    for n in [8usize, 24] {
        let g = topology::clique_full(n, 2);
        let reg = registry(&g);
        let sender = ReplicaId::new(0);
        let recipients: Vec<ReplicaId> = (1..n as u32).map(ReplicaId::new).collect();
        let metas = advancing_metas(&reg, sender, 64);
        for (mode, name) in [
            (WireMode::Raw, "raw"),
            (WireMode::Compressed, "compressed"),
            (WireMode::Adaptive, "adaptive"),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &metas, |b, metas| {
                let mut codec = WireCodec::new(mode, Some(reg.clone()));
                let mut k = 0usize;
                b.iter(|| {
                    let out = codec.encode_fanout(sender, &recipients, &metas[k % metas.len()]);
                    k += 1;
                    black_box(out)
                });
            });
        }
    }
    group.finish();
}

/// Per-pair encode on a ring — the sparse case where every pair stream
/// is distinct and delta frames are tiny.
fn bench_ring_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_pair");
    group.sample_size(20);
    let g = topology::ring(12);
    let reg = registry(&g);
    let (s, r) = (ReplicaId::new(0), ReplicaId::new(1));
    let metas = advancing_metas(&reg, s, 64);
    for (mode, name) in [(WireMode::Raw, "raw"), (WireMode::Compressed, "compressed")] {
        group.bench_with_input(BenchmarkId::new(name, 12), &metas, |b, metas| {
            let mut codec = WireCodec::new(mode, Some(reg.clone()));
            let mut k = 0usize;
            b.iter(|| {
                let out = codec.encode(s, r, &metas[k % metas.len()]);
                k += 1;
                black_box(out)
            });
        });
    }
    group.finish();
}

/// The raw frame primitive: one varint/zigzag delta pass over a dense
/// layout, no codec bookkeeping around it.
fn bench_frame_primitive(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_frame");
    group.sample_size(20);
    let g = topology::clique_full(24, 2);
    let reg = registry(&g);
    let (s, r) = (ReplicaId::new(0), ReplicaId::new(1));
    let layout = reg.wire_layout(r, s);
    let mut ts = reg.new_timestamp(s);
    for k in 0..64 {
        reg.advance(&mut ts, RegisterId::new(k % 2));
    }
    let full = ts.values().to_vec();
    group.bench_function("encode_frame/clique24", |b| {
        let mut enc = WireEncoder::new(&layout);
        let mut buf = Vec::new();
        b.iter(|| {
            enc.encode(&layout, black_box(&full), &mut buf);
            black_box(buf.len())
        });
    });
    group.bench_function("project/clique24", |b| {
        b.iter(|| black_box(layout.project(black_box(&full))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_clique_fanout,
    bench_ring_pair,
    bench_frame_primitive
);
criterion_main!(benches);
