//! Bench: snapshot publishing — the sharded copy-on-write store versus
//! the clone-the-world oracle, as the register space grows 64 → 16384.
//!
//! `StoreMode::Clone` materialises every publish as a full copy of the
//! register map: O(store). `StoreMode::Cow` republishes `Arc`s for
//! untouched shards and rebuilds only what changed since the last
//! publish: O(Δ). The steady-state case measured here is the replica
//! loop's — one write dirties one shard, then the view is captured —
//! so the clone/cow gap at 16384 registers is the direct cost the
//! pipelined loop's per-burst publish avoids.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_core::runtime::ReplicaView;
use prcc_core::{CausalityTracker, EdgeTracker, Replica, StoreMode, Value};
use prcc_sharegraph::{topology, LoopConfig, RegisterId, ReplicaId, TimestampGraphs};
use prcc_timestamp::TsRegistry;
use std::sync::Arc;

/// One replica of a 2-clique holding all `k` registers, every register
/// written once so the store is fully populated.
fn setup(k: usize) -> Replica {
    let graph = topology::clique_full(2, k);
    let registry = Arc::new(TsRegistry::new(
        &graph,
        TimestampGraphs::build(&graph, LoopConfig::EXHAUSTIVE),
    ));
    let r0 = ReplicaId::new(0);
    let mut replica = Replica::new(
        r0,
        graph.placement().registers_of(r0).clone(),
        Box::new(EdgeTracker::new(registry, r0)) as Box<dyn CausalityTracker>,
    );
    for i in 0..k {
        replica
            .write(RegisterId::new(i as u32), Value::from(i as u64), Vec::new())
            .expect("replica stores every register");
    }
    replica
}

fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("publish");
    for k in [64usize, 1024, 16384] {
        let mut replica = setup(k);
        let frontier = vec![k as u64, 0];

        // Clone-the-world: every capture copies all k registers (plus
        // provenance).
        group.bench_with_input(BenchmarkId::new("clone", k), &k, |b, _| {
            b.iter(|| {
                black_box(ReplicaView::capture(
                    &replica,
                    StoreMode::Clone,
                    frontier.clone(),
                ))
            })
        });

        // Steady-state COW: a previous publish holds every shard (so
        // the store is fully shared), one register is overwritten (one
        // shard clones), and the view is captured — the replica loop's
        // write → publish cycle.
        group.bench_with_input(BenchmarkId::new("cow", k), &k, |b, _| {
            let mut prev = ReplicaView::capture(&replica, StoreMode::Cow, frontier.clone());
            let mut i = 0u64;
            b.iter(|| {
                replica
                    .write(
                        RegisterId::new((i % k as u64) as u32),
                        Value::from(i),
                        Vec::new(),
                    )
                    .expect("rewrite stays stored");
                i += 1;
                prev = ReplicaView::capture(&replica, StoreMode::Cow, frontier.clone());
                black_box(&prev);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_publish);
criterion_main!(benches);
