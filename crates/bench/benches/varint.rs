//! Microbenchmark of the chunked LEB128 frame primitives against their
//! scalar reference bodies: the per-frame win of testing 8 zig-zag
//! deltas per branch instead of one. Widths bracket the deployed range
//! (ring pair streams are ~4–8 explicit entries, clique layouts reach
//! dozens); the "dense" shape is the steady state (every delta one
//! byte), "mixed" forces a continuation byte into each chunk so the
//! fast path keeps bailing to the scalar tail.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_timestamp::PairLayout;

fn layout(width: usize) -> PairLayout {
    PairLayout::identity((0..width).collect())
}

/// `rounds` successive full slices whose per-entry deltas are all
/// one-byte varints ("dense") or contain one multi-byte delta per
/// 8-entry chunk ("mixed").
fn slices(width: usize, rounds: usize, dense: bool) -> Vec<Vec<u64>> {
    let mut cur = vec![0u64; width];
    (0..rounds)
        .map(|_| {
            for (j, v) in cur.iter_mut().enumerate() {
                *v += if dense || j % 8 != 7 {
                    1 + (j as u64 % 3)
                } else {
                    1 << 20
                };
            }
            cur.clone()
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("varint_encode");
    for width in [8usize, 24, 64] {
        for (shape, dense) in [("dense", true), ("mixed", false)] {
            let lay = layout(width);
            let rounds = slices(width, 64, dense);
            let id = format!("{shape}/{width}");
            group.bench_with_input(BenchmarkId::new("chunked", &id), &rounds, |b, rounds| {
                let mut prev = vec![0u64; width];
                let mut next = Vec::new();
                let mut buf = Vec::new();
                let mut k = 0usize;
                b.iter(|| {
                    buf.clear();
                    let n = lay.encode_frame(&prev, &rounds[k % rounds.len()], &mut buf, &mut next);
                    std::mem::swap(&mut prev, &mut next);
                    k += 1;
                    black_box(n)
                });
            });
            group.bench_with_input(BenchmarkId::new("scalar", &id), &rounds, |b, rounds| {
                let mut prev = vec![0u64; width];
                let mut next = Vec::new();
                let mut buf = Vec::new();
                let mut k = 0usize;
                b.iter(|| {
                    buf.clear();
                    let n = lay.encode_frame_scalar(
                        &prev,
                        &rounds[k % rounds.len()],
                        &mut buf,
                        &mut next,
                    );
                    std::mem::swap(&mut prev, &mut next);
                    k += 1;
                    black_box(n)
                });
            });
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("varint_decode");
    for width in [8usize, 24, 64] {
        for (shape, dense) in [("dense", true), ("mixed", false)] {
            let lay = layout(width);
            // One steady-state frame, decoded repeatedly against the
            // same prev (decode never mutates prev, so this is sound).
            let prev = vec![7u64; width];
            let full = slices(width, 1, dense)
                .pop()
                .unwrap()
                .iter()
                .map(|v| v + 7)
                .collect::<Vec<_>>();
            let mut frame = Vec::new();
            let mut next = Vec::new();
            lay.encode_frame(&prev, &full, &mut frame, &mut next);
            let id = format!("{shape}/{width}");
            group.bench_with_input(BenchmarkId::new("chunked", &id), &frame, |b, frame| {
                let mut next = Vec::new();
                b.iter(|| {
                    let mut pos = 0usize;
                    let out = lay.decode_frame(&prev, frame, &mut pos, &mut next).unwrap();
                    black_box(out)
                });
            });
            group.bench_with_input(BenchmarkId::new("scalar", &id), &frame, |b, frame| {
                let mut next = Vec::new();
                b.iter(|| {
                    let mut pos = 0usize;
                    let out = lay
                        .decode_frame_scalar(&prev, frame, &mut pos, &mut next)
                        .unwrap();
                    black_box(out)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
