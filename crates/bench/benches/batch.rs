//! Bench: the receiver-side batched apply path — `receive_batch` with
//! the once-per-batch predicate evaluation vs the per-message fallback
//! loop, for growing batch sizes on one pair stream.
//!
//! (`advance` / `merge` / `J` themselves are covered in `predicate.rs`;
//! this file measures what the batch pipeline buys on top of them.)

use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use prcc_core::{CausalityTracker, EdgeTracker, Replica, UpdateMsg, Value};
use prcc_sharegraph::{topology, LoopConfig, RegisterId, ReplicaId, TimestampGraphs};
use prcc_timestamp::TsRegistry;
use std::sync::Arc;

/// A writer/receiver pair on ring(8) plus `k` consecutive updates from
/// the writer on their shared register.
fn setup(k: usize) -> (Replica, Vec<UpdateMsg>) {
    let graph = topology::ring(8);
    let registry = Arc::new(TsRegistry::new(
        &graph,
        TimestampGraphs::build(&graph, LoopConfig::EXHAUSTIVE),
    ));
    let r0 = ReplicaId::new(0);
    let r1 = ReplicaId::new(1);
    let x = RegisterId::new(0);
    let mut writer = Replica::new(
        r0,
        graph.placement().registers_of(r0).clone(),
        Box::new(EdgeTracker::new(registry.clone(), r0)) as Box<dyn CausalityTracker>,
    );
    let receiver = Replica::new(
        r1,
        graph.placement().registers_of(r1).clone(),
        Box::new(EdgeTracker::new(registry, r1)) as Box<dyn CausalityTracker>,
    );
    let msgs = (0..k)
        .map(|i| {
            let (msg, _) = writer
                .write(x, Value::from(i as u64), vec![r1])
                .expect("writer stores x");
            msg
        })
        .collect();
    (receiver, msgs)
}

fn bench_receive_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("receive_batch");
    for k in [1usize, 4, 16, 64] {
        let (receiver, msgs) = setup(k);

        // The batched path: one predicate evaluation, then k applies.
        g.bench_with_input(BenchmarkId::new("batched", k), &k, |b, _| {
            b.iter_batched(
                || (receiver.clone(), msgs.clone()),
                |(mut r, msgs)| black_box(r.receive_batch(msgs)),
                BatchSize::SmallInput,
            )
        });

        // The fallback: the per-message receive loop the fast path is
        // differentially tested against.
        g.bench_with_input(BenchmarkId::new("per_message", k), &k, |b, _| {
            b.iter_batched(
                || (receiver.clone(), msgs.clone()),
                |(mut r, msgs)| {
                    let mut applied = 0;
                    for m in msgs {
                        applied += r.receive(m).len();
                    }
                    black_box(applied)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_receive_batch);
criterion_main!(benches);
