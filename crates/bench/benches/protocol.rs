//! Bench: end-to-end protocol throughput — writes driven through a full
//! simulated deployment to quiescence, edge-indexed vs vector-clock
//! (experiment E10's engine under the profiler).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_core::TrackerKind;
use prcc_net::DelayModel;
use prcc_sharegraph::{topology, LoopConfig};
use prcc_sim::{run_scenario, ScenarioConfig, WorkloadConfig};

fn bench_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_run");
    g.sample_size(10);
    let cfg_base = ScenarioConfig {
        workload: WorkloadConfig {
            writes_per_replica: 30,
            zipf_theta: 0.9,
            seed: 1,
        },
        delay: DelayModel::Uniform { min: 1, max: 10 },
        net_seed: 1,
        steps_between_ops: 2,
        dummies: vec![],
        staleness_probes: 0,
        tracker: TrackerKind::EdgeIndexed(LoopConfig::EXHAUSTIVE),
        wire_mode: prcc_core::WireMode::default(),
        faults: prcc_net::FaultSchedule::default(),
        session: None,
        batch: prcc_core::BatchPolicy::default(),
        clients: 0,
    };
    for (name, graph) in [
        ("ring8", topology::ring(8)),
        ("tree15", topology::binary_tree(15)),
        ("grid3x3", topology::grid(3, 3)),
    ] {
        g.bench_with_input(BenchmarkId::new("edge", name), &graph, |b, graph| {
            b.iter(|| run_scenario(black_box(graph), &cfg_base))
        });
        let vc_cfg = ScenarioConfig {
            tracker: TrackerKind::VectorClock,
            ..cfg_base.clone()
        };
        g.bench_with_input(
            BenchmarkId::new("vector_clock", name),
            &graph,
            |b, graph| b.iter(|| run_scenario(black_box(graph), &vc_cfg)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
