//! Bench: timestamp-graph construction (Definition 5) across topologies,
//! plus the exhaustive-vs-bounded loop-search ablation called out in
//! DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_sharegraph::{topology, LoopConfig, TimestampGraphs};

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("ts_graph_build");
    g.sample_size(10);
    for (name, graph) in [
        ("ring8", topology::ring(8)),
        ("ring12", topology::ring(12)),
        ("tree15", topology::binary_tree(15)),
        ("grid3x3", topology::grid(3, 3)),
        ("clique6", topology::clique_full(6, 12)),
    ] {
        g.bench_with_input(BenchmarkId::new("exhaustive", name), &graph, |b, graph| {
            b.iter(|| TimestampGraphs::build(black_box(graph), LoopConfig::EXHAUSTIVE))
        });
        g.bench_with_input(BenchmarkId::new("bounded4", name), &graph, |b, graph| {
            b.iter(|| TimestampGraphs::build(black_box(graph), LoopConfig::bounded(4)))
        });
    }
    g.finish();
}

fn bench_loop_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("loop_query");
    g.sample_size(20);
    let ring = topology::ring(10);
    let far = prcc_sharegraph::edge(5, 6);
    let i = prcc_sharegraph::ReplicaId::new(0);
    g.bench_function("ring10_far_edge", |b| {
        b.iter(|| prcc_sharegraph::exists_loop(black_box(&ring), i, far, LoopConfig::EXHAUSTIVE))
    });
    let grid = topology::grid(4, 4);
    let e = prcc_sharegraph::edge(5, 6);
    g.bench_function("grid4x4_edge", |b| {
        b.iter(|| prcc_sharegraph::exists_loop(black_box(&grid), i, e, LoopConfig::EXHAUSTIVE))
    });
    g.finish();
}

criterion_group!(benches, bench_construction, bench_loop_query);
criterion_main!(benches);
