//! Bench: the three timestamp operations of Section 3.3 — `advance`,
//! `merge`, and predicate `J` — for edge-indexed timestamps vs the
//! vector-clock baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_sharegraph::{topology, LoopConfig, RegisterId, ReplicaId, TimestampGraphs};
use prcc_timestamp::{TsRegistry, VectorClock};

fn bench_edge_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("edge_timestamp_ops");
    for n in [6usize, 12, 24] {
        let graph = topology::ring(n);
        let reg = TsRegistry::new(
            &graph,
            TimestampGraphs::build(&graph, LoopConfig::EXHAUSTIVE),
        );
        let r0 = ReplicaId::new(0);
        let r1 = ReplicaId::new(1);
        let mut t0 = reg.new_timestamp(r0);
        reg.advance(&mut t0, RegisterId::new(0));
        let incoming = t0.clone();
        let t1 = reg.new_timestamp(r1);

        g.bench_with_input(BenchmarkId::new("advance", n), &n, |b, _| {
            let mut t = reg.new_timestamp(r0);
            b.iter(|| reg.advance(black_box(&mut t), RegisterId::new(0)))
        });
        g.bench_with_input(BenchmarkId::new("ready", n), &n, |b, _| {
            b.iter(|| reg.ready(black_box(&t1), r0, black_box(&incoming)))
        });
        // Ablation (DESIGN §6 "predicate J indexing"): re-intersect
        // E_i ∩ E_k on every evaluation instead of using the precomputed
        // all-pairs position maps.
        g.bench_with_input(BenchmarkId::new("ready_scan", n), &n, |b, _| {
            b.iter(|| reg.ready_scan(black_box(&t1), r0, black_box(&incoming)))
        });
        g.bench_with_input(BenchmarkId::new("merge", n), &n, |b, _| {
            let mut t = reg.new_timestamp(r1);
            b.iter(|| reg.merge(black_box(&mut t), r0, black_box(&incoming)))
        });
    }
    g.finish();
}

fn bench_vc_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("vector_clock_ops");
    for n in [6usize, 12, 24] {
        let mut sender = VectorClock::new(n);
        sender.increment(ReplicaId::new(0));
        let msg = sender.clone();
        let receiver = VectorClock::new(n);
        g.bench_with_input(BenchmarkId::new("deliverable", n), &n, |b, _| {
            b.iter(|| black_box(&receiver).deliverable(ReplicaId::new(0), black_box(&msg)))
        });
        g.bench_with_input(BenchmarkId::new("merge", n), &n, |b, _| {
            let mut r = VectorClock::new(n);
            b.iter(|| r.merge(black_box(&msg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_edge_ops, bench_vc_ops);
criterion_main!(benches);
