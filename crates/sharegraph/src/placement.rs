//! Register placement: which replica stores which registers.
//!
//! A [`Placement`] is the static assignment `X_i` of registers to replicas
//! (Section 2 of the paper). The share graph, loops, and timestamp graphs
//! are all derived from it.

use crate::ids::{RegisterId, ReplicaId};
use crate::regset::RegSet;
use std::collections::BTreeMap;
use std::fmt;

/// Static register placement: for each replica `i`, the set `X_i` of
/// registers it stores.
///
/// Construct one with [`PlacementBuilder`], the topology generators in
/// [`crate::topology`], or the paper figures in [`crate::paper_examples`].
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::{Placement, ReplicaId, RegisterId};
/// // The running example of Section 3: X1={x}, X2={x,y}, X3={y,z}, X4={z}
/// let p = Placement::builder(4)
///     .store(0, 0) // replica 0 stores register 0 (x)
///     .store(1, 0)
///     .store(1, 1)
///     .store(2, 1)
///     .store(2, 2)
///     .store(3, 2)
///     .build();
/// let x01 = p.shared(ReplicaId::new(0), ReplicaId::new(1));
/// assert!(x01.contains(RegisterId::new(0)));
/// assert!(p.shared(ReplicaId::new(0), ReplicaId::new(3)).is_empty());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Placement {
    /// `stores[i]` = X_i.
    stores: Vec<RegSet>,
    /// Number of distinct registers (max id + 1 over all X_i).
    num_registers: usize,
    /// `holders[x]` = replicas storing register x, sorted.
    holders: Vec<Vec<ReplicaId>>,
}

impl Placement {
    /// Starts building a placement over `replicas` replicas.
    pub fn builder(replicas: usize) -> PlacementBuilder {
        PlacementBuilder {
            stores: vec![RegSet::new(); replicas],
        }
    }

    /// Builds a placement directly from per-replica register sets.
    pub fn from_sets(stores: Vec<RegSet>) -> Self {
        let num_registers = stores
            .iter()
            .flat_map(|s| s.iter())
            .map(|x| x.index() + 1)
            .max()
            .unwrap_or(0);
        let mut holders = vec![Vec::new(); num_registers];
        for (i, s) in stores.iter().enumerate() {
            for x in s.iter() {
                holders[x.index()].push(ReplicaId::new(i as u32));
            }
        }
        Placement {
            stores,
            num_registers,
            holders,
        }
    }

    /// Number of replicas `R`.
    pub fn num_replicas(&self) -> usize {
        self.stores.len()
    }

    /// Number of distinct registers in the system.
    pub fn num_registers(&self) -> usize {
        self.num_registers
    }

    /// All replica ids, `0..R`.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.stores.len() as u32).map(ReplicaId::new)
    }

    /// The set `X_i` of registers stored at replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn registers_of(&self, i: ReplicaId) -> &RegSet {
        &self.stores[i.index()]
    }

    /// The set `X_ij = X_i ∩ X_j` of registers stored at both replicas.
    pub fn shared(&self, i: ReplicaId, j: ReplicaId) -> RegSet {
        self.stores[i.index()].intersection(&self.stores[j.index()])
    }

    /// True if replicas `i` and `j` share at least one register, i.e. the
    /// share graph has edges `e_ij` and `e_ji`.
    pub fn shares(&self, i: ReplicaId, j: ReplicaId) -> bool {
        i != j && self.stores[i.index()].intersects(&self.stores[j.index()])
    }

    /// True if replica `i` stores register `x`.
    pub fn stores(&self, i: ReplicaId, x: RegisterId) -> bool {
        self.stores[i.index()].contains(x)
    }

    /// The set `C(x)` of replicas storing register `x` (sorted ascending).
    /// Empty for unknown registers.
    pub fn holders(&self, x: RegisterId) -> &[ReplicaId] {
        self.holders
            .get(x.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of (replica, register) storage pairs — the storage
    /// footprint that partial replication reduces.
    pub fn storage_cells(&self) -> usize {
        self.stores.iter().map(RegSet::len).sum()
    }

    /// True if every replica stores every register (full replication).
    pub fn is_full_replication(&self) -> bool {
        self.stores.iter().all(|s| s.len() == self.num_registers)
    }
}

impl fmt::Debug for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = BTreeMap::new();
        for (i, s) in self.stores.iter().enumerate() {
            m.insert(ReplicaId::new(i as u32), s);
        }
        f.debug_struct("Placement").field("stores", &m).finish()
    }
}

/// Incremental builder for [`Placement`] (see C-BUILDER).
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::Placement;
/// let p = Placement::builder(2).store_all(0, [0, 1]).store(1, 1).build();
/// assert_eq!(p.num_registers(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PlacementBuilder {
    stores: Vec<RegSet>,
}

impl PlacementBuilder {
    /// Records that replica `replica` stores register `register`.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn store(mut self, replica: u32, register: u32) -> Self {
        self.stores[replica as usize].insert(RegisterId::new(register));
        self
    }

    /// Records that `replica` stores every register in `registers`.
    pub fn store_all<I: IntoIterator<Item = u32>>(mut self, replica: u32, registers: I) -> Self {
        for x in registers {
            self.stores[replica as usize].insert(RegisterId::new(x));
        }
        self
    }

    /// Records that register `register` is shared by all `replicas`.
    pub fn share<I: IntoIterator<Item = u32>>(mut self, register: u32, replicas: I) -> Self {
        for r in replicas {
            self.stores[r as usize].insert(RegisterId::new(register));
        }
        self
    }

    /// Finalizes the placement.
    pub fn build(self) -> Placement {
        Placement::from_sets(self.stores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line4() -> Placement {
        // X0={0}, X1={0,1}, X2={1,2}, X3={2}
        Placement::builder(4)
            .store(0, 0)
            .store_all(1, [0, 1])
            .store_all(2, [1, 2])
            .store(3, 2)
            .build()
    }

    #[test]
    fn basic_accessors() {
        let p = line4();
        assert_eq!(p.num_replicas(), 4);
        assert_eq!(p.num_registers(), 3);
        assert_eq!(p.registers_of(ReplicaId::new(1)).len(), 2);
        assert!(p.stores(ReplicaId::new(2), RegisterId::new(2)));
        assert!(!p.stores(ReplicaId::new(0), RegisterId::new(2)));
    }

    #[test]
    fn sharing() {
        let p = line4();
        assert!(p.shares(ReplicaId::new(0), ReplicaId::new(1)));
        assert!(!p.shares(ReplicaId::new(0), ReplicaId::new(2)));
        assert!(!p.shares(ReplicaId::new(1), ReplicaId::new(1)));
        assert_eq!(
            p.shared(ReplicaId::new(1), ReplicaId::new(2)),
            RegSet::from_indices([1])
        );
    }

    #[test]
    fn holders_sorted() {
        let p = line4();
        assert_eq!(
            p.holders(RegisterId::new(1)),
            &[ReplicaId::new(1), ReplicaId::new(2)]
        );
        assert!(p.holders(RegisterId::new(99)).is_empty());
    }

    #[test]
    fn storage_and_full_replication() {
        let p = line4();
        assert_eq!(p.storage_cells(), 6);
        assert!(!p.is_full_replication());

        let full = Placement::builder(2)
            .store_all(0, [0, 1])
            .store_all(1, [0, 1])
            .build();
        assert!(full.is_full_replication());
    }

    #[test]
    fn share_builder() {
        let p = Placement::builder(3).share(0, [0, 1, 2]).build();
        assert_eq!(p.holders(RegisterId::new(0)).len(), 3);
        assert!(p.shares(ReplicaId::new(0), ReplicaId::new(2)));
    }

    #[test]
    fn empty_placement() {
        let p = Placement::builder(3).build();
        assert_eq!(p.num_registers(), 0);
        assert_eq!(p.storage_cells(), 0);
        assert!(p.is_full_replication()); // vacuously: 0 registers everywhere
    }
}
