//! `(i, e_jk)`-loop detection — Definition 4 of the paper.
//!
//! Given replica `i` and a directed share-graph edge `e_jk` with
//! `j ≠ i ≠ k`, an `(i, e_jk)`-loop is a simple loop
//! `(i, l_1, …, l_s = k, j = r_1, r_2, …, r_t, i)` with `s ≥ 1`, `t ≥ 1`
//! (and `r_{t+1} = i`) such that
//!
//! 1. `X_jk − ∪_{1≤p≤s−1} X_{l_p} ≠ ∅`
//! 2. `X_{j r_2} − ∪_{1≤p≤s−1} X_{l_p} ≠ ∅`
//! 3. for `2 ≤ q ≤ t`: `X_{r_q r_{q+1}} − ∪_{1≤p≤s} X_{l_p} ≠ ∅`
//!
//! The existence of such a loop is exactly what forces replica `i` to track
//! edge `e_jk` in its timestamp (Theorem 8), and the edge set it induces is
//! also sufficient (Section 3.3).
//!
//! Detection enumerates simple paths with pruning. This is exponential in
//! the worst case (the problem inherently quantifies over simple loops);
//! [`LoopConfig::max_loop_edges`] bounds the search for large graphs and
//! doubles as the paper's "sacrificing causality" truncation (Appendix D).

use crate::graph::ShareGraph;
use crate::ids::{EdgeId, ReplicaId};
use crate::regset::RegSet;

/// Search configuration for loop detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopConfig {
    /// If set, only loops with at most this many edges (equivalently,
    /// vertices) are considered. `None` searches exhaustively.
    ///
    /// Setting this to `l + 1` implements the truncated tracking of
    /// Appendix D ("Sacrificing causality"): causal consistency is then only
    /// guaranteed when single-hop messages outrun `l`-hop propagation.
    pub max_loop_edges: Option<usize>,
}

impl LoopConfig {
    /// Exhaustive search (no length bound).
    pub const EXHAUSTIVE: LoopConfig = LoopConfig {
        max_loop_edges: None,
    };

    /// Only consider loops of at most `edges` edges.
    pub fn bounded(edges: usize) -> Self {
        LoopConfig {
            max_loop_edges: Some(edges),
        }
    }
}

/// A concrete `(i, e_jk)`-loop found by [`find_loop`]; useful for building
/// the adversarial executions of Theorem 8's proof (Section 3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopWitness {
    /// The anchor replica `i`.
    pub anchor: ReplicaId,
    /// The tracked edge `e_jk`.
    pub edge: EdgeId,
    /// `l_1, …, l_s` with `l_s = k`. Never empty.
    pub left: Vec<ReplicaId>,
    /// `r_1, …, r_t` with `r_1 = j`. Never empty.
    pub right: Vec<ReplicaId>,
}

impl LoopWitness {
    /// Number of edges (= vertices) in the loop: `1 + s + t`.
    pub fn num_edges(&self) -> usize {
        1 + self.left.len() + self.right.len()
    }

    /// The full vertex cycle `i, l_1, …, l_s, r_1, …, r_t` (implicitly
    /// closing back at `i`).
    pub fn cycle(&self) -> Vec<ReplicaId> {
        let mut v = Vec::with_capacity(self.num_edges());
        v.push(self.anchor);
        v.extend_from_slice(&self.left);
        v.extend_from_slice(&self.right);
        v
    }

    /// Checks the witness against Definition 4. Returns `false` if the
    /// structural constraints or any of conditions (i)–(iii) fail.
    pub fn verify(&self, g: &ShareGraph) -> bool {
        let i = self.anchor;
        let (j, k) = (self.edge.from, self.edge.to);
        if i == j || i == k || j == k {
            return false;
        }
        if self.left.last() != Some(&k) || self.right.first() != Some(&j) {
            return false;
        }
        // Simple loop: all vertices distinct.
        let cycle = self.cycle();
        let mut sorted = cycle.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != cycle.len() {
            return false;
        }
        // Consecutive vertices adjacent, closing at i. The k—j adjacency is
        // edge e_jk itself.
        for w in cycle.windows(2) {
            if !g.has_edge(EdgeId::new(w[0], w[1])) {
                return false;
            }
        }
        if !g.has_edge(EdgeId::new(*cycle.last().unwrap(), i)) {
            return false;
        }
        // Interior union B = ∪_{p=1..s-1} X_{l_p} and B' = B ∪ X_{l_s}.
        let mut b = RegSet::new();
        for &l in &self.left[..self.left.len() - 1] {
            b.union_with(g.placement().registers_of(l));
        }
        let mut b_full = b.clone();
        b_full.union_with(g.placement().registers_of(k));
        // (i)
        if !g.edge_registers(self.edge).has_element_outside(&b) {
            return false;
        }
        // (ii): r_2 is right[1] if t >= 2 else i.
        let r2 = self.right.get(1).copied().unwrap_or(i);
        if !g.edge_registers(EdgeId::new(j, r2)).has_element_outside(&b) {
            return false;
        }
        // (iii): edges r_q — r_{q+1} for q = 2..=t, with r_{t+1} = i.
        for q in 1..self.right.len() {
            let rq = self.right[q];
            let rq1 = self.right.get(q + 1).copied().unwrap_or(i);
            if !g
                .edge_registers(EdgeId::new(rq, rq1))
                .has_element_outside(&b_full)
            {
                return false;
            }
        }
        true
    }
}

/// True if an `(i, e_jk)`-loop exists in `g` (Definition 4).
///
/// `e.from` is `j`, `e.to` is `k`; requires `j ≠ i ≠ k` and `e ∈ E` to be
/// meaningful — returns `false` otherwise.
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::{paper_examples, loops, ReplicaId, edge, LoopConfig};
/// let g = paper_examples::figure5();
/// let r1 = ReplicaId::new(0);
/// // (1,2,3,4) is a (1, e_43)-loop but (1,4,3,2) is not a (1, e_34)-loop.
/// assert!(loops::exists_loop(&g, r1, edge(3, 2), LoopConfig::EXHAUSTIVE));
/// assert!(!loops::exists_loop(&g, r1, edge(2, 3), LoopConfig::EXHAUSTIVE));
/// ```
pub fn exists_loop(g: &ShareGraph, i: ReplicaId, e: EdgeId, config: LoopConfig) -> bool {
    find_loop(g, i, e, config).is_some()
}

/// Finds an `(i, e_jk)`-loop if one exists, returning a verified witness.
///
/// The search enumerates left paths `i → k` (avoiding `j`) in increasing
/// length and, for each, right paths `j → i` disjoint from the left path,
/// checking Definition 4's conditions incrementally.
pub fn find_loop(
    g: &ShareGraph,
    i: ReplicaId,
    e: EdgeId,
    config: LoopConfig,
) -> Option<LoopWitness> {
    let (j, k) = (e.from, e.to);
    if i == j || i == k || j == k || !g.has_edge(e) {
        return None;
    }
    let max_edges = config.max_loop_edges.unwrap_or(g.num_replicas());
    // A loop has 1 + s + t vertices, all distinct, so at most R vertices.
    let max_edges = max_edges.min(g.num_replicas());
    if max_edges < 3 {
        return None; // smallest loop is (i, k, j): s = t = 1, 3 edges
    }

    let mut on_left = vec![false; g.num_replicas()];
    on_left[i.index()] = true;
    let mut left_path = Vec::new();
    let mut search = Search {
        g,
        i,
        j,
        k,
        e,
        max_edges,
        on_left: &mut on_left,
        left_path: &mut left_path,
    };
    search.left_dfs(i, &RegSet::new())
}

struct Search<'a> {
    g: &'a ShareGraph,
    i: ReplicaId,
    j: ReplicaId,
    k: ReplicaId,
    e: EdgeId,
    max_edges: usize,
    /// Marks vertices on the current left path (including `i`).
    on_left: &'a mut Vec<bool>,
    /// Current left path `l_1, …` (not including `i`).
    left_path: &'a mut Vec<ReplicaId>,
}

impl Search<'_> {
    /// Extends the left path from `v`; `interior_union` is
    /// `∪ X_{l_p}` over the current `l_1..l_{s-1}` *excluding* the last
    /// vertex only when that vertex is `k` (we maintain: union over all
    /// pushed vertices except a trailing `k` is handled at closure time).
    ///
    /// Concretely: `interior_union` here is the union over all vertices
    /// currently in `left_path` — when we close the path by stepping to
    /// `k`, the union over `l_1..l_{s-1}` is exactly `interior_union`.
    fn left_dfs(&mut self, v: ReplicaId, interior_union: &RegSet) -> Option<LoopWitness> {
        // Try closing: step v -> k (if adjacent and k not already used).
        if v != self.k && self.g.has_edge(EdgeId::new(v, self.k)) && !self.on_left[self.k.index()] {
            // Condition (i): X_jk − interior_union ≠ ∅.
            if self
                .g
                .edge_registers(self.e)
                .has_element_outside(interior_union)
            {
                self.left_path.push(self.k);
                self.on_left[self.k.index()] = true;
                let mut b_full = interior_union.clone();
                b_full.union_with(self.g.placement().registers_of(self.k));
                if let Some(w) = self.right_search(interior_union, &b_full) {
                    self.on_left[self.k.index()] = false;
                    self.left_path.pop();
                    return Some(w);
                }
                self.on_left[self.k.index()] = false;
                self.left_path.pop();
            }
        }
        // Extend with another interior vertex. Left uses 1 + |left_path| + 1
        // vertices so far (i, interior, plus k when closing); right needs at
        // least 1 more (j). Budget check: vertices used if we add one more
        // interior then close = 2 + left_path.len() + 2 (+1 for j) ...
        // simplest exact bound: total vertices = 1 + s + t ≤ max_edges with
        // t ≥ 1, so s ≤ max_edges − 2.
        if self.left_path.len() + 1 > self.max_edges - 3 {
            // After adding one more interior vertex, s = left_path.len() + 2
            // (interior + k); need s ≤ max_edges − 2.
            return None;
        }
        let neighbors = self.g.neighbors(v).to_vec();
        for w in neighbors {
            if w == self.j || w == self.k || self.on_left[w.index()] {
                continue;
            }
            let mut next_union = interior_union.clone();
            next_union.union_with(self.g.placement().registers_of(w));
            // Monotone prunes: the interior union only grows along the
            // path, so once condition (i) — or condition (ii) for every
            // possible r_2 (over-approximated by X_j ⊇ X_{j r_2}) — fails,
            // it can never recover.
            if !self
                .g
                .edge_registers(self.e)
                .has_element_outside(&next_union)
            {
                continue;
            }
            if !self
                .g
                .placement()
                .registers_of(self.j)
                .has_element_outside(&next_union)
            {
                continue;
            }
            self.on_left[w.index()] = true;
            self.left_path.push(w);
            if let Some(found) = self.left_dfs(w, &next_union) {
                self.left_path.pop();
                self.on_left[w.index()] = false;
                return Some(found);
            }
            self.left_path.pop();
            self.on_left[w.index()] = false;
        }
        None
    }

    /// Searches for the right path `j = r_1, …, r_t, i`, disjoint from the
    /// left path. `b` is `∪ X_{l_p}` for `p < s`; `b_full` adds `X_{l_s}`.
    fn right_search(&mut self, b: &RegSet, b_full: &RegSet) -> Option<LoopWitness> {
        // t ≥ 1; total vertices 1 + s + t ≤ max_edges ⇒ t ≤ max_edges − 1 − s.
        let s = self.left_path.len();
        let t_budget = self.max_edges.saturating_sub(1 + s);
        if t_budget == 0 {
            return None;
        }
        let mut on_right = vec![false; self.g.num_replicas()];
        on_right[self.j.index()] = true;
        let mut right_path = vec![self.j];
        self.right_dfs(
            self.j,
            true,
            b,
            b_full,
            t_budget,
            &mut on_right,
            &mut right_path,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn right_dfs(
        &mut self,
        v: ReplicaId,
        first_hop: bool,
        b: &RegSet,
        b_full: &RegSet,
        t_budget: usize,
        on_right: &mut Vec<bool>,
        right_path: &mut Vec<ReplicaId>,
    ) -> Option<LoopWitness> {
        // The next hop from v uses subtrahend `b` on the first hop
        // (condition (ii): edge e_{j r_2}) and `b_full` afterwards
        // (condition (iii)).
        let sub = if first_hop { b } else { b_full };
        // Close: v -> i.
        if self.g.has_edge(EdgeId::new(v, self.i))
            && self
                .g
                .edge_registers(EdgeId::new(v, self.i))
                .has_element_outside(sub)
        {
            return Some(LoopWitness {
                anchor: self.i,
                edge: self.e,
                left: self.left_path.clone(),
                right: right_path.clone(),
            });
        }
        if right_path.len() >= t_budget {
            return None;
        }
        let neighbors = self.g.neighbors(v).to_vec();
        for w in neighbors {
            if w == self.i || on_right[w.index()] || self.on_left[w.index()] {
                continue;
            }
            if !self
                .g
                .edge_registers(EdgeId::new(v, w))
                .has_element_outside(sub)
            {
                continue;
            }
            on_right[w.index()] = true;
            right_path.push(w);
            if let Some(found) = self.right_dfs(w, false, b, b_full, t_budget, on_right, right_path)
            {
                right_path.pop();
                on_right[w.index()] = false;
                return Some(found);
            }
            right_path.pop();
            on_right[w.index()] = false;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::edge;
    use crate::placement::Placement;

    /// Ring of n replicas, register i shared by replicas i and i+1 mod n.
    fn ring(n: u32) -> ShareGraph {
        let mut b = Placement::builder(n as usize);
        for i in 0..n {
            b = b.share(i, [i, (i + 1) % n]);
        }
        ShareGraph::new(b.build())
    }

    #[test]
    fn triangle_has_loops_for_all_far_edges() {
        // Triangle with distinct registers per edge: every (i, e_jk) with
        // {i,j,k} = {0,1,2} has the loop (i, k, j).
        let g = ring(3);
        for i in 0..3u32 {
            let (j, k) = ((i + 1) % 3, (i + 2) % 3);
            for e in [edge(j, k), edge(k, j)] {
                let w = find_loop(&g, ReplicaId::new(i), e, LoopConfig::EXHAUSTIVE)
                    .unwrap_or_else(|| panic!("no ({i}, {e})-loop"));
                assert!(w.verify(&g), "witness failed verification: {w:?}");
                assert_eq!(w.num_edges(), 3);
            }
        }
    }

    #[test]
    fn ring_tracks_all_edges() {
        // In a ring with distinct per-edge registers every replica must
        // track every directed edge: 2n counters (Section 4 implication).
        let n = 6;
        let g = ring(n);
        let i = ReplicaId::new(0);
        for &e in g.edges() {
            if e.touches(i) {
                continue;
            }
            let w = find_loop(&g, i, e, LoopConfig::EXHAUSTIVE)
                .unwrap_or_else(|| panic!("no (0, {e})-loop in ring"));
            assert!(w.verify(&g));
        }
    }

    #[test]
    fn line_has_no_loops() {
        // A path graph has no cycles at all, so no (i, e_jk)-loops.
        let p = Placement::builder(4)
            .share(0, [0, 1])
            .share(1, [1, 2])
            .share(2, [2, 3])
            .build();
        let g = ShareGraph::new(p);
        for i in g.replicas() {
            for &e in g.edges() {
                if !e.touches(i) {
                    assert!(!exists_loop(&g, i, e, LoopConfig::EXHAUSTIVE));
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let g = ring(4);
        // i on the edge, or edge not in E.
        assert!(!exists_loop(
            &g,
            ReplicaId::new(1),
            edge(1, 2),
            LoopConfig::EXHAUSTIVE
        ));
        assert!(!exists_loop(
            &g,
            ReplicaId::new(2),
            edge(1, 2),
            LoopConfig::EXHAUSTIVE
        ));
        assert!(!exists_loop(
            &g,
            ReplicaId::new(0),
            edge(1, 3),
            LoopConfig::EXHAUSTIVE
        ));
    }

    #[test]
    fn bounded_search_misses_long_loops() {
        let g = ring(6);
        let i = ReplicaId::new(0);
        let far = edge(3, 4); // requires the full 6-cycle
        assert!(exists_loop(&g, i, far, LoopConfig::EXHAUSTIVE));
        assert!(!exists_loop(&g, i, far, LoopConfig::bounded(5)));
        assert!(exists_loop(&g, i, far, LoopConfig::bounded(6)));
    }

    #[test]
    fn shared_register_around_cycle_kills_loop() {
        // 4-cycle where one register y is shared by replicas 1, 2, 3:
        // X0={a,d}, X1={a,y}, X2={y,b}, X3={b,d}... make edges:
        // 0-1: a, 1-2: y, 2-3: b, 3-0: d; and y also stored at 3.
        // For i=0, edge e_12 (j=1, k=2): left path (0,3,2): interior {3};
        // condition (i): X_12 − X_3 = {y} − {b,d,y} = ∅ ⇒ that left path
        // fails; left path (0, 1...) can't be used since j=1. So no loop.
        let p = Placement::builder(4)
            .share(0, [0, 1]) // a: 0-1
            .share(1, [1, 2, 3]) // y: 1-2 and 3
            .share(2, [2, 3]) // b: 2-3
            .share(3, [3, 0]) // d: 3-0
            .build();
        let g = ShareGraph::new(p);
        assert!(g.has_edge(edge(1, 2)));
        assert!(!exists_loop(
            &g,
            ReplicaId::new(0),
            edge(1, 2),
            LoopConfig::EXHAUSTIVE
        ));
        // But e_21 (j=2, k=1): left path (0,1): interior ∅;
        // (i): X_21 − ∅ = {y} ≠ ∅; right path (2,3,0):
        // (ii): X_23 − ∅ = {b} ≠ ∅; (iii): X_30 − X_1 = {d}−{a,y,b... wait
        // X_1 = {a,y}; {d} − {a,y} ≠ ∅. Loop exists.
        assert!(exists_loop(
            &g,
            ReplicaId::new(0),
            edge(2, 1),
            LoopConfig::EXHAUSTIVE
        ));
    }

    #[test]
    fn witness_verify_rejects_corrupted() {
        let g = ring(4);
        let i = ReplicaId::new(0);
        let e = edge(2, 3); // j=2, k=3? left path from 0 to 3, right 2->...->0
        let mut w = find_loop(&g, i, e, LoopConfig::EXHAUSTIVE).expect("loop");
        assert!(w.verify(&g));
        w.right.push(ReplicaId::new(3)); // duplicate vertex
        assert!(!w.verify(&g));
    }
}
