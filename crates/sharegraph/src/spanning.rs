//! Rooted spanning trees of share graphs — the scaffolding of the
//! paper's `Propagation` / `CreateExecution` procedures (Appendix C).

use crate::graph::ShareGraph;
use crate::ids::ReplicaId;
use std::collections::VecDeque;

/// A rooted spanning tree over the replicas of a connected share graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningTree {
    root: ReplicaId,
    /// `parent[v]` — `None` for the root.
    parent: Vec<Option<ReplicaId>>,
    /// Children lists, sorted.
    children: Vec<Vec<ReplicaId>>,
}

impl SpanningTree {
    /// BFS spanning tree rooted at `root`.
    ///
    /// # Panics
    ///
    /// Panics if the share graph is not connected (every vertex must be
    /// reachable from `root`).
    pub fn bfs(g: &ShareGraph, root: ReplicaId) -> Self {
        let n = g.num_replicas();
        let mut parent = vec![None; n];
        let mut seen = vec![false; n];
        seen[root.index()] = true;
        let mut q = VecDeque::from([root]);
        while let Some(v) = q.pop_front() {
            for &w in g.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    parent[w.index()] = Some(v);
                    q.push_back(w);
                }
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "share graph must be connected for a spanning tree"
        );
        let mut children = vec![Vec::new(); n];
        for (v, &slot) in parent.iter().enumerate() {
            if let Some(p) = slot {
                children[p.index()].push(ReplicaId::new(v as u32));
            }
        }
        SpanningTree {
            root,
            parent,
            children,
        }
    }

    /// The root replica.
    pub fn root(&self) -> ReplicaId {
        self.root
    }

    /// Parent of `v` (`None` at the root).
    pub fn parent(&self, v: ReplicaId) -> Option<ReplicaId> {
        self.parent[v.index()]
    }

    /// Children of `v`, sorted.
    pub fn children(&self, v: ReplicaId) -> &[ReplicaId] {
        &self.children[v.index()]
    }

    /// The ancestors of `v` from its parent up to the root (exclusive of
    /// `v` itself).
    pub fn ancestors(&self, v: ReplicaId) -> Vec<ReplicaId> {
        let mut out = Vec::new();
        let mut cur = self.parent(v);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// True if `a` is an ancestor of `v` (or `a == v`).
    pub fn is_ancestor_or_self(&self, a: ReplicaId, v: ReplicaId) -> bool {
        if a == v {
            return true;
        }
        self.ancestors(v).contains(&a)
    }

    /// Vertices in post-order (children before parents, root last).
    pub fn post_order(&self) -> Vec<ReplicaId> {
        let mut out = Vec::new();
        self.post_order_rec(self.root, &mut out);
        out
    }

    fn post_order_rec(&self, v: ReplicaId, out: &mut Vec<ReplicaId>) {
        for &c in self.children(v) {
            self.post_order_rec(c, out);
        }
        out.push(v);
    }

    /// The subtree rooted at `v`, in post-order.
    pub fn subtree(&self, v: ReplicaId) -> Vec<ReplicaId> {
        let mut out = Vec::new();
        self.post_order_rec(v, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn bfs_tree_on_ring() {
        let g = topology::ring(5);
        let t = SpanningTree::bfs(&g, r(0));
        assert_eq!(t.root(), r(0));
        assert_eq!(t.parent(r(0)), None);
        // Ring neighbors of 0 are 1 and 4; depth-2 vertices hang off them.
        assert_eq!(t.parent(r(1)), Some(r(0)));
        assert_eq!(t.parent(r(4)), Some(r(0)));
        assert_eq!(t.parent(r(2)), Some(r(1)));
        assert_eq!(t.parent(r(3)), Some(r(4)));
    }

    #[test]
    fn post_order_ends_at_root() {
        let g = topology::binary_tree(7);
        let t = SpanningTree::bfs(&g, r(0));
        let order = t.post_order();
        assert_eq!(order.len(), 7);
        assert_eq!(*order.last().unwrap(), r(0));
        // Children precede parents.
        for v in g.replicas() {
            if let Some(p) = t.parent(v) {
                let vi = order.iter().position(|&x| x == v).unwrap();
                let pi = order.iter().position(|&x| x == p).unwrap();
                assert!(vi < pi, "{v} must precede {p}");
            }
        }
    }

    #[test]
    fn ancestors_chain() {
        let g = topology::path(4);
        let t = SpanningTree::bfs(&g, r(0));
        assert_eq!(t.ancestors(r(3)), vec![r(2), r(1), r(0)]);
        assert!(t.ancestors(r(0)).is_empty());
        assert!(t.is_ancestor_or_self(r(1), r(3)));
        assert!(t.is_ancestor_or_self(r(2), r(2)));
        assert!(!t.is_ancestor_or_self(r(3), r(1)));
    }

    #[test]
    fn subtree_contents() {
        let g = topology::path(4);
        let t = SpanningTree::bfs(&g, r(0));
        assert_eq!(t.subtree(r(2)), vec![r(3), r(2)]);
        assert_eq!(t.subtree(r(0)).len(), 4);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_rejected() {
        let g = crate::ShareGraph::new(crate::Placement::builder(3).share(0, [0, 1]).build());
        let _ = SpanningTree::bfs(&g, r(0));
    }
}
