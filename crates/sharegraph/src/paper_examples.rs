//! The concrete share graphs from the paper's figures, 0-indexed.
//!
//! Paper replica `r_n` becomes `ReplicaId::new(n - 1)` for Figures 3 and 5;
//! the counterexample figures use named constants (see
//! [`CounterexampleIds`]). These graphs anchor the reproduction tests: the
//! edge sets the paper derives by hand are asserted against our loop
//! machinery (experiments E1 and E3).

use crate::graph::ShareGraph;
use crate::ids::ReplicaId;
use crate::placement::Placement;

/// Figure 3: `X_1 = {x}`, `X_2 = {x, y}`, `X_3 = {y, z}`, `X_4 = {z}` — a
/// path-shaped share graph on 4 replicas.
///
/// Register ids: `x = 0`, `y = 1`, `z = 2`.
pub fn figure3() -> ShareGraph {
    ShareGraph::new(
        Placement::builder(4)
            .store_all(0, [0])
            .store_all(1, [0, 1])
            .store_all(2, [1, 2])
            .store_all(3, [2])
            .build(),
    )
}

/// Figure 5a: `X_1 = {a, y, w}`, `X_2 = {b, x, y}`, `X_3 = {c, x, z}`,
/// `X_4 = {d, y, z, w}`.
///
/// Register ids: `a=0, b=1, c=2, d=3, x=4, y=5, z=6, w=7`. Edge labels:
/// `X_12 = {y}`, `X_23 = {x}`, `X_34 = {z}`, `X_14 = {y, w}`,
/// `X_24 = {y}`, `X_13 = ∅`.
///
/// The paper's worked example: `(1,2,3,4)` is a `(1, e_43)`-loop, so
/// `e_43 ∈ G_1`, while no `(1, e_34)`-loop exists, so `e_34 ∉ G_1`.
pub fn figure5() -> ShareGraph {
    ShareGraph::new(
        Placement::builder(4)
            .store_all(0, [0, 5, 7])
            .store_all(1, [1, 4, 5])
            .store_all(2, [2, 4, 6])
            .store_all(3, [3, 5, 6, 7])
            .build(),
    )
}

/// Replica ids for the counterexample graphs of Figures 6/8 (`figure8a`,
/// `figure8b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterexampleIds {
    /// The observing replica `i`.
    pub i: ReplicaId,
    /// Interior replica `a_1` (stores `y` [and `z` in 8a]).
    pub a1: ReplicaId,
    /// Interior replica `a_2` (stores `z` in 8a).
    pub a2: ReplicaId,
    /// Replica `k` (stores `x`).
    pub k: ReplicaId,
    /// Replica `j` (stores `x`).
    pub j: ReplicaId,
    /// Interior replica `b_1` (stores `y`).
    pub b1: ReplicaId,
    /// Interior replica `b_2` (stores `y` [and `z` in 8a]).
    pub b2: ReplicaId,
}

/// The replica naming used by [`figure8a`] and [`figure8b`].
pub const CE: CounterexampleIds = CounterexampleIds {
    i: ReplicaId::new(0),
    a1: ReplicaId::new(1),
    a2: ReplicaId::new(2),
    k: ReplicaId::new(3),
    j: ReplicaId::new(4),
    b1: ReplicaId::new(5),
    b2: ReplicaId::new(6),
};

/// Register ids used by the counterexample graphs.
pub mod ce_regs {
    use crate::ids::RegisterId;
    /// Register `x`, shared by `j` and `k`.
    pub const X: RegisterId = RegisterId::new(0);
    /// Register `y`, shared by `b_1`, `b_2`, `a_1`.
    pub const Y: RegisterId = RegisterId::new(1);
    /// Register `z`, shared by `b_2`, `a_1`, `a_2` (Figure 8a only).
    pub const Z: RegisterId = RegisterId::new(2);
}

/// Figure 8a (= Figure 6): the counterexample showing the original
/// Hélary–Milani minimal-hoop condition **over-tracks**.
///
/// Cycle `j — b1 — b2 — i — a1 — a2 — k — j`. `x` shared by `{j, k}`;
/// `y` by `{b1, b2, a1}`; `z` by `{b2, a1, a2}`; all other cycle edges
/// carry unique registers (ids 3–6).
///
/// The loop is a minimal `x`-hoop through `i` per Definition 18, yet no
/// `(i, e_jk)`- or `(i, e_kj)`-loop exists: `i` need not track `x` at all.
pub fn figure8a() -> ShareGraph {
    let (i, a1, a2, k, j, b1, b2) = (
        CE.i.raw(),
        CE.a1.raw(),
        CE.a2.raw(),
        CE.k.raw(),
        CE.j.raw(),
        CE.b1.raw(),
        CE.b2.raw(),
    );
    ShareGraph::new(
        Placement::builder(7)
            .share(0, [j, k]) // x
            .share(1, [b1, b2, a1]) // y
            .share(2, [b2, a1, a2]) // z
            .share(3, [j, b1]) // unique cycle labels
            .share(4, [b2, i])
            .share(5, [i, a1])
            .share(6, [a2, k])
            .build(),
    )
}

/// Figure 8b: the counterexample showing the **modified** minimal-hoop
/// condition (Definition 20) **under-tracks**.
///
/// Same cycle as [`figure8a`] but only `y` is multi-shared
/// (`{b1, b2, a1}`); the `a1 — a2` edge carries a unique register.
///
/// The hoop is *not* minimal under Definition 20 (label `y` is stored by
/// three hoop replicas), yet `e_kj ∈ E_i` by Theorem 8 — replica `i` must
/// track updates to `x` issued by `k`.
pub fn figure8b() -> ShareGraph {
    let (i, a1, a2, k, j, b1, b2) = (
        CE.i.raw(),
        CE.a1.raw(),
        CE.a2.raw(),
        CE.k.raw(),
        CE.j.raw(),
        CE.b1.raw(),
        CE.b2.raw(),
    );
    ShareGraph::new(
        Placement::builder(7)
            .share(0, [j, k]) // x
            .share(1, [b1, b2, a1]) // y
            .share(3, [j, b1]) // unique cycle labels
            .share(4, [b2, i])
            .share(5, [i, a1])
            .share(6, [a2, k])
            .share(7, [a1, a2])
            .build(),
    )
}

/// Figure 13: ring of `n` replicas, one distinct register per adjacent
/// pair — the topology used for the "breaking the ring" optimization.
pub fn figure13(n: usize) -> ShareGraph {
    crate::topology::ring(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{edge, EdgeId};
    use crate::loops::{exists_loop, LoopConfig};
    use crate::tsgraph::TimestampGraph;

    #[test]
    fn figure3_edge_labels() {
        let g = figure3();
        assert_eq!(g.num_undirected_edges(), 3);
        assert_eq!(g.edge_registers(edge(0, 1)).len(), 1);
        assert_eq!(g.edge_registers(edge(1, 2)).len(), 1);
        assert_eq!(g.edge_registers(edge(2, 3)).len(), 1);
        assert!(g.edge_registers(edge(0, 3)).is_empty());
    }

    #[test]
    fn figure5_paper_worked_example() {
        let g = figure5();
        let r1 = ReplicaId::new(0);
        // "(1,4,3,2) is not a (1, e_34)-loop since X_21 − X_4 = ∅" and no
        // other loop exists either:
        assert!(!exists_loop(&g, r1, edge(2, 3), LoopConfig::EXHAUSTIVE));
        // "(1,2,3,4) is a (1, e_43)-loop":
        assert!(exists_loop(&g, r1, edge(3, 2), LoopConfig::EXHAUSTIVE));
        // "Similarly, (1,2,3,4) is a (1, e_32)-loop":
        assert!(exists_loop(&g, r1, edge(2, 1), LoopConfig::EXHAUSTIVE));
        // "(1,4,3,2) is not a (1, e_23)-loop due to a similar reason":
        assert!(!exists_loop(&g, r1, edge(1, 2), LoopConfig::EXHAUSTIVE));
    }

    #[test]
    fn figure5_timestamp_graph_of_replica1() {
        let g = figure5();
        let g1 = TimestampGraph::build(&g, ReplicaId::new(0), LoopConfig::EXHAUSTIVE);
        // Incident edges of replica 1 (0-indexed 0): neighbors 2 (y) and 4
        // (y, w) — 0-indexed 1 and 3.
        let expected_incident: Vec<EdgeId> = vec![edge(0, 1), edge(1, 0), edge(0, 3), edge(3, 0)];
        for e in expected_incident {
            assert!(g1.contains(e), "missing incident {e}");
        }
        // Figure 5b: e_43 tracked, e_34 not.
        assert!(g1.contains(edge(3, 2)));
        assert!(!g1.contains(edge(2, 3)));
        // e_32 tracked, e_23 not.
        assert!(g1.contains(edge(2, 1)));
        assert!(!g1.contains(edge(1, 2)));
    }

    #[test]
    fn figure8a_no_tracking_of_x_needed() {
        let g = figure8a();
        let e_jk = EdgeId::new(CE.j, CE.k);
        let e_kj = EdgeId::new(CE.k, CE.j);
        assert!(g.has_edge(e_jk));
        assert!(!exists_loop(&g, CE.i, e_jk, LoopConfig::EXHAUSTIVE));
        assert!(!exists_loop(&g, CE.i, e_kj, LoopConfig::EXHAUSTIVE));
    }

    #[test]
    fn figure8a_is_a_minimal_hoop_by_original_definition() {
        use crate::hoops::{Hoop, HoopVariant};
        let g = figure8a();
        let hoop = Hoop {
            register: ce_regs::X,
            path: vec![CE.j, CE.b1, CE.b2, CE.i, CE.a1, CE.a2, CE.k],
        };
        assert!(hoop.is_valid(&g));
        assert!(hoop.is_minimal(&g, HoopVariant::Original));
        // ... so original HM would force i to track x: over-tracking.
    }

    #[test]
    fn figure8b_modified_hoop_not_minimal_but_tracking_required() {
        use crate::hoops::{Hoop, HoopVariant};
        let g = figure8b();
        let hoop = Hoop {
            register: ce_regs::X,
            path: vec![CE.j, CE.b1, CE.b2, CE.i, CE.a1, CE.a2, CE.k],
        };
        assert!(hoop.is_valid(&g));
        // Not minimal under the modified definition (y held by 3 hoop
        // replicas)...
        assert!(!hoop.is_minimal(&g, HoopVariant::Modified));
        // ...but Theorem 8 requires i to track e_kj: under-tracking.
        let e_kj = EdgeId::new(CE.k, CE.j);
        assert!(exists_loop(&g, CE.i, e_kj, LoopConfig::EXHAUSTIVE));
        // (and e_jk is genuinely not needed)
        let e_jk = EdgeId::new(CE.j, CE.k);
        assert!(!exists_loop(&g, CE.i, e_jk, LoopConfig::EXHAUSTIVE));
    }

    #[test]
    fn figure13_is_ring() {
        let g = figure13(6);
        assert_eq!(g.num_replicas(), 6);
        assert_eq!(g.num_undirected_edges(), 6);
    }
}
