//! Graphviz (DOT) export of share graphs and timestamp graphs —
//! for documentation, debugging, and reproducing the paper's figures.

use crate::graph::ShareGraph;
use crate::tsgraph::TimestampGraph;
use std::fmt::Write as _;

/// Renders the share graph as an undirected Graphviz graph; edges are
/// labelled with their shared register sets.
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::{topology, dot};
/// let g = topology::path(2);
/// let out = dot::share_graph_to_dot(&g);
/// assert!(out.starts_with("graph share"));
/// assert!(out.contains("r0 -- r1"));
/// ```
pub fn share_graph_to_dot(g: &ShareGraph) -> String {
    let mut out = String::from("graph share {\n  node [shape=circle];\n");
    for i in g.replicas() {
        let _ = writeln!(out, "  r{};", i.raw());
    }
    for &e in g.edges() {
        if e.from < e.to {
            let regs: Vec<String> = g.edge_registers(e).iter().map(|x| x.to_string()).collect();
            let _ = writeln!(
                out,
                "  r{} -- r{} [label=\"{}\"];",
                e.from.raw(),
                e.to.raw(),
                regs.join(",")
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a replica's timestamp graph as a directed Graphviz graph; the
/// anchor replica is highlighted and far edges are drawn dashed.
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::{paper_examples, dot, TimestampGraph, ReplicaId, LoopConfig};
/// let g = paper_examples::figure5();
/// let tg = TimestampGraph::build(&g, ReplicaId::new(0), LoopConfig::EXHAUSTIVE);
/// let out = dot::timestamp_graph_to_dot(&g, &tg);
/// assert!(out.contains("r3 -> r2")); // e_43 of the paper
/// assert!(!out.contains("r2 -> r3")); // e_34 not tracked
/// ```
pub fn timestamp_graph_to_dot(g: &ShareGraph, tg: &TimestampGraph) -> String {
    let me = tg.replica();
    let mut out = String::from("digraph timestamp {\n  node [shape=circle];\n");
    let _ = writeln!(out, "  r{} [style=filled, fillcolor=lightblue];", me.raw());
    for v in tg.vertices() {
        if v != me {
            let _ = writeln!(out, "  r{};", v.raw());
        }
    }
    for &e in tg.edges() {
        let style = if e.touches(me) { "solid" } else { "dashed" };
        let regs: Vec<String> = g.edge_registers(e).iter().map(|x| x.to_string()).collect();
        let _ = writeln!(
            out,
            "  r{} -> r{} [style={}, label=\"{}\"];",
            e.from.raw(),
            e.to.raw(),
            style,
            regs.join(",")
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ReplicaId;
    use crate::loops::LoopConfig;
    use crate::topology;

    #[test]
    fn share_graph_dot_structure() {
        let g = topology::ring(3);
        let out = share_graph_to_dot(&g);
        assert!(out.starts_with("graph share {"));
        assert!(out.trim_end().ends_with('}'));
        // Undirected: each pair appears once.
        assert_eq!(out.matches(" -- ").count(), 3);
        assert!(out.contains("label=\"x0\""));
    }

    #[test]
    fn timestamp_dot_marks_anchor_and_far_edges() {
        let g = topology::ring(4);
        let tg = TimestampGraph::build(&g, ReplicaId::new(0), LoopConfig::EXHAUSTIVE);
        let out = timestamp_graph_to_dot(&g, &tg);
        assert!(out.contains("r0 [style=filled"));
        assert!(out.contains("style=dashed")); // far edges
        assert!(out.contains("style=solid")); // incident edges
        assert_eq!(out.matches(" -> ").count(), tg.len());
    }

    #[test]
    fn empty_graph_renders() {
        let g = crate::ShareGraph::new(crate::Placement::builder(1).build());
        let out = share_graph_to_dot(&g);
        assert!(out.contains("r0;"));
        assert!(!out.contains(" -- "));
    }
}
