//! The share graph (Definition 3 of the paper).
//!
//! Vertices are replicas; directed edges `e_ij`, `e_ji` exist iff
//! `X_ij = X_i ∩ X_j ≠ ∅`. The graph is derived from a [`Placement`] and
//! caches adjacency and per-edge register sets, since every downstream
//! computation (loops, timestamp graphs, hoops) queries them heavily.

use crate::ids::{EdgeId, ReplicaId};
use crate::placement::Placement;
use crate::regset::RegSet;
use std::collections::HashMap;

/// Share graph `G = (V, E)` of a placement (Definition 3).
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::{Placement, ShareGraph, ReplicaId, edge};
/// let p = Placement::builder(3)
///     .share(0, [0, 1])
///     .share(1, [1, 2])
///     .build();
/// let g = ShareGraph::new(p);
/// assert!(g.has_edge(edge(0, 1)));
/// assert!(g.has_edge(edge(1, 0))); // edges come in pairs
/// assert!(!g.has_edge(edge(0, 2)));
/// assert_eq!(g.neighbors(ReplicaId::new(1)).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ShareGraph {
    placement: Placement,
    /// Sorted neighbor list per replica.
    adj: Vec<Vec<ReplicaId>>,
    /// Register set per directed edge; both directions share the set.
    edge_regs: HashMap<EdgeId, RegSet>,
    /// All directed edges, sorted.
    edges: Vec<EdgeId>,
}

impl ShareGraph {
    /// Builds the share graph of `placement`.
    pub fn new(placement: Placement) -> Self {
        let r = placement.num_replicas();
        let mut adj = vec![Vec::new(); r];
        let mut edge_regs = HashMap::new();
        let mut edges = Vec::new();
        for a in 0..r {
            for b in (a + 1)..r {
                let (ia, ib) = (ReplicaId::new(a as u32), ReplicaId::new(b as u32));
                let shared = placement.shared(ia, ib);
                if !shared.is_empty() {
                    adj[a].push(ib);
                    adj[b].push(ia);
                    edges.push(EdgeId::new(ia, ib));
                    edges.push(EdgeId::new(ib, ia));
                    edge_regs.insert(EdgeId::new(ia, ib), shared.clone());
                    edge_regs.insert(EdgeId::new(ib, ia), shared);
                }
            }
        }
        edges.sort();
        ShareGraph {
            placement,
            adj,
            edge_regs,
            edges,
        }
    }

    /// The placement the graph was derived from.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Number of replicas (vertices).
    pub fn num_replicas(&self) -> usize {
        self.adj.len()
    }

    /// All replica ids.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.adj.len() as u32).map(ReplicaId::new)
    }

    /// Sorted neighbors of `i` in the share graph.
    pub fn neighbors(&self, i: ReplicaId) -> &[ReplicaId] {
        &self.adj[i.index()]
    }

    /// Degree of `i` (the `N_i` of the paper's tree lower bound).
    pub fn degree(&self, i: ReplicaId) -> usize {
        self.adj[i.index()].len()
    }

    /// True if directed edge `e` is in `E`.
    pub fn has_edge(&self, e: EdgeId) -> bool {
        self.edge_regs.contains_key(&e)
    }

    /// Registers shared along edge `e` (`X_jk` for `e = e_jk`); empty if the
    /// edge does not exist.
    pub fn edge_registers(&self, e: EdgeId) -> &RegSet {
        static EMPTY: std::sync::OnceLock<RegSet> = std::sync::OnceLock::new();
        self.edge_regs
            .get(&e)
            .unwrap_or_else(|| EMPTY.get_or_init(RegSet::new))
    }

    /// All directed edges, sorted. Always even in count (paired directions).
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of *undirected* edges.
    pub fn num_undirected_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// True if the share graph is connected (isolated replicas make it
    /// disconnected unless `R <= 1`). Replicas with no registers count as
    /// isolated vertices.
    pub fn is_connected(&self) -> bool {
        let r = self.num_replicas();
        if r <= 1 {
            return true;
        }
        let mut seen = vec![false; r];
        let mut stack = vec![ReplicaId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == r
    }

    /// Shortest hop distance between two replicas, if connected.
    pub fn distance(&self, from: ReplicaId, to: ReplicaId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.num_replicas()];
        dist[from.index()] = 0;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    if w == to {
                        return Some(dist[w.index()]);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::edge;

    fn ring(n: usize) -> ShareGraph {
        let mut b = Placement::builder(n);
        for i in 0..n {
            let j = (i + 1) % n;
            b = b.share(i as u32, [i as u32, j as u32]);
        }
        ShareGraph::new(b.build())
    }

    #[test]
    fn edges_are_paired() {
        let g = ring(5);
        assert_eq!(g.edges().len(), 10);
        assert_eq!(g.num_undirected_edges(), 5);
        for &e in g.edges() {
            assert!(g.has_edge(e.reversed()));
            assert_eq!(g.edge_registers(e), g.edge_registers(e.reversed()));
        }
    }

    #[test]
    fn neighbors_and_degree() {
        let g = ring(4);
        assert_eq!(g.degree(ReplicaId::new(0)), 2);
        assert_eq!(
            g.neighbors(ReplicaId::new(0)),
            &[ReplicaId::new(1), ReplicaId::new(3)]
        );
    }

    #[test]
    fn missing_edge_has_empty_registers() {
        let g = ring(5);
        assert!(!g.has_edge(edge(0, 2)));
        assert!(g.edge_registers(edge(0, 2)).is_empty());
    }

    #[test]
    fn connectivity() {
        assert!(ring(6).is_connected());
        let disconnected = ShareGraph::new(
            Placement::builder(4)
                .share(0, [0, 1])
                .share(1, [2, 3])
                .build(),
        );
        assert!(!disconnected.is_connected());
        let single = ShareGraph::new(Placement::builder(1).build());
        assert!(single.is_connected());
    }

    #[test]
    fn distances() {
        let g = ring(6);
        assert_eq!(g.distance(ReplicaId::new(0), ReplicaId::new(0)), Some(0));
        assert_eq!(g.distance(ReplicaId::new(0), ReplicaId::new(1)), Some(1));
        assert_eq!(g.distance(ReplicaId::new(0), ReplicaId::new(3)), Some(3));
        let disconnected = ShareGraph::new(
            Placement::builder(4)
                .share(0, [0, 1])
                .share(1, [2, 3])
                .build(),
        );
        assert_eq!(
            disconnected.distance(ReplicaId::new(0), ReplicaId::new(2)),
            None
        );
    }

    #[test]
    fn isolated_replica_without_registers() {
        let g = ShareGraph::new(Placement::builder(3).share(0, [0, 1]).build());
        assert_eq!(g.degree(ReplicaId::new(2)), 0);
        assert!(!g.is_connected());
    }
}
