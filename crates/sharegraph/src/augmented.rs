//! The client-server architecture: augmented share graphs, augmented
//! `(i, e_jk)`-loops, and augmented timestamp graphs (Section 6 and
//! Appendix E; Definitions 16, 27, 28).
//!
//! A client that accesses several replicas propagates causal dependencies
//! between them even when they share no registers. The augmented share
//! graph `Ĝ` adds an edge between every pair of replicas co-accessed by
//! some client; the loop conditions then accept either a register witness
//! or client co-access for the right-path hops.

use crate::graph::ShareGraph;
use crate::ids::{ClientId, EdgeId, ReplicaId};
use crate::regset::RegSet;
use crate::tsgraph::{TimestampGraph, TimestampGraphs};
use std::collections::BTreeSet;

/// Static assignment of clients to replica sets (`R_c` in the paper).
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::{ClientAssignment, ClientId, ReplicaId};
/// let mut a = ClientAssignment::new(3);
/// a.assign(ClientId::new(0), [ReplicaId::new(0), ReplicaId::new(2)]);
/// assert!(a.co_accessed(ReplicaId::new(0), ReplicaId::new(2)));
/// assert!(!a.co_accessed(ReplicaId::new(0), ReplicaId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientAssignment {
    num_replicas: usize,
    clients: Vec<(ClientId, Vec<ReplicaId>)>,
    /// Symmetric co-access matrix, row-major `num_replicas × num_replicas`.
    co_access: Vec<bool>,
}

impl ClientAssignment {
    /// Creates an empty assignment over `num_replicas` replicas.
    pub fn new(num_replicas: usize) -> Self {
        ClientAssignment {
            num_replicas,
            clients: Vec::new(),
            co_access: vec![false; num_replicas * num_replicas],
        }
    }

    /// Registers that client `c` accesses the given replicas (`R_c`).
    ///
    /// # Panics
    ///
    /// Panics if any replica id is out of range.
    pub fn assign<I: IntoIterator<Item = ReplicaId>>(&mut self, c: ClientId, replicas: I) {
        let set: Vec<ReplicaId> = replicas.into_iter().collect();
        for &r in &set {
            assert!(r.index() < self.num_replicas, "replica out of range");
        }
        for &a in &set {
            for &b in &set {
                if a != b {
                    self.co_access[a.index() * self.num_replicas + b.index()] = true;
                }
            }
        }
        self.clients.push((c, set));
    }

    /// True if some client accesses both `a` and `b`.
    pub fn co_accessed(&self, a: ReplicaId, b: ReplicaId) -> bool {
        a != b && self.co_access[a.index() * self.num_replicas + b.index()]
    }

    /// The clients and their replica sets, in assignment order.
    pub fn clients(&self) -> &[(ClientId, Vec<ReplicaId>)] {
        &self.clients
    }

    /// The replica set `R_c` of client `c`, if assigned.
    pub fn replicas_of(&self, c: ClientId) -> Option<&[ReplicaId]> {
        self.clients
            .iter()
            .find(|(id, _)| *id == c)
            .map(|(_, v)| v.as_slice())
    }
}

/// The augmented share graph `Ĝ` (Definition 16): share edges plus client
/// co-access edges.
#[derive(Debug, Clone)]
pub struct AugmentedShareGraph {
    base: ShareGraph,
    clients: ClientAssignment,
    /// Sorted neighbor lists in `Ĝ` (share ∪ co-access).
    adj: Vec<Vec<ReplicaId>>,
}

impl AugmentedShareGraph {
    /// Builds `Ĝ` from a share graph and a client assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment covers a different number of replicas.
    pub fn new(base: ShareGraph, clients: ClientAssignment) -> Self {
        assert_eq!(
            base.num_replicas(),
            clients.num_replicas,
            "assignment must cover the same replicas"
        );
        let n = base.num_replicas();
        let mut adj = vec![BTreeSet::new(); n];
        for &e in base.edges() {
            adj[e.from.index()].insert(e.to);
        }
        for (a, row) in adj.iter_mut().enumerate() {
            for b in 0..n {
                if a != b && clients.co_access[a * n + b] {
                    row.insert(ReplicaId::new(b as u32));
                }
            }
        }
        AugmentedShareGraph {
            base,
            clients,
            adj: adj.into_iter().map(|s| s.into_iter().collect()).collect(),
        }
    }

    /// The underlying share graph `G`.
    pub fn base(&self) -> &ShareGraph {
        &self.base
    }

    /// The client assignment.
    pub fn clients(&self) -> &ClientAssignment {
        &self.clients
    }

    /// Neighbors in `Ĝ` (share or co-access).
    pub fn neighbors(&self, i: ReplicaId) -> &[ReplicaId] {
        &self.adj[i.index()]
    }

    /// True if `e ∈ Ê` (share edge or client edge).
    pub fn has_edge(&self, e: EdgeId) -> bool {
        self.base.has_edge(e) || self.clients.co_accessed(e.from, e.to)
    }

    /// True if an *augmented* `(i, e_jk)`-loop exists (Definition 27).
    pub fn exists_augmented_loop(&self, i: ReplicaId, e: EdgeId) -> bool {
        let (j, k) = (e.from, e.to);
        if i == j || i == k || j == k || !self.has_edge(e) {
            return false;
        }
        let mut on_left = vec![false; self.base.num_replicas()];
        on_left[i.index()] = true;
        self.aug_left_dfs(i, i, e, &RegSet::new(), &mut on_left)
    }

    fn aug_left_dfs(
        &self,
        anchor: ReplicaId,
        v: ReplicaId,
        e: EdgeId,
        interior_union: &RegSet,
        on_left: &mut Vec<bool>,
    ) -> bool {
        let (j, k) = (e.from, e.to);
        // Close the left path by stepping to k.
        if v != k && !on_left[k.index()] && self.adjacent(v, k) {
            // Condition (i): X_jk − interior ≠ ∅ (register witness only).
            if self
                .base
                .edge_registers(e)
                .has_element_outside(interior_union)
            {
                on_left[k.index()] = true;
                let mut b_full = interior_union.clone();
                b_full.union_with(self.base.placement().registers_of(k));
                let found = self.aug_right_search(anchor, e, interior_union, &b_full, on_left);
                on_left[k.index()] = false;
                if found {
                    return true;
                }
            }
        }
        for &w in &self.adj[v.index()].clone() {
            if w == j || w == k || on_left[w.index()] {
                continue;
            }
            let mut next = interior_union.clone();
            next.union_with(self.base.placement().registers_of(w));
            // Monotone prune on condition (i): the interior union only
            // grows, so a failed register witness never recovers. (The
            // client-edge alternatives apply to conditions (ii)/(iii)
            // only, so this prune stays sound in the augmented setting.)
            if !self.base.edge_registers(e).has_element_outside(&next) {
                continue;
            }
            on_left[w.index()] = true;
            let found = self.aug_left_dfs(anchor, w, e, &next, on_left);
            on_left[w.index()] = false;
            if found {
                return true;
            }
        }
        false
    }

    fn adjacent(&self, a: ReplicaId, b: ReplicaId) -> bool {
        self.has_edge(EdgeId::new(a, b))
    }

    /// A right-path hop `v -> w` is allowed if the shared registers minus
    /// `sub` are non-empty **or** some client co-accesses `v` and `w`
    /// (conditions (ii)/(iii) of Definition 27).
    fn hop_allowed(&self, v: ReplicaId, w: ReplicaId, sub: &RegSet) -> bool {
        self.clients.co_accessed(v, w)
            || self
                .base
                .edge_registers(EdgeId::new(v, w))
                .has_element_outside(sub)
    }

    fn aug_right_search(
        &self,
        anchor: ReplicaId,
        e: EdgeId,
        b: &RegSet,
        b_full: &RegSet,
        on_left: &[bool],
    ) -> bool {
        let j = e.from;
        let mut on_right = vec![false; self.base.num_replicas()];
        on_right[j.index()] = true;
        self.aug_right_dfs(anchor, j, true, b, b_full, on_left, &mut on_right)
    }

    #[allow(clippy::too_many_arguments)]
    fn aug_right_dfs(
        &self,
        anchor: ReplicaId,
        v: ReplicaId,
        first_hop: bool,
        b: &RegSet,
        b_full: &RegSet,
        on_left: &[bool],
        on_right: &mut Vec<bool>,
    ) -> bool {
        let sub = if first_hop { b } else { b_full };
        if self.adjacent(v, anchor) && self.hop_allowed(v, anchor, sub) {
            return true;
        }
        for &w in &self.adj[v.index()] {
            if w == anchor || on_right[w.index()] || on_left[w.index()] {
                continue;
            }
            if !self.hop_allowed(v, w, sub) {
                continue;
            }
            on_right[w.index()] = true;
            if self.aug_right_dfs(anchor, w, false, b, b_full, on_left, on_right) {
                on_right[w.index()] = false;
                return true;
            }
            on_right[w.index()] = false;
        }
        false
    }

    /// Builds the augmented timestamp graph `Ĝ_i` (Definition 28): incident
    /// edges of `Ĝ` plus augmented-loop edges, **intersected with `E`**
    /// (only real share edges are tracked).
    pub fn augmented_timestamp_graph(&self, i: ReplicaId) -> TimestampGraph {
        let mut edges = BTreeSet::new();
        for &e in self.base.edges() {
            if e.touches(i) || self.exists_augmented_loop(i, e) {
                edges.insert(e);
            }
        }
        TimestampGraph::from_edges(i, edges.into_iter().collect())
    }

    /// Augmented timestamp graphs for all replicas.
    pub fn augmented_timestamp_graphs(&self) -> TimestampGraphs {
        TimestampGraphs::from_graphs(
            self.base
                .replicas()
                .map(|i| self.augmented_timestamp_graph(i))
                .collect(),
        )
    }

    /// The edge set a *client* `c` must track: `∪_{i ∈ R_c} Ê_i`
    /// (Appendix E.5).
    pub fn client_edge_set(&self, c: ClientId, graphs: &TimestampGraphs) -> Vec<EdgeId> {
        let mut set = BTreeSet::new();
        if let Some(rs) = self.clients.replicas_of(c) {
            for &r in rs {
                set.extend(graphs.of(r).edges().iter().copied());
            }
        }
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::edge;
    use crate::loops::LoopConfig;
    use crate::placement::Placement;
    use crate::topology;

    /// Path 0 - 1 - 2 with distinct registers; a client spans 0 and 2.
    fn path_with_spanning_client() -> AugmentedShareGraph {
        let g = topology::path(3);
        let mut clients = ClientAssignment::new(3);
        clients.assign(ClientId::new(0), [ReplicaId::new(0), ReplicaId::new(2)]);
        AugmentedShareGraph::new(g, clients)
    }

    #[test]
    fn client_edges_extend_adjacency() {
        let ag = path_with_spanning_client();
        assert!(ag.has_edge(edge(0, 2)));
        assert!(!ag.base().has_edge(edge(0, 2)));
        assert_eq!(ag.neighbors(ReplicaId::new(0)).len(), 2);
    }

    #[test]
    fn spanning_client_creates_loops_in_tree() {
        // Without the client, a path has no loops at all. With the client
        // edge 0—2, replica 1 sits on the cycle 1-0-2 (via client edge):
        // an augmented (1, e_jk)-loop can exist.
        let ag = path_with_spanning_client();
        let r1 = ReplicaId::new(1);
        // e_02 is a client-only edge: never tracked (X_02 = ∅ fails (i)).
        assert!(!ag.exists_augmented_loop(r1, edge(0, 2)));
        // But consider i = 0: loop (0, l_1 = 1? ...). Check e_21 from the
        // augmented cycle 0-1-2-0: i=0, j=2, k=1: left path 0→1 (share
        // edge), (i): X_21 ≠ ∅ ✓; right path 2→0 via client co-access ✓.
        assert!(ag.exists_augmented_loop(ReplicaId::new(0), edge(2, 1)));
        // Without clients there is no such loop.
        let g = topology::path(3);
        assert!(!crate::loops::exists_loop(
            &g,
            ReplicaId::new(0),
            edge(2, 1),
            LoopConfig::EXHAUSTIVE
        ));
    }

    #[test]
    fn augmented_graph_only_tracks_real_edges() {
        let ag = path_with_spanning_client();
        for i in ag.base().replicas() {
            let tg = ag.augmented_timestamp_graph(i);
            for &e in tg.edges() {
                assert!(ag.base().has_edge(e), "{e} is not a share edge");
            }
        }
    }

    #[test]
    fn no_clients_means_plain_timestamp_graphs() {
        let g = topology::ring(5);
        let ag = AugmentedShareGraph::new(g.clone(), ClientAssignment::new(5));
        let plain = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
        for i in g.replicas() {
            assert_eq!(
                ag.augmented_timestamp_graph(i).edges(),
                plain.of(i).edges(),
                "replica {i}"
            );
        }
    }

    #[test]
    fn augmented_is_superset_of_plain() {
        let g = topology::grid(3, 2);
        let mut clients = ClientAssignment::new(6);
        clients.assign(ClientId::new(0), [ReplicaId::new(0), ReplicaId::new(5)]);
        clients.assign(ClientId::new(1), [ReplicaId::new(2), ReplicaId::new(3)]);
        let ag = AugmentedShareGraph::new(g.clone(), clients);
        let plain = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
        for i in g.replicas() {
            let aug = ag.augmented_timestamp_graph(i);
            for &e in plain.of(i).edges() {
                assert!(aug.contains(e), "replica {i} lost plain edge {e}");
            }
        }
    }

    #[test]
    fn client_edge_set_unions_replica_graphs() {
        let ag = path_with_spanning_client();
        let graphs = ag.augmented_timestamp_graphs();
        let c = ClientId::new(0);
        let edges = ag.client_edge_set(c, &graphs);
        let mut expected = BTreeSet::new();
        expected.extend(graphs.of(ReplicaId::new(0)).edges().iter().copied());
        expected.extend(graphs.of(ReplicaId::new(2)).edges().iter().copied());
        assert_eq!(edges, expected.into_iter().collect::<Vec<_>>());
        // Unknown client: empty.
        assert!(ag.client_edge_set(ClientId::new(9), &graphs).is_empty());
    }

    #[test]
    fn assignment_validates_range() {
        let mut a = ClientAssignment::new(2);
        a.assign(ClientId::new(0), [ReplicaId::new(0), ReplicaId::new(1)]);
        assert_eq!(
            a.replicas_of(ClientId::new(0)),
            Some(&[ReplicaId::new(0), ReplicaId::new(1)][..])
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assignment_rejects_bad_replica() {
        let mut a = ClientAssignment::new(2);
        a.assign(ClientId::new(0), [ReplicaId::new(5)]);
    }

    #[test]
    #[should_panic(expected = "same replicas")]
    fn augmented_rejects_mismatched_sizes() {
        let g = Placement::builder(3).share(0, [0, 1]).build();
        let _ = AugmentedShareGraph::new(ShareGraph::new(g), ClientAssignment::new(2));
    }
}
