//! A compact bit-set over [`RegisterId`]s.
//!
//! Share-graph computations are dominated by set algebra on register sets
//! (`X_i`, `X_ij = X_i ∩ X_j`, and differences such as
//! `X_jk − ∪ X_{l_p}` from Definition 4). A word-packed bit-set makes these
//! O(registers / 64).

use crate::ids::RegisterId;
use std::fmt;

/// A set of registers, stored as a packed bit vector.
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::{RegSet, RegisterId};
/// let mut a = RegSet::new();
/// a.insert(RegisterId::new(1));
/// a.insert(RegisterId::new(130));
/// let mut b = RegSet::new();
/// b.insert(RegisterId::new(130));
/// assert!(a.intersects(&b));
/// assert_eq!(a.intersection(&b).len(), 1);
/// assert!(!a.difference(&b).is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RegSet { words: Vec::new() }
    }

    /// Creates an empty set with capacity for registers `0..n`.
    pub fn with_capacity(n: usize) -> Self {
        RegSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Builds a set from an iterator of raw register indices.
    ///
    /// # Examples
    ///
    /// ```
    /// use prcc_sharegraph::RegSet;
    /// let s = RegSet::from_indices([0, 2, 4]);
    /// assert_eq!(s.len(), 3);
    /// ```
    pub fn from_indices<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = RegSet::new();
        for i in iter {
            s.insert(RegisterId::new(i));
        }
        s
    }

    fn grow_for(&mut self, bit: usize) {
        let need = bit / 64 + 1;
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Inserts a register. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, x: RegisterId) -> bool {
        let bit = x.index();
        self.grow_for(bit);
        let word = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes a register. Returns `true` if it was present.
    pub fn remove(&mut self, x: RegisterId) -> bool {
        let bit = x.index();
        if bit / 64 >= self.words.len() {
            return false;
        }
        let word = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// True if the register is in the set.
    pub fn contains(&self, x: RegisterId) -> bool {
        let bit = x.index();
        self.words
            .get(bit / 64)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no registers.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if `self` and `other` share at least one register.
    pub fn intersects(&self, other: &RegSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True if every register of `self` is in `other`.
    pub fn is_subset(&self, other: &RegSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, a)| a & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// `self ∩ other` as a new set.
    pub fn intersection(&self, other: &RegSet) -> RegSet {
        let n = self.words.len().min(other.words.len());
        RegSet {
            words: (0..n).map(|i| self.words[i] & other.words[i]).collect(),
        }
    }

    /// `self ∪ other` as a new set.
    pub fn union(&self, other: &RegSet) -> RegSet {
        let n = self.words.len().max(other.words.len());
        RegSet {
            words: (0..n)
                .map(|i| {
                    self.words.get(i).copied().unwrap_or(0)
                        | other.words.get(i).copied().unwrap_or(0)
                })
                .collect(),
        }
    }

    /// `self − other` as a new set.
    pub fn difference(&self, other: &RegSet) -> RegSet {
        RegSet {
            words: self
                .words
                .iter()
                .enumerate()
                .map(|(i, a)| a & !other.words.get(i).copied().unwrap_or(0))
                .collect(),
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &RegSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
    }

    /// True if `self − other` is non-empty — the test at the heart of
    /// Definition 4's conditions, done without allocating.
    pub fn has_element_outside(&self, other: &RegSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .any(|(i, a)| a & !other.words.get(i).copied().unwrap_or(0) != 0)
    }

    /// Iterates over the registers in increasing id order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest register in the set, if any.
    pub fn first(&self) -> Option<RegisterId> {
        self.iter().next()
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct D(RegisterId);
        impl fmt::Debug for D {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
        f.debug_set().entries(self.iter().map(D)).finish()
    }
}

impl FromIterator<RegisterId> for RegSet {
    fn from_iter<I: IntoIterator<Item = RegisterId>>(iter: I) -> Self {
        let mut s = RegSet::new();
        for x in iter {
            s.insert(x);
        }
        s
    }
}

impl Extend<RegisterId> for RegSet {
    fn extend<I: IntoIterator<Item = RegisterId>>(&mut self, iter: I) {
        for x in iter {
            self.insert(x);
        }
    }
}

impl<'a> IntoIterator for &'a RegSet {
    type Item = RegisterId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the registers of a [`RegSet`] in increasing order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a RegSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = RegisterId;

    fn next(&mut self) -> Option<RegisterId> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros();
                self.bits &= self.bits - 1;
                return Some(RegisterId::new((self.word * 64) as u32 + tz));
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(v: &[u32]) -> RegSet {
        RegSet::from_indices(v.iter().copied())
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = RegSet::new();
        assert!(s.insert(RegisterId::new(5)));
        assert!(!s.insert(RegisterId::new(5)));
        assert!(s.contains(RegisterId::new(5)));
        assert!(!s.contains(RegisterId::new(6)));
        assert!(s.remove(RegisterId::new(5)));
        assert!(!s.remove(RegisterId::new(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn remove_beyond_capacity_is_noop() {
        let mut s = rs(&[1]);
        assert!(!s.remove(RegisterId::new(1000)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = rs(&[0, 1, 2, 64, 65]);
        let b = rs(&[1, 65, 200]);
        assert_eq!(a.intersection(&b), rs(&[1, 65]));
        assert_eq!(a.union(&b), rs(&[0, 1, 2, 64, 65, 200]));
        assert_eq!(a.difference(&b), rs(&[0, 2, 64]));
        assert_eq!(b.difference(&a), rs(&[200]));
        assert!(a.intersects(&b));
        assert!(!rs(&[3]).intersects(&b));
    }

    #[test]
    fn subset_relation() {
        assert!(rs(&[1, 2]).is_subset(&rs(&[0, 1, 2, 3])));
        assert!(!rs(&[1, 200]).is_subset(&rs(&[0, 1, 2, 3])));
        assert!(RegSet::new().is_subset(&rs(&[])));
    }

    #[test]
    fn has_element_outside_matches_difference() {
        let a = rs(&[0, 100]);
        let b = rs(&[0]);
        assert!(a.has_element_outside(&b));
        assert!(!b.has_element_outside(&a));
        assert_eq!(a.has_element_outside(&b), !a.difference(&b).is_empty());
    }

    #[test]
    fn iteration_order() {
        let s = rs(&[130, 2, 64]);
        let v: Vec<u32> = s.iter().map(|x| x.raw()).collect();
        assert_eq!(v, vec![2, 64, 130]);
        assert_eq!(s.first(), Some(RegisterId::new(2)));
    }

    #[test]
    fn union_with_grows() {
        let mut a = rs(&[0]);
        a.union_with(&rs(&[500]));
        assert!(a.contains(RegisterId::new(500)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn from_and_extend() {
        let mut s: RegSet = [RegisterId::new(1), RegisterId::new(3)]
            .into_iter()
            .collect();
        s.extend([RegisterId::new(5)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", RegSet::new()), "{}");
        assert!(format!("{:?}", rs(&[1])).contains("x1"));
    }
}
