//! Identifier newtypes used throughout the workspace.
//!
//! Replicas, registers and clients are identified by small integers. The
//! newtypes below prevent the classic bug of indexing a register table with
//! a replica id (see C-NEWTYPE in the Rust API guidelines).

use std::fmt;

/// Identifier of a replica (a "peer" in the peer-to-peer architecture, or a
/// server in the client-server architecture). Replicas are numbered from 0.
///
/// Note: the paper numbers replicas `1..=R`; we use `0..R` as is idiomatic
/// for array indexing. Display output is the raw index.
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::ReplicaId;
/// let r = ReplicaId::new(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "r3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ReplicaId(u32);

impl ReplicaId {
    /// Creates a replica id from its index.
    pub const fn new(index: u32) -> Self {
        ReplicaId(index)
    }

    /// Raw numeric value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a `usize`, for indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for ReplicaId {
    fn from(v: u32) -> Self {
        ReplicaId(v)
    }
}

impl From<ReplicaId> for u32 {
    fn from(v: ReplicaId) -> Self {
        v.0
    }
}

/// Identifier of a shared read/write register.
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::RegisterId;
/// let x = RegisterId::new(0);
/// assert_eq!(x.to_string(), "x0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct RegisterId(u32);

impl RegisterId {
    /// Creates a register id from its index.
    pub const fn new(index: u32) -> Self {
        RegisterId(index)
    }

    /// Raw numeric value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a `usize`, for indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for RegisterId {
    fn from(v: u32) -> Self {
        RegisterId(v)
    }
}

impl From<RegisterId> for u32 {
    fn from(v: RegisterId) -> Self {
        v.0
    }
}

/// Identifier of a client in the client-server architecture (Section 6 of
/// the paper). Clients are numbered from 0.
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::ClientId;
/// assert_eq!(ClientId::new(2).to_string(), "c2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a client id from its index.
    pub const fn new(index: u32) -> Self {
        ClientId(index)
    }

    /// Raw numeric value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a `usize`, for indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for ClientId {
    fn from(v: u32) -> Self {
        ClientId(v)
    }
}

/// A *directed* edge `e_jk` of the share graph: from replica `j` to replica
/// `k`. Directed edges always come in pairs (`e_jk` exists iff `e_kj`
/// exists), but timestamp graphs track them individually — `e_43` may be
/// tracked while `e_34` is not (Figure 5 of the paper).
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::{EdgeId, ReplicaId};
/// let e = EdgeId::new(ReplicaId::new(4), ReplicaId::new(3));
/// assert_eq!(e.reversed(), EdgeId::new(ReplicaId::new(3), ReplicaId::new(4)));
/// assert_eq!(e.to_string(), "e(r4->r3)");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId {
    /// Source replica (the issuer of updates counted on this edge).
    pub from: ReplicaId,
    /// Destination replica.
    pub to: ReplicaId,
}

impl EdgeId {
    /// Creates the directed edge `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`; self-loops never occur in share graphs.
    pub fn new(from: ReplicaId, to: ReplicaId) -> Self {
        assert_ne!(from, to, "share graphs have no self-loops");
        EdgeId { from, to }
    }

    /// The same edge in the opposite direction.
    pub fn reversed(self) -> Self {
        EdgeId {
            from: self.to,
            to: self.from,
        }
    }

    /// True if this edge is incident (in either direction) at `r`.
    pub fn touches(self, r: ReplicaId) -> bool {
        self.from == r || self.to == r
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e({}->{})", self.from, self.to)
    }
}

/// Convenience constructor for an edge between raw indices.
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::edge;
/// assert_eq!(edge(1, 2).to_string(), "e(r1->r2)");
/// ```
pub fn edge(from: u32, to: u32) -> EdgeId {
    EdgeId::new(ReplicaId::new(from), ReplicaId::new(to))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_id_roundtrip() {
        let r = ReplicaId::new(7);
        assert_eq!(r.raw(), 7);
        assert_eq!(r.index(), 7);
        assert_eq!(u32::from(r), 7);
        assert_eq!(ReplicaId::from(7u32), r);
    }

    #[test]
    fn register_id_roundtrip() {
        let x = RegisterId::new(11);
        assert_eq!(x.raw(), 11);
        assert_eq!(RegisterId::from(11u32), x);
    }

    #[test]
    fn client_id_display() {
        assert_eq!(ClientId::new(0).to_string(), "c0");
        assert_eq!(ClientId::from(5u32).index(), 5);
    }

    #[test]
    fn edge_reverse_is_involution() {
        let e = edge(1, 2);
        assert_eq!(e.reversed().reversed(), e);
        assert_ne!(e.reversed(), e);
    }

    #[test]
    fn edge_touches() {
        let e = edge(1, 2);
        assert!(e.touches(ReplicaId::new(1)));
        assert!(e.touches(ReplicaId::new(2)));
        assert!(!e.touches(ReplicaId::new(3)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = edge(1, 1);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ReplicaId::new(1) < ReplicaId::new(2));
        assert!(edge(0, 1) < edge(0, 2));
        assert!(edge(0, 2) < edge(1, 0));
    }
}
