//! Structural analysis of timestamp graphs: how much metadata a placement
//! forces, and how long the loop certificates behind it are.
//!
//! The paper's trade-off — replication flexibility vs metadata — is a
//! statement about graph structure: denser sharing creates more
//! `(i, e_jk)`-loops, hence more tracked edges. This module quantifies
//! that (experiment E12) and computes per-edge *certificate lengths*: the
//! shortest loop forcing an edge to be tracked, which is also the longest
//! dependency chain the truncated tracker of Appendix D must fear.

use crate::graph::ShareGraph;
use crate::ids::EdgeId;
use crate::loops::{exists_loop, LoopConfig};
use crate::tsgraph::TimestampGraphs;
use crate::ReplicaId;

/// Aggregate structural metrics of a placement's timestamp graphs.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of replicas.
    pub replicas: usize,
    /// Mean counters per replica (`|E_i|`).
    pub avg_counters: f64,
    /// Max counters over replicas.
    pub max_counters: usize,
    /// Mean incident counters (`2·N_i`) — the tree floor.
    pub avg_incident: f64,
    /// Fraction of tracked edges that are *far* (loop-certified), over
    /// all replicas.
    pub far_edge_fraction: f64,
    /// Overhead factor: `avg_counters / avg_incident` (1.0 = tree-like,
    /// grows with loop structure).
    pub overhead_factor: f64,
}

/// Computes [`GraphStats`] for `g`.
pub fn edge_stats(g: &ShareGraph) -> GraphStats {
    let graphs = TimestampGraphs::build(g, LoopConfig::EXHAUSTIVE);
    let n = g.num_replicas().max(1);
    let mut total = 0usize;
    let mut max_counters = 0usize;
    let mut incident = 0usize;
    let mut far = 0usize;
    for tg in graphs.iter() {
        total += tg.len();
        max_counters = max_counters.max(tg.len());
        let inc = tg
            .edges()
            .iter()
            .filter(|e| e.touches(tg.replica()))
            .count();
        incident += inc;
        far += tg.len() - inc;
    }
    let avg_counters = total as f64 / n as f64;
    let avg_incident = incident as f64 / n as f64;
    GraphStats {
        replicas: g.num_replicas(),
        avg_counters,
        max_counters,
        avg_incident,
        far_edge_fraction: if total == 0 {
            0.0
        } else {
            far as f64 / total as f64
        },
        overhead_factor: if avg_incident == 0.0 {
            1.0
        } else {
            avg_counters / avg_incident
        },
    }
}

/// The length (in edges) of the shortest `(i, e)`-loop, if any — the
/// certificate that forces `i` to track `e`, found by growing the bounded
/// search cap. Also the minimum `l + 1` at which Appendix D's truncated
/// tracker keeps this edge.
pub fn shortest_loop_len(g: &ShareGraph, i: ReplicaId, e: EdgeId) -> Option<usize> {
    (3..=g.num_replicas()).find(|&cap| exists_loop(g, i, e, LoopConfig::bounded(cap)))
}

/// Distribution of shortest-certificate lengths over all (replica, far
/// edge) pairs of `g`: `result[k]` = number of certificates of length `k`
/// (index 0 and 1 and 2 unused).
pub fn certificate_length_histogram(g: &ShareGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.num_replicas() + 1];
    for i in g.replicas() {
        for &e in g.edges() {
            if e.touches(i) {
                continue;
            }
            if let Some(len) = shortest_loop_len(g, i, e) {
                hist[len] += 1;
            }
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn tree_stats_are_floor() {
        let g = topology::binary_tree(7);
        let s = edge_stats(&g);
        assert_eq!(s.far_edge_fraction, 0.0);
        assert!((s.overhead_factor - 1.0).abs() < 1e-12);
        assert!((s.avg_counters - s.avg_incident).abs() < 1e-12);
    }

    #[test]
    fn ring_overhead_grows_with_n() {
        let s4 = edge_stats(&topology::ring(4));
        let s8 = edge_stats(&topology::ring(8));
        // Ring: counters = 2n, incident = 4 ⇒ overhead = n/2.
        assert!((s4.overhead_factor - 2.0).abs() < 1e-12);
        assert!((s8.overhead_factor - 4.0).abs() < 1e-12);
        assert!(s8.far_edge_fraction > s4.far_edge_fraction);
        assert_eq!(s8.max_counters, 16);
    }

    #[test]
    fn certificate_lengths_on_ring() {
        // Every far edge of a ring has exactly one loop: the full cycle.
        let n = 6;
        let g = topology::ring(n);
        let hist = certificate_length_histogram(&g);
        // Far directed edges per replica: 2n − 4 = 8; times n replicas.
        assert_eq!(hist[n], 6 * 8);
        assert!(hist[..n].iter().all(|&c| c == 0));
    }

    #[test]
    fn certificate_lengths_on_triangle() {
        let g = topology::ring(3);
        let i = ReplicaId::new(0);
        let e = crate::edge(1, 2);
        assert_eq!(shortest_loop_len(&g, i, e), Some(3));
        // Non-loop edge on a path: no certificate.
        let p = topology::path(4);
        assert_eq!(
            shortest_loop_len(&p, ReplicaId::new(0), crate::edge(2, 3)),
            None
        );
    }

    #[test]
    fn clique_has_short_certificates() {
        let g = topology::clique_full(5, 4);
        let hist = certificate_length_histogram(&g);
        // Everything certified by triangles.
        assert!(hist[3] > 0);
        assert_eq!(hist[4..].iter().sum::<usize>(), 0);
    }
}
