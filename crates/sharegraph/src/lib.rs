//! Share graphs, `(i, e_jk)`-loops, and timestamp graphs for partially
//! replicated causally consistent shared memory.
//!
//! This crate implements the graph-theoretic machinery of *"Partially
//! Replicated Causally Consistent Shared Memory: Lower Bounds and An
//! Algorithm"* (Xiang & Vaidya; PODC 2018 brief announcement):
//!
//! * [`Placement`] — the static register-to-replica assignment `X_i`;
//! * [`ShareGraph`] — Definition 3: replicas adjacent iff they share a
//!   register;
//! * [`loops`] — Definition 4: the `(i, e_jk)`-loop condition that makes an
//!   edge *necessary* to track (Theorem 8);
//! * [`TimestampGraph`] — Definition 5: the exact edge set `E_i` each
//!   replica must (and need only) keep counters for;
//! * [`hoops`] — the Hélary–Milani minimal-hoop condition the paper
//!   corrects (Section 3.2);
//! * [`augmented`] — the client-server extension (Section 6, Appendix E);
//! * [`topology`] and [`paper_examples`] — generators and the paper's
//!   figures.
//!
//! # Examples
//!
//! Reproducing the paper's Figure 5 worked example:
//!
//! ```
//! use prcc_sharegraph::{paper_examples, TimestampGraph, ReplicaId, edge, LoopConfig};
//!
//! let g = paper_examples::figure5();
//! let g1 = TimestampGraph::build(&g, ReplicaId::new(0), LoopConfig::EXHAUSTIVE);
//! assert!(g1.contains(edge(3, 2)));  // e_43 is tracked by replica 1
//! assert!(!g1.contains(edge(2, 3))); // e_34 is not
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod augmented;
pub mod dot;
pub mod graph;
pub mod hoops;
pub mod ids;
pub mod loops;
pub mod paper_examples;
pub mod placement;
pub mod regset;
pub mod spanning;
pub mod topology;
pub mod tsgraph;

pub use augmented::{AugmentedShareGraph, ClientAssignment};
pub use graph::ShareGraph;
pub use ids::{edge, ClientId, EdgeId, RegisterId, ReplicaId};
pub use loops::{exists_loop, find_loop, LoopConfig, LoopWitness};
pub use placement::{Placement, PlacementBuilder};
pub use regset::RegSet;
pub use spanning::SpanningTree;
pub use tsgraph::{TimestampGraph, TimestampGraphs};
