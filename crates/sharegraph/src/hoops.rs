//! Hoops and minimal hoops — the Hélary–Milani condition the paper corrects
//! (Section 3.2 and Appendix A; Definitions 9/17, 10/18, and 20).
//!
//! An `x`-hoop between two replicas `r_a, r_b ∈ C(x)` is a path whose
//! interior vertices do not store `x` and whose consecutive pairs share a
//! register other than `x`. Hélary and Milani claimed a replica must track
//! register `x` iff it stores `x` or lies on a *minimal* `x`-hoop; the
//! paper shows this claim is incorrect in both directions. This module
//! implements both the original and the modified minimality conditions so
//! the counterexamples (Figures 8a/8b) can be reproduced quantitatively
//! (experiment E3).

use crate::graph::ShareGraph;
use crate::ids::{EdgeId, RegisterId, ReplicaId};
use crate::regset::RegSet;

/// Which minimality condition to use when testing hoops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoopVariant {
    /// Definition 18 (original Hélary–Milani): every hoop edge can be
    /// labelled with a *distinct* register, and no label is stored by both
    /// endpoints `r_a` and `r_b`.
    Original,
    /// Definition 20 (the modified version the paper also refutes): every
    /// hoop edge labelled with a distinct register, and no label is shared
    /// by **more than two replicas of the hoop**.
    Modified,
}

/// A concrete hoop: the path `r_a = h_0, h_1, …, h_k = r_b` together with
/// the register `x` it is a hoop for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hoop {
    /// The register the hoop bypasses.
    pub register: RegisterId,
    /// Path vertices, endpoints included. Length ≥ 2.
    pub path: Vec<ReplicaId>,
}

impl Hoop {
    /// Number of edges in the hoop path.
    pub fn num_edges(&self) -> usize {
        self.path.len() - 1
    }

    /// True if this is a valid `x`-hoop in `g` (Definition 17): interior
    /// vertices outside `C(x)`, endpoints in `C(x)`, and each consecutive
    /// pair sharing some register `≠ x`.
    pub fn is_valid(&self, g: &ShareGraph) -> bool {
        if self.path.len() < 2 {
            return false;
        }
        let x = self.register;
        let p = g.placement();
        let (a, b) = (self.path[0], *self.path.last().unwrap());
        if !p.stores(a, x) || !p.stores(b, x) {
            return false;
        }
        for &h in &self.path[1..self.path.len() - 1] {
            if p.stores(h, x) {
                return false;
            }
        }
        for w in self.path.windows(2) {
            let mut shared = g.edge_registers(EdgeId::new(w[0], w[1])).clone();
            shared.remove(x);
            if shared.is_empty() {
                return false;
            }
        }
        true
    }

    /// True if the hoop is minimal under `variant`, i.e. there is a system
    /// of *distinct* representative labels (one register per edge, each
    /// `≠ x`) satisfying the variant's extra condition.
    ///
    /// Finding a distinct-label assignment is a bipartite matching between
    /// hoop edges and candidate registers; hoops are short, so a simple
    /// augmenting-path matching suffices.
    pub fn is_minimal(&self, g: &ShareGraph, variant: HoopVariant) -> bool {
        if !self.is_valid(g) {
            return false;
        }
        let x = self.register;
        let p = g.placement();
        let (a, b) = (self.path[0], *self.path.last().unwrap());
        // Candidate labels per edge.
        let mut edge_labels: Vec<Vec<RegisterId>> = Vec::new();
        for w in self.path.windows(2) {
            let mut cands = Vec::new();
            for reg in g.edge_registers(EdgeId::new(w[0], w[1])).iter() {
                if reg == x {
                    continue;
                }
                let ok = match variant {
                    HoopVariant::Original => !(p.stores(a, reg) && p.stores(b, reg)),
                    HoopVariant::Modified => {
                        // Label not shared by more than two replicas *in the
                        // hoop*.
                        let holders_in_hoop =
                            self.path.iter().filter(|&&h| p.stores(h, reg)).count();
                        holders_in_hoop <= 2
                    }
                };
                if ok {
                    cands.push(reg);
                }
            }
            if cands.is_empty() {
                return false;
            }
            edge_labels.push(cands);
        }
        distinct_assignment_exists(&edge_labels)
    }
}

/// Bipartite matching: can each edge pick a distinct register from its
/// candidate list? (Hall's theorem via augmenting paths.)
fn distinct_assignment_exists(cands: &[Vec<RegisterId>]) -> bool {
    use std::collections::HashMap;
    let mut owner: HashMap<RegisterId, usize> = HashMap::new();

    fn try_assign(
        e: usize,
        cands: &[Vec<RegisterId>],
        owner: &mut std::collections::HashMap<RegisterId, usize>,
        visited: &mut Vec<RegisterId>,
    ) -> bool {
        for &reg in &cands[e] {
            if visited.contains(&reg) {
                continue;
            }
            visited.push(reg);
            match owner.get(&reg).copied() {
                None => {
                    owner.insert(reg, e);
                    return true;
                }
                Some(prev) => {
                    if try_assign(prev, cands, owner, visited) {
                        owner.insert(reg, e);
                        return true;
                    }
                }
            }
        }
        false
    }

    for e in 0..cands.len() {
        let mut visited = Vec::new();
        if !try_assign(e, cands, &mut owner, &mut visited) {
            return false;
        }
    }
    true
}

/// Enumerates all `x`-hoops between distinct ordered pairs of replicas in
/// `C(x)` that pass through replica `via`, up to `max_edges` edges.
/// Endpoints are excluded as `via` (the interesting case is an interior
/// vertex that does not store `x`).
pub fn hoops_through(g: &ShareGraph, x: RegisterId, via: ReplicaId, max_edges: usize) -> Vec<Hoop> {
    let mut out = Vec::new();
    let holders: Vec<ReplicaId> = g.placement().holders(x).to_vec();
    for &a in &holders {
        for &b in &holders {
            if a == b {
                continue;
            }
            // DFS over simple paths a -> b with interior outside C(x).
            let mut path = vec![a];
            let mut used = vec![false; g.num_replicas()];
            used[a.index()] = true;
            dfs_hoops(g, x, a, b, via, max_edges, &mut path, &mut used, &mut out);
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs_hoops(
    g: &ShareGraph,
    x: RegisterId,
    v: ReplicaId,
    target: ReplicaId,
    via: ReplicaId,
    max_edges: usize,
    path: &mut Vec<ReplicaId>,
    used: &mut Vec<bool>,
    out: &mut Vec<Hoop>,
) {
    if path.len() > max_edges {
        return;
    }
    for &w in g.neighbors(v) {
        if used[w.index()] {
            continue;
        }
        // Edge must share a register other than x.
        let mut labels = g.edge_registers(EdgeId::new(v, w)).clone();
        labels.remove(x);
        if labels.is_empty() {
            continue;
        }
        if w == target {
            path.push(w);
            let hoop = Hoop {
                register: x,
                path: path.clone(),
            };
            // Interior must avoid C(x); interior = path[1..len-1].
            if hoop.is_valid(g) && path[1..path.len() - 1].contains(&via) {
                out.push(hoop);
            }
            path.pop();
            continue;
        }
        if g.placement().stores(w, x) {
            continue; // interior vertices must not store x
        }
        used[w.index()] = true;
        path.push(w);
        dfs_hoops(g, x, w, target, via, max_edges, path, used, out);
        path.pop();
        used[w.index()] = false;
    }
}

/// The set of registers replica `i` must "transmit information about"
/// according to the Hélary–Milani claim (Lemma 11/19): the registers it
/// stores plus every register `x` such that `i` lies on a minimal `x`-hoop.
pub fn helary_milani_tracked_registers(
    g: &ShareGraph,
    i: ReplicaId,
    variant: HoopVariant,
    max_edges: usize,
) -> RegSet {
    let mut out = g.placement().registers_of(i).clone();
    for x_idx in 0..g.placement().num_registers() as u32 {
        let x = RegisterId::new(x_idx);
        if out.contains(x) {
            continue;
        }
        let hoops = hoops_through(g, x, i, max_edges);
        if hoops.iter().any(|h| h.is_minimal(g, variant)) {
            out.insert(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;

    /// Square: 0-1 share x(0) and also 0-2, plus a bypass 0-3-1 labelled
    /// with distinct registers.
    fn square_with_bypass() -> ShareGraph {
        // C(x)= {0,1}: register 0 at replicas 0,1.
        // bypass 0 - 3 - 1 with registers 1 (0-3) and 2 (3-1).
        ShareGraph::new(
            Placement::builder(4)
                .share(0, [0, 1])
                .share(1, [0, 3])
                .share(2, [3, 1])
                .build(),
        )
    }

    #[test]
    fn finds_simple_hoop() {
        let g = square_with_bypass();
        let hoops = hoops_through(&g, RegisterId::new(0), ReplicaId::new(3), 4);
        assert!(!hoops.is_empty());
        for h in &hoops {
            assert!(h.is_valid(&g));
            assert!(h.is_minimal(&g, HoopVariant::Original), "{h:?}");
        }
    }

    #[test]
    fn hoop_validity_checks() {
        let g = square_with_bypass();
        // Endpoint does not store x.
        let bad = Hoop {
            register: RegisterId::new(0),
            path: vec![ReplicaId::new(3), ReplicaId::new(1)],
        };
        assert!(!bad.is_valid(&g));
        // Interior stores x: path 0 -> 1 -> ... can't be: 1 stores x, so a
        // path through 1 as interior is invalid.
        let bad2 = Hoop {
            register: RegisterId::new(0),
            path: vec![ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(3)],
        };
        assert!(!bad2.is_valid(&g));
        // Too short.
        let bad3 = Hoop {
            register: RegisterId::new(0),
            path: vec![ReplicaId::new(0)],
        };
        assert!(!bad3.is_valid(&g));
    }

    #[test]
    fn distinct_labels_required_for_minimality() {
        // Hoop 0-2-1 for x=0 where both edges carry only register 1:
        // no distinct labelling ⇒ not minimal.
        let g = ShareGraph::new(
            Placement::builder(3)
                .share(0, [0, 1]) // x at 0,1
                .share(1, [0, 2, 1]) // y at 0,2,1: edges 0-2 and 2-1 both only y
                .build(),
        );
        let hoops = hoops_through(&g, RegisterId::new(0), ReplicaId::new(2), 3);
        assert!(!hoops.is_empty());
        for h in &hoops {
            assert!(!h.is_minimal(&g, HoopVariant::Original));
        }
    }

    #[test]
    fn endpoint_shared_label_blocks_original_minimality() {
        // Hoop 0-2-1 for x (=r0), edges labelled y (=r1) and z (=r2), but y
        // is stored by both endpoints 0 and 1 ⇒ y unusable; the 0-2 edge
        // also carries w (=r3) though, so still minimal.
        let g = ShareGraph::new(
            Placement::builder(3)
                .share(0, [0, 1]) // x at 0,1
                .share(1, [0, 2, 1]) // y at 0,1,2
                .share(2, [2, 1]) // z at 2,1
                .share(3, [0, 2]) // w at 0,2
                .build(),
        );
        let hoops = hoops_through(&g, RegisterId::new(0), ReplicaId::new(2), 3);
        let minimal: Vec<_> = hoops
            .iter()
            .filter(|h| h.is_minimal(&g, HoopVariant::Original))
            .collect();
        assert!(!minimal.is_empty());
        // Remove w and the hoop stops being minimal (0-2 edge can only be
        // labelled y, which both endpoints store).
        let g2 = ShareGraph::new(
            Placement::builder(3)
                .share(0, [0, 1])
                .share(1, [0, 2, 1])
                .share(2, [2, 1])
                .build(),
        );
        let hoops2 = hoops_through(&g2, RegisterId::new(0), ReplicaId::new(2), 3);
        assert!(hoops2
            .iter()
            .all(|h| !h.is_minimal(&g2, HoopVariant::Original)));
    }

    #[test]
    fn tracked_registers_includes_own() {
        let g = square_with_bypass();
        let tracked =
            helary_milani_tracked_registers(&g, ReplicaId::new(3), HoopVariant::Original, 8);
        // Replica 3 stores registers 1, 2 and lies on a minimal x-hoop.
        assert!(tracked.contains(RegisterId::new(0)));
        assert!(tracked.contains(RegisterId::new(1)));
        assert!(tracked.contains(RegisterId::new(2)));
    }

    #[test]
    fn matching_handles_contention() {
        // Three edges each allowing registers {1,2}: no distinct assignment.
        assert!(!distinct_assignment_exists(&[
            vec![RegisterId::new(1), RegisterId::new(2)],
            vec![RegisterId::new(1), RegisterId::new(2)],
            vec![RegisterId::new(1), RegisterId::new(2)],
        ]));
        // Two edges: fine.
        assert!(distinct_assignment_exists(&[
            vec![RegisterId::new(1), RegisterId::new(2)],
            vec![RegisterId::new(1), RegisterId::new(2)],
        ]));
        // Forced chain: e0 can only take 1, e1 can take 1 or 2.
        assert!(distinct_assignment_exists(&[
            vec![RegisterId::new(1)],
            vec![RegisterId::new(1), RegisterId::new(2)],
        ]));
    }
}
