//! Share-graph topology generators used by tests, examples, and the
//! experiment harness (E4, E10).
//!
//! Each generator returns a [`ShareGraph`] whose *shape* matches a case the
//! paper analyses: trees (timestamp = `2·N_i` counters), cycles (`2n`
//! counters), cliques (full replication; compressible to an `R`-vector),
//! plus random placements for workload experiments.

use crate::graph::ShareGraph;
use crate::placement::{Placement, PlacementBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Path of `n` replicas: replica `i` shares register `i` with `i+1` only.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> ShareGraph {
    assert!(n > 0, "need at least one replica");
    let mut b = Placement::builder(n);
    for i in 0..n.saturating_sub(1) {
        b = b.share(i as u32, [i as u32, i as u32 + 1]);
    }
    ShareGraph::new(b.build())
}

/// Ring of `n` replicas with a *distinct* register per adjacent pair — the
/// Figure 13 topology. Every replica ends up tracking all `2n` directed
/// edges.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> ShareGraph {
    assert!(n >= 3, "a ring needs at least 3 replicas");
    let mut b = Placement::builder(n);
    for i in 0..n {
        b = b.share(i as u32, [i as u32, ((i + 1) % n) as u32]);
    }
    ShareGraph::new(b.build())
}

/// Star with `leaves` leaves: hub is replica 0, register `i-1` shared by
/// the hub and leaf `i`.
///
/// # Panics
///
/// Panics if `leaves == 0`.
pub fn star(leaves: usize) -> ShareGraph {
    assert!(leaves > 0, "need at least one leaf");
    let mut b = Placement::builder(leaves + 1);
    for i in 1..=leaves {
        b = b.share((i - 1) as u32, [0, i as u32]);
    }
    ShareGraph::new(b.build())
}

/// Balanced binary tree with `n` replicas (heap layout): node `i` shares a
/// distinct register with each child `2i+1`, `2i+2`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> ShareGraph {
    assert!(n > 0, "need at least one replica");
    let mut b = Placement::builder(n);
    let mut reg = 0u32;
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                b = b.share(reg, [i as u32, child as u32]);
                reg += 1;
            }
        }
    }
    ShareGraph::new(b.build())
}

/// Full replication: every one of `n` replicas stores all `registers`
/// registers. The share graph is a clique where every edge carries every
/// register.
///
/// # Panics
///
/// Panics if `n == 0` or `registers == 0`.
pub fn clique_full(n: usize, registers: usize) -> ShareGraph {
    assert!(n > 0 && registers > 0);
    let mut b = Placement::builder(n);
    for r in 0..n {
        b = b.store_all(r as u32, 0..registers as u32);
    }
    ShareGraph::new(b.build())
}

/// 2-D grid of `w × h` replicas; each horizontally/vertically adjacent
/// pair shares a distinct register.
///
/// # Panics
///
/// Panics if `w == 0 || h == 0`.
pub fn grid(w: usize, h: usize) -> ShareGraph {
    assert!(w > 0 && h > 0);
    let id = |x: usize, y: usize| (y * w + x) as u32;
    let mut b = Placement::builder(w * h);
    let mut reg = 0u32;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b = b.share(reg, [id(x, y), id(x + 1, y)]);
                reg += 1;
            }
            if y + 1 < h {
                b = b.share(reg, [id(x, y), id(x, y + 1)]);
                reg += 1;
            }
        }
    }
    ShareGraph::new(b.build())
}

/// The Appendix D compression example: replica `j` (id 0) shares `x` with
/// replica 1, `y` with replica 2, `z` with replica 3, and `{x, y, z}` with
/// replica 4. The edge to replica 4 is the sum of the other three — the
/// canonical linearly-dependent placement.
pub fn nested_example() -> ShareGraph {
    ShareGraph::new(
        Placement::builder(5)
            .share(0, [0, 1, 4]) // x at j, r1, r4
            .share(1, [0, 2, 4]) // y at j, r2, r4
            .share(2, [0, 3, 4]) // z at j, r3, r4
            .build(),
    )
}

/// Parameters for [`random_placement`].
#[derive(Debug, Clone, Copy)]
pub struct RandomPlacementConfig {
    /// Number of replicas.
    pub replicas: usize,
    /// Number of registers.
    pub registers: usize,
    /// Copies of each register (replication factor); clamped to
    /// `1..=replicas`.
    pub replication_factor: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

/// Random placement: each register is stored at `replication_factor`
/// replicas chosen uniformly at random. Used for E10's partial-replication
/// workloads. The result may be disconnected; callers that need
/// connectivity should check [`ShareGraph::is_connected`] or use
/// [`random_connected_placement`].
pub fn random_placement(cfg: RandomPlacementConfig) -> ShareGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let k = cfg.replication_factor.clamp(1, cfg.replicas);
    let mut b = Placement::builder(cfg.replicas);
    let all: Vec<u32> = (0..cfg.replicas as u32).collect();
    for x in 0..cfg.registers as u32 {
        let holders: Vec<u32> = all.choose_multiple(&mut rng, k).copied().collect();
        b = b.share(x, holders);
    }
    ShareGraph::new(b.build())
}

/// Like [`random_placement`] but guarantees a connected share graph by
/// first laying a random spanning-path of "link" registers and then adding
/// the random registers on top.
pub fn random_connected_placement(cfg: RandomPlacementConfig) -> ShareGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let k = cfg.replication_factor.clamp(1, cfg.replicas);
    let mut order: Vec<u32> = (0..cfg.replicas as u32).collect();
    order.shuffle(&mut rng);
    let mut b = Placement::builder(cfg.replicas);
    for (next_reg, w) in (cfg.registers as u32..).zip(order.windows(2)) {
        b = b.share(next_reg, [w[0], w[1]]);
    }
    let all: Vec<u32> = (0..cfg.replicas as u32).collect();
    for x in 0..cfg.registers as u32 {
        let holders: Vec<u32> = all.choose_multiple(&mut rng, k).copied().collect();
        b = b.share(x, holders);
    }
    ShareGraph::new(b.build())
}

/// A "geo" placement mimicking the paper's motivation: `dcs` datacenters
/// arranged in a ring; each datacenter has `local` private registers plus
/// one register shared with each ring neighbor, and `global` registers
/// replicated everywhere.
pub fn geo_placement(dcs: usize, local: usize, global: usize, seed: u64) -> ShareGraph {
    assert!(dcs >= 3);
    let _rng = StdRng::seed_from_u64(seed); // reserved for future jitter
    let mut b: PlacementBuilder = Placement::builder(dcs);
    let mut reg = 0u32;
    // Ring-shared registers.
    for i in 0..dcs {
        b = b.share(reg, [i as u32, ((i + 1) % dcs) as u32]);
        reg += 1;
    }
    // Local registers.
    for i in 0..dcs {
        for _ in 0..local {
            b = b.share(reg, [i as u32]);
            reg += 1;
        }
    }
    // Global registers.
    for _ in 0..global {
        b = b.share(reg, 0..dcs as u32);
        reg += 1;
    }
    ShareGraph::new(b.build())
}

/// `d`-dimensional hypercube: `2^d` replicas; replicas differing in one
/// bit share a distinct register.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 16`.
pub fn hypercube(d: usize) -> ShareGraph {
    assert!(d > 0 && d <= 16, "dimension out of range");
    let n = 1usize << d;
    let mut b = Placement::builder(n);
    let mut reg = 0u32;
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if w > v {
                b = b.share(reg, [v as u32, w as u32]);
                reg += 1;
            }
        }
    }
    ShareGraph::new(b.build())
}

/// 2-D torus of `w × h` replicas (grid plus wraparound edges), one
/// distinct register per adjacent pair.
///
/// # Panics
///
/// Panics if `w < 3 || h < 3` (smaller sizes create duplicate edges).
pub fn torus(w: usize, h: usize) -> ShareGraph {
    assert!(w >= 3 && h >= 3, "torus needs at least 3x3");
    let id = |x: usize, y: usize| ((y % h) * w + (x % w)) as u32;
    let mut b = Placement::builder(w * h);
    let mut reg = 0u32;
    for y in 0..h {
        for x in 0..w {
            b = b.share(reg, [id(x, y), id(x + 1, y)]);
            reg += 1;
            b = b.share(reg, [id(x, y), id(x, y + 1)]);
            reg += 1;
        }
    }
    ShareGraph::new(b.build())
}

/// Community structure: `communities` cliques of `size` replicas (every
/// intra-community pair shares a register) joined in a ring by one
/// bridge register per adjacent community pair — models federated
/// deployments with dense local sharing and sparse global links.
///
/// # Panics
///
/// Panics if `communities < 2 || size < 2`.
pub fn communities(communities: usize, size: usize) -> ShareGraph {
    assert!(communities >= 2 && size >= 2);
    let n = communities * size;
    let mut b = Placement::builder(n);
    let mut reg = 0u32;
    for c in 0..communities {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                b = b.share(reg, [(base + i) as u32, (base + j) as u32]);
                reg += 1;
            }
        }
    }
    // Ring of bridges between last member of c and first member of c+1.
    for c in 0..communities {
        let from = c * size + size - 1;
        let to = ((c + 1) % communities) * size;
        b = b.share(reg, [from as u32, to as u32]);
        reg += 1;
    }
    ShareGraph::new(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ReplicaId;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_undirected_edges(), 4);
        assert!(g.is_connected());
        assert_eq!(g.degree(ReplicaId::new(0)), 1);
        assert_eq!(g.degree(ReplicaId::new(2)), 2);
    }

    #[test]
    fn single_replica_path() {
        let g = path(1);
        assert_eq!(g.num_undirected_edges(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn ring_shape() {
        let g = ring(6);
        assert_eq!(g.num_undirected_edges(), 6);
        for r in g.replicas() {
            assert_eq!(g.degree(r), 2);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(4);
        assert_eq!(g.degree(ReplicaId::new(0)), 4);
        assert_eq!(g.num_undirected_edges(), 4);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.num_undirected_edges(), 6);
        assert!(g.is_connected());
        assert_eq!(g.degree(ReplicaId::new(0)), 2);
        assert_eq!(g.degree(ReplicaId::new(1)), 3);
        assert_eq!(g.degree(ReplicaId::new(6)), 1);
    }

    #[test]
    fn clique_is_full_replication() {
        let g = clique_full(4, 3);
        assert!(g.placement().is_full_replication());
        assert_eq!(g.num_undirected_edges(), 6);
        for &e in g.edges() {
            assert_eq!(g.edge_registers(e).len(), 3);
        }
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 2);
        assert_eq!(g.num_replicas(), 6);
        assert_eq!(g.num_undirected_edges(), 7); // 4 horizontal + 3 vertical
        assert!(g.is_connected());
    }

    #[test]
    fn nested_example_shares() {
        let g = nested_example();
        use crate::ids::edge;
        assert_eq!(g.edge_registers(edge(0, 1)).len(), 1);
        assert_eq!(g.edge_registers(edge(0, 4)).len(), 3);
    }

    #[test]
    fn random_placement_respects_factor() {
        let g = random_placement(RandomPlacementConfig {
            replicas: 10,
            registers: 30,
            replication_factor: 3,
            seed: 42,
        });
        for x in 0..30u32 {
            assert_eq!(g.placement().holders(crate::RegisterId::new(x)).len(), 3);
        }
    }

    #[test]
    fn random_placement_is_deterministic() {
        let cfg = RandomPlacementConfig {
            replicas: 8,
            registers: 20,
            replication_factor: 2,
            seed: 7,
        };
        let a = random_placement(cfg);
        let b = random_placement(cfg);
        assert_eq!(a.placement(), b.placement());
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let g = random_connected_placement(RandomPlacementConfig {
                replicas: 12,
                registers: 10,
                replication_factor: 2,
                seed,
            });
            assert!(g.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(3);
        assert_eq!(g.num_replicas(), 8);
        assert_eq!(g.num_undirected_edges(), 12);
        for r in g.replicas() {
            assert_eq!(g.degree(r), 3);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn torus_shape() {
        let g = torus(3, 4);
        assert_eq!(g.num_replicas(), 12);
        assert_eq!(g.num_undirected_edges(), 24);
        for r in g.replicas() {
            assert_eq!(g.degree(r), 4);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn communities_shape() {
        let g = communities(3, 3);
        assert_eq!(g.num_replicas(), 9);
        // 3 communities × C(3,2)=3 intra edges + 3 bridges = 12.
        assert_eq!(g.num_undirected_edges(), 12);
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn torus_minimum_size() {
        let _ = torus(2, 3);
    }

    #[test]
    fn geo_placement_shape() {
        let g = geo_placement(4, 2, 1, 0);
        assert!(g.is_connected());
        // Global register makes the graph a clique.
        assert_eq!(g.num_undirected_edges(), 6);
        assert_eq!(g.placement().num_registers(), 4 + 8 + 1);
    }
}
