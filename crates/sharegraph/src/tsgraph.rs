//! Timestamp graphs — Definition 5 of the paper.
//!
//! The timestamp graph `G_i = (V_i, E_i)` of replica `i` contains
//!
//! * every directed edge incident at `i` (both directions), and
//! * every directed edge `e_jk` (`j ≠ i ≠ k`) for which an
//!   `(i, e_jk)`-loop exists.
//!
//! `E_i` is exactly the set of edges replica `i` must keep a counter for
//! (necessary by Theorem 8, sufficient by the Section 3.3 algorithm).

use crate::graph::ShareGraph;
use crate::ids::{EdgeId, ReplicaId};
use crate::loops::{exists_loop, LoopConfig};
use std::collections::BTreeSet;

/// The timestamp graph of a single replica: the sorted edge set `E_i`.
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::{paper_examples, TimestampGraph, ReplicaId, edge, LoopConfig};
/// let g = paper_examples::figure5();
/// let g1 = TimestampGraph::build(&g, ReplicaId::new(0), LoopConfig::EXHAUSTIVE);
/// // Figure 5b: e_43 ∈ G_1 but e_34 ∉ G_1 (0-indexed: e(3,2) vs e(2,3)).
/// assert!(g1.contains(edge(3, 2)));
/// assert!(!g1.contains(edge(2, 3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimestampGraph {
    replica: ReplicaId,
    edges: Vec<EdgeId>,
}

impl TimestampGraph {
    /// Builds `G_i` for replica `i` by testing every candidate edge.
    ///
    /// A bounded [`LoopConfig`] yields the truncated graphs of Appendix D
    /// ("sacrificing causality"); incident edges are always included
    /// regardless of the bound.
    pub fn build(g: &ShareGraph, i: ReplicaId, config: LoopConfig) -> Self {
        let mut edges = BTreeSet::new();
        for &e in g.edges() {
            if e.touches(i) || exists_loop(g, i, e, config) {
                edges.insert(e);
            }
        }
        TimestampGraph {
            replica: i,
            edges: edges.into_iter().collect(),
        }
    }

    /// Creates a timestamp graph from an explicit edge list (used by the
    /// client-server augmented construction and by tests).
    pub fn from_edges(replica: ReplicaId, mut edges: Vec<EdgeId>) -> Self {
        edges.sort();
        edges.dedup();
        TimestampGraph { replica, edges }
    }

    /// The replica this graph belongs to.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// The sorted edge set `E_i`.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges — the number of counters in replica `i`'s
    /// (uncompressed) timestamp vector.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if `E_i` is empty (an isolated replica).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// True if edge `e` is tracked.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }

    /// Position of `e` in the sorted edge list, if tracked. This is the
    /// index of the corresponding counter in the timestamp vector.
    pub fn position(&self, e: EdgeId) -> Option<usize> {
        self.edges.binary_search(&e).ok()
    }

    /// The vertices `V_i` mentioned by `E_i`, sorted.
    pub fn vertices(&self) -> Vec<ReplicaId> {
        let mut v: Vec<ReplicaId> = self.edges.iter().flat_map(|e| [e.from, e.to]).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Iterates over the tracked edges whose destination is `i` itself —
    /// the "incoming" edges checked by predicate `J`.
    pub fn incoming(&self) -> impl Iterator<Item = EdgeId> + '_ {
        let me = self.replica;
        self.edges.iter().copied().filter(move |e| e.to == me)
    }

    /// Iterates over the tracked edges issued by `i` itself.
    pub fn outgoing(&self) -> impl Iterator<Item = EdgeId> + '_ {
        let me = self.replica;
        self.edges.iter().copied().filter(move |e| e.from == me)
    }

    /// Sorted intersection `E_i ∩ E_k` with another timestamp graph — the
    /// index set over which `merge` takes a max.
    pub fn intersection(&self, other: &TimestampGraph) -> Vec<EdgeId> {
        let mut out = Vec::new();
        let (mut a, mut b) = (0, 0);
        while a < self.edges.len() && b < other.edges.len() {
            match self.edges[a].cmp(&other.edges[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.edges[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        out
    }
}

/// Timestamp graphs for every replica of a share graph.
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::{paper_examples, TimestampGraphs, LoopConfig};
/// let g = paper_examples::figure3();
/// let all = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
/// assert_eq!(all.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct TimestampGraphs {
    graphs: Vec<TimestampGraph>,
}

impl TimestampGraphs {
    /// Builds `G_i` for every replica.
    pub fn build(g: &ShareGraph, config: LoopConfig) -> Self {
        TimestampGraphs {
            graphs: g
                .replicas()
                .map(|i| TimestampGraph::build(g, i, config))
                .collect(),
        }
    }

    /// Wraps pre-built graphs (must be indexed by replica).
    pub fn from_graphs(graphs: Vec<TimestampGraph>) -> Self {
        for (idx, tg) in graphs.iter().enumerate() {
            assert_eq!(
                tg.replica().index(),
                idx,
                "graphs must be ordered by replica"
            );
        }
        TimestampGraphs { graphs }
    }

    /// The graph of replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn of(&self, i: ReplicaId) -> &TimestampGraph {
        &self.graphs[i.index()]
    }

    /// Number of replicas covered.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True if no replicas are covered.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Iterates over all per-replica graphs.
    pub fn iter(&self) -> impl Iterator<Item = &TimestampGraph> {
        self.graphs.iter()
    }

    /// Total counters across all replicas — the system-wide metadata
    /// footprint compared in experiment E4.
    pub fn total_counters(&self) -> usize {
        self.graphs.iter().map(TimestampGraph::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::edge;
    use crate::placement::Placement;

    fn ring(n: u32) -> ShareGraph {
        let mut b = Placement::builder(n as usize);
        for i in 0..n {
            b = b.share(i, [i, (i + 1) % n]);
        }
        ShareGraph::new(b.build())
    }

    fn star(n: u32) -> ShareGraph {
        // Hub replica 0 shares register i with leaf i (1..=n).
        let mut b = Placement::builder(n as usize + 1);
        for i in 1..=n {
            b = b.share(i - 1, [0, i]);
        }
        ShareGraph::new(b.build())
    }

    #[test]
    fn ring_replica_tracks_all_2n_edges() {
        // Section 4: cycle of n replicas ⇒ each timestamp has 2n counters.
        for n in [3u32, 4, 5, 6, 7] {
            let g = ring(n);
            let all = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
            for tg in all.iter() {
                assert_eq!(
                    tg.len(),
                    2 * n as usize,
                    "ring({n}), replica {}",
                    tg.replica()
                );
            }
        }
    }

    #[test]
    fn star_replica_tracks_only_incident_edges() {
        // A star is a tree: no loops, so E_i = incident edges = 2·N_i.
        let g = star(5);
        let all = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
        assert_eq!(all.of(ReplicaId::new(0)).len(), 10); // hub: degree 5
        for i in 1..=5u32 {
            assert_eq!(all.of(ReplicaId::new(i)).len(), 2); // leaves: degree 1
        }
        assert_eq!(all.total_counters(), 20);
    }

    #[test]
    fn incoming_outgoing_split() {
        let g = ring(4);
        let tg = TimestampGraph::build(&g, ReplicaId::new(0), LoopConfig::EXHAUSTIVE);
        let inc: Vec<EdgeId> = tg.incoming().collect();
        let out: Vec<EdgeId> = tg.outgoing().collect();
        assert_eq!(inc, vec![edge(1, 0), edge(3, 0)]);
        assert_eq!(out, vec![edge(0, 1), edge(0, 3)]);
    }

    #[test]
    fn positions_are_dense_and_sorted() {
        let g = ring(4);
        let tg = TimestampGraph::build(&g, ReplicaId::new(0), LoopConfig::EXHAUSTIVE);
        for (idx, &e) in tg.edges().iter().enumerate() {
            assert_eq!(tg.position(e), Some(idx));
        }
        assert_eq!(tg.position(edge(0, 2)), None);
    }

    #[test]
    fn intersection_is_symmetric_and_sorted() {
        let g = ring(5);
        let all = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
        let a = all.of(ReplicaId::new(0));
        let b = all.of(ReplicaId::new(1));
        let ab = a.intersection(b);
        let ba = b.intersection(a);
        assert_eq!(ab, ba);
        assert!(ab.windows(2).all(|w| w[0] < w[1]));
        // In a distinct-register ring both replicas track everything.
        assert_eq!(ab.len(), 10);
    }

    #[test]
    fn truncated_graph_is_subset() {
        let g = ring(6);
        let full = TimestampGraph::build(&g, ReplicaId::new(0), LoopConfig::EXHAUSTIVE);
        let trunc = TimestampGraph::build(&g, ReplicaId::new(0), LoopConfig::bounded(4));
        assert!(trunc.len() < full.len());
        for &e in trunc.edges() {
            assert!(full.contains(e));
        }
        // Incident edges always survive truncation.
        for &e in g.edges() {
            if e.touches(ReplicaId::new(0)) {
                assert!(trunc.contains(e));
            }
        }
    }

    #[test]
    fn vertices_cover_edge_endpoints() {
        let g = ring(4);
        let tg = TimestampGraph::build(&g, ReplicaId::new(2), LoopConfig::EXHAUSTIVE);
        let vs = tg.vertices();
        assert_eq!(vs.len(), 4);
    }

    #[test]
    fn from_edges_dedups_and_sorts() {
        let tg =
            TimestampGraph::from_edges(ReplicaId::new(0), vec![edge(1, 0), edge(0, 1), edge(1, 0)]);
        assert_eq!(tg.edges(), &[edge(0, 1), edge(1, 0)]);
    }

    #[test]
    #[should_panic(expected = "ordered by replica")]
    fn from_graphs_validates_order() {
        let tg = TimestampGraph::from_edges(ReplicaId::new(1), vec![]);
        let _ = TimestampGraphs::from_graphs(vec![tg]);
    }
}
