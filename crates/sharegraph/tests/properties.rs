//! Property-based tests for the share-graph machinery.

use prcc_sharegraph::{
    exists_loop, find_loop,
    topology::{self, RandomPlacementConfig},
    LoopConfig, Placement, RegSet, ShareGraph, TimestampGraph,
};
use proptest::prelude::*;

fn random_graph(seed: u64, replicas: usize, registers: usize, rf: usize) -> ShareGraph {
    topology::random_placement(RandomPlacementConfig {
        replicas,
        registers,
        replication_factor: rf,
        seed,
    })
}

proptest! {
    /// Every loop find_loop returns verifies against Definition 4, and
    /// find/exists agree.
    #[test]
    fn found_loops_verify(seed in 0u64..200) {
        let g = random_graph(seed, 6, 8, 2);
        for i in g.replicas() {
            for &e in g.edges() {
                if e.touches(i) {
                    continue;
                }
                let found = find_loop(&g, i, e, LoopConfig::EXHAUSTIVE);
                prop_assert_eq!(
                    found.is_some(),
                    exists_loop(&g, i, e, LoopConfig::EXHAUSTIVE)
                );
                if let Some(w) = found {
                    prop_assert!(w.verify(&g), "witness {:?} fails Def 4", w);
                    prop_assert_eq!(w.anchor, i);
                    prop_assert_eq!(w.edge, e);
                }
            }
        }
    }

    /// Share-graph edges always come in direction pairs with identical
    /// register sets, and edge registers are subsets of both endpoints.
    #[test]
    fn share_graph_structural(seed in 0u64..200) {
        let g = random_graph(seed, 7, 10, 3);
        for &e in g.edges() {
            prop_assert!(g.has_edge(e.reversed()));
            prop_assert_eq!(g.edge_registers(e), g.edge_registers(e.reversed()));
            let regs = g.edge_registers(e);
            prop_assert!(regs.is_subset(g.placement().registers_of(e.from)));
            prop_assert!(regs.is_subset(g.placement().registers_of(e.to)));
            prop_assert!(!regs.is_empty());
        }
    }

    /// Timestamp graphs: incident edges always included; every tracked
    /// far edge has a verifying loop witness; and removing the loop's
    /// certificate (building on a bounded config) never ADDS edges.
    #[test]
    fn timestamp_graph_sound_and_complete(seed in 0u64..100) {
        let g = random_graph(seed, 6, 7, 2);
        for i in g.replicas() {
            let tg = TimestampGraph::build(&g, i, LoopConfig::EXHAUSTIVE);
            for &e in g.edges() {
                let expected = e.touches(i) || exists_loop(&g, i, e, LoopConfig::EXHAUSTIVE);
                prop_assert_eq!(tg.contains(e), expected, "replica {} edge {}", i, e);
            }
        }
    }

    /// Full replication (clique, identical registers) ⇒ every replica
    /// tracks every directed edge.
    #[test]
    fn full_replication_tracks_everything(n in 3usize..6, regs in 1usize..4) {
        let g = topology::clique_full(n, regs);
        for i in g.replicas() {
            let tg = TimestampGraph::build(&g, i, LoopConfig::EXHAUSTIVE);
            prop_assert_eq!(tg.len(), n * (n - 1));
        }
    }

    /// Placement round-trip: building from sets preserves them.
    #[test]
    fn placement_round_trip(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u32..30, 0..10), 1..6)
    ) {
        let regsets: Vec<RegSet> = sets
            .iter()
            .map(|s| RegSet::from_indices(s.iter().copied()))
            .collect();
        let p = Placement::from_sets(regsets.clone());
        for (i, s) in regsets.iter().enumerate() {
            prop_assert_eq!(
                p.registers_of(prcc_sharegraph::ReplicaId::new(i as u32)),
                s
            );
        }
        // holders() is the transpose of registers_of().
        for x in 0..p.num_registers() as u32 {
            let reg = prcc_sharegraph::RegisterId::new(x);
            for &h in p.holders(reg) {
                prop_assert!(p.stores(h, reg));
            }
        }
    }

    /// Augmented graphs with no clients coincide with plain timestamp
    /// graphs on random placements.
    #[test]
    fn augmented_no_clients_is_identity(seed in 0u64..60) {
        use prcc_sharegraph::{AugmentedShareGraph, ClientAssignment};
        let g = random_graph(seed, 5, 6, 2);
        let plain: Vec<_> = g
            .replicas()
            .map(|i| TimestampGraph::build(&g, i, LoopConfig::EXHAUSTIVE))
            .collect();
        let aug = AugmentedShareGraph::new(
            g.clone(),
            ClientAssignment::new(g.num_replicas()),
        );
        for (i, p) in g.replicas().zip(plain) {
            let atg = aug.augmented_timestamp_graph(i);
            prop_assert_eq!(atg.edges(), p.edges());
        }
    }
}
