//! A deterministic, discrete-event simulated network.
//!
//! Models the paper's system assumptions exactly: reliable point-to-point
//! channels between replicas, asynchronous (arbitrary finite delay), and
//! **non-FIFO**. Delivery order is controlled by a seeded [`DelayModel`],
//! so every execution is reproducible from its seed.
//!
//! For constructing *specific* adversarial executions (the
//! indistinguishability arguments of Theorem 8 and Lemma 14), links can be
//! [held](SimNetwork::hold): messages on a held link are queued and only
//! scheduled once the link is [released](SimNetwork::release).

use crate::delay::DelayModel;
use crate::faults::{FaultAction, FaultPlan, FaultSchedule};
use prcc_sharegraph::ReplicaId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending replica.
    pub src: ReplicaId,
    /// Receiving replica.
    pub dst: ReplicaId,
    /// The payload.
    pub msg: M,
}

#[derive(Debug)]
struct Scheduled<M> {
    deliver_at: u64,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// Statistics kept by the network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages accepted by [`SimNetwork::send`].
    pub sent: usize,
    /// Messages handed out by [`SimNetwork::next_delivery`].
    pub delivered: usize,
    /// Messages duplicated by the fault plan.
    pub duplicated: usize,
    /// Messages dropped by the fault plan.
    pub dropped: usize,
    /// Payload bytes accepted via [`SimNetwork::send_sized`] (callers
    /// that use plain [`SimNetwork::send`] contribute 0 — the network is
    /// generic and cannot size arbitrary messages itself).
    pub bytes: usize,
    /// Wire-codec pairs demoted from compressed to explicit rows after a
    /// derived-row verification failure. The network itself never sets
    /// this; the owning system merges it in from its codec so fault
    /// reports surface codec health alongside delivery counts.
    pub codec_demotions: usize,
}

/// The simulated network. Time is logical (`u64` ticks) and advances to
/// each delivery instant.
///
/// # Examples
///
/// ```
/// use prcc_net::{SimNetwork, DelayModel};
/// use prcc_sharegraph::ReplicaId;
///
/// let mut net: SimNetwork<&'static str> = SimNetwork::new(DelayModel::Fixed(3), 42);
/// net.send(ReplicaId::new(0), ReplicaId::new(1), "hi");
/// let (t, env) = net.next_delivery().unwrap();
/// assert_eq!(t, 3);
/// assert_eq!(env.msg, "hi");
/// assert!(net.next_delivery().is_none());
/// ```
pub struct SimNetwork<M> {
    delay: DelayModel,
    rng: StdRng,
    now: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    held_links: HashSet<(ReplicaId, ReplicaId)>,
    held_msgs: HashMap<(ReplicaId, ReplicaId), Vec<Envelope<M>>>,
    faults: FaultSchedule,
    stats: NetStats,
}

impl<M: fmt::Debug> fmt::Debug for SimNetwork<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNetwork")
            .field("now", &self.now)
            .field("in_flight", &self.queue.len())
            .field("held_links", &self.held_links)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<M> SimNetwork<M> {
    /// Creates a network with the given delay model and RNG seed.
    pub fn new(delay: DelayModel, seed: u64) -> Self {
        SimNetwork {
            delay,
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            held_links: HashSet::new(),
            held_msgs: HashMap::new(),
            faults: FaultSchedule::none(),
            stats: NetStats::default(),
        }
    }

    /// Installs a fault plan (duplication / drops / dead links),
    /// replacing any scripted schedule. The default plan is benign —
    /// the paper's reliable-channel model.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = FaultSchedule::from_plan(faults);
    }

    /// Installs a full fault schedule: probabilistic plan plus scripted
    /// link outages checked at send time against the current simulated
    /// clock (a message that entered the channel before an outage still
    /// arrives). Scripted *crashes* are not the network's business —
    /// the system harness enforces those at the endpoints.
    pub fn set_schedule(&mut self, schedule: FaultSchedule) {
        self.faults = schedule;
    }

    /// The installed fault schedule.
    pub fn fault_schedule(&self) -> &FaultSchedule {
        &self.faults
    }

    /// Current logical time (the delivery instant of the last message
    /// handed out, or 0).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Number of messages currently in flight (scheduled, not held).
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Number of messages parked on held links.
    pub fn held_count(&self) -> usize {
        self.held_msgs.values().map(Vec::len).sum()
    }

    /// True if no message is in flight or held.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty() && self.held_count() == 0
    }

    /// Sends `msg` from `src` to `dst`. If the link is held, the message
    /// is parked; otherwise it is scheduled `delay` ticks from now. A
    /// non-benign fault plan may drop the message or schedule a second
    /// copy.
    pub fn send(&mut self, src: ReplicaId, dst: ReplicaId, msg: M)
    where
        M: Clone,
    {
        self.stats.sent += 1;
        if self.faults.link_down(src, dst, self.now) {
            self.stats.dropped += 1;
            return;
        }
        match self.faults.plan.decide(&mut self.rng, src, dst) {
            FaultAction::Drop => {
                self.stats.dropped += 1;
                return;
            }
            FaultAction::Duplicate => {
                self.stats.duplicated += 1;
                let copy = Envelope {
                    src,
                    dst,
                    msg: msg.clone(),
                };
                if self.held_links.contains(&(src, dst)) {
                    self.held_msgs.entry((src, dst)).or_default().push(copy);
                } else {
                    self.schedule(copy);
                }
            }
            FaultAction::Deliver => {}
        }
        let env = Envelope { src, dst, msg };
        if self.held_links.contains(&(src, dst)) {
            self.held_msgs.entry((src, dst)).or_default().push(env);
            return;
        }
        self.schedule(env);
    }

    /// [`send`](Self::send) that also charges `bytes` to
    /// [`NetStats::bytes`] — the caller-measured wire size of `msg`
    /// (e.g. a codec's frame length). Fault handling is identical;
    /// dropped messages are still charged, since the sender put them on
    /// the wire.
    pub fn send_sized(&mut self, src: ReplicaId, dst: ReplicaId, msg: M, bytes: usize)
    where
        M: Clone,
    {
        self.stats.bytes += bytes;
        self.send(src, dst, msg);
    }

    fn schedule(&mut self, env: Envelope<M>) {
        let d = self.delay.sample(&mut self.rng, env.src, env.dst);
        let s = Scheduled {
            deliver_at: self.now + d,
            seq: self.seq,
            env,
        };
        self.seq += 1;
        self.queue.push(Reverse(s));
    }

    /// Pops the next delivery, advancing logical time to its instant.
    /// Returns `None` when nothing is scheduled (held messages don't
    /// count — release their links first).
    pub fn next_delivery(&mut self) -> Option<(u64, Envelope<M>)> {
        let Reverse(s) = self.queue.pop()?;
        self.now = self.now.max(s.deliver_at);
        self.stats.delivered += 1;
        Some((s.deliver_at, s.env))
    }

    /// Delivery instant of the earliest scheduled message, without
    /// popping it. Lets an event loop interleave network deliveries with
    /// other timed events (retransmission deadlines, scripted restarts).
    pub fn peek_delivery_time(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse(s)| s.deliver_at)
    }

    /// Advances the logical clock to `t` (no-op if time is already
    /// past `t`). Needed by timer-driven layers: a retransmission
    /// deadline must move time forward even when no delivery does.
    pub fn advance_to(&mut self, t: u64) {
        self.now = self.now.max(t);
    }

    /// Holds the directed link `src -> dst`: subsequent sends are parked
    /// until [`release`](Self::release). Messages already scheduled are
    /// unaffected (they were already "in the channel").
    pub fn hold(&mut self, src: ReplicaId, dst: ReplicaId) {
        self.held_links.insert((src, dst));
    }

    /// Releases a held link, scheduling all parked messages with fresh
    /// delays from the current time.
    pub fn release(&mut self, src: ReplicaId, dst: ReplicaId) {
        self.held_links.remove(&(src, dst));
        if let Some(msgs) = self.held_msgs.remove(&(src, dst)) {
            for env in msgs {
                self.schedule(env);
            }
        }
    }

    /// True if the directed link is currently held.
    pub fn is_held(&self, src: ReplicaId, dst: ReplicaId) -> bool {
        self.held_links.contains(&(src, dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn fifo_with_fixed_delay() {
        let mut net: SimNetwork<u32> = SimNetwork::new(DelayModel::Fixed(2), 0);
        net.send(r(0), r(1), 1);
        net.send(r(0), r(1), 2);
        let (t1, e1) = net.next_delivery().unwrap();
        let (t2, e2) = net.next_delivery().unwrap();
        assert_eq!((t1, e1.msg), (2, 1));
        assert_eq!((t2, e2.msg), (2, 2)); // ties broken by send order
        assert!(net.is_quiescent());
    }

    #[test]
    fn wide_uniform_delays_reorder() {
        // With a wide delay band, some pair of back-to-back messages is
        // delivered out of order for at least one seed.
        let mut reordered = false;
        for seed in 0..20 {
            let mut net: SimNetwork<u32> =
                SimNetwork::new(DelayModel::Uniform { min: 1, max: 50 }, seed);
            for i in 0..10 {
                net.send(r(0), r(1), i);
            }
            let mut order = Vec::new();
            while let Some((_, e)) = net.next_delivery() {
                order.push(e.msg);
            }
            if order.windows(2).any(|w| w[0] > w[1]) {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "expected non-FIFO behaviour");
    }

    #[test]
    fn time_is_monotonic() {
        let mut net: SimNetwork<u32> = SimNetwork::new(DelayModel::Uniform { min: 1, max: 100 }, 9);
        for i in 0..50 {
            net.send(r(0), r(1), i);
        }
        let mut last = 0;
        while let Some((t, _)) = net.next_delivery() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(net.now(), last);
    }

    #[test]
    fn hold_and_release() {
        let mut net: SimNetwork<u32> = SimNetwork::new(DelayModel::Fixed(1), 0);
        net.hold(r(0), r(1));
        net.send(r(0), r(1), 7);
        net.send(r(0), r(2), 8); // other link unaffected
        assert_eq!(net.held_count(), 1);
        assert!(!net.is_quiescent());

        let (_, e) = net.next_delivery().unwrap();
        assert_eq!(e.msg, 8);
        assert!(net.next_delivery().is_none()); // held msg invisible

        net.release(r(0), r(1));
        let (_, e) = net.next_delivery().unwrap();
        assert_eq!(e.msg, 7);
        assert!(net.is_quiescent());
    }

    #[test]
    fn hold_is_directional() {
        let mut net: SimNetwork<u32> = SimNetwork::new(DelayModel::Fixed(1), 0);
        net.hold(r(0), r(1));
        assert!(net.is_held(r(0), r(1)));
        assert!(!net.is_held(r(1), r(0)));
        net.send(r(1), r(0), 1);
        assert!(net.next_delivery().is_some());
    }

    #[test]
    fn stats_track_sent_and_delivered() {
        let mut net: SimNetwork<u32> = SimNetwork::new(DelayModel::Fixed(1), 0);
        net.send(r(0), r(1), 1);
        net.send(r(1), r(0), 2);
        assert_eq!(net.stats().sent, 2);
        assert_eq!(net.stats().bytes, 0); // plain send: unsized
        net.next_delivery();
        assert_eq!(net.stats().delivered, 1);
        net.send_sized(r(0), r(1), 3, 40);
        net.send_sized(r(0), r(1), 4, 2);
        assert_eq!(net.stats().sent, 4);
        assert_eq!(net.stats().bytes, 42);
    }

    #[test]
    fn peek_and_advance_to() {
        let mut net: SimNetwork<u32> = SimNetwork::new(DelayModel::Fixed(5), 0);
        assert_eq!(net.peek_delivery_time(), None);
        net.send(r(0), r(1), 1);
        assert_eq!(net.peek_delivery_time(), Some(5));
        net.advance_to(3);
        assert_eq!(net.now(), 3);
        net.advance_to(1); // never goes backwards
        assert_eq!(net.now(), 3);
        let (t, _) = net.next_delivery().unwrap();
        assert_eq!((t, net.now()), (5, 5));
    }

    #[test]
    fn scripted_outage_drops_at_send_time_only() {
        use crate::faults::FaultSchedule;
        let mut net: SimNetwork<u32> = SimNetwork::new(DelayModel::Fixed(10), 0);
        net.set_schedule(FaultSchedule::none().outage(r(0), r(1), 5, 20));
        net.send(r(0), r(1), 1); // now=0: link still up, arrives at 10
        net.advance_to(5);
        net.send(r(0), r(1), 2); // inside the outage: dropped
        net.send(r(1), r(0), 3); // reverse direction unaffected
        net.advance_to(20);
        net.send(r(0), r(1), 4); // healed
        let got: Vec<u32> =
            std::iter::from_fn(|| net.next_delivery().map(|(_, e)| e.msg)).collect();
        assert_eq!(got, vec![1, 3, 4]);
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let mut net: SimNetwork<u32> =
                SimNetwork::new(DelayModel::Uniform { min: 1, max: 30 }, seed);
            for i in 0..20 {
                net.send(r(i % 3), r((i + 1) % 3), i);
            }
            let mut order = Vec::new();
            while let Some((t, e)) = net.next_delivery() {
                order.push((t, e.msg));
            }
            order
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
