//! Real-socket transport: per-peer TCP connections with length-prefixed
//! frames.
//!
//! [`TcpEndpoint`] gives one replica a [`Transport`] handle backed by
//! kernel sockets instead of crossbeam channels, so a cluster can span
//! processes (and machines). The design keeps every protocol decision in
//! the layers above — this module moves opaque frame bodies:
//!
//! * **Framing** — each frame is a little-endian `u32` body length
//!   followed by the body. Bodies are produced/consumed by a per-link
//!   [`LinkCodec`], which may carry state *scoped to one connection*
//!   (e.g. the wire codec's delta streams): TCP delivers the byte stream
//!   exactly once in order, so connection-scoped codec state stays in
//!   lockstep even while the session layer above retransmits, and a
//!   reconnect resets both ends together.
//! * **Reassembly** — [`FrameBuffer`] is transactional: a partial read
//!   buffers bytes without touching the codec, and a malformed prefix
//!   (oversized length) poisons the connection rather than resynchronize
//!   heuristically. The session layer's retransmission restores anything
//!   a torn-down connection was carrying.
//! * **Write coalescing** — each peer has a writer thread that drains its
//!   outbox and writes many frames per `write(2)`. `coalesce: false`
//!   issues one write per frame (the syscalls/update baseline the
//!   `net_report` bench compares against).
//! * **Reconnect with backoff** — outbound connections retry with
//!   exponential backoff; messages queued or in flight across a
//!   disconnect are simply lost here and repaired by the session layer,
//!   which is exactly the loss model the rest of the stack assumes.
//! * **Zero-run packing** — [`pack_zero_runs`]/[`unpack_zero_runs`] are
//!   a reversible byte-level transform for frame segments dominated by
//!   `0x00` (steady-state delta frames, where an unchanged counter costs
//!   one zero byte): each zero byte is followed by a count of additional
//!   zeros, so a run of `n` zeros costs 2 bytes per 256. Codecs opt in
//!   per segment; the transform is exactly invertible, so the canonical
//!   wire-codec bytes are reconstructed before decode.

use crate::sim_net::Envelope;
use crate::transport::Transport;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use prcc_sharegraph::ReplicaId;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Protocol magic + version, exchanged once per connection before any
/// frame: `b"PRCC"`, version byte, then source and destination replica
/// ids (`u32` LE each).
const HANDSHAKE_MAGIC: [u8; 4] = *b"PRCC";
const HANDSHAKE_VERSION: u8 = 1;
const HANDSHAKE_LEN: usize = 13;

/// Why a frame (or connection) was rejected. Rejection is transactional:
/// the reporting codec/buffer state is unchanged or the connection is
/// poisoned outright — never silently resynchronized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix exceeded the configured maximum frame size.
    Oversize {
        /// The advertised body length.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// The frame body ended mid-field or carried trailing bytes.
    Malformed(&'static str),
    /// The payload codec rejected the body (e.g. a wire-codec
    /// `DecodeError`).
    Codec(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversize { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::Codec(e) => write!(f, "payload codec rejected frame: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Packs `src` into `dst`, replacing every `0x00` byte with `0x00`
/// followed by a count of *additional* consecutive zeros consumed
/// (0–255). Non-zero bytes copy through verbatim, so data without zeros
/// grows by nothing and a long zero run costs 2 bytes per 256 zeros.
/// Exactly inverted by [`unpack_zero_runs`].
pub fn pack_zero_runs(src: &[u8], dst: &mut Vec<u8>) {
    let mut i = 0;
    while i < src.len() {
        let b = src[i];
        if b != 0 {
            dst.push(b);
            i += 1;
            continue;
        }
        let mut run = 1usize;
        while run < 256 && i + run < src.len() && src[i + run] == 0 {
            run += 1;
        }
        dst.push(0);
        dst.push((run - 1) as u8);
        i += run;
    }
}

/// Inverse of [`pack_zero_runs`]. Appends the unpacked bytes to `dst`;
/// rejects input that ends mid-run or would unpack past `max` bytes
/// (guarding against a 256× zero bomb from a corrupt frame).
pub fn unpack_zero_runs(src: &[u8], dst: &mut Vec<u8>, max: usize) -> Result<(), FrameError> {
    let start = dst.len();
    let mut i = 0;
    while i < src.len() {
        let b = src[i];
        i += 1;
        if b != 0 {
            if dst.len() - start >= max {
                return Err(FrameError::Malformed("zero-run unpack exceeds bound"));
            }
            dst.push(b);
            continue;
        }
        let Some(&extra) = src.get(i) else {
            return Err(FrameError::Malformed("zero run truncated"));
        };
        i += 1;
        let run = extra as usize + 1;
        if dst.len() - start + run > max {
            return Err(FrameError::Malformed("zero-run unpack exceeds bound"));
        }
        dst.resize(dst.len() + run, 0);
    }
    Ok(())
}

/// A stateful per-connection body codec: one instance per direction of
/// one TCP connection, created fresh on every (re)connect so both ends
/// reset any delta state together.
pub trait LinkCodec: Send {
    /// The message type carried.
    type Msg;

    /// Serializes `msg`, appending the frame body to `buf`.
    fn encode(&mut self, msg: &Self::Msg, buf: &mut Vec<u8>);

    /// Deserializes one complete frame body. Rejection must be
    /// transactional: on `Err`, internal state is either unchanged or the
    /// connection is torn down by the caller (it always is).
    fn decode(&mut self, body: &[u8]) -> Result<Self::Msg, FrameError>;
}

/// Builds the per-connection codec for a given remote peer.
pub type CodecFactory<M> = Arc<dyn Fn(ReplicaId) -> Box<dyn LinkCodec<Msg = M>> + Send + Sync>;

/// Transactional reassembly buffer for length-prefixed frames.
///
/// Bytes arrive in arbitrary chunks ([`FrameBuffer::extend`]); complete
/// frames come out in order ([`FrameBuffer::next_frame`]). Incomplete
/// data is held untouched — short reads and mid-frame disconnects never
/// reach the codec — and an implausible length prefix poisons the buffer
/// permanently: a stream that lied about one length has no trustworthy
/// resynchronization point.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
    poisoned: bool,
}

impl FrameBuffer {
    /// An empty buffer accepting bodies up to `max_frame` bytes.
    pub fn new(max_frame: usize) -> Self {
        FrameBuffer {
            buf: Vec::new(),
            start: 0,
            max_frame,
            poisoned: false,
        }
    }

    /// Appends raw stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.poisoned {
            return;
        }
        // Compact lazily: reclaim consumed prefix once it dominates.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True once a malformed prefix has been seen.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Extracts the next complete frame body, `Ok(None)` if more bytes
    /// are needed, or an error (poisoning the buffer) on an oversized
    /// length prefix.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.poisoned {
            return Err(FrameError::Malformed("buffer poisoned"));
        }
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > self.max_frame {
            self.poisoned = true;
            return Err(FrameError::Oversize {
                len,
                max: self.max_frame,
            });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = avail[4..4 + len].to_vec();
        self.start += 4 + len;
        Ok(Some(body))
    }
}

/// Knobs for a [`TcpEndpoint`].
#[derive(Debug, Clone)]
pub struct TcpNetConfig {
    /// Per-attempt outbound connect timeout.
    pub connect_timeout: Duration,
    /// First reconnect backoff delay; doubles per consecutive failure.
    pub reconnect_base: Duration,
    /// Backoff ceiling.
    pub reconnect_max: Duration,
    /// Batch many queued frames into each `write(2)`. Disable to get the
    /// frame-per-syscall baseline.
    pub coalesce: bool,
    /// Maximum frame body size accepted or produced.
    pub max_frame: usize,
    /// Per-peer outbound queue depth; a full queue sheds (session layer
    /// repairs).
    pub outbox_depth: usize,
    /// Inbound delivery queue depth; readers backpressure TCP when full.
    pub ingress_depth: usize,
    /// Socket read/write timeout — also the shutdown poll interval.
    pub io_timeout: Duration,
}

impl Default for TcpNetConfig {
    fn default() -> Self {
        TcpNetConfig {
            connect_timeout: Duration::from_millis(1000),
            reconnect_base: Duration::from_millis(10),
            reconnect_max: Duration::from_millis(500),
            coalesce: true,
            max_frame: 1 << 24,
            outbox_depth: 4096,
            ingress_depth: 4096,
            io_timeout: Duration::from_millis(50),
        }
    }
}

#[derive(Default)]
struct TcpCounters {
    write_syscalls: AtomicU64,
    read_syscalls: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    reconnects: AtomicU64,
    shed_outbound: AtomicU64,
    decode_errors: AtomicU64,
}

/// A point-in-time copy of one endpoint's I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStatsSnapshot {
    /// `write(2)` calls issued (coalescing shrinks this).
    pub write_syscalls: u64,
    /// `read(2)` calls that returned data.
    pub read_syscalls: u64,
    /// Bytes written, including frame headers and handshakes.
    pub bytes_sent: u64,
    /// Bytes read.
    pub bytes_received: u64,
    /// Frames written.
    pub frames_sent: u64,
    /// Frames decoded and delivered.
    pub frames_received: u64,
    /// Outbound connection (re-)establishments after the first success.
    pub reconnects: u64,
    /// Messages shed because a peer outbox was full or closed.
    pub shed_outbound: u64,
    /// Frames rejected by the payload codec (connection torn down).
    pub decode_errors: u64,
}

/// The cloneable per-node handle onto a [`TcpEndpoint`]. Sends enqueue to
/// per-peer writer threads; receives drain the shared inbound queue.
pub struct TcpHandle<M> {
    id: ReplicaId,
    outboxes: Arc<HashMap<ReplicaId, Sender<M>>>,
    inbox: Receiver<Envelope<M>>,
    counters: Arc<TcpCounters>,
}

impl<M> Clone for TcpHandle<M> {
    fn clone(&self) -> Self {
        TcpHandle {
            id: self.id,
            outboxes: Arc::clone(&self.outboxes),
            inbox: self.inbox.clone(),
            counters: Arc::clone(&self.counters),
        }
    }
}

impl<M> fmt::Debug for TcpHandle<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpHandle").field("id", &self.id).finish()
    }
}

impl<M: Send + 'static> Transport for TcpHandle<M> {
    type Msg = M;

    fn id(&self) -> ReplicaId {
        self.id
    }

    fn send(&self, dst: ReplicaId, msg: M) -> bool {
        match self.outboxes.get(&dst) {
            Some(tx) => match tx.try_send(msg) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.counters.shed_outbound.fetch_add(1, Ordering::Relaxed);
                    false
                }
            },
            None => {
                self.counters.shed_outbound.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    fn try_recv(&self) -> Option<Envelope<M>> {
        self.inbox.try_recv().ok()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        match self.inbox.recv_timeout(timeout) {
            Ok(env) => Some(env),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }
}

/// A listener bound but not yet serving — split from
/// [`TcpEndpoint::start`] so an in-process cluster can bind every node on
/// an ephemeral port, collect the real addresses, and only then wire the
/// peers together.
#[derive(Debug)]
pub struct BoundListener {
    id: ReplicaId,
    listener: TcpListener,
    addr: SocketAddr,
}

impl BoundListener {
    /// Binds `listen` (port 0 picks an ephemeral port) for replica `id`.
    pub fn bind(id: ReplicaId, listen: SocketAddr) -> io::Result<BoundListener> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        Ok(BoundListener { id, listener, addr })
    }

    /// The actual bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The replica this listener was bound for.
    pub fn id(&self) -> ReplicaId {
        self.id
    }
}

/// One replica's socket endpoint: an acceptor thread, one reader thread
/// per inbound connection, and one writer thread per peer.
pub struct TcpEndpoint<M> {
    handle: TcpHandle<M>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<TcpCounters>,
}

impl<M> fmt::Debug for TcpEndpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpEndpoint")
            .field("id", &self.handle.id)
            .field("addr", &self.addr)
            .finish()
    }
}

impl<M: Send + 'static> TcpEndpoint<M> {
    /// Starts serving on a previously bound listener, connecting out to
    /// `peers` lazily (each peer's writer connects on first send, with
    /// backoff until the peer is up).
    pub fn start(
        bound: BoundListener,
        peers: HashMap<ReplicaId, SocketAddr>,
        cfg: TcpNetConfig,
        codec: CodecFactory<M>,
    ) -> io::Result<TcpEndpoint<M>> {
        let BoundListener { id, listener, addr } = bound;
        listener.set_nonblocking(true)?;
        let counters = Arc::new(TcpCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (inbox_tx, inbox_rx) = bounded::<Envelope<M>>(cfg.ingress_depth.max(1));

        let mut outboxes = HashMap::new();
        for (&peer, &peer_addr) in &peers {
            let (tx, rx) = bounded::<M>(cfg.outbox_depth.max(1));
            outboxes.insert(peer, tx);
            spawn_net_thread(format!("prcc-tcp-w{}-{}", id.index(), peer.index()), {
                let cfg = cfg.clone();
                let codec = Arc::clone(&codec);
                let counters = Arc::clone(&counters);
                let shutdown = Arc::clone(&shutdown);
                move || writer_loop(id, peer, peer_addr, rx, cfg, codec, counters, shutdown)
            });
        }

        spawn_net_thread(format!("prcc-tcp-acc{}", id.index()), {
            let cfg = cfg.clone();
            let counters = Arc::clone(&counters);
            let shutdown = Arc::clone(&shutdown);
            move || acceptor_loop(id, listener, inbox_tx, cfg, codec, counters, shutdown)
        });

        let handle = TcpHandle {
            id,
            outboxes: Arc::new(outboxes),
            inbox: inbox_rx,
            counters: Arc::clone(&counters),
        };
        Ok(TcpEndpoint {
            handle,
            addr,
            shutdown,
            counters,
        })
    }

    /// Convenience: bind and start in one call (requires `listen` to be a
    /// concrete address when peers must know it beforehand).
    pub fn bind_and_start(
        id: ReplicaId,
        listen: SocketAddr,
        peers: HashMap<ReplicaId, SocketAddr>,
        cfg: TcpNetConfig,
        codec: CodecFactory<M>,
    ) -> io::Result<TcpEndpoint<M>> {
        Self::start(BoundListener::bind(id, listen)?, peers, cfg, codec)
    }

    /// The address this endpoint accepts connections on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable transport handle.
    pub fn handle(&self) -> TcpHandle<M> {
        self.handle.clone()
    }

    /// Current I/O counters.
    pub fn stats(&self) -> TcpStatsSnapshot {
        let c = &self.counters;
        TcpStatsSnapshot {
            write_syscalls: c.write_syscalls.load(Ordering::Relaxed),
            read_syscalls: c.read_syscalls.load(Ordering::Relaxed),
            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
            bytes_received: c.bytes_received.load(Ordering::Relaxed),
            frames_sent: c.frames_sent.load(Ordering::Relaxed),
            frames_received: c.frames_received.load(Ordering::Relaxed),
            reconnects: c.reconnects.load(Ordering::Relaxed),
            shed_outbound: c.shed_outbound.load(Ordering::Relaxed),
            decode_errors: c.decode_errors.load(Ordering::Relaxed),
        }
    }

    /// Signals every I/O thread to exit. Threads notice within one
    /// `io_timeout`; this call does not block on them.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl<M> Drop for TcpEndpoint<M> {
    fn drop(&mut self) {
        // Signal and detach: I/O threads poll the flag and exit on their
        // own; blocking here could deadlock a drop on a wedged socket.
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Net threads carry small stacks — a clique(24) in-process cluster runs
/// over a thousand of them.
fn spawn_net_thread<F: FnOnce() + Send + 'static>(name: String, f: F) {
    std::thread::Builder::new()
        .name(name)
        .stack_size(256 * 1024)
        .spawn(f)
        .expect("spawn net thread");
}

fn write_handshake(stream: &mut TcpStream, src: ReplicaId, dst: ReplicaId) -> io::Result<()> {
    let mut hs = [0u8; HANDSHAKE_LEN];
    hs[..4].copy_from_slice(&HANDSHAKE_MAGIC);
    hs[4] = HANDSHAKE_VERSION;
    hs[5..9].copy_from_slice(&(src.index() as u32).to_le_bytes());
    hs[9..13].copy_from_slice(&(dst.index() as u32).to_le_bytes());
    stream.write_all(&hs)
}

fn read_handshake(stream: &mut TcpStream, me: ReplicaId) -> io::Result<ReplicaId> {
    let mut hs = [0u8; HANDSHAKE_LEN];
    stream.read_exact(&mut hs)?;
    if hs[..4] != HANDSHAKE_MAGIC || hs[4] != HANDSHAKE_VERSION {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad handshake"));
    }
    let src = u32::from_le_bytes([hs[5], hs[6], hs[7], hs[8]]);
    let dst = u32::from_le_bytes([hs[9], hs[10], hs[11], hs[12]]);
    if dst != me.index() as u32 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "handshake addressed to another replica",
        ));
    }
    Ok(ReplicaId::new(src))
}

#[allow(clippy::too_many_arguments)]
fn acceptor_loop<M: Send + 'static>(
    me: ReplicaId,
    listener: TcpListener,
    inbox: Sender<Envelope<M>>,
    cfg: TcpNetConfig,
    codec: CodecFactory<M>,
    counters: Arc<TcpCounters>,
    shutdown: Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let inbox = inbox.clone();
                let cfg = cfg.clone();
                let codec = Arc::clone(&codec);
                let counters = Arc::clone(&counters);
                let shutdown = Arc::clone(&shutdown);
                spawn_net_thread(format!("prcc-tcp-r{}", me.index()), move || {
                    reader_loop(me, stream, inbox, cfg, codec, counters, shutdown)
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(cfg.io_timeout / 10);
            }
            Err(_) => std::thread::sleep(cfg.io_timeout),
        }
    }
}

fn reader_loop<M: Send + 'static>(
    me: ReplicaId,
    mut stream: TcpStream,
    inbox: Sender<Envelope<M>>,
    cfg: TcpNetConfig,
    codec: CodecFactory<M>,
    counters: Arc<TcpCounters>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.io_timeout));
    let src = match read_handshake(&mut stream, me) {
        Ok(src) => src,
        Err(_) => return,
    };
    let mut link = (codec)(src);
    let mut frames = FrameBuffer::new(cfg.max_frame);
    let mut scratch = vec![0u8; 64 * 1024];
    while !shutdown.load(Ordering::SeqCst) {
        let n = match stream.read(&mut scratch) {
            Ok(0) => return, // peer closed; it will reconnect
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return,
        };
        counters.read_syscalls.fetch_add(1, Ordering::Relaxed);
        counters
            .bytes_received
            .fetch_add(n as u64, Ordering::Relaxed);
        frames.extend(&scratch[..n]);
        loop {
            match frames.next_frame() {
                Ok(Some(body)) => match link.decode(&body) {
                    Ok(msg) => {
                        counters.frames_received.fetch_add(1, Ordering::Relaxed);
                        let mut env = Envelope { src, dst: me, msg };
                        // Backpressure TCP rather than shed: the stream
                        // below us is reliable, so a full inbox should
                        // slow the sender, not silently drop.
                        loop {
                            match inbox.try_send(env) {
                                Ok(()) => break,
                                Err(TrySendError::Full(e)) => {
                                    if shutdown.load(Ordering::SeqCst) {
                                        return;
                                    }
                                    env = e;
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                Err(TrySendError::Disconnected(_)) => return,
                            }
                        }
                    }
                    Err(_) => {
                        // Transactional rejection: the connection dies;
                        // session retransmission repairs the payload on
                        // the replacement connection (fresh codec state
                        // both ends).
                        counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                },
                Ok(None) => break,
                Err(_) => {
                    counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }
}

/// Writes `buf` fully, counting actual `write(2)` calls. Retries on the
/// socket write timeout unless shutdown fires.
fn write_counted(
    stream: &mut TcpStream,
    buf: &[u8],
    counters: &TcpCounters,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let mut off = 0;
    while off < buf.len() {
        match stream.write(&buf[off..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "write zero")),
            Ok(n) => {
                counters.write_syscalls.fetch_add(1, Ordering::Relaxed);
                counters.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                off += n;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Err(io::Error::other("shutdown"));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn writer_loop<M: Send + 'static>(
    me: ReplicaId,
    peer: ReplicaId,
    peer_addr: SocketAddr,
    outbox: Receiver<M>,
    cfg: TcpNetConfig,
    codec: CodecFactory<M>,
    counters: Arc<TcpCounters>,
    shutdown: Arc<AtomicBool>,
) {
    let mut conn: Option<(TcpStream, Box<dyn LinkCodec<Msg = M>>)> = None;
    let mut failures = 0u32;
    let mut connected_once = false;
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    while !shutdown.load(Ordering::SeqCst) {
        let msg = match outbox.recv_timeout(cfg.io_timeout) {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        // (Re)connect with exponential backoff while holding the message.
        // Messages that queued up behind a dead link go stale, not lost:
        // the session layer deduplicates what it already delivered and
        // retransmits what the torn connection dropped.
        if conn.is_none() {
            match TcpStream::connect_timeout(&peer_addr, cfg.connect_timeout) {
                Ok(mut stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(cfg.io_timeout));
                    if write_handshake(&mut stream, me, peer).is_ok() {
                        if connected_once {
                            counters.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        connected_once = true;
                        failures = 0;
                        conn = Some((stream, (codec)(peer)));
                    } else {
                        failures += 1;
                    }
                }
                Err(_) => failures += 1,
            }
            if conn.is_none() {
                let backoff = cfg
                    .reconnect_base
                    .saturating_mul(1u32 << failures.min(16))
                    .min(cfg.reconnect_max);
                std::thread::sleep(backoff);
                // The held message is dropped with the connection attempt
                // only if the queue is overflowing; otherwise it simply
                // waits for the next loop pass. Requeueing at the front
                // is not possible on a channel, so encode-and-lose is the
                // honest model: count it as shed.
                counters.shed_outbound.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        }
        let (stream, link) = conn.as_mut().expect("connected");
        buf.clear();
        let mut frames_in_buf = 0u64;
        encode_frame(link.as_mut(), &msg, &mut buf);
        frames_in_buf += 1;
        if cfg.coalesce {
            // Drain whatever else is queued, bounded by buffer size, so
            // one syscall carries many session frames.
            while buf.len() < 256 * 1024 {
                match outbox.try_recv() {
                    Ok(next) => {
                        encode_frame(link.as_mut(), &next, &mut buf);
                        frames_in_buf += 1;
                    }
                    Err(_) => break,
                }
            }
        }
        match write_counted(stream, &buf, &counters, &shutdown) {
            Ok(()) => {
                counters
                    .frames_sent
                    .fetch_add(frames_in_buf, Ordering::Relaxed);
            }
            Err(_) => {
                // Connection torn down: everything unacked on it is the
                // session layer's to repair after reconnect.
                conn = None;
                failures = 0;
            }
        }
    }
}

fn encode_frame<M>(link: &mut dyn LinkCodec<Msg = M>, msg: &M, buf: &mut Vec<u8>) {
    let header_at = buf.len();
    buf.extend_from_slice(&[0u8; 4]);
    let body_start = buf.len();
    link.encode(msg, buf);
    let body_len = (buf.len() - body_start) as u32;
    buf[header_at..header_at + 4].copy_from_slice(&body_len.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    /// A stateless codec for plain u64 payloads.
    struct U64Codec;
    impl LinkCodec for U64Codec {
        type Msg = u64;
        fn encode(&mut self, msg: &u64, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&msg.to_le_bytes());
        }
        fn decode(&mut self, body: &[u8]) -> Result<u64, FrameError> {
            let bytes: [u8; 8] = body
                .try_into()
                .map_err(|_| FrameError::Malformed("u64 body"))?;
            Ok(u64::from_le_bytes(bytes))
        }
    }

    fn u64_factory() -> CodecFactory<u64> {
        Arc::new(|_| Box::new(U64Codec))
    }

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    fn pair(cfg: TcpNetConfig) -> (TcpEndpoint<u64>, TcpEndpoint<u64>) {
        let b0 = BoundListener::bind(r(0), loopback()).unwrap();
        let b1 = BoundListener::bind(r(1), loopback()).unwrap();
        let a0 = b0.local_addr();
        let a1 = b1.local_addr();
        let e0 = TcpEndpoint::start(b0, HashMap::from([(r(1), a1)]), cfg.clone(), u64_factory())
            .unwrap();
        let e1 = TcpEndpoint::start(b1, HashMap::from([(r(0), a0)]), cfg, u64_factory()).unwrap();
        (e0, e1)
    }

    #[test]
    fn point_to_point_over_sockets() {
        let (e0, e1) = pair(TcpNetConfig::default());
        let h0 = e0.handle();
        let h1 = e1.handle();
        assert!(h0.send(r(1), 42));
        let env = h1.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(env.src, r(0));
        assert_eq!(env.msg, 42);
        assert!(h1.send(r(0), 7));
        assert_eq!(
            h0.recv_timeout(Duration::from_secs(5)).map(|e| e.msg),
            Some(7)
        );
        e0.shutdown();
        e1.shutdown();
    }

    #[test]
    fn many_frames_all_arrive_in_order_per_link() {
        let (e0, e1) = pair(TcpNetConfig::default());
        let h0 = e0.handle();
        let h1 = e1.handle();
        for i in 0..500u64 {
            while !h0.send(r(1), i) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let mut got = Vec::new();
        while got.len() < 500 {
            match h1.recv_timeout(Duration::from_secs(5)) {
                Some(env) => got.push(env.msg),
                None => panic!("lost frames: got {}", got.len()),
            }
        }
        // TCP + a single writer give per-link FIFO (stronger than the
        // Transport contract requires, but worth pinning for the codec).
        assert_eq!(got, (0..500).collect::<Vec<_>>());
        e0.shutdown();
        e1.shutdown();
    }

    #[test]
    fn coalescing_reduces_write_syscalls() {
        let run = |coalesce: bool| {
            let cfg = TcpNetConfig {
                coalesce,
                ..TcpNetConfig::default()
            };
            let (e0, e1) = pair(cfg);
            let h0 = e0.handle();
            let h1 = e1.handle();
            // Prime the connection, then burst while the writer is busy.
            h0.send(r(1), 0);
            h1.recv_timeout(Duration::from_secs(5)).unwrap();
            for i in 1..=2000u64 {
                while !h0.send(r(1), i) {
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
            let mut got = 0;
            while got < 2000 {
                if h1.recv_timeout(Duration::from_secs(5)).is_none() {
                    panic!("lost frames at {got}");
                }
                got += 1;
            }
            let stats = e0.stats();
            e0.shutdown();
            e1.shutdown();
            stats
        };
        let with = run(true);
        let without = run(false);
        assert_eq!(with.frames_sent, 2001);
        assert_eq!(without.frames_sent, 2001);
        assert!(
            with.write_syscalls * 2 < without.write_syscalls,
            "coalescing did not reduce syscalls: {} vs {}",
            with.write_syscalls,
            without.write_syscalls
        );
    }

    #[test]
    fn connects_to_peer_that_starts_late() {
        let b0 = BoundListener::bind(r(0), loopback()).unwrap();
        let a0 = b0.local_addr();
        // Reserve an address for node 1 without serving yet.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let a1 = probe.local_addr().unwrap();
        drop(probe);
        let cfg = TcpNetConfig::default();
        let e0 = TcpEndpoint::start(b0, HashMap::from([(r(1), a1)]), cfg.clone(), u64_factory())
            .unwrap();
        let h0 = e0.handle();
        // Sends start before node 1 exists; the writer retries with
        // backoff and the session layer above would repair the shed ones
        // — here we just keep offering fresh messages.
        let stop = Arc::new(AtomicBool::new(false));
        let sender = {
            let stop = Arc::clone(&stop);
            let h0 = h0.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    h0.send(r(1), i);
                    i += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };
        std::thread::sleep(Duration::from_millis(150));
        let b1 = BoundListener::bind(r(1), a1).unwrap();
        let e1 = TcpEndpoint::start(b1, HashMap::from([(r(0), a0)]), cfg, u64_factory()).unwrap();
        let h1 = e1.handle();
        let env = h1.recv_timeout(Duration::from_secs(10));
        stop.store(true, Ordering::SeqCst);
        sender.join().unwrap();
        assert!(env.is_some(), "no delivery after late peer start");
        e0.shutdown();
        e1.shutdown();
    }

    #[test]
    fn zero_run_pack_roundtrip_and_bounds() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![1, 2, 3],
            vec![0; 1000],
            vec![1, 0, 0, 0, 5, 0, 9],
            (0..=255u8).collect(),
        ];
        for case in cases {
            let mut packed = Vec::new();
            pack_zero_runs(&case, &mut packed);
            let mut unpacked = Vec::new();
            unpack_zero_runs(&packed, &mut unpacked, case.len()).unwrap();
            assert_eq!(unpacked, case);
        }
        // A zero bomb is rejected by the bound, and a truncated run is
        // malformed.
        let mut out = Vec::new();
        assert!(unpack_zero_runs(&[0, 255, 0, 255], &mut out, 100).is_err());
        out.clear();
        assert!(unpack_zero_runs(&[1, 2, 0], &mut out, 100).is_err());
    }

    #[test]
    fn frame_buffer_handles_split_and_poison() {
        let mut fb = FrameBuffer::new(1024);
        let mut wire = Vec::new();
        for body in [b"hello".as_slice(), b"".as_slice(), b"world!".as_slice()] {
            wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
            wire.extend_from_slice(body);
        }
        // Feed one byte at a time.
        let mut out = Vec::new();
        for &b in &wire {
            fb.extend(&[b]);
            while let Ok(Some(frame)) = fb.next_frame() {
                out.push(frame);
            }
        }
        assert_eq!(
            out,
            vec![b"hello".to_vec(), b"".to_vec(), b"world!".to_vec()]
        );
        assert_eq!(fb.pending(), 0);
        // An oversized length poisons permanently.
        fb.extend(&u32::MAX.to_le_bytes());
        assert!(fb.next_frame().is_err());
        assert!(fb.is_poisoned());
        fb.extend(&[0, 0, 0, 0]);
        assert!(fb.next_frame().is_err());
    }
}
