//! Fault injection for robustness testing.
//!
//! The paper's model assumes reliable, exactly-once channels. The fault
//! plan deliberately breaks that model so tests can demonstrate (a) the
//! protocol's inherent duplicate suppression (the predicate `J` admits
//! each update exactly once) and (b) that the consistency checker catches
//! the liveness loss caused by genuinely dropped messages.

use prcc_sharegraph::ReplicaId;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// A fault plan applied at send time.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability a message is duplicated (delivered twice with
    /// independent delays).
    pub duplicate_prob: f64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Directed links that drop everything (a crashed path).
    pub dead_links: HashSet<(ReplicaId, ReplicaId)>,
}

/// What the fault plan decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Deliver two copies.
    Duplicate,
    /// Never deliver.
    Drop,
}

impl FaultPlan {
    /// A plan that never interferes.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan duplicating each message with probability `p`.
    pub fn duplicating(p: f64) -> Self {
        FaultPlan {
            duplicate_prob: p,
            ..Default::default()
        }
    }

    /// A plan dropping each message with probability `p`.
    pub fn dropping(p: f64) -> Self {
        FaultPlan {
            drop_prob: p,
            ..Default::default()
        }
    }

    /// Kills the directed link `src -> dst`.
    pub fn kill_link(mut self, src: ReplicaId, dst: ReplicaId) -> Self {
        self.dead_links.insert((src, dst));
        self
    }

    /// True if the plan can never interfere.
    pub fn is_benign(&self) -> bool {
        self.duplicate_prob <= 0.0 && self.drop_prob <= 0.0 && self.dead_links.is_empty()
    }

    /// Decides the fate of one message.
    pub fn decide(&self, rng: &mut StdRng, src: ReplicaId, dst: ReplicaId) -> FaultAction {
        if self.dead_links.contains(&(src, dst)) {
            return FaultAction::Drop;
        }
        if self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob.clamp(0.0, 1.0)) {
            return FaultAction::Drop;
        }
        if self.duplicate_prob > 0.0 && rng.gen_bool(self.duplicate_prob.clamp(0.0, 1.0)) {
            return FaultAction::Duplicate;
        }
        FaultAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn benign_plan_always_delivers() {
        let plan = FaultPlan::none();
        assert!(plan.is_benign());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(plan.decide(&mut rng, r(0), r(1)), FaultAction::Deliver);
        }
    }

    #[test]
    fn dead_link_always_drops() {
        let plan = FaultPlan::none().kill_link(r(0), r(1));
        assert!(!plan.is_benign());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(plan.decide(&mut rng, r(0), r(1)), FaultAction::Drop);
        assert_eq!(plan.decide(&mut rng, r(1), r(0)), FaultAction::Deliver);
    }

    #[test]
    fn probabilities_roughly_respected() {
        let plan = FaultPlan {
            duplicate_prob: 0.3,
            drop_prob: 0.2,
            dead_links: HashSet::new(),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut dup = 0;
        let mut drop = 0;
        for _ in 0..10_000 {
            match plan.decide(&mut rng, r(0), r(1)) {
                FaultAction::Duplicate => dup += 1,
                FaultAction::Drop => drop += 1,
                FaultAction::Deliver => {}
            }
        }
        assert!((1500..2500).contains(&drop), "drop {drop}");
        // duplicates decided on the 80% that survive: ~0.3*0.8 = 24%
        assert!((1900..2900).contains(&dup), "dup {dup}");
    }
}
