//! Fault injection for robustness testing.
//!
//! The paper's model assumes reliable, exactly-once channels. The fault
//! plan deliberately breaks that model so tests can demonstrate (a) the
//! protocol's inherent duplicate suppression (the predicate `J` admits
//! each update exactly once) and (b) that the consistency checker catches
//! the liveness loss caused by genuinely dropped messages — and so the
//! session layer ([`crate::session`]) has something real to repair.
//!
//! Two layers of fault description compose:
//!
//! * [`FaultPlan`] — *probabilistic* per-message faults (drop /
//!   duplicate) plus permanently dead links;
//! * [`FaultSchedule`] — *deterministic scripted* events over simulated
//!   time: partitions `[t1, t2)` that heal, replica crashes with
//!   restarts, and link flaps. A schedule embeds a plan, so both kinds
//!   can run together and the whole execution stays reproducible from
//!   its seed.

use prcc_sharegraph::ReplicaId;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// A fault plan applied at send time.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability a message is duplicated (delivered twice with
    /// independent delays).
    pub duplicate_prob: f64,
    /// Probability a message copy is silently dropped.
    pub drop_prob: f64,
    /// Directed links that drop everything (a crashed path).
    pub dead_links: HashSet<(ReplicaId, ReplicaId)>,
}

/// What the fault plan decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Deliver two copies.
    Duplicate,
    /// Never deliver.
    Drop,
}

impl FaultPlan {
    /// A plan that never interferes.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan duplicating each message with probability `p`.
    pub fn duplicating(p: f64) -> Self {
        FaultPlan {
            duplicate_prob: p,
            ..Default::default()
        }
    }

    /// A plan dropping each message with probability `p`.
    pub fn dropping(p: f64) -> Self {
        FaultPlan {
            drop_prob: p,
            ..Default::default()
        }
    }

    /// Kills the directed link `src -> dst`.
    pub fn kill_link(mut self, src: ReplicaId, dst: ReplicaId) -> Self {
        self.dead_links.insert((src, dst));
        self
    }

    /// True if the plan can never interfere.
    pub fn is_benign(&self) -> bool {
        self.duplicate_prob <= 0.0 && self.drop_prob <= 0.0 && self.dead_links.is_empty()
    }

    /// Decides the fate of one message.
    ///
    /// Duplication and loss are *independent* faults: the network first
    /// decides whether an extra copy exists (probability
    /// `duplicate_prob`), then each copy is lost independently with
    /// probability `drop_prob` — so a duplicated message can still lose
    /// one or both copies. Marginals: a single message survives with
    /// probability `1 − drop_prob`; the `Duplicate` outcome (two copies
    /// delivered) has probability `duplicate_prob · (1 − drop_prob)²`.
    pub fn decide(&self, rng: &mut StdRng, src: ReplicaId, dst: ReplicaId) -> FaultAction {
        if self.dead_links.contains(&(src, dst)) {
            return FaultAction::Drop;
        }
        let dup = self.duplicate_prob > 0.0 && rng.gen_bool(self.duplicate_prob.clamp(0.0, 1.0));
        let p_drop = self.drop_prob.clamp(0.0, 1.0);
        let copies = if dup { 2 } else { 1 };
        let mut survivors = 0;
        for _ in 0..copies {
            if p_drop <= 0.0 || !rng.gen_bool(p_drop) {
                survivors += 1;
            }
        }
        match survivors {
            0 => FaultAction::Drop,
            1 => FaultAction::Deliver,
            _ => FaultAction::Duplicate,
        }
    }
}

/// One scripted window during which a directed link drops everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOutage {
    /// Source replica of the severed direction.
    pub src: ReplicaId,
    /// Destination replica of the severed direction.
    pub dst: ReplicaId,
    /// First tick of the outage (inclusive).
    pub from: u64,
    /// First tick after the outage (exclusive) — the heal instant.
    pub until: u64,
}

/// One scripted replica crash: the replica loses all volatile state at
/// `at` and recovers from its durable log at `restart`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The crashing replica.
    pub replica: ReplicaId,
    /// Crash instant (inclusive — the replica is down from this tick).
    pub at: u64,
    /// Restart instant (the replica runs recovery at this tick).
    pub restart: u64,
}

/// A deterministic scripted fault schedule over simulated time, layered
/// on top of the probabilistic [`FaultPlan`].
///
/// All events are expressed in simulated ticks, so a schedule replayed
/// against the same seed produces the identical execution. Link outages
/// are checked at *send* time (a message that entered the channel before
/// the outage still arrives — the same semantics as
/// [`hold`](crate::SimNetwork::hold)); crash windows are enforced by the
/// system harness, which discards deliveries to a crashed replica and
/// replays its recovery log at the restart instant.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    /// Probabilistic per-message faults, applied alongside the script.
    pub plan: FaultPlan,
    /// Scripted link outages (partitions, flaps).
    pub outages: Vec<LinkOutage>,
    /// Scripted crashes with restart instants.
    pub crashes: Vec<CrashEvent>,
}

impl FaultSchedule {
    /// A schedule that never interferes.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Wraps a probabilistic plan with no scripted events.
    pub fn from_plan(plan: FaultPlan) -> Self {
        FaultSchedule {
            plan,
            ..Default::default()
        }
    }

    /// Adds a single directed link outage `[from, until)`.
    pub fn outage(mut self, src: ReplicaId, dst: ReplicaId, from: u64, until: u64) -> Self {
        self.outages.push(LinkOutage {
            src,
            dst,
            from,
            until,
        });
        self
    }

    /// Adds a bidirectional link outage `[from, until)`.
    pub fn sever(self, a: ReplicaId, b: ReplicaId, from: u64, until: u64) -> Self {
        self.outage(a, b, from, until).outage(b, a, from, until)
    }

    /// Partitions the replicas into `side_a` vs everyone in `side_b`
    /// during `[from, until)`: every cross link drops in both
    /// directions; links within each side are unaffected.
    pub fn partition<A, B>(mut self, side_a: A, side_b: B, from: u64, until: u64) -> Self
    where
        A: IntoIterator<Item = ReplicaId>,
        B: IntoIterator<Item = ReplicaId>,
    {
        let a: Vec<ReplicaId> = side_a.into_iter().collect();
        let b: Vec<ReplicaId> = side_b.into_iter().collect();
        for &x in &a {
            for &y in &b {
                self.outages.push(LinkOutage {
                    src: x,
                    dst: y,
                    from,
                    until,
                });
                self.outages.push(LinkOutage {
                    src: y,
                    dst: x,
                    from,
                    until,
                });
            }
        }
        self
    }

    /// Flaps the directed link `src -> dst`: starting at `from`, the link
    /// alternates `down` ticks dead / `up` ticks alive, for `cycles`
    /// rounds — the classic pathological path for retransmission logic.
    pub fn flap(
        mut self,
        src: ReplicaId,
        dst: ReplicaId,
        from: u64,
        down: u64,
        up: u64,
        cycles: usize,
    ) -> Self {
        let mut t = from;
        for _ in 0..cycles {
            self.outages.push(LinkOutage {
                src,
                dst,
                from: t,
                until: t + down,
            });
            t += down + up;
        }
        self
    }

    /// Crashes `replica` at `at`, restarting it at `restart`.
    ///
    /// # Panics
    ///
    /// Panics if `restart <= at`.
    pub fn crash(mut self, replica: ReplicaId, at: u64, restart: u64) -> Self {
        assert!(restart > at, "restart must be after the crash");
        self.crashes.push(CrashEvent {
            replica,
            at,
            restart,
        });
        self
    }

    /// True if the schedule (plan and script) can never interfere.
    pub fn is_benign(&self) -> bool {
        self.plan.is_benign() && self.outages.is_empty() && self.crashes.is_empty()
    }

    /// True if every scripted event eventually heals and no link is
    /// permanently dead — the precondition of the session layer's
    /// convergence guarantee (probabilistic drops always heal via
    /// retransmission; `dead_links` never do).
    pub fn eventually_heals(&self) -> bool {
        self.plan.dead_links.is_empty()
            && self.outages.iter().all(|o| o.until < u64::MAX)
            && self.crashes.iter().all(|c| c.restart < u64::MAX)
    }

    /// True if the directed link is inside a scripted outage at `now`.
    pub fn link_down(&self, src: ReplicaId, dst: ReplicaId, now: u64) -> bool {
        self.outages
            .iter()
            .any(|o| o.src == src && o.dst == dst && o.from <= now && now < o.until)
    }

    /// True if `replica` is crashed (down) at `now`.
    pub fn is_crashed(&self, replica: ReplicaId, now: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.replica == replica && c.at <= now && now < c.restart)
    }

    /// All restart instants, sorted: `(restart_tick, replica)`.
    pub fn restarts(&self) -> Vec<(u64, ReplicaId)> {
        let mut r: Vec<(u64, ReplicaId)> = self
            .crashes
            .iter()
            .map(|c| (c.restart, c.replica))
            .collect();
        r.sort_unstable();
        r
    }

    /// Every crash and restart instant interleaved in time order:
    /// `(tick, replica, is_restart)`. This is the driver sequence for a
    /// runtime that injects crashes as commands (the threaded cluster's
    /// fault driver walks it and sleeps between entries).
    pub fn crash_timeline(&self) -> Vec<(u64, ReplicaId, bool)> {
        let mut t: Vec<(u64, ReplicaId, bool)> = self
            .crashes
            .iter()
            .flat_map(|c| [(c.at, c.replica, false), (c.restart, c.replica, true)])
            .collect();
        t.sort_unstable();
        t
    }

    /// The last scripted event boundary (outage heal or restart), or 0 if
    /// the script is empty — useful for sizing workloads past the chaos.
    pub fn horizon(&self) -> u64 {
        let o = self.outages.iter().map(|o| o.until).max().unwrap_or(0);
        let c = self.crashes.iter().map(|c| c.restart).max().unwrap_or(0);
        o.max(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn benign_plan_always_delivers() {
        let plan = FaultPlan::none();
        assert!(plan.is_benign());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(plan.decide(&mut rng, r(0), r(1)), FaultAction::Deliver);
        }
    }

    #[test]
    fn dead_link_always_drops() {
        let plan = FaultPlan::none().kill_link(r(0), r(1));
        assert!(!plan.is_benign());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(plan.decide(&mut rng, r(0), r(1)), FaultAction::Drop);
        assert_eq!(plan.decide(&mut rng, r(1), r(0)), FaultAction::Deliver);
    }

    #[test]
    fn probabilities_roughly_respected() {
        let plan = FaultPlan {
            duplicate_prob: 0.3,
            drop_prob: 0.2,
            dead_links: HashSet::new(),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut dup = 0;
        let mut drop = 0;
        let n = 10_000;
        for _ in 0..n {
            match plan.decide(&mut rng, r(0), r(1)) {
                FaultAction::Duplicate => dup += 1,
                FaultAction::Drop => drop += 1,
                FaultAction::Deliver => {}
            }
        }
        // Independent faults: Duplicate = both copies of a duplicated
        // message survive: 0.3 * 0.8^2 = 19.2%. Drop = every copy lost:
        // 0.7 * 0.2 + 0.3 * 0.2^2 = 15.2%.
        assert!((1650..2200).contains(&dup), "dup {dup}");
        assert!((1300..1800).contains(&drop), "drop {drop}");
    }

    #[test]
    fn duplication_rate_independent_of_drop_rate() {
        // The dup roll is consumed regardless of the drop outcome: with
        // drop_prob = 0 the Duplicate outcome rate is the full 30%.
        let plan = FaultPlan::duplicating(0.3);
        let mut rng = StdRng::seed_from_u64(11);
        let dup = (0..10_000)
            .filter(|_| plan.decide(&mut rng, r(0), r(1)) == FaultAction::Duplicate)
            .count();
        assert!((2700..3300).contains(&dup), "dup {dup}");
    }

    #[test]
    fn schedule_outage_windows() {
        let s = FaultSchedule::none().outage(r(0), r(1), 10, 20);
        assert!(!s.link_down(r(0), r(1), 9));
        assert!(s.link_down(r(0), r(1), 10));
        assert!(s.link_down(r(0), r(1), 19));
        assert!(!s.link_down(r(0), r(1), 20)); // healed
        assert!(!s.link_down(r(1), r(0), 15)); // directed
        assert!(s.eventually_heals());
        assert_eq!(s.horizon(), 20);
    }

    #[test]
    fn schedule_partition_is_bidirectional_and_heals() {
        let s = FaultSchedule::none().partition([r(0), r(1)], [r(2), r(3)], 5, 15);
        for (a, b) in [(0u32, 2u32), (0, 3), (1, 2), (1, 3)] {
            assert!(s.link_down(r(a), r(b), 7));
            assert!(s.link_down(r(b), r(a), 7));
            assert!(!s.link_down(r(a), r(b), 15));
        }
        assert!(!s.link_down(r(0), r(1), 7), "intra-side links unaffected");
        assert!(!s.link_down(r(2), r(3), 7));
    }

    #[test]
    fn schedule_crash_windows_and_restarts() {
        let s = FaultSchedule::none()
            .crash(r(1), 50, 120)
            .crash(r(3), 10, 30);
        assert!(!s.is_crashed(r(1), 49));
        assert!(s.is_crashed(r(1), 50));
        assert!(s.is_crashed(r(1), 119));
        assert!(!s.is_crashed(r(1), 120));
        assert_eq!(s.restarts(), vec![(30, r(3)), (120, r(1))]);
        assert_eq!(s.horizon(), 120);
        assert!(s.eventually_heals());
    }

    #[test]
    fn crash_timeline_interleaves_in_time_order() {
        let s = FaultSchedule::none()
            .crash(r(1), 50, 120)
            .crash(r(3), 10, 60);
        assert_eq!(
            s.crash_timeline(),
            vec![
                (10, r(3), false),
                (50, r(1), false),
                (60, r(3), true),
                (120, r(1), true),
            ]
        );
    }

    #[test]
    fn schedule_flap_alternates() {
        let s = FaultSchedule::none().flap(r(0), r(1), 0, 5, 5, 2);
        assert!(s.link_down(r(0), r(1), 0));
        assert!(s.link_down(r(0), r(1), 4));
        assert!(!s.link_down(r(0), r(1), 5)); // up phase
        assert!(s.link_down(r(0), r(1), 10)); // second down phase
        assert!(!s.link_down(r(0), r(1), 15));
        assert!(!s.link_down(r(0), r(1), 20)); // past the script
    }

    #[test]
    #[should_panic(expected = "restart must be after")]
    fn crash_restart_ordering_validated() {
        let _ = FaultSchedule::none().crash(r(0), 10, 10);
    }
}
