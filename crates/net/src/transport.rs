//! The transport seam between a replica runtime and a message substrate.
//!
//! `prcc-core`'s threaded runtime drives its per-replica event loop
//! through exactly four operations — identity, fire-and-forget send,
//! non-blocking receive, and bounded blocking receive. [`Transport`]
//! names that seam so the same loop runs unchanged over
//! [`ThreadNet`](crate::ThreadNet) handles (in-process, seeded delays and
//! faults) and [`TcpEndpoint`](crate::TcpEndpoint) handles (real kernel
//! sockets, one process per replica).

use crate::sim_net::Envelope;
use crate::thread_net::NodeHandle;
use prcc_sharegraph::ReplicaId;
use std::time::Duration;

/// A per-node message endpoint: everything the replica event loop needs
/// from a network.
///
/// Semantics required of implementations:
///
/// * `send` never blocks the caller — a backed-up or disconnected peer
///   surfaces as `false` (loss), which the session layer repairs;
/// * delivery may reorder, duplicate, or drop messages — the protocol
///   stack above assumes nothing stronger;
/// * `try_recv`/`recv_timeout` return messages addressed to this node,
///   each tagged with its true source.
pub trait Transport: Send + 'static {
    /// The message type carried.
    type Msg;

    /// This node's replica id.
    fn id(&self) -> ReplicaId;

    /// Sends `msg` to `dst` without blocking. Returns `false` if the
    /// message was immediately known to be lost (shed on a full queue or
    /// a shut-down substrate); `true` means *accepted*, not delivered.
    fn send(&self, dst: ReplicaId, msg: Self::Msg) -> bool;

    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Envelope<Self::Msg>>;

    /// Blocking receive with timeout.
    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<Self::Msg>>;
}

impl<M: Send + 'static> Transport for NodeHandle<M> {
    type Msg = M;

    fn id(&self) -> ReplicaId {
        NodeHandle::id(self)
    }

    fn send(&self, dst: ReplicaId, msg: M) -> bool {
        NodeHandle::send(self, dst, msg)
    }

    fn try_recv(&self) -> Option<Envelope<M>> {
        NodeHandle::try_recv(self)
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        NodeHandle::recv_timeout(self, timeout)
    }
}
