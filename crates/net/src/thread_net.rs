//! A real-threads transport with randomized delivery delays.
//!
//! [`ThreadNet`] gives each node a handle backed by crossbeam channels and
//! routes every message through a scheduler thread that imposes a seeded
//! random delay — the same non-FIFO semantics as
//! [`SimNetwork`](crate::SimNetwork), but with actual concurrency. The
//! threaded runtime in `prcc-core` uses it to exercise the protocol under
//! real interleavings (the "tokio async nodes" role of the reproduction,
//! built on crossbeam since the offline crate set has no async runtime).

use crate::delay::DelayModel;
use crate::faults::{FaultAction, FaultPlan, FaultSchedule};
use crate::sim_net::Envelope;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use prcc_sharegraph::ReplicaId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One simulated-delay tick in wall-clock time. Public so harnesses can
/// convert a [`FaultSchedule`](crate::faults::FaultSchedule) horizon
/// (in ticks) into the wall-clock span they must wait out.
pub const TICK: Duration = Duration::from_micros(200);

struct Pending<M> {
    due: Instant,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// A per-node endpoint. Cloneable; sends go through the router thread,
/// receives read the node's inbox.
pub struct NodeHandle<M> {
    id: ReplicaId,
    to_router: Sender<Envelope<M>>,
    inbox: Receiver<Envelope<M>>,
}

impl<M> Clone for NodeHandle<M> {
    fn clone(&self) -> Self {
        NodeHandle {
            id: self.id,
            to_router: self.to_router.clone(),
            inbox: self.inbox.clone(),
        }
    }
}

impl<M> fmt::Debug for NodeHandle<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeHandle").field("id", &self.id).finish()
    }
}

impl<M> NodeHandle<M> {
    /// This node's replica id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Sends `msg` to `dst` (delivered after a randomized delay).
    /// Returns `false` if the network has shut down.
    pub fn send(&self, dst: ReplicaId, msg: M) -> bool {
        self.to_router
            .send(Envelope {
                src: self.id,
                dst,
                msg,
            })
            .is_ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.inbox.try_recv().ok()
    }

    /// Blocking receive with timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        match self.inbox.recv_timeout(timeout) {
            Ok(env) => Some(env),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }
}

/// A threaded message bus with seeded random delays.
///
/// # Examples
///
/// ```
/// use prcc_net::{ThreadNet, DelayModel};
/// use prcc_sharegraph::ReplicaId;
/// use std::time::Duration;
///
/// let net: ThreadNet<u32> = ThreadNet::new(2, DelayModel::Fixed(1), 7);
/// let a = net.handle(ReplicaId::new(0));
/// let b = net.handle(ReplicaId::new(1));
/// a.send(ReplicaId::new(1), 42);
/// let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
/// assert_eq!(env.msg, 42);
/// ```
pub struct ThreadNet<M> {
    /// Node handles (each holds a sender to the router; the router exits
    /// once all of them are gone).
    handles: Vec<NodeHandle<M>>,
    router: Option<JoinHandle<()>>,
}

impl<M> fmt::Debug for ThreadNet<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadNet")
            .field("nodes", &self.handles.len())
            .finish()
    }
}

impl<M: Send + Clone + 'static> ThreadNet<M> {
    /// Spawns the router thread for `n` nodes.
    pub fn new(n: usize, delay: DelayModel, seed: u64) -> Self {
        Self::with_faults(n, delay, seed, FaultPlan::default())
    }

    /// Like [`ThreadNet::new`], but the router rolls `faults` on every
    /// message: dropped messages vanish, duplicated ones are enqueued
    /// twice with independently sampled delays. Reordering comes for
    /// free from the randomized delays.
    pub fn with_faults(n: usize, delay: DelayModel, seed: u64, faults: FaultPlan) -> Self {
        Self::with_config(n, delay, seed, faults, 4096)
    }

    /// Full-control constructor: like [`ThreadNet::with_faults`] with an
    /// explicit per-node ingress capacity. A node whose inbox is full
    /// sheds further deliveries (backpressure surfaces as loss, which the
    /// session layer repairs) — the router never blocks on a slow node.
    pub fn with_config(
        n: usize,
        delay: DelayModel,
        seed: u64,
        faults: FaultPlan,
        capacity: usize,
    ) -> Self {
        Self::with_schedule(n, delay, seed, FaultSchedule::from_plan(faults), capacity)
    }

    /// Like [`ThreadNet::with_config`], but the router also enforces the
    /// schedule's scripted link outages. Outage windows are expressed in
    /// simulated ticks and mapped onto wall-clock time from the moment of
    /// construction (one tick = 200 µs); the check happens at *send* time,
    /// matching [`FaultSchedule::link_down`]'s documented semantics — a
    /// message already in flight when the outage starts still arrives.
    /// Crash windows are *not* enforced here: a crashed replica's inbox
    /// keeps filling and the runtime harness discards the frames, which
    /// keeps crash semantics (and the loss accounting) in one place.
    pub fn with_schedule(
        n: usize,
        delay: DelayModel,
        seed: u64,
        schedule: FaultSchedule,
        capacity: usize,
    ) -> Self {
        let (to_router, from_nodes) = unbounded::<Envelope<M>>();
        let mut inbox_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = bounded::<Envelope<M>>(capacity.max(1));
            inbox_txs.push(tx);
            handles.push(NodeHandle {
                id: ReplicaId::new(i as u32),
                to_router: to_router.clone(),
                inbox: rx,
            });
        }
        let has_outages = !schedule.outages.is_empty();
        let epoch = Instant::now();
        let router_builder = std::thread::Builder::new().name("net-router".into());
        let router = router_builder.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut heap: BinaryHeap<Reverse<Pending<M>>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut disconnected = false;
            loop {
                // Deliver everything due.
                let now = Instant::now();
                while heap.peek().is_some_and(|Reverse(p)| p.due <= now) {
                    let Reverse(p) = heap.pop().unwrap();
                    let dst = p.env.dst.index();
                    if dst < inbox_txs.len() {
                        // A full or closed inbox drops the message
                        // (`try_send`, never a blocking `send`: one slow
                        // node must not stall the whole router).
                        let _ = inbox_txs[dst].try_send(p.env);
                    }
                }
                if disconnected && heap.is_empty() {
                    return;
                }
                // Wait for the next command or the next deadline.
                let wait = heap
                    .peek()
                    .map(|Reverse(p)| p.due.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(50));
                match from_nodes.recv_timeout(wait) {
                    Ok(env) => {
                        let scripted_down = has_outages && {
                            let now_ticks = (epoch.elapsed().as_micros() / TICK.as_micros()) as u64;
                            schedule.link_down(env.src, env.dst, now_ticks)
                        };
                        let copies = if scripted_down {
                            0
                        } else {
                            match schedule.plan.decide(&mut rng, env.src, env.dst) {
                                FaultAction::Drop => 0,
                                FaultAction::Deliver => 1,
                                FaultAction::Duplicate => 2,
                            }
                        };
                        for _ in 0..copies {
                            let ticks = delay.sample(&mut rng, env.src, env.dst);
                            heap.push(Reverse(Pending {
                                due: Instant::now() + TICK * ticks as u32,
                                seq,
                                env: env.clone(),
                            }));
                            seq += 1;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => disconnected = true,
                }
            }
        });
        drop(to_router);
        ThreadNet {
            handles,
            router: Some(router.expect("spawn net-router thread")),
        }
    }

    /// The handle of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn handle(&self, i: ReplicaId) -> NodeHandle<M> {
        self.handles[i.index()].clone()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True if the net has no nodes.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }
}

impl<M> Drop for ThreadNet<M> {
    fn drop(&mut self) {
        // Drop the node handles' router senders; the router thread then
        // observes disconnection, drains in-flight messages, and exits —
        // we detach rather than join so dropping the net never blocks
        // (C-DTOR-BLOCK).
        self.handles.clear();
        self.router.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn point_to_point_delivery() {
        let net: ThreadNet<String> = ThreadNet::new(3, DelayModel::Fixed(1), 0);
        let a = net.handle(r(0));
        let c = net.handle(r(2));
        assert!(a.send(r(2), "ping".into()));
        let env = c.recv_timeout(Duration::from_secs(2)).expect("delivery");
        assert_eq!(env.src, r(0));
        assert_eq!(env.msg, "ping");
        // Nothing for node 1.
        let b = net.handle(r(1));
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn many_messages_all_arrive() {
        let net: ThreadNet<u32> = ThreadNet::new(2, DelayModel::Uniform { min: 0, max: 5 }, 3);
        let a = net.handle(r(0));
        let b = net.handle(r(1));
        for i in 0..100 {
            a.send(r(1), i);
        }
        let mut got = Vec::new();
        while got.len() < 100 {
            match b.recv_timeout(Duration::from_secs(2)) {
                Some(env) => got.push(env.msg),
                None => panic!("lost messages: got {}", got.len()),
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_senders() {
        let net: ThreadNet<u32> = ThreadNet::new(3, DelayModel::Fixed(0), 1);
        let c = net.handle(r(2));
        let a = net.handle(r(0));
        let b = net.handle(r(1));
        let t1 = std::thread::spawn(move || {
            for i in 0..50 {
                a.send(r(2), i);
            }
        });
        let t2 = std::thread::spawn(move || {
            for i in 50..100 {
                b.send(r(2), i);
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let mut got = Vec::new();
        while got.len() < 100 {
            match c.recv_timeout(Duration::from_secs(2)) {
                Some(env) => got.push(env.msg),
                None => panic!("lost messages: got {}", got.len()),
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn tiny_inbox_sheds_overflow_without_blocking_router() {
        let net: ThreadNet<u32> =
            ThreadNet::with_config(2, DelayModel::Fixed(0), 0, FaultPlan::default(), 2);
        let a = net.handle(r(0));
        let b = net.handle(r(1));
        for i in 0..50 {
            a.send(r(1), i);
        }
        // Give the router time to process everything while the receiver
        // stays idle: only `capacity` messages can be admitted.
        std::thread::sleep(Duration::from_millis(100));
        let mut got = 0;
        while b.try_recv().is_some() {
            got += 1;
        }
        assert!(
            got <= 2,
            "bounded inbox admitted more than its capacity: {got}"
        );
        // The router shed the rest instead of blocking: it still routes.
        a.send(r(1), 999);
        let env = b
            .recv_timeout(Duration::from_secs(2))
            .expect("router alive");
        assert_eq!(env.msg, 999);
    }

    #[test]
    fn scripted_outage_drops_then_heals() {
        // Link 0 -> 1 is down for the first 250 ticks (50 ms of wall
        // clock): an immediate send vanishes, a send after the heal
        // instant arrives.
        let schedule = FaultSchedule::none().outage(r(0), r(1), 0, 250);
        let net: ThreadNet<u32> =
            ThreadNet::with_schedule(2, DelayModel::Fixed(0), 0, schedule, 64);
        let a = net.handle(r(0));
        let b = net.handle(r(1));
        a.send(r(1), 1);
        assert!(
            b.recv_timeout(Duration::from_millis(20)).is_none(),
            "message crossed a severed link"
        );
        std::thread::sleep(Duration::from_millis(80));
        a.send(r(1), 2);
        let env = b.recv_timeout(Duration::from_secs(2)).expect("healed link");
        assert_eq!(env.msg, 2);
    }

    #[test]
    fn handle_accessors() {
        let net: ThreadNet<u32> = ThreadNet::new(2, DelayModel::Fixed(0), 0);
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
        assert_eq!(net.handle(r(1)).id(), r(1));
    }
}
