//! Message-delay models for the simulated network.
//!
//! The paper assumes an asynchronous system with reliable point-to-point
//! channels that are **not FIFO**. Random per-message delays realize that
//! model: two messages on the same link may be delivered out of order. The
//! "loosely synchronous" assumption of Appendix D (one-hop messages beat
//! `l`-hop propagation) corresponds to a narrow delay distribution; E8
//! sweeps the spread to find where truncated tracking starts violating
//! causality.

use prcc_sharegraph::ReplicaId;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// How long a message takes from send to delivery, in simulated ticks.
#[derive(Debug, Clone, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly this long (FIFO behaviour per link).
    Fixed(u64),
    /// Uniform in `[min, max]` — the wider the band, the more reordering.
    Uniform {
        /// Minimum delay (inclusive).
        min: u64,
        /// Maximum delay (inclusive).
        max: u64,
    },
    /// Mostly `base`, but with probability `p_slow` a message is delayed
    /// uniformly in `[base, base * slow_factor]` — models stragglers /
    /// tail latency.
    LongTail {
        /// Common-case delay.
        base: u64,
        /// Probability of a straggler in `[0, 1]`.
        p_slow: f64,
        /// Multiplier bounding the straggler delay.
        slow_factor: u64,
    },
    /// Heterogeneous links: a jittered base delay per directed link, with
    /// a default for unlisted links — models intra- vs inter-datacenter
    /// paths. Each message is delayed uniformly in `[d, 2d]` where `d` is
    /// the link's base (keeping channels non-FIFO).
    PerLink {
        /// Delay base for links not in `overrides`.
        default: u64,
        /// Per-directed-link delay bases.
        overrides: HashMap<(ReplicaId, ReplicaId), u64>,
    },
}

impl DelayModel {
    /// Samples a delay for a message from `src` to `dst`.
    pub fn sample(&self, rng: &mut StdRng, src: ReplicaId, dst: ReplicaId) -> u64 {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, max } => {
                if min >= max {
                    min
                } else {
                    rng.gen_range(min..=max)
                }
            }
            DelayModel::LongTail {
                base,
                p_slow,
                slow_factor,
            } => {
                if rng.gen_bool(p_slow.clamp(0.0, 1.0)) {
                    let hi = base.saturating_mul(slow_factor.max(1));
                    if base >= hi {
                        base
                    } else {
                        rng.gen_range(base..=hi)
                    }
                } else {
                    base
                }
            }
            DelayModel::PerLink {
                default,
                ref overrides,
            } => {
                let d = overrides.get(&(src, dst)).copied().unwrap_or(default);
                if d == 0 {
                    0
                } else {
                    rng.gen_range(d..=d.saturating_mul(2))
                }
            }
        }
    }

    /// The largest delay this model can produce (used by quiescence
    /// detection in the simulator).
    pub fn max_delay(&self) -> u64 {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { max, .. } => max,
            DelayModel::LongTail {
                base, slow_factor, ..
            } => base.saturating_mul(slow_factor.max(1)),
            DelayModel::PerLink {
                default,
                ref overrides,
            } => overrides
                .values()
                .copied()
                .chain([default])
                .max()
                .unwrap_or(default)
                .saturating_mul(2),
        }
    }
}

impl Default for DelayModel {
    /// A moderately reordering default: uniform in `[1, 10]`.
    fn default() -> Self {
        DelayModel::Uniform { min: 1, max: 10 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn fixed_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = DelayModel::Fixed(5);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng, r(0), r(1)), 5);
        }
        assert_eq!(m.max_delay(), 5);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::Uniform { min: 3, max: 9 };
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..500 {
            let d = m.sample(&mut rng, r(0), r(1));
            assert!((3..=9).contains(&d));
            seen_lo |= d == 3;
            seen_hi |= d == 9;
        }
        assert!(seen_lo && seen_hi, "range endpoints should appear");
    }

    #[test]
    fn degenerate_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DelayModel::Uniform { min: 4, max: 4 };
        assert_eq!(m.sample(&mut rng, r(0), r(1)), 4);
    }

    #[test]
    fn long_tail_mostly_base() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = DelayModel::LongTail {
            base: 10,
            p_slow: 0.1,
            slow_factor: 20,
        };
        let samples: Vec<u64> = (0..1000).map(|_| m.sample(&mut rng, r(0), r(1))).collect();
        let base_count = samples.iter().filter(|&&d| d == 10).count();
        assert!(base_count > 800, "base count {base_count}");
        assert!(samples.iter().all(|&d| (10..=200).contains(&d)));
        assert_eq!(m.max_delay(), 200);
    }

    #[test]
    fn per_link_overrides() {
        let mut overrides = HashMap::new();
        overrides.insert((r(0), r(1)), 100u64);
        let m = DelayModel::PerLink {
            default: 2,
            overrides,
        };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let fast = m.sample(&mut rng, r(1), r(0)); // default link
            assert!((2..=4).contains(&fast), "{fast}");
            let slow = m.sample(&mut rng, r(0), r(1));
            assert!((100..=200).contains(&slow), "{slow}");
        }
        assert_eq!(m.max_delay(), 200);
        // Zero-delay link.
        let zero = DelayModel::PerLink {
            default: 0,
            overrides: HashMap::new(),
        };
        assert_eq!(zero.sample(&mut rng, r(0), r(1)), 0);
    }

    #[test]
    fn determinism_per_seed() {
        let m = DelayModel::Uniform { min: 0, max: 100 };
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(m.sample(&mut a, r(0), r(1)), m.sample(&mut b, r(0), r(1)));
        }
    }
}
