//! A reliable-delivery session layer: per-ordered-pair sequenced streams
//! with cumulative acks, selective-gap feedback, timeout-driven
//! retransmission, and duplicate suppression.
//!
//! The paper assumes reliable, exactly-once (non-FIFO) channels; the
//! fault plan breaks that assumption on purpose. [`SessionEndpoint`]
//! restores it: every payload handed to [`send`](SessionEndpoint::send)
//! is delivered to the peer's endpoint **exactly once and in send
//! order**, for any loss/duplication/reordering/partition pattern that
//! eventually heals. In-order delivery is stronger than the paper needs,
//! but it is exactly what keeps the wire codec's per-pair FIFO delta
//! framing sound under faults, and the causal layer above is indifferent
//! to the extra ordering.
//!
//! # Design
//!
//! The endpoint is a pure state machine — no I/O, no clock, no RNG.
//! Callers feed it the current time (`now`, in whatever unit the caller's
//! clock uses: simulated ticks for `SimNetwork`, elapsed real ticks for
//! the threaded runtime) and ship the frames it emits. All timing
//! decisions are deterministic: retransmission backoff is exponential
//! with a *hash-derived* jitter (no randomness), so a simulated run is
//! reproducible from its seed alone.
//!
//! * Sender side: each payload gets the next sequence number on the
//!   `(local, dst)` stream and is retained until cumulatively acked.
//!   Unacked frames retransmit when their deadline passes, with deadline
//!   `rto_base << attempts` (capped at `rto_max`) plus jitter.
//! * Receiver side: frames at or below the cumulative point are
//!   duplicates (suppressed, but re-acked — the ack may have been the
//!   lost message); frames beyond it are buffered; every data frame
//!   triggers an [`Ack`](SessionFrame::Ack) carrying the cumulative
//!   point plus the buffered sequence numbers above it (selective gaps).
//! * Selective acks do **not** remove frames from the sender — the
//!   receiver's out-of-order buffer is volatile and dies with a crash.
//!   A sacked frame merely has its retransmission pushed out to
//!   `rto_max`, so a crashed receiver is re-fed within one long timeout
//!   even if its recovery [`CatchUp`](SessionFrame::CatchUp) is lost.
//! * Crash recovery: [`restart`](SessionEndpoint::restart) rebuilds the
//!   endpoint from the caller's durable state — the per-peer outbox of
//!   payloads ever sent and the per-peer durably-delivered cumulative
//!   points — then emits a `CatchUp` to each peer (clamping the peer's
//!   sender stream back to what actually survived) and a single probe
//!   retransmission per stream (the peer's cumulative ack prunes
//!   everything it already has, so only genuine gaps retransmit).
//!
//! # Durability contract
//!
//! Exactly-once across crashes requires **ack-after-durable**: the caller
//! must durably record the payloads returned by
//! [`on_frame`](SessionEndpoint::on_frame) *before* transmitting the
//! frames that call pushed into `out`. Then a peer's cumulative-acked
//! point never exceeds the receiver's durable point, and `restart`'s
//! `CatchUp{recv_cum}` can only move the peer's sender *forward*.

use crate::sim_net::Envelope;
use prcc_sharegraph::ReplicaId;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// What travels on the wire when a session is active.
///
/// `Bare` is the session-disabled passthrough: systems that keep the
/// paper's reliable-channel assumption send `Bare` frames and never
/// instantiate an endpoint, so both configurations share one message
/// type (and one network).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionFrame<M> {
    /// Unsessioned payload — the reliable-channel fast path.
    Bare(M),
    /// Sequenced payload on the `(src, dst)` stream. Sequence numbers
    /// start at 1.
    Data {
        /// Position in the sender's stream to this destination.
        seq: u64,
        /// The payload.
        payload: M,
        /// Piggybacked cumulative ack for the *reverse* stream (the
        /// sender's in-order delivery point for the receiver's data),
        /// attached when an ack was pending toward this destination —
        /// bidirectional traffic then needs no standalone `Ack` frame.
        ack: Option<u64>,
    },
    /// Receiver feedback: everything `<= cum` has been delivered
    /// in-order; `sacks` are sequence numbers buffered above the gap.
    Ack {
        /// Cumulative in-order delivery point.
        cum: u64,
        /// Out-of-order sequence numbers held in the receive buffer.
        sacks: Vec<u64>,
    },
    /// Post-restart anti-entropy: "my durable delivery point for your
    /// stream is `recv_cum` — clamp to it and re-feed me the rest."
    CatchUp {
        /// The restarted receiver's durable cumulative point.
        recv_cum: u64,
    },
}

impl<M> SessionFrame<M> {
    /// Wire overhead of the session framing itself, on top of the
    /// payload's own size (0 for `Bare` — the passthrough adds nothing).
    pub fn overhead_bytes(&self) -> usize {
        match self {
            SessionFrame::Bare(_) => 0,
            SessionFrame::Data { ack, .. } => 8 + if ack.is_some() { 8 } else { 0 },
            SessionFrame::Ack { sacks, .. } => 8 + 8 * sacks.len(),
            SessionFrame::CatchUp { .. } => 8,
        }
    }

    /// The payload, if this frame carries one.
    pub fn payload(&self) -> Option<&M> {
        match self {
            SessionFrame::Bare(m) | SessionFrame::Data { payload: m, .. } => Some(m),
            _ => None,
        }
    }
}

/// Timing knobs for the session layer. All values are in the caller's
/// clock unit (simulated ticks / real tick quanta).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Base retransmission timeout: a frame unacked this long after
    /// (re)transmission is sent again. Should exceed the worst-case
    /// round trip, or fault-free runs will spuriously retransmit.
    pub rto_base: u64,
    /// Backoff cap: `rto_base << attempts` never exceeds this. Also the
    /// re-feed interval for sacked frames (see module docs).
    pub rto_max: u64,
    /// Maximum extra jitter added to each deadline (hash-derived,
    /// deterministic). 0 disables jitter.
    pub jitter: u64,
    /// How long an in-order delivery's ack may wait for a reverse-stream
    /// data frame to piggyback on before a standalone `Ack` is emitted.
    /// 0 (the default) acks every data frame immediately — the original
    /// behavior. Should stay well below `rto_base`, or delayed acks will
    /// trigger spurious retransmissions at the peer.
    pub ack_delay: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        // Tests and scenarios use delays up to Uniform{1,200}: worst
        // round trip ≈ 400 ticks, so 600 keeps fault-free runs
        // retransmit-free.
        SessionConfig {
            rto_base: 600,
            rto_max: 4800,
            jitter: 64,
            ack_delay: 0,
        }
    }
}

impl SessionConfig {
    fn rto(&self, attempts: u32) -> u64 {
        let shifted = self
            .rto_base
            .saturating_mul(1u64.checked_shl(attempts).unwrap_or(u64::MAX));
        shifted.min(self.rto_max)
    }
}

/// Counters kept by a [`SessionEndpoint`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// First transmissions of data frames.
    pub data_sent: usize,
    /// Timeout- or catch-up-driven retransmissions.
    pub retransmits: usize,
    /// Ack frames emitted.
    pub acks_sent: usize,
    /// Data frames suppressed as duplicates (already delivered or
    /// already buffered).
    pub dup_suppressed: usize,
    /// Data frames buffered out of order (delivered later).
    pub out_of_order: usize,
    /// Payloads released to the caller in order (exactly-once count).
    pub delivered: usize,
    /// `CatchUp` frames emitted at restart.
    pub catch_up_sent: usize,
    /// `CatchUp` frames received from restarting peers.
    pub catch_up_served: usize,
    /// Standalone `Ack` frames suppressed because the cumulative point
    /// rode out on an outgoing data frame instead.
    pub acks_piggybacked: usize,
}

impl SessionStats {
    /// Accumulates another endpoint's counters (fleet-wide totals).
    pub fn merge(&mut self, other: &SessionStats) {
        self.data_sent += other.data_sent;
        self.retransmits += other.retransmits;
        self.acks_sent += other.acks_sent;
        self.dup_suppressed += other.dup_suppressed;
        self.out_of_order += other.out_of_order;
        self.delivered += other.delivered;
        self.catch_up_sent += other.catch_up_sent;
        self.catch_up_served += other.catch_up_served;
        self.acks_piggybacked += other.acks_piggybacked;
    }
}

struct OutFrame<M> {
    payload: M,
    attempts: u32,
    next_due: u64,
}

struct SenderStream<M> {
    next_seq: u64,
    cum_acked: u64,
    outstanding: BTreeMap<u64, OutFrame<M>>,
}

impl<M> Default for SenderStream<M> {
    fn default() -> Self {
        SenderStream {
            next_seq: 1,
            cum_acked: 0,
            outstanding: BTreeMap::new(),
        }
    }
}

struct ReceiverStream<M> {
    cum: u64,
    buffer: BTreeMap<u64, M>,
}

impl<M> Default for ReceiverStream<M> {
    fn default() -> Self {
        ReceiverStream {
            cum: 0,
            buffer: BTreeMap::new(),
        }
    }
}

/// One replica's half of every session it participates in (one sender
/// and one receiver stream per peer). See the module docs for the
/// protocol and the durability contract.
pub struct SessionEndpoint<M> {
    local: ReplicaId,
    config: SessionConfig,
    // BTreeMaps so every bulk emission (`poll`, `restart`) walks peers
    // in replica order: frame emission order decides which delay each
    // frame draws from the shared seeded stream, so map iteration order
    // must not vary between process runs.
    senders: BTreeMap<ReplicaId, SenderStream<M>>,
    receivers: BTreeMap<ReplicaId, ReceiverStream<M>>,
    /// Peers owed an ack for in-order deliveries, with the deadline by
    /// which a standalone `Ack` must go out if no data frame toward them
    /// carries it first (`ack_delay` piggybacking).
    ack_pending: BTreeMap<ReplicaId, u64>,
    stats: SessionStats,
}

impl<M> fmt::Debug for SessionEndpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionEndpoint")
            .field("local", &self.local)
            .field("senders", &self.senders.len())
            .field("receivers", &self.receivers.len())
            .field("outstanding", &self.outstanding())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Deterministic per-(endpoint, peer, seq, attempt) jitter — FNV-1a, no
/// RNG, so simulated runs replay exactly.
fn jitter_hash(local: ReplicaId, peer: ReplicaId, seq: u64, attempts: u32, max: u64) -> u64 {
    if max == 0 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in local
        .raw()
        .to_le_bytes()
        .into_iter()
        .chain(peer.raw().to_le_bytes())
        .chain(seq.to_le_bytes())
        .chain(attempts.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h % max
}

impl<M> SessionEndpoint<M> {
    /// Creates the endpoint for replica `local`.
    pub fn new(local: ReplicaId, config: SessionConfig) -> Self {
        SessionEndpoint {
            local,
            config,
            senders: BTreeMap::new(),
            receivers: BTreeMap::new(),
            ack_pending: BTreeMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// Endpoint counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Total unacked frames across all sender streams.
    pub fn outstanding(&self) -> usize {
        self.senders.values().map(|s| s.outstanding.len()).sum()
    }

    /// True when every sent frame has been cumulatively acked and no
    /// delayed ack is still owed — nothing left to transmit.
    pub fn is_idle(&self) -> bool {
        self.outstanding() == 0 && self.ack_pending.is_empty()
    }

    /// The receiver's cumulative in-order point for `src`'s stream.
    /// This is what the caller persists for [`restart`](Self::restart).
    pub fn recv_cum(&self, src: ReplicaId) -> u64 {
        self.receivers.get(&src).map_or(0, |r| r.cum)
    }

    /// The earliest retransmission or delayed-ack deadline, or `None`
    /// when idle.
    pub fn next_deadline(&self) -> Option<u64> {
        self.senders
            .values()
            .flat_map(|s| s.outstanding.values().map(|f| f.next_due))
            .chain(self.ack_pending.values().copied())
            .min()
    }
}

impl<M: Clone> SessionEndpoint<M> {
    /// Sequences `payload` for `dst` and returns the data frame to
    /// transmit. The payload is retained for retransmission until acked.
    /// A pending delayed ack toward `dst` rides out on the frame instead
    /// of costing a standalone `Ack`.
    pub fn send(&mut self, dst: ReplicaId, payload: M, now: u64) -> SessionFrame<M> {
        let cfg = self.config;
        let local = self.local;
        let ack = if self.ack_pending.remove(&dst).is_some() {
            self.stats.acks_piggybacked += 1;
            Some(self.receivers.get(&dst).map_or(0, |r| r.cum))
        } else {
            None
        };
        let stream = self.senders.entry(dst).or_default();
        let seq = stream.next_seq;
        stream.next_seq += 1;
        stream.outstanding.insert(
            seq,
            OutFrame {
                payload: payload.clone(),
                attempts: 1,
                next_due: now + cfg.rto(0) + jitter_hash(local, dst, seq, 0, cfg.jitter),
            },
        );
        self.stats.data_sent += 1;
        SessionFrame::Data { seq, payload, ack }
    }

    /// Applies a cumulative ack (with optional selective gaps) from `src`
    /// to the sender stream — shared by standalone `Ack` frames and acks
    /// piggybacked on data frames.
    fn apply_ack(&mut self, src: ReplicaId, cum: u64, sacks: &[u64], now: u64) {
        let cfg = self.config;
        if let Some(stream) = self.senders.get_mut(&src) {
            stream.cum_acked = stream.cum_acked.max(cum);
            stream.outstanding.retain(|&seq, _| seq > cum);
            for &seq in sacks {
                // Received but volatile at the peer: defer (not
                // cancel) retransmission — see module docs.
                if let Some(f) = stream.outstanding.get_mut(&seq) {
                    f.next_due = f.next_due.max(now + cfg.rto_max);
                }
            }
        }
    }

    /// Processes one incoming frame from `src`. In-order payloads are
    /// returned (the exactly-once stream); any frames to transmit in
    /// response are pushed onto `out` as `(destination, frame)`.
    ///
    /// **Durability contract:** persist the returned payloads before
    /// transmitting the frames pushed to `out` (they include the ack).
    pub fn on_frame(
        &mut self,
        src: ReplicaId,
        frame: SessionFrame<M>,
        now: u64,
        out: &mut Vec<(ReplicaId, SessionFrame<M>)>,
    ) -> Vec<M> {
        match frame {
            SessionFrame::Bare(m) => vec![m],
            SessionFrame::Data { seq, payload, ack } => {
                if let Some(cum) = ack {
                    self.apply_ack(src, cum, &[], now);
                }
                let ack_delay = self.config.ack_delay;
                let stream = self.receivers.entry(src).or_default();
                let mut delivered = Vec::new();
                let mut clean = false;
                if seq <= stream.cum || stream.buffer.contains_key(&seq) {
                    self.stats.dup_suppressed += 1;
                } else if seq == stream.cum + 1 {
                    stream.cum = seq;
                    delivered.push(payload);
                    while let Some(m) = stream.buffer.remove(&(stream.cum + 1)) {
                        stream.cum += 1;
                        delivered.push(m);
                    }
                    clean = stream.buffer.is_empty();
                } else {
                    stream.buffer.insert(seq, payload);
                    self.stats.out_of_order += 1;
                }
                self.stats.delivered += delivered.len();
                if ack_delay > 0 && clean {
                    // Clean in-order progress: wait for a reverse data
                    // frame to piggyback the cumulative point; a
                    // standalone ack goes out at the deadline otherwise.
                    self.ack_pending.entry(src).or_insert(now + ack_delay);
                } else {
                    // Duplicates (our previous ack may be the lost
                    // message) and gaps (the peer needs the sacks) are
                    // acked standalone immediately.
                    let ack = SessionFrame::Ack {
                        cum: stream.cum,
                        sacks: stream.buffer.keys().copied().collect(),
                    };
                    self.stats.acks_sent += 1;
                    self.ack_pending.remove(&src);
                    out.push((src, ack));
                }
                delivered
            }
            SessionFrame::Ack { cum, sacks } => {
                self.apply_ack(src, cum, &sacks, now);
                Vec::new()
            }
            SessionFrame::CatchUp { recv_cum } => {
                self.stats.catch_up_served += 1;
                if let Some(stream) = self.senders.get_mut(&src) {
                    // Ack-after-durable guarantees recv_cum >= our
                    // cum_acked; everything above it must be re-fed
                    // because the peer's reorder buffer died with it.
                    stream.cum_acked = stream.cum_acked.max(recv_cum);
                    stream.outstanding.retain(|&seq, _| seq > recv_cum);
                    for (_, f) in stream.outstanding.iter_mut() {
                        f.attempts = 1;
                        f.next_due = now;
                    }
                }
                // The peer also lost what we had acked it... no: our
                // *receiver* state is intact; the peer rebuilt its sender
                // from its durable outbox and will re-probe us itself.
                Vec::new()
            }
        }
    }

    /// Retransmits every frame whose deadline has passed and flushes
    /// overdue delayed acks as standalone `Ack` frames, pushing the
    /// frames onto `out`. Call whenever the clock reaches
    /// [`next_deadline`](Self::next_deadline).
    pub fn poll(&mut self, now: u64, out: &mut Vec<(ReplicaId, SessionFrame<M>)>) {
        let cfg = self.config;
        let local = self.local;
        let mut retransmits = 0;
        for (&dst, stream) in self.senders.iter_mut() {
            for (&seq, f) in stream.outstanding.iter_mut() {
                if f.next_due <= now {
                    f.attempts = f.attempts.saturating_add(1);
                    f.next_due = now
                        + cfg.rto(f.attempts - 1)
                        + jitter_hash(local, dst, seq, f.attempts - 1, cfg.jitter);
                    retransmits += 1;
                    out.push((
                        dst,
                        SessionFrame::Data {
                            seq,
                            payload: f.payload.clone(),
                            ack: None,
                        },
                    ));
                }
            }
        }
        self.stats.retransmits += retransmits;
        let overdue: Vec<ReplicaId> = self
            .ack_pending
            .iter()
            .filter(|(_, &due)| due <= now)
            .map(|(&src, _)| src)
            .collect();
        for src in overdue {
            self.ack_pending.remove(&src);
            let stream = self.receivers.entry(src).or_default();
            let ack = SessionFrame::Ack {
                cum: stream.cum,
                sacks: stream.buffer.keys().copied().collect(),
            };
            self.stats.acks_sent += 1;
            out.push((src, ack));
        }
    }

    /// Rebuilds the endpoint after a crash, from durable state only:
    /// `outbox` is every payload ever sent per peer (in send order,
    /// sequences `1..=len`), `recv_cums` the durable in-order delivery
    /// point per peer. Emits one `CatchUp` per `recv_cums` entry and one
    /// probe retransmission (the newest frame) per sender stream; older
    /// unacked frames wait one RTO so the peer's cumulative ack can
    /// prune them before they hit the wire.
    pub fn restart(
        &mut self,
        outbox: &HashMap<ReplicaId, Vec<M>>,
        recv_cums: &HashMap<ReplicaId, u64>,
        now: u64,
        out: &mut Vec<(ReplicaId, SessionFrame<M>)>,
    ) {
        let cfg = self.config;
        let local = self.local;
        self.senders.clear();
        self.receivers.clear();
        self.ack_pending.clear();
        // Walk the durable maps in replica order: emission order decides
        // which network delay each frame samples, and must not depend on
        // HashMap iteration order.
        let mut outbox: Vec<_> = outbox.iter().collect();
        outbox.sort_by_key(|(dst, _)| **dst);
        for (&dst, payloads) in outbox {
            let mut stream = SenderStream {
                next_seq: payloads.len() as u64 + 1,
                ..Default::default()
            };
            let last = payloads.len() as u64;
            for (i, p) in payloads.iter().enumerate() {
                let seq = i as u64 + 1;
                if seq == last {
                    // Probe: retransmit the newest frame immediately.
                    self.stats.retransmits += 1;
                    out.push((
                        dst,
                        SessionFrame::Data {
                            seq,
                            payload: p.clone(),
                            ack: None,
                        },
                    ));
                }
                stream.outstanding.insert(
                    seq,
                    OutFrame {
                        payload: p.clone(),
                        attempts: 1,
                        next_due: now + cfg.rto(0) + jitter_hash(local, dst, seq, 0, cfg.jitter),
                    },
                );
            }
            self.senders.insert(dst, stream);
        }
        let mut recv_cums: Vec<_> = recv_cums.iter().collect();
        recv_cums.sort_by_key(|(src, _)| **src);
        for (&src, &cum) in recv_cums {
            self.receivers.insert(
                src,
                ReceiverStream {
                    cum,
                    buffer: BTreeMap::new(),
                },
            );
            self.stats.catch_up_sent += 1;
            out.push((src, SessionFrame::CatchUp { recv_cum: cum }));
        }
    }

    /// Convenience for tests and single-process drivers: feed a network
    /// envelope addressed to this endpoint.
    pub fn on_envelope(
        &mut self,
        env: Envelope<SessionFrame<M>>,
        now: u64,
        out: &mut Vec<(ReplicaId, SessionFrame<M>)>,
    ) -> Vec<M> {
        debug_assert_eq!(env.dst, self.local);
        self.on_frame(env.src, env.msg, now, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn cfg() -> SessionConfig {
        SessionConfig {
            rto_base: 100,
            rto_max: 800,
            jitter: 0,
            ack_delay: 0,
        }
    }

    #[test]
    fn in_order_delivery_and_ack() {
        let mut a: SessionEndpoint<&str> = SessionEndpoint::new(r(0), cfg());
        let mut b: SessionEndpoint<&str> = SessionEndpoint::new(r(1), cfg());
        let f1 = a.send(r(1), "x", 0);
        let f2 = a.send(r(1), "y", 0);
        let mut out = Vec::new();
        assert_eq!(b.on_frame(r(0), f1, 10, &mut out), vec!["x"]);
        assert_eq!(b.on_frame(r(0), f2, 11, &mut out), vec!["y"]);
        assert_eq!(out.len(), 2);
        for (dst, ack) in out {
            assert_eq!(dst, r(0));
            let mut sink = Vec::new();
            a.on_frame(r(1), ack, 12, &mut sink);
        }
        assert!(a.is_idle());
        assert_eq!(b.stats().delivered, 2);
    }

    #[test]
    fn reordered_frames_are_buffered_then_released_in_order() {
        let mut a: SessionEndpoint<u32> = SessionEndpoint::new(r(0), cfg());
        let mut b: SessionEndpoint<u32> = SessionEndpoint::new(r(1), cfg());
        let f1 = a.send(r(1), 1, 0);
        let f2 = a.send(r(1), 2, 0);
        let f3 = a.send(r(1), 3, 0);
        let mut out = Vec::new();
        assert!(b.on_frame(r(0), f3, 5, &mut out).is_empty());
        assert!(b.on_frame(r(0), f2, 6, &mut out).is_empty());
        assert_eq!(b.on_frame(r(0), f1, 7, &mut out), vec![1, 2, 3]);
        assert_eq!(b.stats().out_of_order, 2);
        // The out-of-order acks carried sacks.
        let SessionFrame::Ack { cum, sacks } = &out[0].1 else {
            panic!("expected ack");
        };
        assert_eq!((*cum, sacks.as_slice()), (0, &[3][..]));
    }

    #[test]
    fn duplicates_suppressed_but_reacked() {
        let mut a: SessionEndpoint<u32> = SessionEndpoint::new(r(0), cfg());
        let mut b: SessionEndpoint<u32> = SessionEndpoint::new(r(1), cfg());
        let f1 = a.send(r(1), 7, 0);
        let mut out = Vec::new();
        assert_eq!(b.on_frame(r(0), f1.clone(), 5, &mut out), vec![7]);
        assert!(b.on_frame(r(0), f1, 6, &mut out).is_empty());
        assert_eq!(b.stats().dup_suppressed, 1);
        assert_eq!(b.stats().delivered, 1);
        assert_eq!(out.len(), 2, "both copies acked");
    }

    #[test]
    fn timeout_retransmits_with_backoff() {
        let c = cfg();
        let mut a: SessionEndpoint<u32> = SessionEndpoint::new(r(0), c);
        a.send(r(1), 1, 0);
        let mut out = Vec::new();
        a.poll(99, &mut out);
        assert!(out.is_empty(), "before the deadline");
        a.poll(100, &mut out);
        assert_eq!(out.len(), 1, "first retransmit at rto_base");
        assert_eq!(a.stats().retransmits, 1);
        // Second deadline is rto_base<<1 later.
        let d = a.next_deadline().unwrap();
        assert_eq!(d, 100 + 200);
        out.clear();
        a.poll(d, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(a.next_deadline().unwrap(), d + 400);
    }

    #[test]
    fn backoff_caps_at_rto_max() {
        let c = cfg();
        let mut a: SessionEndpoint<u32> = SessionEndpoint::new(r(0), c);
        a.send(r(1), 1, 0);
        let mut now = 0;
        let mut out = Vec::new();
        for _ in 0..10 {
            now = a.next_deadline().unwrap();
            a.poll(now, &mut out);
        }
        assert_eq!(a.next_deadline().unwrap() - now, c.rto_max);
    }

    #[test]
    fn ack_prunes_and_sack_defers() {
        let c = cfg();
        let mut a: SessionEndpoint<u32> = SessionEndpoint::new(r(0), c);
        a.send(r(1), 1, 0);
        a.send(r(1), 2, 0);
        a.send(r(1), 3, 0);
        let mut out = Vec::new();
        // Peer has 1 in order and 3 buffered; 2 was lost.
        a.on_frame(
            r(1),
            SessionFrame::Ack {
                cum: 1,
                sacks: vec![3],
            },
            50,
            &mut out,
        );
        assert_eq!(a.outstanding(), 2);
        // Frame 2 still due at its original deadline; frame 3 deferred.
        a.poll(100, &mut out);
        assert_eq!(out.len(), 1);
        let SessionFrame::Data { seq, .. } = out[0].1 else {
            panic!()
        };
        assert_eq!(seq, 2);
        // Sacked frame 3 does eventually retransmit (crash insurance).
        out.clear();
        a.poll(50 + c.rto_max, &mut out);
        assert!(out
            .iter()
            .any(|(_, f)| matches!(f, SessionFrame::Data { seq, .. } if *seq == 3)));
    }

    #[test]
    fn restart_rebuilds_from_durable_state() {
        let c = cfg();
        let mut b: SessionEndpoint<u32> = SessionEndpoint::new(r(1), c);
        let mut outbox = HashMap::new();
        outbox.insert(r(0), vec![10, 20, 30]);
        let mut recv = HashMap::new();
        recv.insert(r(0), 5);
        let mut out = Vec::new();
        b.restart(&outbox, &recv, 1000, &mut out);
        // One probe (newest frame) + one catch-up.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(
            |(_, f)| matches!(f, SessionFrame::Data { seq, payload, .. } if *seq == 3 && *payload == 30)
        ));
        assert!(out
            .iter()
            .any(|(_, f)| matches!(f, SessionFrame::CatchUp { recv_cum: 5 })));
        assert_eq!(b.outstanding(), 3);
        assert_eq!(b.recv_cum(r(0)), 5);
        // A fresh send continues the sequence after the outbox.
        let SessionFrame::Data { seq, .. } = b.send(r(0), 40, 1000) else {
            panic!()
        };
        assert_eq!(seq, 4);
        // The peer's cumulative ack prunes the un-probed backlog before
        // its deadline.
        let mut sink = Vec::new();
        b.on_frame(
            r(0),
            SessionFrame::Ack {
                cum: 3,
                sacks: vec![],
            },
            1001,
            &mut sink,
        );
        assert_eq!(b.outstanding(), 1);
    }

    #[test]
    fn catch_up_rewinds_sender_to_durable_point() {
        let c = cfg();
        let mut a: SessionEndpoint<u32> = SessionEndpoint::new(r(0), c);
        a.send(r(1), 1, 0);
        a.send(r(1), 2, 0);
        a.send(r(1), 3, 0);
        let mut out = Vec::new();
        // Peer acked everything (2,3 only buffered — sacked variant not
        // modelled here: suppose cum reached 3, then it crashed having
        // durably logged only 1).
        a.on_frame(
            r(1),
            SessionFrame::Ack {
                cum: 3,
                sacks: vec![],
            },
            10,
            &mut out,
        );
        assert!(a.is_idle());
        // Exactly-once across crashes relies on ack-after-durable: a
        // peer never acks 3 without logging 3. CatchUp therefore only
        // moves forward; a stale/replayed CatchUp below cum_acked is a
        // no-op.
        a.on_frame(r(1), SessionFrame::CatchUp { recv_cum: 1 }, 20, &mut out);
        assert!(a.is_idle(), "acked frames are durable at the peer");
        // But frames still outstanding are re-fed immediately.
        a.send(r(1), 4, 30);
        a.send(r(1), 5, 30);
        out.clear();
        a.on_frame(r(1), SessionFrame::CatchUp { recv_cum: 3 }, 40, &mut out);
        a.poll(40, &mut out);
        let seqs: Vec<u64> = out
            .iter()
            .filter_map(|(_, f)| match f {
                SessionFrame::Data { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![4, 5]);
        assert_eq!(a.stats().catch_up_served, 2);
    }

    #[test]
    fn bare_frames_pass_through() {
        let mut b: SessionEndpoint<u32> = SessionEndpoint::new(r(1), cfg());
        let mut out = Vec::new();
        assert_eq!(
            b.on_frame(r(0), SessionFrame::Bare(9), 0, &mut out),
            vec![9]
        );
        assert!(out.is_empty(), "no ack for bare frames");
        assert_eq!(b.stats().acks_sent, 0);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for seq in 0..50 {
            let j1 = jitter_hash(r(0), r(1), seq, 2, 64);
            let j2 = jitter_hash(r(0), r(1), seq, 2, 64);
            assert_eq!(j1, j2);
            assert!(j1 < 64);
        }
        assert_eq!(jitter_hash(r(0), r(1), 3, 0, 0), 0);
        // Different attempts give different jitter (usually).
        let distinct: std::collections::HashSet<u64> = (0..8)
            .map(|a| jitter_hash(r(0), r(1), 1, a, 1 << 30))
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn frame_overhead_accounting() {
        let f: SessionFrame<u32> = SessionFrame::Bare(1);
        assert_eq!(f.overhead_bytes(), 0);
        let f: SessionFrame<u32> = SessionFrame::Data {
            seq: 1,
            payload: 1,
            ack: None,
        };
        assert_eq!(f.overhead_bytes(), 8);
        let f: SessionFrame<u32> = SessionFrame::Data {
            seq: 1,
            payload: 1,
            ack: Some(7),
        };
        assert_eq!(f.overhead_bytes(), 16);
        let f: SessionFrame<u32> = SessionFrame::Ack {
            cum: 1,
            sacks: vec![3, 4],
        };
        assert_eq!(f.overhead_bytes(), 24);
    }

    #[test]
    fn bidirectional_traffic_piggybacks_acks() {
        let delayed = SessionConfig {
            ack_delay: 20,
            ..cfg()
        };
        let mut a: SessionEndpoint<u32> = SessionEndpoint::new(r(0), delayed);
        let mut b: SessionEndpoint<u32> = SessionEndpoint::new(r(1), delayed);
        let f1 = a.send(r(1), 10, 0);
        let mut out = Vec::new();
        assert_eq!(b.on_frame(r(0), f1, 5, &mut out), vec![10]);
        // No standalone ack: deferred, waiting to piggyback.
        assert!(out.is_empty());
        assert!(!b.is_idle());
        assert_eq!(b.next_deadline(), Some(25));
        // A reverse send carries the cumulative point…
        let f2 = b.send(r(0), 20, 10);
        assert!(matches!(f2, SessionFrame::Data { ack: Some(1), .. }));
        assert_eq!(b.stats().acks_piggybacked, 1);
        assert_eq!(b.stats().acks_sent, 0);
        // …and the piggybacked ack prunes a's outstanding frame.
        assert_eq!(a.outstanding(), 1);
        assert_eq!(a.on_frame(r(1), f2, 12, &mut out), vec![20]);
        assert_eq!(a.outstanding(), 0);
    }

    #[test]
    fn delayed_ack_flushes_standalone_at_deadline() {
        let delayed = SessionConfig {
            ack_delay: 20,
            ..cfg()
        };
        let mut a: SessionEndpoint<u32> = SessionEndpoint::new(r(0), cfg());
        let mut b: SessionEndpoint<u32> = SessionEndpoint::new(r(1), delayed);
        let f1 = a.send(r(1), 10, 0);
        let mut out = Vec::new();
        b.on_frame(r(0), f1, 5, &mut out);
        assert!(out.is_empty());
        // No reverse traffic: the deadline emits a standalone ack.
        b.poll(24, &mut out);
        assert!(out.is_empty(), "before the ack deadline");
        b.poll(25, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, SessionFrame::Ack { cum: 1, .. }));
        assert_eq!(b.stats().acks_sent, 1);
        assert!(b.is_idle());
        // The flushed ack settles the sender.
        let (dst, ack) = out.pop().unwrap();
        assert_eq!(dst, r(0));
        let mut sink = Vec::new();
        a.on_frame(r(1), ack, 30, &mut sink);
        assert!(a.is_idle());
    }

    #[test]
    fn delayed_ack_gaps_and_duplicates_still_ack_immediately() {
        let delayed = SessionConfig {
            ack_delay: 20,
            ..cfg()
        };
        let mut a: SessionEndpoint<u32> = SessionEndpoint::new(r(0), cfg());
        let mut b: SessionEndpoint<u32> = SessionEndpoint::new(r(1), delayed);
        let f1 = a.send(r(1), 1, 0);
        let f2 = a.send(r(1), 2, 0);
        let f3 = a.send(r(1), 3, 0);
        let mut out = Vec::new();
        // Gap (3 before 1): standalone ack with sacks, immediately.
        b.on_frame(r(0), f3, 5, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0].1, SessionFrame::Ack { cum: 0, sacks } if sacks == &vec![3]));
        out.clear();
        // In-order but the gap remains buffered: still standalone.
        b.on_frame(r(0), f1.clone(), 6, &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        // Gap filler drains the buffer — clean progress, ack deferred.
        b.on_frame(r(0), f2, 7, &mut out);
        assert!(out.is_empty(), "clean in-order progress defers");
        assert!(!b.is_idle());
        // Duplicate: standalone re-ack even while a delayed ack pends.
        b.on_frame(r(0), f1, 8, &mut out);
        assert_eq!(out.len(), 1, "duplicate re-acked immediately");
        assert!(b.is_idle(), "standalone ack clears the pending delay");
    }
}
