//! Network substrates for the PRCC reproduction.
//!
//! The paper assumes an asynchronous system of replicas connected by
//! reliable, point-to-point, **non-FIFO** channels. Two interchangeable
//! substrates provide that model:
//!
//! * [`SimNetwork`] — a deterministic discrete-event network, seeded and
//!   fully reproducible, with link-hold controls for constructing the
//!   adversarial executions used in the paper's impossibility proofs;
//! * [`ThreadNet`] — a real-threads transport (crossbeam channels + a
//!   delay-scheduling router) for exercising the protocol under genuine
//!   concurrency.
//!
//! Delays come from a shared [`DelayModel`].
//!
//! # Examples
//!
//! ```
//! use prcc_net::{SimNetwork, DelayModel};
//! use prcc_sharegraph::ReplicaId;
//!
//! let mut net: SimNetwork<u64> = SimNetwork::new(DelayModel::default(), 1);
//! net.send(ReplicaId::new(0), ReplicaId::new(1), 99);
//! let (_, env) = net.next_delivery().unwrap();
//! assert_eq!(env.msg, 99);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod delay;
pub mod faults;
pub mod session;
pub mod sim_net;
pub mod tcp_net;
pub mod thread_net;
pub mod transport;

pub use delay::DelayModel;
pub use faults::{CrashEvent, FaultAction, FaultPlan, FaultSchedule, LinkOutage};
pub use session::{SessionConfig, SessionEndpoint, SessionFrame, SessionStats};
pub use sim_net::{Envelope, NetStats, SimNetwork};
pub use tcp_net::{
    pack_zero_runs, unpack_zero_runs, BoundListener, CodecFactory, FrameBuffer, FrameError,
    LinkCodec, TcpEndpoint, TcpHandle, TcpNetConfig, TcpStatsSnapshot,
};
pub use thread_net::{NodeHandle, ThreadNet, TICK};
pub use transport::Transport;
