//! Fuzz/property tests for the TCP frame reassembly path: arbitrary
//! split points, short reads, mid-frame disconnects, and garbage
//! prefixes must never corrupt decoder state — the same transactional
//! rejection discipline as the wire codec's `DecodeError`.

use prcc_net::{pack_zero_runs, unpack_zero_runs, FrameBuffer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Serializes `bodies` as length-prefixed frames on one wire image.
fn frame_stream(bodies: &[Vec<u8>]) -> Vec<u8> {
    let mut wire = Vec::new();
    for body in bodies {
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(body);
    }
    wire
}

/// Feeds `wire` to `fb` in chunks cut at `splits`, collecting every
/// complete frame.
fn feed_in_chunks(fb: &mut FrameBuffer, wire: &[u8], splits: &[usize]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut cuts: Vec<usize> = splits.iter().map(|&s| s % (wire.len() + 1)).collect();
    cuts.push(0);
    cuts.push(wire.len());
    cuts.sort_unstable();
    cuts.dedup();
    for w in cuts.windows(2) {
        fb.extend(&wire[w[0]..w[1]]);
        while let Ok(Some(frame)) = fb.next_frame() {
            out.push(frame);
        }
    }
    out
}

proptest! {
    /// Any chunking of a valid frame stream reassembles to exactly the
    /// original frame sequence, regardless of where the reads split.
    #[test]
    fn reassembly_is_split_invariant(
        seed in 0u64..1_000_000,
        nframes in 0usize..12,
        splits in proptest::collection::vec(0usize..4096, 0..24),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bodies: Vec<Vec<u8>> = (0..nframes)
            .map(|_| {
                let len = rng.gen_range(0usize..200);
                (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
            })
            .collect();
        let wire = frame_stream(&bodies);
        let mut fb = FrameBuffer::new(1 << 16);
        let got = feed_in_chunks(&mut fb, &wire, &splits);
        prop_assert_eq!(got, bodies);
        prop_assert_eq!(fb.pending(), 0);
        prop_assert!(!fb.is_poisoned());
    }

    /// A mid-frame disconnect (truncated tail) yields exactly the frames
    /// that completed; the partial frame never surfaces and the buffer
    /// stays clean for the bytes it did get.
    #[test]
    fn truncated_tail_yields_only_complete_frames(
        seed in 0u64..1_000_000,
        nframes in 1usize..8,
        cut_back in 1usize..64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bodies: Vec<Vec<u8>> = (0..nframes)
            .map(|_| {
                let len = rng.gen_range(1usize..100);
                (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
            })
            .collect();
        let wire = frame_stream(&bodies);
        let cut = wire.len().saturating_sub(cut_back % wire.len());
        let mut fb = FrameBuffer::new(1 << 16);
        let got = feed_in_chunks(&mut fb, &wire[..cut], &[]);
        // Every surfaced frame is a true prefix of the original sequence.
        prop_assert!(got.len() <= bodies.len());
        prop_assert_eq!(&got[..], &bodies[..got.len()]);
        prop_assert!(!fb.is_poisoned());
    }

    /// Garbage prefixes either stall (incomplete) or poison the buffer —
    /// `next_frame` never panics, never allocates past the cap, and a
    /// poisoned buffer stays rejected.
    #[test]
    fn garbage_never_corrupts_or_overallocates(
        garbage_w in proptest::collection::vec(0u32..256, 0..512),
        splits in proptest::collection::vec(0usize..512, 0..8),
    ) {
        let garbage: Vec<u8> = garbage_w.iter().map(|&b| b as u8).collect();
        let max = 1 << 12;
        let mut fb = FrameBuffer::new(max);
        let mut cuts: Vec<usize> = splits.iter().map(|&s| s % (garbage.len() + 1)).collect();
        cuts.push(0);
        cuts.push(garbage.len());
        cuts.sort_unstable();
        cuts.dedup();
        let mut poisoned = false;
        for w in cuts.windows(2) {
            fb.extend(&garbage[w[0]..w[1]]);
            loop {
                match fb.next_frame() {
                    Ok(Some(frame)) => prop_assert!(frame.len() <= max),
                    Ok(None) => break,
                    Err(_) => { poisoned = true; break; }
                }
            }
            if poisoned { break; }
        }
        if poisoned {
            prop_assert!(fb.is_poisoned());
            fb.extend(&[1, 2, 3]);
            prop_assert!(fb.next_frame().is_err(), "poison must be sticky");
        }
    }

    /// Zero-run packing round-trips arbitrary bytes exactly.
    #[test]
    fn zero_run_roundtrip(data_w in proptest::collection::vec(0u32..256, 0..2048)) {
        let data: Vec<u8> = data_w.iter().map(|&b| b as u8).collect();
        let mut packed = Vec::new();
        pack_zero_runs(&data, &mut packed);
        let mut unpacked = Vec::new();
        unpack_zero_runs(&packed, &mut unpacked, data.len()).unwrap();
        prop_assert_eq!(unpacked, data);
    }

    /// Unpacking arbitrary garbage never panics and never exceeds the
    /// caller's bound.
    #[test]
    fn zero_run_unpack_is_bounded(
        data_w in proptest::collection::vec(0u32..256, 0..512),
        max in 0usize..256,
    ) {
        let data: Vec<u8> = data_w.iter().map(|&b| b as u8).collect();
        let mut out = Vec::new();
        let _ = unpack_zero_runs(&data, &mut out, max);
        prop_assert!(out.len() <= max, "unpack exceeded its bound even on error");
    }
}
