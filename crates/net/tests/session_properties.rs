//! Property tests for the reliable-delivery session layer.
//!
//! The session endpoints are driven over the deterministic [`SimNetwork`]
//! under seeded drop/duplication/reordering/partition schedules. The
//! properties:
//!
//! * **Exactly-once, in-order** — for any healing schedule, every peer
//!   receives each payload exactly once, in per-sender send order.
//! * **No spurious retransmission** — on a fault-free network whose
//!   round trip fits inside `rto_base`, zero retransmissions happen.
//! * **Bounded retransmission** — retransmissions stay within a small
//!   multiple of the payload count even at 50% loss (exponential
//!   backoff, cumulative-ack pruning, selective-gap deferral).

use prcc_net::{
    DelayModel, FaultPlan, FaultSchedule, SessionConfig, SessionEndpoint, SessionFrame, SimNetwork,
};
use prcc_sharegraph::ReplicaId;
use proptest::prelude::*;

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}

fn cfg() -> SessionConfig {
    // Delays below are ≤ 50 ticks, so a 200-tick base RTO never fires
    // on a healthy round trip.
    SessionConfig {
        rto_base: 200,
        rto_max: 1600,
        jitter: 16,
        ack_delay: 0,
    }
}

/// Drives `n` endpoints over the network until quiescence (or the event
/// cap, to keep test bugs from hanging). Returns, per receiver, the
/// `(sender, payload)` stream in delivery order.
fn drive(
    net: &mut SimNetwork<SessionFrame<u64>>,
    eps: &mut [SessionEndpoint<u64>],
    max_events: usize,
) -> Vec<Vec<(ReplicaId, u64)>> {
    let mut delivered: Vec<Vec<(ReplicaId, u64)>> = vec![Vec::new(); eps.len()];
    for _ in 0..max_events {
        let t_net = net.peek_delivery_time();
        let t_sess = eps.iter().filter_map(|e| e.next_deadline()).min();
        let (deliver_first, t) = match (t_net, t_sess) {
            (None, None) => return delivered,
            (Some(tn), None) => (true, tn),
            (None, Some(ts)) => (false, ts),
            (Some(tn), Some(ts)) => (tn <= ts, tn.min(ts)),
        };
        let mut out: Vec<(ReplicaId, ReplicaId, SessionFrame<u64>)> = Vec::new();
        if deliver_first {
            let (t, env) = net.next_delivery().expect("peeked delivery");
            let dst = env.dst;
            let mut resp = Vec::new();
            for p in eps[dst.index()].on_frame(env.src, env.msg, t, &mut resp) {
                delivered[dst.index()].push((env.src, p));
            }
            out.extend(resp.into_iter().map(|(peer, f)| (dst, peer, f)));
        } else {
            net.advance_to(t);
            for (i, e) in eps.iter_mut().enumerate() {
                if e.next_deadline().is_some_and(|d| d <= t) {
                    let mut resp = Vec::new();
                    e.poll(t, &mut resp);
                    out.extend(resp.into_iter().map(|(peer, f)| (r(i as u32), peer, f)));
                }
            }
        }
        for (src, dst, f) in out {
            net.send(src, dst, f);
        }
    }
    panic!("event cap hit: session failed to quiesce");
}

proptest! {
    /// Exactly-once in-order delivery under probabilistic loss,
    /// duplication, *and* a scripted mid-run partition that heals.
    #[test]
    fn exactly_once_in_order_under_faults(
        seed in 0u64..1_000_000,
        n_msgs in 1usize..30,
        drop_i in 0usize..4,       // 0, 0.2, 0.35, 0.5
        dup_i in 0usize..3,        // 0, 0.2, 0.4
        partition in 0usize..2,
    ) {
        let partition = partition == 1;
        let drop_prob = [0.0, 0.2, 0.35, 0.5][drop_i];
        let duplicate_prob = [0.0, 0.2, 0.4][dup_i];
        let mut schedule = FaultSchedule::from_plan(FaultPlan {
            drop_prob,
            duplicate_prob,
            ..Default::default()
        });
        if partition {
            schedule = schedule.sever(r(0), r(1), 30, 400);
        }
        let mut net: SimNetwork<SessionFrame<u64>> =
            SimNetwork::new(DelayModel::Uniform { min: 1, max: 50 }, seed);
        net.set_schedule(schedule);
        let mut eps = vec![
            SessionEndpoint::new(r(0), cfg()),
            SessionEndpoint::new(r(1), cfg()),
        ];
        // Both directions at once: 0→1 and 1→0 streams interleave on the
        // same network.
        let mut now = 0;
        for k in 0..n_msgs as u64 {
            let f = eps[0].send(r(1), k, now);
            net.send(r(0), r(1), f);
            let g = eps[1].send(r(0), 1000 + k, now);
            net.send(r(1), r(0), g);
            now += 3;
            net.advance_to(now);
        }
        let delivered = drive(&mut net, &mut eps, 200_000);

        // Receiver 1 got exactly 0..n_msgs from sender 0, in order.
        let from0: Vec<u64> = delivered[1].iter()
            .filter(|(s, _)| *s == r(0)).map(|&(_, p)| p).collect();
        let from1: Vec<u64> = delivered[0].iter()
            .filter(|(s, _)| *s == r(1)).map(|&(_, p)| p).collect();
        prop_assert_eq!(from0, (0..n_msgs as u64).collect::<Vec<_>>());
        prop_assert_eq!(from1, (0..n_msgs as u64).map(|k| 1000 + k).collect::<Vec<_>>());
        prop_assert!(eps.iter().all(|e| e.is_idle()), "unacked frames remain");
        // Per-endpoint exactly-once counter agrees.
        prop_assert_eq!(eps[1].stats().delivered, n_msgs);
    }

    /// A fault-free network with round trips inside the base RTO incurs
    /// zero retransmissions and zero duplicate suppressions — the layer
    /// is pay-for-what-you-break.
    #[test]
    fn no_spurious_retransmits_when_fault_free(
        seed in 0u64..1_000_000,
        n_msgs in 1usize..40,
    ) {
        let mut net: SimNetwork<SessionFrame<u64>> =
            SimNetwork::new(DelayModel::Uniform { min: 1, max: 50 }, seed);
        let mut eps = vec![
            SessionEndpoint::new(r(0), cfg()),
            SessionEndpoint::new(r(1), cfg()),
        ];
        for k in 0..n_msgs as u64 {
            let f = eps[0].send(r(1), k, net.now());
            net.send(r(0), r(1), f);
        }
        let delivered = drive(&mut net, &mut eps, 100_000);
        prop_assert_eq!(delivered[1].len(), n_msgs);
        prop_assert_eq!(eps[0].stats().retransmits, 0, "spurious retransmission");
        prop_assert_eq!(eps[1].stats().dup_suppressed, 0);
    }

    /// Retransmission cost is bounded: even at 50% loss on data *and*
    /// acks, total retransmissions stay within a small multiple of the
    /// payload count.
    #[test]
    fn retransmits_bounded_under_heavy_loss(
        seed in 0u64..1_000_000,
        n_msgs in 1usize..25,
    ) {
        let mut net: SimNetwork<SessionFrame<u64>> =
            SimNetwork::new(DelayModel::Uniform { min: 1, max: 50 }, seed);
        net.set_faults(FaultPlan::dropping(0.5));
        let mut eps = vec![
            SessionEndpoint::new(r(0), cfg()),
            SessionEndpoint::new(r(1), cfg()),
        ];
        for k in 0..n_msgs as u64 {
            let f = eps[0].send(r(1), k, net.now());
            net.send(r(0), r(1), f);
        }
        let delivered = drive(&mut net, &mut eps, 400_000);
        prop_assert_eq!(delivered[1].len(), n_msgs);
        // Expected ~2 tries per frame at p=0.5 (geometric); 40× is a
        // loose deterministic ceiling covering ack losses and unlucky
        // seeds, while still catching a retransmit-storm regression.
        prop_assert!(
            eps[0].stats().retransmits <= 40 * n_msgs,
            "retransmit storm: {} for {} payloads",
            eps[0].stats().retransmits, n_msgs
        );
    }

    /// Crash/restart: the receiver loses its volatile state mid-stream
    /// and restarts from durable (delivered-prefix) state; catch-up must
    /// re-feed exactly the lost suffix — no loss, no double delivery.
    #[test]
    fn restart_catch_up_is_exactly_once(
        seed in 0u64..1_000_000,
        n_before in 1usize..15,
        n_after in 1usize..15,
        drop_i in 0usize..3,       // 0, 0.2, 0.4
    ) {
        let drop_prob = [0.0, 0.2, 0.4][drop_i];
        let mut net: SimNetwork<SessionFrame<u64>> =
            SimNetwork::new(DelayModel::Uniform { min: 1, max: 50 }, seed);
        net.set_faults(FaultPlan::dropping(drop_prob));
        let mut eps = vec![
            SessionEndpoint::new(r(0), cfg()),
            SessionEndpoint::new(r(1), cfg()),
        ];
        // Sender 0 keeps a durable outbox; receiver 1 durably logs its
        // in-order deliveries (what a recovery log would hold).
        let mut outbox: std::collections::HashMap<ReplicaId, Vec<u64>> =
            std::collections::HashMap::new();
        for k in 0..n_before as u64 {
            outbox.entry(r(1)).or_default().push(k);
            let f = eps[0].send(r(1), k, net.now());
            net.send(r(0), r(1), f);
        }
        let mut delivered = drive(&mut net, &mut eps, 200_000);
        let durable_prefix = delivered[1].len() as u64;

        // Crash receiver 1: fresh endpoint, rebuilt from durable state.
        let t = net.now() + 100;
        net.advance_to(t);
        let mut fresh = SessionEndpoint::new(r(1), cfg());
        let mut out = Vec::new();
        let mut cums = std::collections::HashMap::new();
        cums.insert(r(0), durable_prefix);
        fresh.restart(&std::collections::HashMap::new(), &cums, t, &mut out);
        for (dst, f) in out {
            net.send(r(1), dst, f);
        }
        eps[1] = fresh;

        // More traffic after the restart.
        for k in 0..n_after as u64 {
            let f = eps[0].send(r(1), n_before as u64 + k, net.now());
            net.send(r(0), r(1), f);
        }
        let tail = drive(&mut net, &mut eps, 200_000);
        delivered[1].extend(tail[1].iter().copied());

        let got: Vec<u64> = delivered[1].iter().map(|&(_, p)| p).collect();
        let want: Vec<u64> = (0..(n_before + n_after) as u64).collect();
        prop_assert_eq!(got, want, "crash+catch-up broke exactly-once in-order");
        prop_assert!(eps[0].is_idle());
    }
}
