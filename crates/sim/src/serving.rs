//! Serving-tier scenario runner: drive Zipf-skewed open-loop client
//! sessions through a [`ServingTier`] over a [`ThreadedCluster`], measure
//! client-visible latency and aggregate throughput, and verify both the
//! causal-consistency and session-guarantee verdicts from the trace.
//!
//! The same generated op streams can be replayed against the lockstep
//! [`ClientServerSystem`](prcc_core::ClientServerSystem) with identical
//! routing ([`run_serving_oracle`]) — the differential oracle for the
//! threaded tier.

use prcc_checker::HbGraph;
use prcc_core::client_server::ClientServerSystem;
use prcc_core::serving::{route, Collected, ServingConfig, ServingTier};
use prcc_core::{ClusterConfig, StoreMode, ThreadedCluster, Value};
use prcc_net::{DelayModel, FaultSchedule, SessionConfig, TICK};
use prcc_sharegraph::{AugmentedShareGraph, ClientAssignment, ClientId, RegisterId, ShareGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::time::Instant;

use crate::zipf::Zipf;

/// Configuration of a serving-tier scenario.
#[derive(Debug, Clone)]
pub struct ServingScenarioConfig {
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Ops issued per session.
    pub ops_per_session: usize,
    /// Fraction of ops that are writes.
    pub write_ratio: f64,
    /// Zipf skew of register popularity (0 = uniform).
    pub zipf_theta: f64,
    /// Driver threads; sessions are partitioned round-robin across them
    /// (a session is always driven by one worker, preserving its service
    /// order).
    pub workers: usize,
    /// Workload / cluster seed.
    pub seed: u64,
    /// Ops between forced write-buffer flushes per worker — bounds the
    /// coalescing residency of a buffered write.
    pub flush_quantum: usize,
    /// Tier tuning.
    pub serving: ServingConfig,
    /// Scripted faults driven against the live cluster: drops and
    /// duplicates via the embedded plan, link outages, and crash/restart
    /// windows. Default: benign.
    pub faults: FaultSchedule,
    /// Reliable-delivery session layer (required for convergence under
    /// drops, outages, or crash windows). `None` with a non-benign fault
    /// schedule auto-arms a fast configuration tuned to the runner's
    /// fixed 1-tick delay model.
    pub session: Option<SessionConfig>,
    /// Arms per-replica durable recovery logs with this compaction
    /// interval — required when `faults` scripts crashes.
    pub durability: Option<usize>,
    /// Snapshot publish mode: sharded copy-on-write (default) or the
    /// clone-the-world differential oracle.
    pub store: StoreMode,
}

impl Default for ServingScenarioConfig {
    fn default() -> Self {
        ServingScenarioConfig {
            sessions: 64,
            ops_per_session: 50,
            write_ratio: 0.1,
            zipf_theta: 1.0,
            workers: 4,
            seed: 0,
            flush_quantum: 256,
            serving: ServingConfig::default(),
            faults: FaultSchedule::default(),
            session: None,
            durability: None,
            store: StoreMode::default(),
        }
    }
}

/// One generated session op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOp {
    /// Write this register with this value.
    Write(RegisterId, Value),
    /// Read this register.
    Read(RegisterId),
}

/// Generates every session's op stream deterministically from the
/// config: register popularity is Zipf-skewed over the whole register
/// space, and each session's stream is seeded independently, so the
/// threaded tier and the lockstep oracle replay *identical* workloads.
pub fn generate_session_ops(
    graph: &ShareGraph,
    cfg: &ServingScenarioConfig,
) -> Vec<Vec<SessionOp>> {
    let n = graph.placement().num_registers();
    let zipf = Zipf::new(n, cfg.zipf_theta);
    (0..cfg.sessions as u64)
        .map(|sid| {
            let mut rng =
                StdRng::seed_from_u64(cfg.seed ^ (sid.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            (0..cfg.ops_per_session as u64)
                .map(|k| {
                    let x = RegisterId::new(zipf.sample(&mut rng) as u32);
                    if rng.gen_bool(cfg.write_ratio.clamp(0.0, 1.0)) {
                        SessionOp::Write(x, Value::from(sid * 1_000_000_000 + k))
                    } else {
                        SessionOp::Read(x)
                    }
                })
                .collect()
        })
        .collect()
}

/// Measured outcome of a threaded serving-tier run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRunReport {
    /// Sessions driven.
    pub sessions: usize,
    /// Total client ops served.
    pub ops: u64,
    /// Total client ops attempted (served + shed + rejected + timed
    /// out). Equals `ops` on a fault-free run.
    pub attempted: u64,
    /// Attempted ops that were not acked.
    pub failed: u64,
    /// `ops / attempted` — the serving tier's availability under the
    /// scripted fault storm.
    pub availability: f64,
    /// Wall-clock driving time in seconds (submission through the last
    /// write completion).
    pub elapsed_secs: f64,
    /// Aggregate client ops per second.
    pub ops_per_sec: f64,
    /// Client-visible read latency, median (ns).
    pub read_p50_ns: u64,
    /// Client-visible read latency, 99th percentile (ns).
    pub read_p99_ns: u64,
    /// Client-visible write latency, median (ns).
    pub write_p50_ns: u64,
    /// Client-visible write latency, 99th percentile (ns).
    pub write_p99_ns: u64,
    /// Failover latency (op entry to ack on a non-preferred replica),
    /// median (ns). Zero when nothing failed over.
    pub failover_p50_ns: u64,
    /// Failover latency, maximum (ns).
    pub failover_max_ns: u64,
    /// Tier counters (routing, guarantee-block, and resilience stats).
    pub stats: prcc_core::ServingStats,
    /// Causal-consistency verdict of the cluster trace.
    pub consistent: bool,
    /// Session-guarantee violations found by replaying the served-op log
    /// against the recomputed happened-before relation (must be 0).
    pub session_violations: usize,
    /// Acked writes missing from some holder's converged final store
    /// (must be 0: acked ⇒ durable ⇒ survives).
    pub acked_write_loss: usize,
    /// Completed crash/restart cycles during the run.
    pub restarts: usize,
}

impl fmt::Display for ServingRunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sessions, {}/{} ops (availability {:.4}) in {:.2}s = {:.0} ops/s, \
             read p50/p99 {}µs/{}µs, write p50/p99 {}µs/{}µs, local/forwarded {}/{}, \
             blocks ryw={} mr={}, failovers={} shed={} timeouts={} restarts={}, \
             consistent={}, session_violations={}, acked_write_loss={}",
            self.sessions,
            self.ops,
            self.attempted,
            self.availability,
            self.elapsed_secs,
            self.ops_per_sec,
            self.read_p50_ns / 1_000,
            self.read_p99_ns / 1_000,
            self.write_p50_ns / 1_000,
            self.write_p99_ns / 1_000,
            self.stats.ops_routed_local,
            self.stats.ops_forwarded,
            self.stats.ryw_blocks,
            self.stats.mr_blocks,
            self.stats.failovers,
            self.stats.ops_shed,
            self.stats.op_timeouts,
            self.restarts,
            self.consistent,
            self.session_violations,
            self.acked_write_loss
        )
    }
}

/// Drives the generated workload through a [`ServingTier`] over a fresh
/// [`ThreadedCluster`] — with any scripted fault storm live underneath —
/// and reports throughput, latency, availability, and verdicts.
///
/// Under faults, individual ops may degrade to typed errors; the run
/// keeps going and the report carries the availability split. After the
/// drivers finish, the runner waits out the schedule's horizon (so
/// scripted restarts fire), settles the cluster, and checks three things
/// differentially: the causal trace, the session-guarantee log of acked
/// ops, and that every acked write survived into each holder's final
/// store.
///
/// # Panics
///
/// Panics if a worker thread dies.
pub fn run_serving_scenario(graph: &ShareGraph, cfg: &ServingScenarioConfig) -> ServingRunReport {
    let ops = generate_session_ops(graph, cfg);
    // A fault storm without a session layer can strand an update whose
    // causal predecessor was lost in a crash window: the orphan parks in
    // `pending` forever and settle never converges. The runner always
    // drives `DelayModel::Fixed(1)`, so a tight retransmission timer is
    // safe — arm one whenever faults are live and the caller didn't.
    let session = cfg.session.or_else(|| {
        (!cfg.faults.is_benign()).then_some(SessionConfig {
            rto_base: 10,
            rto_max: 80,
            jitter: 3,
            ack_delay: 0,
        })
    });
    let cluster = ThreadedCluster::with_config(
        graph.clone(),
        DelayModel::Fixed(1),
        cfg.seed,
        ClusterConfig {
            schedule: cfg.faults.clone(),
            session,
            durability: cfg.durability,
            store: cfg.store,
            ..ClusterConfig::default()
        },
    );
    let epoch = Instant::now();
    let tier = ServingTier::new(&cluster, cfg.serving.clone());
    let workers = cfg.workers.max(1);
    let start = Instant::now();
    let (mut collected, attempted) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let tier = &tier;
                let ops = &ops;
                std::thread::Builder::new()
                    .name(format!("serve-{w}"))
                    .spawn_scoped(s, move || {
                        let mut worker = tier.worker();
                        let mut since_flush = 0usize;
                        let mut attempted = 0u64;
                        // Round-major on purpose: op k of every owned session
                        // before op k+1 of any, so sessions interleave.
                        #[allow(clippy::needless_range_loop)]
                        for k in 0..cfg.ops_per_session {
                            let mut sid = w;
                            while sid < cfg.sessions {
                                attempted += 1;
                                // A typed failure (shed, crashed, timed out)
                                // fails that op only; the session keeps going.
                                match &ops[sid][k] {
                                    SessionOp::Write(x, v) => {
                                        let _ = worker.write(sid as u64, *x, v.clone());
                                    }
                                    SessionOp::Read(x) => {
                                        let _ = worker.read(sid as u64, *x, k as u64);
                                    }
                                }
                                since_flush += 1;
                                if since_flush >= cfg.flush_quantum.max(1) {
                                    worker.flush();
                                    worker.poll();
                                    since_flush = 0;
                                }
                                sid += workers;
                            }
                        }
                        (worker.finish(), attempted)
                    })
                    .expect("spawn serving worker thread")
            })
            .collect();
        let mut all = Collected::default();
        let mut attempted = 0u64;
        for h in handles {
            let (c, a) = h.join().expect("serving worker");
            all.absorb(c);
            attempted += a;
        }
        (all, attempted)
    });
    let elapsed = start.elapsed();
    // Scheduled restarts may lie beyond the workload: wait out the
    // horizon so every crash window closes before convergence is judged.
    let horizon = epoch + TICK * cfg.faults.horizon().min(u32::MAX as u64) as u32;
    if let Some(rem) = horizon.checked_duration_since(Instant::now()) {
        std::thread::sleep(rem + TICK * 50);
    }
    cluster.settle();
    let trace = cluster.trace_snapshot();
    let hb = HbGraph::build(&trace);
    let check = prcc_checker::check_with_hb(&trace, graph.placement(), &hb);
    let violations = prcc_checker::check_sessions_with_hb(&hb, &collected.events);
    // Durability gate: acked ⇒ survives into every holder's final store.
    let placement = graph.placement();
    let acked = prcc_checker::acked_writes(&collected.events);
    let mut acked_write_loss = 0usize;
    for &(uid, x) in &acked {
        for &h in placement.holders(x) {
            if !cluster.store_snapshot(h).covers(uid) {
                acked_write_loss += 1;
            }
        }
    }
    let secs = elapsed.as_secs_f64();
    let failed = attempted - collected.ops;
    ServingRunReport {
        sessions: cfg.sessions,
        ops: collected.ops,
        attempted,
        failed,
        availability: if attempted > 0 {
            collected.ops as f64 / attempted as f64
        } else {
            1.0
        },
        elapsed_secs: secs,
        ops_per_sec: if secs > 0.0 {
            collected.ops as f64 / secs
        } else {
            0.0
        },
        read_p50_ns: collected.read_lat.p50(),
        read_p99_ns: collected.read_lat.p99(),
        write_p50_ns: collected.write_lat.p50(),
        write_p99_ns: collected.write_lat.p99(),
        failover_p50_ns: collected.failover_lat.p50(),
        failover_max_ns: collected.failover_lat.max(),
        stats: tier.stats(),
        consistent: check.is_consistent(),
        session_violations: violations.len(),
        acked_write_loss,
        restarts: cluster.total_restarts(),
    }
}

/// Verdicts of the lockstep oracle replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleReport {
    /// Causal-consistency verdict of the oracle's server trace.
    pub consistent: bool,
    /// Session-guarantee violations in the oracle's served-op log.
    pub session_violations: usize,
    /// Requests still blocked at the end (must be 0).
    pub blocked: usize,
}

/// Replays the *same* generated workload through the lockstep
/// [`ClientServerSystem`], using the tier's exact routing rule
/// ([`route`]): ops land on the first attach replica storing the
/// register, detouring to a holder otherwise. Clients are attached to
/// every replica so the detour stays within the oracle's model. The
/// differential claim: on the same seeded workload, the threaded tier
/// and the oracle must both come back clean.
pub fn run_serving_oracle(graph: &ShareGraph, cfg: &ServingScenarioConfig) -> OracleReport {
    let ops = generate_session_ops(graph, cfg);
    let mut clients = ClientAssignment::new(graph.num_replicas());
    for sid in 0..cfg.sessions as u32 {
        clients.assign(ClientId::new(sid), graph.replicas().collect::<Vec<_>>());
    }
    let aug = AugmentedShareGraph::new(graph.clone(), clients);
    let mut sys = ClientServerSystem::new(aug, DelayModel::Fixed(1), cfg.seed);
    // Round-major to mirror the threaded run's interleaving.
    #[allow(clippy::needless_range_loop)]
    for k in 0..cfg.ops_per_session {
        for sid in 0..cfg.sessions {
            let c = ClientId::new(sid as u32);
            let (target, _) = match &ops[sid][k] {
                SessionOp::Write(x, _) | SessionOp::Read(x) => {
                    route(graph, sid as u64, cfg.serving.attach_span, *x)
                }
            };
            match &ops[sid][k] {
                SessionOp::Write(x, v) => {
                    sys.write(c, target, *x, v.clone());
                }
                SessionOp::Read(x) => {
                    sys.read(c, target, *x);
                }
            }
        }
        // Let the network make progress between rounds.
        sys.step();
    }
    sys.run_to_quiescence();
    OracleReport {
        consistent: sys.check().is_consistent(),
        session_violations: sys.check_sessions().len(),
        blocked: sys.blocked_requests(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::topology;

    #[test]
    fn op_generation_is_deterministic() {
        let g = topology::clique_full(4, 8);
        let cfg = ServingScenarioConfig {
            sessions: 8,
            ops_per_session: 30,
            seed: 42,
            ..Default::default()
        };
        assert_eq!(
            generate_session_ops(&g, &cfg),
            generate_session_ops(&g, &cfg)
        );
        let other = generate_session_ops(
            &g,
            &ServingScenarioConfig {
                seed: 43,
                ..cfg.clone()
            },
        );
        assert_ne!(generate_session_ops(&g, &cfg), other);
    }

    #[test]
    fn zipf_skew_concentrates_ops() {
        let g = topology::clique_full(4, 16);
        let cfg = ServingScenarioConfig {
            sessions: 32,
            ops_per_session: 100,
            zipf_theta: 1.0,
            write_ratio: 0.0,
            seed: 7,
            ..Default::default()
        };
        let ops = generate_session_ops(&g, &cfg);
        let mut counts = [0usize; 16];
        for stream in &ops {
            for op in stream {
                if let SessionOp::Read(x) = op {
                    counts[x.index()] += 1;
                }
            }
        }
        // Rank 1 must dominate the tail rank under s = 1.0.
        assert!(
            counts[0] > 4 * counts[15],
            "no skew: head={} tail={}",
            counts[0],
            counts[15]
        );
    }

    #[test]
    fn threaded_serving_run_is_clean() {
        let report = run_serving_scenario(
            &topology::clique_full(4, 4),
            &ServingScenarioConfig {
                sessions: 32,
                ops_per_session: 40,
                workers: 4,
                write_ratio: 0.2,
                seed: 5,
                ..Default::default()
            },
        );
        assert!(report.consistent, "{report}");
        assert_eq!(report.session_violations, 0, "{report}");
        assert_eq!(report.ops, 32 * 40);
        assert!(report.ops_per_sec > 0.0);
    }

    #[test]
    fn partial_replication_routes_and_stays_clean() {
        let report = run_serving_scenario(
            &topology::ring(6),
            &ServingScenarioConfig {
                sessions: 24,
                ops_per_session: 40,
                workers: 3,
                write_ratio: 0.25,
                zipf_theta: 0.5,
                seed: 9,
                ..Default::default()
            },
        );
        assert!(report.consistent, "{report}");
        assert_eq!(report.session_violations, 0, "{report}");
        // On a ring most registers are outside a 2-replica attach window:
        // the forwarded path must actually be exercised.
        assert!(report.stats.ops_forwarded > 0, "{report}");
        assert!(report.stats.ops_routed_local > 0, "{report}");
    }
}
