//! Multi-seed aggregation: run the same scenario across seeds and report
//! mean / min / max of the headline metrics — the defensible form of
//! every experimental claim.

use crate::scenario::{run_scenario, RunReport, ScenarioConfig};
use prcc_sharegraph::ShareGraph;
use std::fmt;

/// Mean / min / max of one metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spread {
    /// Mean across seeds.
    pub mean: f64,
    /// Minimum across seeds.
    pub min: f64,
    /// Maximum across seeds.
    pub max: f64,
}

impl Spread {
    fn of(values: &[f64]) -> Spread {
        let n = values.len().max(1) as f64;
        Spread {
            mean: values.iter().sum::<f64>() / n,
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl fmt::Display for Spread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} [{:.1}, {:.1}]", self.mean, self.min, self.max)
    }
}

/// Aggregated results over several seeds of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateReport {
    /// Number of seeds run.
    pub runs: usize,
    /// Seeds on which the checker found violations.
    pub inconsistent_runs: usize,
    /// Total messages (data + meta).
    pub messages: Spread,
    /// Metadata bytes.
    pub metadata_bytes: Spread,
    /// Mean visibility latency.
    pub mean_visibility: Spread,
    /// p99 visibility latency.
    pub p99_visibility: Spread,
    /// Mean staleness.
    pub mean_staleness: Spread,
    /// The individual reports.
    pub reports: Vec<RunReport>,
}

impl AggregateReport {
    /// True if every seed was causally consistent.
    pub fn all_consistent(&self) -> bool {
        self.inconsistent_runs == 0
    }
}

impl fmt::Display for AggregateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs ({} inconsistent): msgs {}, meta bytes {}, vis {} / p99 {}",
            self.runs,
            self.inconsistent_runs,
            self.messages,
            self.metadata_bytes,
            self.mean_visibility,
            self.p99_visibility
        )
    }
}

/// Runs `cfg` over `g` once per seed, varying both workload and network
/// seeds together.
pub fn run_many<I: IntoIterator<Item = u64>>(
    g: &ShareGraph,
    cfg: &ScenarioConfig,
    seeds: I,
) -> AggregateReport {
    let mut reports = Vec::new();
    for seed in seeds {
        let mut c = cfg.clone();
        c.workload.seed = seed;
        c.net_seed = seed;
        reports.push(run_scenario(g, &c));
    }
    let f = |sel: fn(&RunReport) -> f64| -> Spread {
        Spread::of(&reports.iter().map(sel).collect::<Vec<_>>())
    };
    AggregateReport {
        runs: reports.len(),
        inconsistent_runs: reports.iter().filter(|r| !r.consistent).count(),
        messages: f(|r| (r.data_messages + r.meta_messages) as f64),
        metadata_bytes: f(|r| r.metadata_bytes as f64),
        mean_visibility: f(|r| r.mean_visibility),
        p99_visibility: f(|r| r.p99_visibility as f64),
        mean_staleness: f(|r| r.mean_staleness),
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadConfig;
    use prcc_sharegraph::topology;

    #[test]
    fn aggregates_across_seeds() {
        let g = topology::ring(4);
        let agg = run_many(
            &g,
            &ScenarioConfig {
                workload: WorkloadConfig {
                    writes_per_replica: 10,
                    zipf_theta: 0.5,
                    seed: 0,
                },
                ..Default::default()
            },
            0..5,
        );
        assert_eq!(agg.runs, 5);
        assert!(agg.all_consistent(), "{agg}");
        assert!(agg.messages.mean > 0.0);
        assert!(agg.messages.min <= agg.messages.mean);
        assert!(agg.messages.mean <= agg.messages.max);
        assert_eq!(agg.reports.len(), 5);
        // Different seeds give different visibilities (spread non-trivial).
        assert!(agg.mean_visibility.max >= agg.mean_visibility.min);
    }

    #[test]
    fn spread_math() {
        let s = Spread::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(s.to_string().contains("[1.0, 3.0]"));
    }
}
