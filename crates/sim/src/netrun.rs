//! Differential harness for real-socket cluster runs.
//!
//! The socket transport is gated on a **differential equivalence**: the
//! same seeded workload driven through a TCP-backed cluster and through
//! the in-process [`ThreadedCluster`] must end in *byte-identical*
//! stores on every replica, with identical checker verdicts. Causal
//! memory does not converge under concurrent writes to one register —
//! different delivery interleavings legitimately end in different final
//! values — so the differential workload designates a **single writer
//! per register** ([`designated_writer`]): per-issuer updates apply in
//! issue order everywhere, which makes the final store a pure function
//! of the workload, independent of network timing. Any divergence is
//! then a transport bug, never scheduling noise.
//!
//! For multi-process runs (`prcc-node`), each node exports its event log
//! ([`NodeEvent`]) and the driver reassembles a global [`Trace`] with
//! [`merge_node_events`] — a topological merge that preserves each
//! node's own event order and places every apply after its issue, since
//! wall clocks are not comparable across processes.

use prcc_checker::Trace;
use prcc_core::{NodeEvent, ReplicaView, ThreadedCluster, Value};
use prcc_sharegraph::{RegisterId, ReplicaId, ShareGraph};
use std::collections::HashSet;

/// The register's one designated writer: a deterministic pick among its
/// holders (`holders(x)[x.index() mod |holders|]`), so every process
/// derives the same assignment from the shared graph.
pub fn designated_writer(g: &ShareGraph, x: RegisterId) -> ReplicaId {
    let holders = g.placement().holders(x);
    holders[x.index() % holders.len()]
}

/// The deterministic value of `x`'s write in `round` — register and
/// round packed so every value in the run is distinct.
pub fn write_value(x: RegisterId, round: u64) -> Value {
    Value::U64((u64::from(x.raw()) << 32) | round)
}

/// A pure seeded single-writer workload: every register is written
/// `rounds` times by its designated writer, rounds interleaved across
/// nodes.
#[derive(Debug, Clone)]
pub struct NetWorkload {
    /// `per_node[i]` — the registers node `i` writes each round, in
    /// issue order.
    per_node: Vec<Vec<RegisterId>>,
    /// Writes per register.
    rounds: u64,
}

impl NetWorkload {
    /// Derives the workload for `g` — a pure function of the graph, so
    /// driver and nodes need not exchange it.
    pub fn new(g: &ShareGraph, rounds: u64) -> Self {
        let mut per_node = vec![Vec::new(); g.num_replicas()];
        for idx in 0..g.placement().num_registers() {
            let x = RegisterId::new(idx as u32);
            per_node[designated_writer(g, x).index()].push(x);
        }
        NetWorkload { per_node, rounds }
    }

    /// Writes per register.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The registers node `i` writes each round, in issue order.
    pub fn registers_of(&self, i: ReplicaId) -> &[RegisterId] {
        &self.per_node[i.index()]
    }

    /// Total writes the whole run issues.
    pub fn total_writes(&self) -> usize {
        self.per_node.iter().map(Vec::len).sum::<usize>() * self.rounds as usize
    }

    /// How many remote applies `node` must observe at quiescence: one
    /// per round per stored register whose designated writer is someone
    /// else. Each node computes this locally from the shared graph — the
    /// multi-process quiescence condition needs no global counter.
    pub fn expected_applies(&self, g: &ShareGraph, node: ReplicaId) -> usize {
        g.placement()
            .registers_of(node)
            .iter()
            .filter(|&x| designated_writer(g, x) != node)
            .count()
            * self.rounds as usize
    }

    /// Drives the full workload through `cluster` from this thread:
    /// rounds outermost, nodes round-robin within a round, each node's
    /// registers in schedule order — per-node issue order (the only
    /// order that matters for determinism) is identical on every run.
    pub fn drive(&self, cluster: &ThreadedCluster) {
        for round in 0..self.rounds {
            for (i, regs) in self.per_node.iter().enumerate() {
                let r = ReplicaId::new(i as u32);
                for &x in regs {
                    cluster.write(r, x, write_value(x, round));
                }
            }
        }
    }
}

/// Canonical serialization of a replica's final state: one line per
/// register, sorted, value and provenance included. Two runs are
/// store-identical iff these lines are identical.
pub fn store_lines(view: &ReplicaView) -> Vec<String> {
    let mut lines: Vec<String> = view
        .store()
        .into_iter()
        .map(|(x, v)| {
            let src = view
                .source_of(x)
                .map(|u| format!("{}:{}", u.issuer.raw(), u.seq))
                .unwrap_or_else(|| "-".into());
            format!("{} {} {}", x.raw(), value_repr(&v), src)
        })
        .collect();
    lines.sort();
    lines
}

fn value_repr(v: &Value) -> String {
    match v {
        Value::U64(n) => format!("u{n}"),
        Value::Str(s) => format!("s{}", s.escape_default()),
        Value::Bytes(b) => {
            let hex: String = b.iter().map(|byte| format!("{byte:02x}")).collect();
            format!("b{hex}")
        }
    }
}

/// FNV-1a over the canonical store lines — the compact fingerprint nodes
/// report to the multi-process driver.
pub fn store_fingerprint(view: &ReplicaView) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in store_lines(view) {
        for &b in line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Reassembles per-node event logs into one global [`Trace`]:
/// round-robin over the nodes, always preserving each node's own order,
/// emitting an apply only once its issue is placed. Cross-process
/// clocks are incomparable, so *any* interleaving consistent with those
/// two constraints reproduces exactly the per-replica histories the
/// causal-consistency checker inspects.
///
/// # Panics
///
/// Panics if some apply's issue never appears in any log (a corrupt
/// report — every applied update was issued somewhere).
pub fn merge_node_events(logs: &[Vec<NodeEvent>]) -> Trace {
    let mut pos = vec![0usize; logs.len()];
    let mut placed: HashSet<prcc_checker::UpdateId> = HashSet::new();
    let mut trace = Trace::new();
    let total: usize = logs.iter().map(Vec::len).sum();
    let mut done = 0usize;
    while done < total {
        let mut progressed = false;
        for (i, log) in logs.iter().enumerate() {
            while pos[i] < log.len() {
                match log[pos[i]] {
                    NodeEvent::Issue { id, register } => {
                        trace.record_issue_with_id(id, register);
                        placed.insert(id);
                    }
                    NodeEvent::Apply { id } => {
                        if !placed.contains(&id) {
                            break; // this node waits for the issuer's log
                        }
                        trace.record_apply(id, ReplicaId::new(i as u32));
                    }
                }
                pos[i] += 1;
                done += 1;
                progressed = true;
            }
        }
        assert!(
            progressed,
            "node event logs contain an apply whose issue never appears"
        );
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_checker::{check, UpdateId};
    use prcc_sharegraph::topology;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn designated_writer_is_a_holder_and_stable() {
        let g = topology::ring(6);
        for idx in 0..g.placement().num_registers() {
            let reg = x(idx as u32);
            let w = designated_writer(&g, reg);
            assert!(g.placement().holders(reg).contains(&w));
            assert_eq!(w, designated_writer(&g, reg), "must be deterministic");
        }
    }

    #[test]
    fn workload_counts_are_consistent() {
        let g = topology::ring(5);
        let w = NetWorkload::new(&g, 4);
        assert_eq!(w.total_writes(), g.placement().num_registers() * 4);
        // Every expected apply corresponds to exactly one (register,
        // holder≠writer) pair per round.
        let total_applies: usize = g.replicas().map(|i| w.expected_applies(&g, i)).sum();
        let pairs: usize = (0..g.placement().num_registers())
            .map(|i| g.placement().holders(x(i as u32)).len() - 1)
            .sum();
        assert_eq!(total_applies, pairs * 4);
    }

    #[test]
    fn merge_reorders_applies_after_issues() {
        // Node 0's log starts with an apply of node 1's update — the
        // round-robin merge must hold it back until node 1's issue is
        // placed (logs are indexed by replica id, and node 0 is visited
        // first).
        let u = UpdateId {
            issuer: r(1),
            seq: 0,
        };
        let logs = [
            vec![NodeEvent::Apply { id: u }],
            vec![NodeEvent::Issue {
                id: u,
                register: x(0),
            }],
        ];
        let trace = merge_node_events(&logs);
        assert_eq!(trace.num_updates(), 1);
        let g = topology::path(2);
        assert!(check(&trace, g.placement()).is_consistent());
    }

    #[test]
    #[should_panic(expected = "issue never appears")]
    fn merge_rejects_orphan_apply() {
        let u = UpdateId {
            issuer: r(0),
            seq: 7,
        };
        merge_node_events(&[vec![NodeEvent::Apply { id: u }]]);
    }

    #[test]
    fn store_lines_distinguish_values_and_sources() {
        let g = topology::path(2);
        let wl = NetWorkload::new(&g, 3);
        let cluster = ThreadedCluster::new(g, prcc_net::DelayModel::Fixed(0), 1);
        wl.drive(&cluster);
        cluster.settle();
        let a = cluster.store_snapshot(r(0));
        let b = cluster.store_snapshot(r(1));
        assert_eq!(
            store_lines(&a),
            store_lines(&b),
            "single-writer runs converge"
        );
        assert_eq!(store_fingerprint(&a), store_fingerprint(&b));
    }
}
