//! Simulation harness for the PRCC experiments: workload generation and
//! scenario running.
//!
//! * [`zipf`] — a seeded Zipf sampler;
//! * [`workload`] — schedules of client writes over a share graph;
//! * [`scenario`] — drive a workload through a
//!   [`System`](prcc_core::System) and measure messages, metadata bytes,
//!   latencies, and consistency.
//!
//! # Examples
//!
//! ```
//! use prcc_sim::scenario::{run_scenario, ScenarioConfig};
//! use prcc_sharegraph::topology;
//!
//! let g = topology::ring(4);
//! let report = run_scenario(&g, &ScenarioConfig::default());
//! assert!(report.consistent);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod client_scenario;
pub mod netrun;
pub mod scenario;
pub mod serving;
pub mod workload;
pub mod zipf;

pub use aggregate::{run_many, AggregateReport, Spread};
pub use client_scenario::{run_client_scenario, ClientRunReport, ClientScenarioConfig};
pub use netrun::{
    designated_writer, merge_node_events, store_fingerprint, store_lines, write_value, NetWorkload,
};
pub use scenario::{run_head_to_head, run_scenario, RunReport, ScenarioConfig};
pub use serving::{
    generate_session_ops, run_serving_oracle, run_serving_scenario, OracleReport, ServingRunReport,
    ServingScenarioConfig, SessionOp,
};
pub use workload::{Op, Workload, WorkloadConfig};
