//! Client-server scenario runner (experiment E9's engine): drive client
//! sessions over a [`ClientServerSystem`] and measure request service,
//! client metadata sizes, and consistency.

use prcc_core::client_server::ClientServerSystem;
use prcc_core::Value;
use prcc_net::DelayModel;
use prcc_sharegraph::{
    AugmentedShareGraph, ClientAssignment, ClientId, RegisterId, ReplicaId, ShareGraph,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Configuration of a client-server scenario.
#[derive(Debug, Clone)]
pub struct ClientScenarioConfig {
    /// Operations per client.
    pub ops_per_client: usize,
    /// Fraction of operations that are writes (rest are reads).
    pub write_ratio: f64,
    /// Network delay model.
    pub delay: DelayModel,
    /// RNG / network seed.
    pub seed: u64,
}

impl Default for ClientScenarioConfig {
    fn default() -> Self {
        ClientScenarioConfig {
            ops_per_client: 20,
            write_ratio: 0.5,
            delay: DelayModel::default(),
            seed: 0,
        }
    }
}

/// Measured outcome of a client-server run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientRunReport {
    /// Total writes served.
    pub writes: usize,
    /// Total reads served.
    pub reads: usize,
    /// Requests still blocked at the end (should be 0).
    pub blocked: usize,
    /// Max client-timestamp counters across clients.
    pub client_counters_max: usize,
    /// Causal-consistency verdict of the server-side trace.
    pub consistent: bool,
}

impl fmt::Display for ClientRunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} writes, {} reads, {} blocked, client counters ≤ {}, consistent={}",
            self.writes, self.reads, self.blocked, self.client_counters_max, self.consistent
        )
    }
}

/// Runs a randomized session workload: each client repeatedly picks one
/// of its replicas and a register stored there, and reads or writes it.
///
/// # Panics
///
/// A client's attachment menu: each reachable replica with its registers.
type ReplicaMenu = Vec<(ReplicaId, Vec<RegisterId>)>;

/// Panics if a client has no replica with registers.
pub fn run_client_scenario(
    graph: &ShareGraph,
    clients: &ClientAssignment,
    cfg: &ClientScenarioConfig,
) -> ClientRunReport {
    let aug = AugmentedShareGraph::new(graph.clone(), clients.clone());
    let mut sys = ClientServerSystem::new(aug, cfg.delay.clone(), cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Per-client menu: (replica, registers).
    let menus: Vec<(ClientId, ReplicaMenu)> = clients
        .clients()
        .iter()
        .map(|(c, rs)| {
            let menu = rs
                .iter()
                .map(|&r| {
                    let regs: Vec<RegisterId> = graph.placement().registers_of(r).iter().collect();
                    (r, regs)
                })
                .filter(|(_, regs)| !regs.is_empty())
                .collect::<Vec<_>>();
            (*c, menu)
        })
        .collect();

    let mut writes = 0;
    let mut reads = 0;
    let mut value = 0u64;
    for round in 0..cfg.ops_per_client {
        for (c, menu) in &menus {
            assert!(!menu.is_empty(), "client {c} has no usable replicas");
            let (replica, regs) = menu.choose(&mut rng).expect("non-empty menu");
            let reg = *regs.choose(&mut rng).expect("non-empty registers");
            if rng.gen_bool(cfg.write_ratio.clamp(0.0, 1.0)) {
                sys.write(*c, *replica, reg, Value::from(value));
                value += 1;
                writes += 1;
            } else {
                sys.read(*c, *replica, reg);
                reads += 1;
            }
        }
        // Let the network make progress between rounds.
        if round % 2 == 0 {
            sys.step();
        }
    }
    sys.run_to_quiescence();

    let client_counters_max = clients
        .clients()
        .iter()
        .map(|(c, _)| sys.client_timestamp(*c).num_counters())
        .max()
        .unwrap_or(0);
    ClientRunReport {
        writes,
        reads,
        blocked: sys.blocked_requests(),
        client_counters_max,
        consistent: sys.check().is_consistent(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::topology;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    #[test]
    fn spanning_clients_stay_consistent() {
        let g = topology::path(5);
        let mut clients = ClientAssignment::new(5);
        clients.assign(c(0), [r(0), r(4)]);
        clients.assign(c(1), [r(1), r(3)]);
        clients.assign(c(2), [r(2)]);
        let report = run_client_scenario(
            &g,
            &clients,
            &ClientScenarioConfig {
                ops_per_client: 15,
                write_ratio: 0.6,
                seed: 3,
                ..Default::default()
            },
        );
        assert!(report.consistent, "{report}");
        assert_eq!(report.blocked, 0);
        assert!(report.writes > 0 && report.reads > 0);
    }

    #[test]
    fn many_seeds_never_violate() {
        let g = topology::ring(4);
        let mut clients = ClientAssignment::new(4);
        clients.assign(c(0), [r(0), r(2)]);
        clients.assign(c(1), [r(1), r(3)]);
        for seed in 0..8 {
            let report = run_client_scenario(
                &g,
                &clients,
                &ClientScenarioConfig {
                    ops_per_client: 10,
                    write_ratio: 0.7,
                    delay: DelayModel::Uniform { min: 1, max: 30 },
                    seed,
                },
            );
            assert!(report.consistent, "seed {seed}: {report}");
            assert_eq!(report.blocked, 0, "seed {seed}");
        }
    }

    #[test]
    fn read_only_clients_make_no_updates() {
        let g = topology::path(3);
        let mut clients = ClientAssignment::new(3);
        clients.assign(c(0), [r(0)]);
        let report = run_client_scenario(
            &g,
            &clients,
            &ClientScenarioConfig {
                ops_per_client: 5,
                write_ratio: 0.0,
                seed: 1,
                ..Default::default()
            },
        );
        assert_eq!(report.writes, 0);
        assert_eq!(report.reads, 5);
        assert!(report.consistent);
    }
}
