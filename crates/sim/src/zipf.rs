//! A small Zipf-distributed sampler (no external distribution crates in
//! the offline set, so we build the CDF directly).

use rand::rngs::StdRng;
use rand::Rng;

/// Samples indices `0..n` with probability `∝ 1/(k+1)^theta`.
///
/// `theta = 0` degenerates to the uniform distribution; typical skewed
/// workloads use `theta ∈ [0.9, 1.2]`.
///
/// # Examples
///
/// ```
/// use prcc_sim::zipf::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let z = Zipf::new(10, 1.0);
/// let mut rng = StdRng::seed_from_u64(0);
/// let i = z.sample(&mut rng);
/// assert!(i < 10);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler over `n` items with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there are no items (never: `new` requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    fn skewed_when_theta_positive() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4] && counts[4] > counts[9], "{counts:?}");
        assert!(counts[0] as f64 / counts[9] as f64 > 5.0);
    }

    #[test]
    fn single_item() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
