//! Workload generation for the experiment harness.
//!
//! The paper's model has each client writing registers stored at its local
//! replica, so a workload is a schedule of `(replica, register)` writes.
//! Register choice within a replica follows a Zipf distribution (skew is
//! the norm in the geo-replication systems the paper cites — COPS,
//! Orbe, GentleRain all evaluate under Zipf).

use crate::zipf::Zipf;
use prcc_sharegraph::{RegisterId, ReplicaId, ShareGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One scheduled client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// The replica whose client performs the write.
    pub replica: ReplicaId,
    /// The register written (always stored at `replica`).
    pub register: RegisterId,
}

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Writes issued per replica.
    pub writes_per_replica: usize,
    /// Zipf exponent for register selection within a replica
    /// (0 = uniform).
    pub zipf_theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            writes_per_replica: 50,
            zipf_theta: 0.0,
            seed: 0,
        }
    }
}

/// A generated schedule of writes, interleaved round-robin across
/// replicas (so causal chains form naturally as updates propagate).
///
/// # Examples
///
/// ```
/// use prcc_sim::workload::{Workload, WorkloadConfig};
/// use prcc_sharegraph::topology;
///
/// let g = topology::ring(4);
/// let w = Workload::generate(&g, WorkloadConfig { writes_per_replica: 3, ..Default::default() });
/// assert_eq!(w.ops().len(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    ops: Vec<Op>,
}

impl Workload {
    /// Generates a schedule for `g` under `cfg`. Replicas that store no
    /// registers are skipped.
    pub fn generate(g: &ShareGraph, cfg: WorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Per-replica register menus and samplers.
        let menus: Vec<Vec<RegisterId>> = g
            .replicas()
            .map(|i| g.placement().registers_of(i).iter().collect())
            .collect();
        let samplers: Vec<Option<Zipf>> = menus
            .iter()
            .map(|m| {
                if m.is_empty() {
                    None
                } else {
                    Some(Zipf::new(m.len(), cfg.zipf_theta))
                }
            })
            .collect();
        let mut ops = Vec::new();
        for _ in 0..cfg.writes_per_replica {
            // Randomized round order per round: fair but not lock-step.
            let mut order: Vec<usize> = (0..g.num_replicas()).collect();
            order.shuffle(&mut rng);
            for r in order {
                let Some(z) = &samplers[r] else { continue };
                let reg = menus[r][z.sample(&mut rng)];
                ops.push(Op {
                    replica: ReplicaId::new(r as u32),
                    register: reg,
                });
            }
        }
        Workload { ops }
    }

    /// The scheduled operations, in issue order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::topology;

    #[test]
    fn all_ops_are_local_writes() {
        let g = topology::grid(3, 3);
        let w = Workload::generate(
            &g,
            WorkloadConfig {
                writes_per_replica: 10,
                zipf_theta: 1.0,
                seed: 5,
            },
        );
        for op in w.ops() {
            assert!(g.placement().stores(op.replica, op.register));
        }
        assert_eq!(w.len(), 9 * 10);
    }

    #[test]
    fn deterministic_by_seed() {
        let g = topology::ring(5);
        let cfg = WorkloadConfig {
            writes_per_replica: 20,
            zipf_theta: 0.9,
            seed: 42,
        };
        let a = Workload::generate(&g, cfg);
        let b = Workload::generate(&g, cfg);
        assert_eq!(a.ops(), b.ops());
        let c = Workload::generate(&g, WorkloadConfig { seed: 43, ..cfg });
        assert_ne!(a.ops(), c.ops());
    }

    #[test]
    fn replicas_without_registers_skipped() {
        let g = prcc_sharegraph::ShareGraph::new(
            prcc_sharegraph::Placement::builder(3)
                .share(0, [0, 1])
                .build(),
        );
        let w = Workload::generate(
            &g,
            WorkloadConfig {
                writes_per_replica: 4,
                ..Default::default()
            },
        );
        assert_eq!(w.len(), 8); // replica 2 stores nothing
        assert!(!w.is_empty());
        assert!(w.ops().iter().all(|op| op.replica.index() < 2));
    }

    #[test]
    fn zipf_skews_register_choice() {
        // Star hub stores many registers; with high theta the first menu
        // entry dominates.
        let g = topology::star(8);
        let w = Workload::generate(
            &g,
            WorkloadConfig {
                writes_per_replica: 200,
                zipf_theta: 1.5,
                seed: 1,
            },
        );
        let hub_ops: Vec<_> = w
            .ops()
            .iter()
            .filter(|o| o.replica == ReplicaId::new(0))
            .collect();
        let first_reg = hub_ops
            .iter()
            .filter(|o| o.register == RegisterId::new(0))
            .count();
        assert!(
            first_reg * 2 > hub_ops.len() / 2,
            "{first_reg}/{}",
            hub_ops.len()
        );
    }
}
