//! Scenario runner: workload × system configuration → measured report.
//!
//! This is the engine behind experiments E6–E10: build a [`System`] for a
//! share graph, drive a [`Workload`] through it with interleaved delivery
//! (so causal chains actually form), then report message counts, metadata
//! bytes, latencies, timestamp sizes, and the consistency verdict.

use crate::serving::{run_serving_scenario, ServingScenarioConfig};
use crate::workload::{Workload, WorkloadConfig};
use prcc_core::{BatchPolicy, System, TrackerKind, Value, WireMode};
use prcc_net::{DelayModel, FaultSchedule, SessionConfig};
use prcc_sharegraph::{RegisterId, ReplicaId, ShareGraph};
use std::fmt;

/// Configuration of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// The causality tracker to deploy.
    pub tracker: TrackerKind,
    /// The workload to drive.
    pub workload: WorkloadConfig,
    /// Network delay model.
    pub delay: DelayModel,
    /// Network RNG seed.
    pub net_seed: u64,
    /// Network deliveries attempted between consecutive client writes
    /// (higher = tighter causal coupling between replicas).
    pub steps_between_ops: usize,
    /// Dummy-register copies to install (Appendix D).
    pub dummies: Vec<(ReplicaId, RegisterId)>,
    /// Staleness probes per replica performed right before quiescence
    /// (each probes one locally stored register).
    pub staleness_probes: usize,
    /// How outgoing update metadata is encoded per recipient
    /// (default: [`WireMode::Compressed`]).
    pub wire_mode: WireMode,
    /// Faults to inject: probabilistic drops/duplications plus scripted
    /// partitions and crash/restart events (default: none).
    pub faults: FaultSchedule,
    /// Arms the reliable-delivery session layer with this configuration
    /// (retransmission + recovery catch-up). `None` = the paper's
    /// reliable-channel model.
    pub session: Option<SessionConfig>,
    /// Sender-side update coalescing (DESIGN §9). The default policy
    /// batches; [`BatchPolicy::unbatched`] is the singleton oracle.
    pub batch: BatchPolicy,
    /// Client sessions to drive through the serving tier (DESIGN §11) on
    /// a threaded cluster over the same share graph, after the replica
    /// workload. `0` (the default) skips the client-serving pass; when
    /// non-zero the report's routing and guarantee-block stats are
    /// populated and `consistent` also requires the serving pass to be
    /// clean. Composes with [`faults`](ScenarioConfig::faults): the same
    /// schedule (drops, outages, crash windows — ticks are 200 µs of
    /// wall clock on the threaded cluster) is driven under the live
    /// serving workload, with recovery logs auto-armed for crashes.
    pub clients: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            tracker: TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE),
            workload: WorkloadConfig::default(),
            delay: DelayModel::default(),
            net_seed: 0,
            steps_between_ops: 2,
            dummies: Vec::new(),
            staleness_probes: 4,
            wire_mode: WireMode::default(),
            faults: FaultSchedule::default(),
            session: None,
            batch: BatchPolicy::default(),
            clients: 0,
        }
    }
}

/// The measured outcome of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Human-readable tracker label.
    pub tracker: String,
    /// Number of replicas.
    pub replicas: usize,
    /// Number of registers.
    pub registers: usize,
    /// Data storage cells (replica, register) pairs.
    pub storage_cells: usize,
    /// Client writes issued.
    pub writes: usize,
    /// Messages with payloads.
    pub data_messages: usize,
    /// Metadata-only messages.
    pub meta_messages: usize,
    /// Total metadata bytes.
    pub metadata_bytes: usize,
    /// Total payload bytes.
    pub payload_bytes: usize,
    /// Mean issue→apply latency in ticks.
    pub mean_visibility: f64,
    /// Median issue→apply latency in ticks.
    pub p50_visibility: u64,
    /// 99th-percentile issue→apply latency in ticks.
    pub p99_visibility: u64,
    /// Max issue→apply latency in ticks.
    pub max_visibility: u64,
    /// Mean read staleness (versions behind) over the probes, taken
    /// mid-run before the final drain.
    pub mean_staleness: f64,
    /// Max observed staleness over the probes.
    pub max_staleness: u64,
    /// Mean arrival→apply wait in ticks (buffering cost / false deps).
    pub mean_pending_wait: f64,
    /// Max arrival→apply wait.
    pub max_pending_wait: u64,
    /// Total timestamp counters across replicas.
    pub counters_total: usize,
    /// Largest per-replica timestamp (counters).
    pub counters_max: usize,
    /// Causal consistency verdict from the checker.
    pub consistent: bool,
    /// Number of safety violations.
    pub safety_violations: usize,
    /// Number of liveness violations.
    pub liveness_violations: usize,
    /// Updates still stuck in pending buffers after quiescence.
    pub stuck_pending: usize,
    /// Session-layer retransmissions (0 without faults or a session).
    pub retransmits: usize,
    /// Duplicate frames suppressed by the session dedup window.
    pub dup_suppressed: usize,
    /// Ack frames sent by the session layer.
    pub acks_sent: usize,
    /// Median restart → fully-caught-up latency in ticks (0 with no
    /// crashes).
    pub catch_up_p50: u64,
    /// Worst restart → fully-caught-up latency in ticks.
    pub catch_up_max: u64,
    /// Deliveries permanently lost to a crashed destination (non-zero
    /// only without the session layer).
    pub lost_to_crash: usize,
    /// Wire-codec pairs demoted to explicit rows after a derived-row
    /// verification failure (0 with registry-built layouts).
    pub codec_demotions: usize,
    /// Client ops served by the serving tier (0 unless
    /// [`ScenarioConfig::clients`] > 0; likewise for the four stats
    /// below).
    pub client_ops: u64,
    /// Client ops served by a replica in the session's attach set.
    pub ops_routed_local: u64,
    /// Client ops detoured to a replica outside the attach set.
    pub ops_forwarded: u64,
    /// Reads that waited on the read-your-writes guarantee.
    pub ryw_blocks: u64,
    /// Reads that waited on the monotonic-reads guarantee.
    pub mr_blocks: u64,
    /// Client ops re-routed around a crashed replica by the serving
    /// tier.
    pub failovers: u64,
    /// Client writes shed by serving-tier admission control.
    pub ops_shed: u64,
    /// Client ops that degraded to a timeout in the serving tier.
    pub op_timeouts: u64,
    /// Acked fraction of attempted client ops (1.0 when the serving pass
    /// is skipped or fault-free).
    pub client_availability: f64,
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} writes, {} data + {} meta msgs, {} meta bytes, vis {:.1}/{} ticks, \
             counters {}/{} (max/total), consistent={}",
            self.tracker,
            self.writes,
            self.data_messages,
            self.meta_messages,
            self.metadata_bytes,
            self.mean_visibility,
            self.max_visibility,
            self.counters_max,
            self.counters_total,
            self.consistent
        )
    }
}

/// Label for a tracker kind.
fn tracker_label(kind: TrackerKind) -> String {
    match kind {
        TrackerKind::EdgeIndexed(cfg) => match cfg.max_loop_edges {
            None => "edge-indexed".to_owned(),
            Some(l) => format!("edge-indexed(≤{l})"),
        },
        TrackerKind::VectorClock => "vector-clock".to_owned(),
        TrackerKind::FullDeps => "full-deps".to_owned(),
    }
}

/// Runs one scenario to quiescence and reports.
pub fn run_scenario(g: &ShareGraph, cfg: &ScenarioConfig) -> RunReport {
    let workload = Workload::generate(g, cfg.workload);
    let mut builder = System::builder(g.clone())
        .tracker(cfg.tracker)
        .delay(cfg.delay.clone())
        .seed(cfg.net_seed)
        .wire_mode(cfg.wire_mode)
        .batch_policy(cfg.batch)
        .fault_schedule(cfg.faults.clone());
    if let Some(session) = cfg.session {
        builder = builder.session(session);
    }
    for (r, x) in &cfg.dummies {
        builder = builder.dummy(*r, *x);
    }
    let mut sys = builder.build();

    let mut staleness: Vec<u64> = Vec::new();
    // Writes aimed at a replica inside a crash window wait (FIFO) until
    // it restarts — clients retry against a recovered replica rather
    // than dropping their operations.
    let mut deferred: Vec<(ReplicaId, RegisterId, u64)> = Vec::new();
    let probe_every = (workload.len() / cfg.staleness_probes.max(1)).max(1);
    for (n, op) in workload.ops().iter().enumerate() {
        if sys.is_crashed(op.replica) {
            deferred.push((op.replica, op.register, n as u64));
        } else {
            let mut i = 0;
            while i < deferred.len() {
                if deferred[i].0 == op.replica {
                    let (r, x, v) = deferred.remove(i);
                    sys.write(r, x, Value::from(v));
                } else {
                    i += 1;
                }
            }
            sys.write(op.replica, op.register, Value::from(n as u64));
        }
        for _ in 0..cfg.steps_between_ops {
            if !sys.step() {
                break;
            }
        }
        if cfg.staleness_probes > 0 && n % probe_every == 0 {
            // Probe each replica's worst-case lag across its registers.
            for i in g.replicas() {
                let worst = g
                    .placement()
                    .registers_of(i)
                    .iter()
                    .map(|reg| sys.read_staleness(i, reg))
                    .max();
                if let Some(w) = worst {
                    staleness.push(w);
                }
            }
        }
    }
    sys.run_to_quiescence();
    // Crash windows have all healed after quiescence; release any writes
    // still waiting on a restart.
    for (r, x, v) in deferred.drain(..) {
        sys.write(r, x, Value::from(v));
    }
    sys.run_to_quiescence();

    // Optional client-serving pass: the serving tier multiplexing
    // sessions onto a threaded cluster over the same share graph, with
    // the same fault schedule running live underneath it.
    let serving = (cfg.clients > 0).then(|| {
        run_serving_scenario(
            g,
            &ServingScenarioConfig {
                sessions: cfg.clients,
                zipf_theta: cfg.workload.zipf_theta,
                seed: cfg.net_seed,
                faults: cfg.faults.clone(),
                session: cfg.session,
                ..Default::default()
            },
        )
    });
    let serving_clean = serving
        .as_ref()
        .is_none_or(|s| s.consistent && s.session_violations == 0 && s.acked_write_loss == 0);
    let serving_stats = serving.as_ref().map(|s| s.stats).unwrap_or_default();

    let check = sys.check();
    let counters = sys.timestamp_counters();
    let m = *sys.metrics();
    let mut vis = sys.visibility_stats();
    let mut catch_up = sys.catch_up_stats();
    RunReport {
        tracker: tracker_label(cfg.tracker),
        replicas: g.num_replicas(),
        registers: g.placement().num_registers(),
        storage_cells: g.placement().storage_cells(),
        writes: workload.len(),
        data_messages: m.data_messages,
        meta_messages: m.meta_messages,
        metadata_bytes: m.metadata_bytes,
        payload_bytes: m.payload_bytes,
        mean_visibility: m.mean_visibility(),
        p50_visibility: vis.p50(),
        p99_visibility: vis.p99(),
        max_visibility: m.max_visibility,
        mean_staleness: if staleness.is_empty() {
            0.0
        } else {
            staleness.iter().sum::<u64>() as f64 / staleness.len() as f64
        },
        max_staleness: staleness.iter().copied().max().unwrap_or(0),
        mean_pending_wait: m.mean_pending_wait(),
        max_pending_wait: m.max_pending_wait,
        counters_total: counters.iter().sum(),
        counters_max: counters.iter().copied().max().unwrap_or(0),
        consistent: check.is_consistent() && serving_clean,
        safety_violations: check.safety_violations().count(),
        liveness_violations: check.liveness_violations().count(),
        stuck_pending: sys.stuck_pending(),
        retransmits: sys.session_stats().map_or(0, |s| s.retransmits),
        dup_suppressed: sys.session_stats().map_or(0, |s| s.dup_suppressed),
        acks_sent: sys.session_stats().map_or(0, |s| s.acks_sent),
        catch_up_p50: catch_up.p50(),
        catch_up_max: catch_up.max(),
        lost_to_crash: sys.lost_to_crash(),
        codec_demotions: sys.net_stats().codec_demotions,
        client_ops: serving.as_ref().map_or(0, |s| s.ops),
        ops_routed_local: serving_stats.ops_routed_local,
        ops_forwarded: serving_stats.ops_forwarded,
        ryw_blocks: serving_stats.ryw_blocks,
        mr_blocks: serving_stats.mr_blocks,
        failovers: serving_stats.failovers,
        ops_shed: serving_stats.ops_shed,
        op_timeouts: serving_stats.op_timeouts,
        client_availability: serving.as_ref().map_or(1.0, |s| s.availability),
    }
}

/// Convenience: run the same workload under the edge-indexed tracker and
/// the vector-clock (full-metadata) baseline, returning both reports —
/// the head-to-head of experiment E10.
pub fn run_head_to_head(g: &ShareGraph, cfg: &ScenarioConfig) -> (RunReport, RunReport) {
    let edge = run_scenario(
        g,
        &ScenarioConfig {
            tracker: TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE),
            ..cfg.clone()
        },
    );
    let vc = run_scenario(
        g,
        &ScenarioConfig {
            tracker: TrackerKind::VectorClock,
            ..cfg.clone()
        },
    );
    (edge, vc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::topology;

    #[test]
    fn ring_scenario_is_consistent() {
        let g = topology::ring(5);
        let report = run_scenario(
            &g,
            &ScenarioConfig {
                workload: WorkloadConfig {
                    writes_per_replica: 20,
                    zipf_theta: 0.5,
                    seed: 7,
                },
                net_seed: 7,
                ..Default::default()
            },
        );
        assert!(report.consistent, "{report}");
        assert_eq!(report.writes, 100);
        assert_eq!(report.stuck_pending, 0);
        assert!(report.data_messages > 0);
        assert_eq!(report.counters_max, 10); // 2n in a ring
    }

    #[test]
    fn head_to_head_shapes() {
        // Partial replication must send fewer total messages; the VC
        // baseline must carry R counters per message while the ring's
        // edge-indexed carries 2n — for a ring, VC metadata per replica is
        // smaller (n vs 2n counters), which is exactly the trade-off the
        // paper describes (partial replication pays metadata for fewer
        // messages/storage).
        let g = topology::ring(6);
        let cfg = ScenarioConfig {
            workload: WorkloadConfig {
                writes_per_replica: 10,
                zipf_theta: 0.0,
                seed: 3,
            },
            net_seed: 3,
            ..Default::default()
        };
        let (edge, vc) = run_head_to_head(&g, &cfg);
        assert!(edge.consistent && vc.consistent);
        assert!(edge.data_messages + edge.meta_messages < vc.data_messages + vc.meta_messages);
        assert_eq!(edge.counters_max, 12);
        // Baseline's timestamp is R = 6 counters.
        assert!(vc.metadata_bytes > 0);
    }

    /// Drives the adversarial execution of Appendix D around a ring of 6:
    /// hold the direct link r1 → r0, build a causal chain the long way
    /// around, deliver the chain's last update to r0 first.
    fn ring6_adversarial(tracker: TrackerKind) -> bool {
        use prcc_core::System;
        let g = topology::ring(6);
        let mut sys = System::builder(g)
            .tracker(tracker)
            .delay(DelayModel::Fixed(1))
            .seed(0)
            .build();
        let r = |i: u32| ReplicaId::new(i);
        let x = |i: u32| RegisterId::new(i);
        // u1: r1 writes register 0 (shared r0, r1); its message to r0 is
        // held in the channel.
        sys.hold_link(r(1), r(0));
        sys.write(r(1), x(0), Value::from(1u64));
        // Chain the long way: r1 writes reg1 → r2 applies, writes reg2 →
        // r3 … → r5 writes reg5 (shared r5, r0), delivered to r0.
        for i in 1..=5u32 {
            sys.write(r(i), x(i), Value::from(u64::from(i) + 1));
            sys.run_to_quiescence();
        }
        // Now release the held first update.
        sys.release_link(r(1), r(0));
        sys.run_to_quiescence();
        sys.check().is_consistent()
    }

    #[test]
    fn truncated_tracking_violates_on_adversarial_reordering() {
        // l-hop truncation (Appendix D): ring loops have 6 edges, so a
        // 4-edge cap drops every far edge — r0 cannot tell that the update
        // arriving from r5 depends on the held update from r1.
        assert!(!ring6_adversarial(TrackerKind::EdgeIndexed(
            prcc_sharegraph::LoopConfig::bounded(4)
        )));
        // The exact algorithm blocks the chain's last update until the
        // held dependency arrives: consistent.
        assert!(ring6_adversarial(TrackerKind::EdgeIndexed(
            prcc_sharegraph::LoopConfig::EXHAUSTIVE
        )));
        // The vector-clock baseline (full metadata broadcast) also
        // survives the reordering.
        assert!(ring6_adversarial(TrackerKind::VectorClock));
    }

    #[test]
    fn truncated_tracking_safe_under_tight_delays() {
        // With fixed delays single-hop messages always beat multi-hop
        // chains — the "loosely synchronous" regime where truncation is
        // sound (Appendix D).
        let g = topology::ring(6);
        let tight = run_scenario(
            &g,
            &ScenarioConfig {
                tracker: TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::bounded(4)),
                delay: DelayModel::Fixed(1),
                ..Default::default()
            },
        );
        assert!(tight.consistent, "{tight}");
    }

    #[test]
    fn dummy_registers_trade_messages_for_metadata() {
        // Path of 4 with dummies of everything everywhere ≈ full
        // replication metadata: more messages, but smaller timestamp
        // graphs are NOT expected here (path is already a tree) — instead
        // verify message counts rise and consistency holds.
        let g = topology::path(4);
        let mut dummies = Vec::new();
        for r in 0..4u32 {
            for x in 0..3u32 {
                if !g.placement().stores(ReplicaId::new(r), RegisterId::new(x)) {
                    dummies.push((ReplicaId::new(r), RegisterId::new(x)));
                }
            }
        }
        let plain = run_scenario(&g, &ScenarioConfig::default());
        let dummy = run_scenario(
            &g,
            &ScenarioConfig {
                dummies,
                ..Default::default()
            },
        );
        assert!(dummy.consistent && plain.consistent);
        assert!(dummy.meta_messages > plain.meta_messages);
        assert!(
            dummy.data_messages + dummy.meta_messages > plain.data_messages + plain.meta_messages
        );
    }

    #[test]
    fn faulty_scenario_converges_with_session() {
        use prcc_net::{FaultPlan, FaultSchedule, SessionConfig};
        let g = topology::ring(5);
        let report = run_scenario(
            &g,
            &ScenarioConfig {
                workload: WorkloadConfig {
                    writes_per_replica: 10,
                    zipf_theta: 0.0,
                    seed: 5,
                },
                net_seed: 5,
                faults: FaultSchedule::from_plan(FaultPlan {
                    drop_prob: 0.3,
                    duplicate_prob: 0.2,
                    ..Default::default()
                })
                .crash(ReplicaId::new(2), 200, 900),
                session: Some(SessionConfig::default()),
                staleness_probes: 0,
                ..Default::default()
            },
        );
        assert!(report.consistent, "{report}");
        assert_eq!(report.stuck_pending, 0);
        assert_eq!(report.writes, 50);
        assert!(report.retransmits > 0, "drop storm caused no retransmits");
        assert!(report.acks_sent > 0);
    }

    #[test]
    fn clients_knob_runs_the_serving_pass_and_surfaces_stats() {
        let g = topology::ring(4);
        let plain = run_scenario(&g, &ScenarioConfig::default());
        assert_eq!(plain.client_ops, 0, "no serving pass without clients");
        let with_clients = run_scenario(
            &g,
            &ScenarioConfig {
                clients: 8,
                ..Default::default()
            },
        );
        assert!(with_clients.consistent, "{with_clients}");
        assert!(with_clients.client_ops > 0);
        assert_eq!(
            with_clients.ops_routed_local + with_clients.ops_forwarded,
            with_clients.client_ops,
            "every client op is either local or forwarded"
        );
    }

    #[test]
    fn clients_compose_with_crash_and_drop_faults() {
        // One schedule, two passes: the lockstep replica workload and
        // the threaded serving workload both run under the same drops
        // and crash window; recovery logs and a fast session layer are
        // auto-armed for the serving pass, so the combined verdict must
        // come back clean.
        use prcc_net::{FaultPlan, FaultSchedule};
        let g = topology::ring(4);
        let report = run_scenario(
            &g,
            &ScenarioConfig {
                workload: WorkloadConfig {
                    writes_per_replica: 10,
                    zipf_theta: 0.0,
                    seed: 3,
                },
                net_seed: 3,
                faults: FaultSchedule::from_plan(FaultPlan::dropping(0.2)).crash(
                    ReplicaId::new(1),
                    100,
                    600,
                ),
                session: Some(prcc_net::SessionConfig::default()),
                clients: 8,
                staleness_probes: 0,
                ..Default::default()
            },
        );
        assert!(report.consistent, "{report}");
        assert!(report.client_ops > 0);
        assert!(
            report.client_availability > 0.5 && report.client_availability <= 1.0,
            "{report}"
        );
        assert_eq!(report.ops_shed, 0, "tiny workload must not shed: {report}");
    }

    #[test]
    fn report_display_is_informative() {
        let g = topology::path(3);
        let r = run_scenario(&g, &ScenarioConfig::default());
        let s = r.to_string();
        assert!(s.contains("edge-indexed"));
        assert!(s.contains("consistent=true"));
    }
}
