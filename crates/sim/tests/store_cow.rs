//! Differential test: the sharded copy-on-write snapshot store against
//! the clone-the-world oracle (`StoreMode::Clone`).
//!
//! The COW store is a pure representation change — publishes rebuild
//! only the shards touched since the last publish instead of cloning
//! the whole register map. Nothing observable may move: the same
//! single-writer workload driven through both modes (and through both
//! replica-loop shapes, pipelined and inline) must end in byte-identical
//! canonical stores on every replica, identical applied frontiers,
//! identical `covers()` verdicts over a grid of update ids, and the same
//! clean causal-consistency verdict. The serving tier re-runs its own
//! session-guarantee checker under both modes.
//!
//! A separate non-vacuity test pins the mechanism itself: consecutive
//! published views of a many-register store must share the `Arc`s of
//! every shard the intervening writes did not touch — if that ever
//! degrades to cloning everything, the O(Δ) claim is silently gone and
//! this test, not a benchmark, catches it.

use prcc_checker::UpdateId;
use prcc_core::{ClusterConfig, StoreMode, ThreadedCluster, Value};
use prcc_net::{DelayModel, FaultPlan, FaultSchedule, SessionConfig};
use prcc_sharegraph::{topology, RegisterId, ReplicaId, ShareGraph};
use prcc_sim::netrun::{store_lines, NetWorkload};
use prcc_sim::serving::{run_serving_scenario, ServingScenarioConfig};
use proptest::prelude::*;

/// Everything observable about a finished run, canonicalised for
/// cross-mode comparison.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    /// Per-replica canonical store lines (value + provenance, sorted).
    stores: Vec<Vec<String>>,
    /// Per-replica applied frontiers.
    frontiers: Vec<Vec<u64>>,
    /// Per-replica `covers()` verdicts over a fixed grid of update ids.
    covers: Vec<Vec<bool>>,
    /// Causal-consistency verdict of the merged trace.
    consistent: bool,
}

/// Fast session config for `DelayModel::Fixed(1)` runs: round trips are
/// a few 200 µs ticks, so retransmission can be aggressive without
/// spurious resends dominating the run.
fn quick_session() -> SessionConfig {
    SessionConfig {
        rto_base: 40,
        rto_max: 320,
        jitter: 4,
        ack_delay: 0,
    }
}

/// One deterministic single-writer run; the workload (and therefore the
/// final store on every replica) is a pure function of `g` and
/// `rounds`, independent of mode, loop shape, timing, and healed faults.
fn run_one(
    g: &ShareGraph,
    rounds: u64,
    seed: u64,
    store: StoreMode,
    pipeline: bool,
    schedule: FaultSchedule,
    session: Option<SessionConfig>,
) -> Observed {
    let cluster = ThreadedCluster::with_config(
        g.clone(),
        DelayModel::Fixed(1),
        seed,
        ClusterConfig {
            store,
            pipeline,
            schedule,
            session,
            ..Default::default()
        },
    );
    let wl = NetWorkload::new(g, rounds);
    wl.drive(&cluster);
    cluster.settle();

    // Grid of update ids for covers(): every issuer crossed with every
    // seq up to one past the largest any workload issuer can reach.
    let max_seq = g
        .replicas()
        .map(|r| wl.registers_of(r).len() as u64 * rounds)
        .max()
        .unwrap_or(0);
    let mut stores = Vec::new();
    let mut frontiers = Vec::new();
    let mut covers = Vec::new();
    for r in g.replicas() {
        let view = cluster.store_snapshot(r);
        stores.push(store_lines(&view));
        frontiers.push(view.frontier().to_vec());
        let mut verdicts = Vec::new();
        for issuer in g.replicas() {
            for seq in 0..=max_seq + 1 {
                verdicts.push(view.covers(UpdateId { issuer, seq }));
            }
        }
        covers.push(verdicts);
    }
    let consistent = cluster.check().is_consistent();
    cluster.shutdown();
    Observed {
        stores,
        frontiers,
        covers,
        consistent,
    }
}

/// Runs the same workload through Clone and COW, each with the pipelined
/// and the inline loop, and asserts all four observations are identical
/// and consistent.
fn assert_modes_agree(
    g: &ShareGraph,
    rounds: u64,
    seed: u64,
    schedule: &FaultSchedule,
    session: Option<SessionConfig>,
) {
    let oracle = run_one(
        g,
        rounds,
        seed,
        StoreMode::Clone,
        false,
        schedule.clone(),
        session,
    );
    assert!(oracle.consistent, "clone-mode oracle trace inconsistent");
    for (store, pipeline) in [
        (StoreMode::Clone, true),
        (StoreMode::Cow, false),
        (StoreMode::Cow, true),
    ] {
        let subject = run_one(g, rounds, seed, store, pipeline, schedule.clone(), session);
        assert_eq!(
            subject, oracle,
            "{store:?} pipeline={pipeline} diverged from the clone/inline oracle"
        );
    }
}

#[test]
fn ring_benign_modes_agree() {
    let g = topology::ring(5);
    assert_modes_agree(&g, 3, 11, &FaultSchedule::none(), None);
}

#[test]
fn clique_benign_modes_agree() {
    let g = topology::clique_full(4, 24);
    assert_modes_agree(&g, 2, 7, &FaultSchedule::none(), None);
}

#[test]
fn ring_with_drops_and_session_modes_agree() {
    let g = topology::ring(4);
    let schedule = FaultSchedule::from_plan(FaultPlan::dropping(0.25));
    assert_modes_agree(&g, 3, 23, &schedule, Some(quick_session()));
}

#[test]
fn clique_with_outage_and_session_modes_agree() {
    let g = topology::clique_full(4, 12);
    let schedule = FaultSchedule::none()
        .outage(ReplicaId::new(0), ReplicaId::new(1), 20, 300)
        .outage(ReplicaId::new(2), ReplicaId::new(3), 50, 250);
    assert_modes_agree(&g, 2, 31, &schedule, Some(quick_session()));
}

proptest! {
    /// Benign runs across graph shapes, sizes, rounds and seeds: every
    /// mode × loop combination observes the same world as the clone /
    /// inline oracle. One subject per case (the combo index) keeps each
    /// case at two cluster runs.
    #[test]
    fn modes_agree_across_workloads(
        ring in 0usize..2,
        n in 3usize..6,
        registers in 4usize..32,
        rounds in 1u64..3,
        combo in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let g = if ring == 1 {
            topology::ring(n)
        } else {
            topology::clique_full(n, registers)
        };
        let (store, pipeline) = [
            (StoreMode::Clone, true),
            (StoreMode::Cow, false),
            (StoreMode::Cow, true),
        ][combo];
        let oracle = run_one(
            &g, rounds, seed, StoreMode::Clone, false, FaultSchedule::none(), None,
        );
        prop_assert!(oracle.consistent, "clone-mode oracle trace inconsistent");
        let subject = run_one(&g, rounds, seed, store, pipeline, FaultSchedule::none(), None);
        prop_assert_eq!(
            subject, oracle,
            "{:?} pipeline={} diverged from the clone/inline oracle", store, pipeline
        );
    }
}

/// The serving tier's own differential: identical scenario, both store
/// modes, judged by the causal-consistency check *and* the session
/// guarantee checker. COW must not open a window where a completed
/// write is invisible to its own session (the checker counts that as a
/// read-your-writes violation).
#[test]
fn serving_session_guarantees_hold_in_both_modes() {
    for store in [StoreMode::Clone, StoreMode::Cow] {
        let report = run_serving_scenario(
            &topology::clique_full(4, 8),
            &ServingScenarioConfig {
                sessions: 16,
                ops_per_session: 25,
                workers: 4,
                write_ratio: 0.4,
                zipf_theta: 0.9,
                seed: 17,
                store,
                ..Default::default()
            },
        );
        assert!(report.consistent, "{store:?}: trace inconsistent: {report}");
        assert_eq!(
            report.session_violations, 0,
            "{store:?}: session guarantees violated: {report}"
        );
    }
}

/// Non-vacuity: consecutive publishes of a many-register store must
/// alias (share `Arc`s for) every shard the intervening write did not
/// touch. A single write can dirty at most one shard, so at least
/// `total - 1` of the shards must be pointer-identical across the two
/// views — this is the O(Δ) mechanism itself, not a proxy metric.
#[test]
fn consecutive_publishes_alias_unchanged_shards() {
    let g = topology::clique_full(2, 2048);
    let cluster = ThreadedCluster::new(g, DelayModel::Fixed(1), 3);
    let r0 = ReplicaId::new(0);
    cluster.write(r0, RegisterId::new(0), Value::from(1u64));
    cluster.settle();
    let before = cluster.store_snapshot(r0);
    cluster.write(r0, RegisterId::new(1), Value::from(2u64));
    cluster.settle();
    let after = cluster.store_snapshot(r0);
    let (aliased, total) = after
        .shards_shared_with(&before)
        .expect("default mode publishes sharded views");
    assert!(total >= 64, "2048 registers must spread over many shards");
    assert!(
        aliased >= total - 1,
        "one write may dirty one shard, yet only {aliased}/{total} aliased"
    );
    assert!(aliased < total, "the written shard must have been rebuilt");
    cluster.shutdown();
}

/// Clone-mode views are flat maps — the aliasing probe reports `None`
/// rather than a vacuously passing (0, 0).
#[test]
fn clone_mode_views_do_not_alias() {
    let g = topology::clique_full(2, 64);
    let cluster = ThreadedCluster::with_config(
        g,
        DelayModel::Fixed(1),
        4,
        ClusterConfig {
            store: StoreMode::Clone,
            ..Default::default()
        },
    );
    let r0 = ReplicaId::new(0);
    cluster.write(r0, RegisterId::new(0), Value::from(9u64));
    cluster.settle();
    let a = cluster.store_snapshot(r0);
    cluster.write(r0, RegisterId::new(1), Value::from(10u64));
    cluster.settle();
    let b = cluster.store_snapshot(r0);
    assert_eq!(b.shards_shared_with(&a), None);
    cluster.shutdown();
}

/// Read-your-writes across the burst-publish path: a completion token
/// must never escape before the publish that makes the write visible.
/// Every `write` and every id of a `write_burst` must be covered by the
/// very next snapshot taken — under both store modes and both loop
/// shapes, with concurrent writers hammering the same replicas.
#[test]
fn completed_writes_are_immediately_visible() {
    for (store, pipeline) in [
        (StoreMode::Cow, true),
        (StoreMode::Cow, false),
        (StoreMode::Clone, true),
        (StoreMode::Clone, false),
    ] {
        let g = topology::clique_full(3, 16);
        let cluster = ThreadedCluster::with_config(
            g.clone(),
            DelayModel::Fixed(1),
            5,
            ClusterConfig {
                store,
                pipeline,
                ..Default::default()
            },
        );
        std::thread::scope(|scope| {
            for r in g.replicas() {
                let cluster = &cluster;
                scope.spawn(move || {
                    for i in 0..40u64 {
                        let x = RegisterId::new((i % 16) as u32);
                        let uid = cluster.write(r, x, Value::from(i));
                        assert!(
                            cluster.store_snapshot(r).covers(uid),
                            "{store:?} pipeline={pipeline}: write token escaped \
                             before its publish"
                        );
                    }
                    let burst: Vec<_> = (0..16u32)
                        .map(|j| (RegisterId::new(j), Value::from(u64::from(j) + 100)))
                        .collect();
                    let ids = cluster.write_burst(r, &burst);
                    let view = cluster.store_snapshot(r);
                    for uid in ids {
                        assert!(
                            view.covers(uid),
                            "{store:?} pipeline={pipeline}: burst token escaped \
                             before its publish"
                        );
                    }
                });
            }
        });
        cluster.settle();
        assert!(cluster.check().is_consistent());
        cluster.shutdown();
    }
}
