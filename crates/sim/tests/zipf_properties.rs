//! Property tests for the Zipf sampler backing the serving-tier
//! workloads: the empirical frequencies must actually follow the
//! 1/(k+1)^theta law the benchmarks assume, and sampling must be a pure
//! function of the seed (the differential tests replay identical
//! workloads on both sides of the oracle).

use prcc_sim::zipf::Zipf;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn frequencies(n: usize, theta: f64, seed: u64, draws: usize) -> Vec<usize> {
    let z = Zipf::new(n, theta);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0usize; n];
    for _ in 0..draws {
        counts[z.sample(&mut rng)] += 1;
    }
    counts
}

/// At s = 1.0 the law says rank 1 is drawn k times as often as rank k.
/// Check the ratio for several ranks within a generous sampling
/// tolerance (±35% relative at 200k draws).
#[test]
fn rank_frequency_ratio_matches_the_law_at_s_one() {
    let n = 50;
    let counts = frequencies(n, 1.0, 7, 200_000);
    for k in [2usize, 5, 10, 25] {
        let observed = counts[0] as f64 / counts[k - 1] as f64;
        let expected = k as f64;
        let rel = (observed - expected).abs() / expected;
        assert!(
            rel < 0.35,
            "rank 1 / rank {k}: observed ratio {observed:.2}, expected {expected:.2} \
             (relative error {rel:.2})"
        );
    }
}

/// Same seed, same draw count — bit-identical sample streams. The
/// serving differential tests depend on this to hand the threaded tier
/// and the lockstep oracle the same workload.
#[test]
fn sampling_is_deterministic_under_a_fixed_seed() {
    let z = Zipf::new(64, 0.9);
    let draw = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..1_000).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
    };
    assert_eq!(draw(42), draw(42));
    assert_ne!(draw(42), draw(43), "distinct seeds should diverge");
}

proptest! {
    /// Every sample is in range and the head of the distribution
    /// dominates the tail for any seed, once theta is meaningfully
    /// skewed.
    #[test]
    fn head_beats_tail_for_any_seed(seed in 0u64..1_000_000) {
        let n = 32;
        let counts = frequencies(n, 1.0, seed, 20_000);
        prop_assert_eq!(counts.iter().sum::<usize>(), 20_000);
        let head: usize = counts[..4].iter().sum();
        let tail: usize = counts[n - 4..].iter().sum();
        prop_assert!(
            head > 2 * tail,
            "head {} should dominate tail {} at s=1.0", head, tail
        );
    }

    /// Determinism as a property: replaying a seed reproduces the
    /// stream exactly, for arbitrary (seed, theta) pairs.
    #[test]
    fn replay_is_exact_for_any_seed_and_theta(
        seed in 0u64..1_000_000,
        theta_milli in 0u64..2_000,
    ) {
        let z = Zipf::new(16, theta_milli as f64 / 1_000.0);
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
