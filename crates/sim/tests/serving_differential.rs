//! Differential test: the threaded serving tier versus the lockstep
//! client-server oracle on the same seeded workload.
//!
//! Every layer of this repo has an off-switch oracle; the serving tier's
//! is the paper-faithful [`ClientServerSystem`] replaying the identical
//! generated op streams with the identical routing rule. Both runs are
//! judged by the same trace-replay machinery (causal-consistency check +
//! session-guarantee check), so a tier that under-enforces its
//! guarantees diverges from the oracle's clean verdict.

use prcc_sharegraph::topology;
use prcc_sim::serving::{run_serving_oracle, run_serving_scenario, ServingScenarioConfig};

fn agree(graph: prcc_sharegraph::ShareGraph, cfg: &ServingScenarioConfig) {
    let threaded = run_serving_scenario(&graph, cfg);
    let oracle = run_serving_oracle(&graph, cfg);
    assert!(
        threaded.consistent,
        "threaded tier trace inconsistent: {threaded}"
    );
    assert_eq!(
        threaded.session_violations, 0,
        "threaded tier violated session guarantees: {threaded}"
    );
    assert!(oracle.consistent, "oracle trace inconsistent");
    assert_eq!(
        oracle.session_violations, 0,
        "oracle violated session guarantees"
    );
    assert_eq!(oracle.blocked, 0, "oracle left requests blocked");
    assert_eq!(
        (threaded.consistent, threaded.session_violations),
        (oracle.consistent, oracle.session_violations),
        "verdicts diverged"
    );
}

#[test]
fn clique_verdicts_agree() {
    agree(
        topology::clique_full(4, 2),
        &ServingScenarioConfig {
            sessions: 16,
            ops_per_session: 30,
            workers: 4,
            write_ratio: 0.3,
            zipf_theta: 1.0,
            seed: 21,
            ..Default::default()
        },
    );
}

#[test]
fn ring_verdicts_agree_with_forwarding() {
    // On a ring, most registers sit outside a session's attach window —
    // the forwarded detour path is exercised on both sides.
    agree(
        topology::ring(6),
        &ServingScenarioConfig {
            sessions: 12,
            ops_per_session: 25,
            workers: 3,
            write_ratio: 0.4,
            zipf_theta: 0.5,
            seed: 8,
            ..Default::default()
        },
    );
}

#[test]
fn many_seeds_agree() {
    for seed in 0..5u64 {
        agree(
            topology::clique_full(4, 4),
            &ServingScenarioConfig {
                sessions: 8,
                ops_per_session: 20,
                workers: 2,
                write_ratio: 0.5,
                zipf_theta: 0.8,
                seed,
                ..Default::default()
            },
        );
    }
}
