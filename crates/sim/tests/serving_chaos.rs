//! Chaos harness: seeded crash / drop / flap storms driven under a live
//! serving workload, judged differentially.
//!
//! Every storm is a deterministic [`FaultSchedule`] (ticks are 200 µs of
//! wall clock on the threaded cluster), and every run is held to the
//! same three verdicts:
//!
//! * zero session-guarantee violations among the *acked* ops — faults
//!   may fail operations, never corrupt the ones that succeeded;
//! * zero acked-write loss — acked ⇒ durable ⇒ survives into every
//!   holder's converged final store;
//! * a consistent causal trace after the cluster settles.
//!
//! A fault-free control asserts the resilience machinery is pay-for-use:
//! no failovers, no shedding, no timeouts, every op acked.

use prcc_net::{FaultPlan, FaultSchedule};
use prcc_sharegraph::{topology, ReplicaId};
use prcc_sim::serving::{run_serving_scenario, ServingScenarioConfig};

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}

/// Every storm run must satisfy the acked-op contract, whatever the
/// schedule did to individual operations.
fn assert_acked_contract(report: &prcc_sim::serving::ServingRunReport) {
    assert!(report.consistent, "causal trace inconsistent: {report}");
    assert_eq!(
        report.session_violations, 0,
        "session guarantees violated among acked ops: {report}"
    );
    assert_eq!(
        report.acked_write_loss, 0,
        "acked write missing from a holder's final store: {report}"
    );
}

#[test]
fn clique_crash_storm_serves_through_failover() {
    // Two staggered crashes on a clique: r0 goes down almost immediately
    // and stays down well past the workload's start; r2 follows while r0
    // is still out. Registers held by {r0, r2} lose every holder during
    // the overlap — ops against them block and resume after restart.
    let faults = FaultSchedule::none()
        .crash(r(0), 5, 400)
        .crash(r(2), 100, 500);
    let report = run_serving_scenario(
        &topology::clique_full(4, 2),
        &ServingScenarioConfig {
            sessions: 64,
            ops_per_session: 60,
            workers: 4,
            write_ratio: 0.3,
            zipf_theta: 1.0,
            seed: 13,
            faults,
            durability: Some(8),
            ..Default::default()
        },
    );
    assert_acked_contract(&report);
    assert_eq!(report.restarts, 2, "{report}");
    assert!(
        report.stats.failovers > 0,
        "no session failed over to a live holder: {report}"
    );
    assert!(
        report.availability > 0.5,
        "storm degraded more than half the ops: {report}"
    );
    assert_eq!(report.ops + report.failed, report.attempted, "{report}");
}

#[test]
fn ring_drop_and_flap_storm_loses_nothing() {
    // Probabilistic loss on every link plus a scripted flap and a healed
    // outage. No replica dies, so nothing is shed or abandoned: the
    // session layer repairs every loss and all ops must ack.
    let faults = FaultSchedule::from_plan(FaultPlan::dropping(0.4))
        .flap(r(1), r(2), 0, 40, 40, 4)
        .sever(r(4), r(5), 50, 250);
    let report = run_serving_scenario(
        &topology::ring(6),
        &ServingScenarioConfig {
            sessions: 32,
            ops_per_session: 40,
            workers: 4,
            write_ratio: 0.3,
            zipf_theta: 0.5,
            seed: 29,
            faults,
            ..Default::default()
        },
    );
    assert_acked_contract(&report);
    assert_eq!(report.restarts, 0, "{report}");
    assert_eq!(
        report.ops, report.attempted,
        "drops must delay ops, not fail them: {report}"
    );
    assert_eq!(report.availability, 1.0, "{report}");
}

#[test]
fn write_heavy_storm_with_aggressive_compaction_double_applies_nothing() {
    // Satellite: restart in the middle of an in-flight `WriteMany` storm
    // with the recovery log compacting every couple of updates. The same
    // replica crashes twice, so recovery runs from a freshly compacted
    // snapshot both times. A double-applied replayed write breaks the
    // causal trace; a dropped acked write breaks the durability gate —
    // both verdicts must stay clean.
    let faults = FaultSchedule::none()
        .crash(r(1), 5, 150)
        .crash(r(1), 300, 450);
    let report = run_serving_scenario(
        &topology::clique_full(4, 2),
        &ServingScenarioConfig {
            sessions: 48,
            ops_per_session: 50,
            workers: 4,
            write_ratio: 0.8,
            zipf_theta: 1.0,
            seed: 71,
            flush_quantum: 8,
            faults,
            durability: Some(2),
            ..Default::default()
        },
    );
    assert_acked_contract(&report);
    assert_eq!(report.restarts, 2, "{report}");
    assert!(report.availability > 0.5, "{report}");
}

#[test]
fn fault_free_control_run_pays_nothing_for_resilience() {
    let report = run_serving_scenario(
        &topology::clique_full(4, 2),
        &ServingScenarioConfig {
            sessions: 32,
            ops_per_session: 40,
            workers: 4,
            write_ratio: 0.3,
            zipf_theta: 1.0,
            seed: 13,
            ..Default::default()
        },
    );
    assert_acked_contract(&report);
    assert_eq!(report.ops, 32 * 40, "{report}");
    assert_eq!(report.attempted, 32 * 40, "{report}");
    assert_eq!(report.availability, 1.0, "{report}");
    assert_eq!(report.stats.failovers, 0, "{report}");
    assert_eq!(report.stats.ops_shed, 0, "{report}");
    assert_eq!(report.stats.op_timeouts, 0, "{report}");
    assert_eq!(report.stats.writes_abandoned, 0, "{report}");
    assert_eq!(report.restarts, 0, "{report}");
    assert_eq!(report.failover_p50_ns, 0, "{report}");
}

#[test]
fn storms_are_deterministic_in_their_verdicts() {
    // The same seed and schedule must reproduce the same acked-op
    // contract — the property that makes a chaos failure debuggable.
    let mk = || {
        run_serving_scenario(
            &topology::ring(5),
            &ServingScenarioConfig {
                sessions: 20,
                ops_per_session: 30,
                workers: 2,
                write_ratio: 0.4,
                zipf_theta: 0.8,
                seed: 99,
                faults: FaultSchedule::from_plan(FaultPlan::dropping(0.25)).crash(r(2), 10, 300),
                durability: Some(4),
                ..Default::default()
            },
        )
    };
    let a = mk();
    let b = mk();
    assert_acked_contract(&a);
    assert_acked_contract(&b);
    assert_eq!(a.restarts, 1, "{a}");
    assert_eq!(b.restarts, 1, "{b}");
    // Thread scheduling may shift which ops land where, but the
    // contract verdicts and the schedule's shape are stable.
    assert_eq!(
        (a.consistent, a.session_violations, a.acked_write_loss),
        (b.consistent, b.session_violations, b.acked_write_loss)
    );
}
