//! Exhaustive interleaving exploration for the **client-server**
//! protocol (Appendix E) — the client-server counterpart of
//! [`explore`](crate::explore).
//!
//! Nondeterminism in the client-server architecture comes from two
//! sources: the order server-to-server updates are delivered, and the
//! order blocked client requests are served relative to those deliveries.
//! The explorer branches over both. Each client is sequential (its ops
//! fire in script order); cross-client causality can be scripted with
//! explicit preconditions.

use crate::message::{Metadata, UpdateMsg};
use crate::value::Value;
use prcc_checker::{check, Trace, UpdateId};
use prcc_sharegraph::{AugmentedShareGraph, ClientId, RegisterId, ReplicaId};
use prcc_timestamp::{ClientTimestamp, ClientTsRegistry, EdgeTimestamp};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// One scripted client operation (a write; reads don't alter server state
/// beyond `μ` merges, and writes subsume their gating behaviour).
#[derive(Debug, Clone)]
pub struct CsOp {
    /// The issuing client.
    pub client: ClientId,
    /// The target replica (must be in `R_c`).
    pub replica: ReplicaId,
    /// The register to write (must be stored at `replica`).
    pub register: RegisterId,
    /// Script indices (across all clients) that must have been *served*
    /// before this op may fire. Same-client order is implicit.
    pub after_served: Vec<usize>,
}

/// A client-server exploration scenario.
pub struct CsScenario {
    aug: AugmentedShareGraph,
    reg: Arc<ClientTsRegistry>,
    ops: Vec<CsOp>,
    max_states: usize,
}

impl fmt::Debug for CsScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsScenario")
            .field("ops", &self.ops.len())
            .finish()
    }
}

impl CsScenario {
    /// Starts a scenario over an augmented share graph.
    pub fn new(aug: AugmentedShareGraph) -> Self {
        let reg = Arc::new(ClientTsRegistry::new(&aug));
        CsScenario {
            aug,
            reg,
            ops: Vec::new(),
            max_states: 500_000,
        }
    }

    /// Adds a write op; returns its script index.
    ///
    /// # Panics
    ///
    /// Panics if `replica ∉ R_c`, the register is not stored there, or a
    /// precondition index is out of range.
    pub fn write_after<I: IntoIterator<Item = usize>>(
        &mut self,
        client: ClientId,
        replica: ReplicaId,
        register: RegisterId,
        after: I,
    ) -> usize {
        let rs = self
            .aug
            .clients()
            .replicas_of(client)
            .unwrap_or_else(|| panic!("unknown client {client}"));
        assert!(rs.contains(&replica), "replica {replica} not in R_{client}");
        assert!(
            self.aug.base().placement().stores(replica, register),
            "register {register} not stored at {replica}"
        );
        let after_served: Vec<usize> = after.into_iter().collect();
        for &a in &after_served {
            assert!(a < self.ops.len(), "precondition {a} out of range");
        }
        self.ops.push(CsOp {
            client,
            replica,
            register,
            after_served,
        });
        self.ops.len() - 1
    }

    /// Adds an unconditioned write; returns its script index.
    pub fn write(&mut self, client: ClientId, replica: ReplicaId, register: RegisterId) -> usize {
        self.write_after(client, replica, register, [])
    }

    /// Caps the number of distinct states explored.
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Explores all interleavings of deliveries and request service.
    pub fn explore(&self) -> crate::explore::ExplorationResult {
        let mut ex = CsExplorer {
            scenario: self,
            visited: HashSet::new(),
            states: 0,
            executions: 0,
            violations: 0,
            counterexample: None,
            truncated: false,
        };
        let init = ex.initial_state();
        ex.dfs(init);
        crate::explore::ExplorationResult {
            states: ex.states,
            executions: ex.executions,
            violations: ex.violations,
            counterexample: ex.counterexample,
            truncated: ex.truncated,
        }
    }
}

#[derive(Clone)]
struct SrvState {
    tau: EdgeTimestamp,
    pending: Vec<UpdateMsg>,
    next_seq: u64,
    apply_order: Vec<UpdateId>,
}

#[derive(Clone)]
struct CsState {
    servers: Vec<SrvState>,
    clients: HashMap<ClientId, ClientTimestamp>,
    in_flight: Vec<(ReplicaId, UpdateMsg)>,
    served: Vec<bool>,
    serve_order: Vec<usize>,
    trace: Trace,
}

impl CsState {
    fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for s in &self.servers {
            s.next_seq.hash(&mut h);
            s.pending.len().hash(&mut h);
            for u in &s.apply_order {
                (u.issuer.raw(), u.seq).hash(&mut h);
            }
            u64::MAX.hash(&mut h);
        }
        let mut fl: Vec<(u32, u32, u64)> = self
            .in_flight
            .iter()
            .map(|(d, m)| (d.raw(), m.issuer.raw(), m.seq))
            .collect();
        fl.sort_unstable();
        fl.hash(&mut h);
        self.serve_order.hash(&mut h);
        h.finish()
    }
}

struct CsExplorer<'a> {
    scenario: &'a CsScenario,
    visited: HashSet<u64>,
    states: usize,
    executions: usize,
    violations: usize,
    counterexample: Option<String>,
    truncated: bool,
}

impl CsExplorer<'_> {
    fn initial_state(&self) -> CsState {
        let aug = &self.scenario.aug;
        let reg = &self.scenario.reg;
        CsState {
            servers: aug
                .base()
                .replicas()
                .map(|i| SrvState {
                    tau: reg.peer().new_timestamp(i),
                    pending: Vec::new(),
                    next_seq: 0,
                    apply_order: Vec::new(),
                })
                .collect(),
            clients: aug
                .clients()
                .clients()
                .iter()
                .map(|(c, _)| (*c, reg.new_client_timestamp(*c)))
                .collect(),
            in_flight: Vec::new(),
            served: vec![false; self.scenario.ops.len()],
            serve_order: Vec::new(),
            trace: Trace::new(),
        }
    }

    /// Op `k` is enabled when its client-session predecessor and explicit
    /// preconditions are served AND predicate `J₂` admits it now.
    fn enabled_ops(&self, st: &CsState) -> Vec<usize> {
        let ops = &self.scenario.ops;
        (0..ops.len())
            .filter(|&k| {
                if st.served[k] {
                    return false;
                }
                let op = &ops[k];
                // Session order: previous op by the same client served.
                if let Some(prev) = (0..k).rev().find(|&p| ops[p].client == op.client) {
                    if !st.served[prev] {
                        return false;
                    }
                }
                if !op.after_served.iter().all(|&p| st.served[p]) {
                    return false;
                }
                let srv = &st.servers[op.replica.index()];
                self.scenario
                    .reg
                    .request_ready(&srv.tau, &st.clients[&op.client])
            })
            .collect()
    }

    fn serve(&self, st: &mut CsState, k: usize) {
        let op = &self.scenario.ops[k];
        let reg = &self.scenario.reg;
        let g = self.scenario.aug.base();
        let mu = st.clients[&op.client].clone();
        let srv = &mut st.servers[op.replica.index()];
        reg.advance_for_client(&mut srv.tau, &mu, op.register, g);
        let seq = srv.next_seq;
        srv.next_seq += 1;
        let uid = UpdateId {
            issuer: op.replica,
            seq,
        };
        st.trace.record_issue_with_id(uid, op.register);
        let msg = UpdateMsg {
            issuer: op.replica,
            seq,
            register: op.register,
            value: Some(Value::from(k as u64)),
            meta: std::sync::Arc::new(Metadata::Edge(srv.tau.clone())),
            transit: None,
        };
        let tau = srv.tau.clone();
        for &h in g.placement().holders(op.register) {
            if h != op.replica {
                st.in_flight.push((h, msg.clone()));
            }
        }
        let mu_c = st.clients.get_mut(&op.client).expect("known client");
        reg.merge_into_client(mu_c, &tau);
        st.served[k] = true;
        st.serve_order.push(k);
    }

    /// Delivers in-flight message `idx` at its destination, draining the
    /// pending buffer per `J₃`.
    fn deliver(&self, st: &mut CsState, idx: usize) {
        let (dst, msg) = st.in_flight.swap_remove(idx);
        let reg = &self.scenario.reg;
        st.servers[dst.index()].pending.push(msg);
        loop {
            let srv = &st.servers[dst.index()];
            let Some(pos) = srv.pending.iter().position(|m| match &*m.meta {
                Metadata::Edge(t) => reg.peer().ready(&srv.tau, m.issuer, t),
                _ => false,
            }) else {
                break;
            };
            let m = st.servers[dst.index()].pending.remove(pos);
            if let Metadata::Edge(t) = &*m.meta {
                let srv = &mut st.servers[dst.index()];
                reg.peer().merge(&mut srv.tau, m.issuer, t);
            }
            let uid = UpdateId {
                issuer: m.issuer,
                seq: m.seq,
            };
            st.trace.record_apply(uid, dst);
            st.servers[dst.index()].apply_order.push(uid);
        }
    }

    fn dfs(&mut self, st: CsState) {
        if self.states >= self.scenario.max_states {
            self.truncated = true;
            return;
        }
        let fp = st.fingerprint();
        if !self.visited.insert(fp) {
            return;
        }
        self.states += 1;

        let enabled = self.enabled_ops(&st);
        if enabled.is_empty() && st.in_flight.is_empty() {
            self.executions += 1;
            let all_served = st.served.iter().all(|&s| s);
            let rep = check(&st.trace, self.scenario.aug.base().placement());
            if !rep.is_consistent() || !all_served {
                self.violations += 1;
                if self.counterexample.is_none() {
                    self.counterexample = Some(if !all_served {
                        "some client requests starve".to_owned()
                    } else {
                        rep.violations[0].to_string()
                    });
                }
            }
            return;
        }
        for k in enabled {
            let mut next = st.clone();
            self.serve(&mut next, k);
            self.dfs(next);
        }
        for idx in 0..st.in_flight.len() {
            let mut next = st.clone();
            self.deliver(&mut next, idx);
            self.dfs(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::{topology, ClientAssignment};

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    fn spanning_aug() -> AugmentedShareGraph {
        let g = topology::path(3);
        let mut clients = ClientAssignment::new(3);
        clients.assign(c(0), [r(0), r(2)]);
        clients.assign(c(1), [r(1)]);
        AugmentedShareGraph::new(g, clients)
    }

    #[test]
    fn single_session_verified() {
        let mut s = CsScenario::new(spanning_aug());
        s.write(c(0), r(0), x(0));
        s.write(c(0), r(2), x(1)); // session order implicit
        let res = s.explore();
        assert!(res.verified(), "{res}");
        assert!(res.states > 1);
    }

    #[test]
    fn cross_client_dependency_verified() {
        let mut s = CsScenario::new(spanning_aug());
        let w0 = s.write(c(0), r(0), x(0));
        s.write_after(c(1), r(1), x(1), [w0]);
        let res = s.explore();
        assert!(res.verified(), "{res}");
    }

    #[test]
    fn migrating_client_all_interleavings() {
        // The mobile client alternates ends twice; every delivery/serve
        // interleaving must stay consistent and serve everything.
        let mut s = CsScenario::new(spanning_aug());
        s.write(c(0), r(0), x(0));
        s.write(c(0), r(2), x(1));
        s.write(c(0), r(0), x(0));
        s.write(c(1), r(1), x(0));
        let res = s.explore();
        assert!(res.verified(), "{res}");
        assert!(res.executions >= 1);
    }

    #[test]
    #[should_panic(expected = "not in R_")]
    fn foreign_replica_rejected() {
        let mut s = CsScenario::new(spanning_aug());
        s.write(c(1), r(0), x(0));
    }

    #[test]
    fn state_cap_reports_truncation() {
        let mut s = CsScenario::new(spanning_aug()).max_states(2);
        s.write(c(0), r(0), x(0));
        s.write(c(1), r(1), x(1));
        let res = s.explore();
        assert!(res.truncated);
    }
}
