//! The replica state machine — the algorithm prototype of Section 2.1.
//!
//! A [`Replica`] owns the local copies of its registers, a pluggable
//! [`CausalityTracker`], and the `pending` buffer of undeliverable
//! updates. It is transport-agnostic: `write` returns the update messages
//! to send, `receive` ingests one and returns every update that became
//! applicable (step 4 loops until the predicate admits nothing more).

use crate::message::UpdateMsg;
use crate::tracker::CausalityTracker;
use crate::value::Value;
use prcc_sharegraph::{RegisterId, ReplicaId};
use std::collections::HashMap;
use std::fmt;

/// Errors returned by replica operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// The register is not stored at this replica.
    NotStored {
        /// The offending register.
        register: RegisterId,
        /// This replica.
        replica: ReplicaId,
    },
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::NotStored { register, replica } => {
                write!(f, "register {register} is not stored at replica {replica}")
            }
        }
    }
}

impl std::error::Error for ReplicaError {}

/// An update that was applied during [`Replica::receive`], with the
/// number of pending-queue passes it waited (0 = applied immediately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Applied {
    /// The applied update.
    pub msg: UpdateMsg,
}

/// The replica prototype: local store + tracker + pending buffer.
///
/// # Examples
///
/// ```
/// use prcc_core::{Replica, EdgeTracker, Value};
/// use prcc_sharegraph::{topology, LoopConfig, TimestampGraphs, ReplicaId, RegisterId};
/// use prcc_timestamp::TsRegistry;
/// use std::sync::Arc;
///
/// let g = topology::path(2);
/// let reg = Arc::new(TsRegistry::new(&g, TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE)));
/// let r0 = ReplicaId::new(0);
/// let mut replica = Replica::new(
///     r0,
///     g.placement().registers_of(r0).clone(),
///     Box::new(EdgeTracker::new(reg.clone(), r0)),
/// );
/// let (msg, recipients) = replica
///     .write(RegisterId::new(0), Value::from(7u64), vec![ReplicaId::new(1)])
///     .unwrap();
/// assert_eq!(recipients, vec![ReplicaId::new(1)]);
/// assert_eq!(msg.seq, 0);
/// assert_eq!(replica.read(RegisterId::new(0)), Some(&Value::from(7u64)));
/// ```
#[derive(Clone)]
pub struct Replica {
    id: ReplicaId,
    /// Registers actually stored here (data, not dummies).
    stores: prcc_sharegraph::RegSet,
    tracker: Box<dyn CausalityTracker>,
    store: HashMap<RegisterId, Value>,
    pending: Vec<UpdateMsg>,
    next_seq: u64,
    applied_count: u64,
}

impl fmt::Debug for Replica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("pending", &self.pending.len())
            .field("applied", &self.applied_count)
            .field("tracker", &self.tracker)
            .finish()
    }
}

impl Replica {
    /// Creates a replica storing `stores`, tracking causality with
    /// `tracker`.
    pub fn new(
        id: ReplicaId,
        stores: prcc_sharegraph::RegSet,
        tracker: Box<dyn CausalityTracker>,
    ) -> Self {
        Replica {
            id,
            stores,
            tracker,
            store: HashMap::new(),
            pending: Vec::new(),
            next_seq: 0,
            applied_count: 0,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Step 1: serve a local read.
    pub fn read(&self, x: RegisterId) -> Option<&Value> {
        self.store.get(&x)
    }

    /// True if this replica stores `x` (as data).
    pub fn stores(&self, x: RegisterId) -> bool {
        self.stores.contains(x)
    }

    /// Step 2: serve a local write. Writes the local copy, advances the
    /// timestamp, and returns the update message to distribute to
    /// `recipients` (the caller decides who those are — plain holders, or
    /// holders plus dummy-register subscribers).
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NotStored`] if `x ∉ X_i`.
    pub fn write(
        &mut self,
        x: RegisterId,
        v: Value,
        recipients: Vec<ReplicaId>,
    ) -> Result<(UpdateMsg, Vec<ReplicaId>), ReplicaError> {
        if !self.stores.contains(x) {
            return Err(ReplicaError::NotStored {
                register: x,
                replica: self.id,
            });
        }
        self.store.insert(x, v.clone());
        let meta = self.tracker.on_local_write(x);
        let msg = UpdateMsg {
            issuer: self.id,
            seq: self.next_seq,
            register: x,
            value: Some(v),
            meta,
            transit: None,
        };
        self.next_seq += 1;
        Ok((msg, recipients))
    }

    /// Like [`write`](Self::write) but for issuing a metadata-carrying
    /// update the replica does not store data for (virtual registers in
    /// the routed protocol, Appendix D). The register must still be part
    /// of the tracker's share graph.
    pub fn issue_virtual(&mut self, x: RegisterId, v: Option<Value>) -> UpdateMsg {
        let meta = self.tracker.on_local_write(x);
        let msg = UpdateMsg {
            issuer: self.id,
            seq: self.next_seq,
            register: x,
            value: v,
            meta,
            transit: None,
        };
        self.next_seq += 1;
        msg
    }

    /// Steps 3–4: ingest one update message, then drain the pending buffer
    /// until the predicate admits nothing further. Returns all updates
    /// applied by this call, in application order.
    pub fn receive(&mut self, msg: UpdateMsg) -> Vec<Applied> {
        self.pending.push(msg);
        let mut applied = Vec::new();
        loop {
            let Some(pos) = self
                .pending
                .iter()
                .position(|m| self.tracker.ready(m))
            else {
                break;
            };
            let m = self.pending.swap_remove(pos);
            self.apply(&m);
            applied.push(Applied { msg: m });
        }
        applied
    }

    fn apply(&mut self, m: &UpdateMsg) {
        if let Some(v) = &m.value {
            if self.stores.contains(m.register) {
                self.store.insert(m.register, v.clone());
            }
        }
        self.tracker.on_apply(m);
        self.applied_count += 1;
    }

    /// Writes `v` into the local copy of `x` without protocol actions —
    /// used by the routed protocol when a transit payload reaches its
    /// final holder (the timestamp work happened on the virtual-register
    /// updates).
    pub(crate) fn store_local(&mut self, x: RegisterId, v: Value) {
        self.store.insert(x, v);
    }

    /// Number of updates applied from remote replicas.
    pub fn applied_count(&self) -> u64 {
        self.applied_count
    }

    /// Updates currently buffered (predicate not yet satisfied).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The pending messages (for diagnostics).
    pub fn pending(&self) -> &[UpdateMsg] {
        &self.pending
    }

    /// The tracker (for size accounting and inspection).
    pub fn tracker(&self) -> &dyn CausalityTracker {
        self.tracker.as_ref()
    }

    /// Current metadata of this replica as attached to a hypothetical next
    /// message (without advancing) — unavailable generically; use
    /// [`Self::tracker`] sizes instead. Provided for symmetry in tests.
    pub fn timestamp_bytes(&self) -> usize {
        self.tracker.timestamp_bytes()
    }
}

/// What a successful write produces: the update message and its
/// recipients.
pub type WriteOutput = (UpdateMsg, Vec<ReplicaId>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::EdgeTracker;
    use prcc_sharegraph::{topology, LoopConfig, RegSet, TimestampGraphs};
    use prcc_timestamp::TsRegistry;
    use std::sync::Arc;

    fn pair() -> (Replica, Replica) {
        let g = topology::path(2);
        let reg = Arc::new(TsRegistry::new(
            &g,
            TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE),
        ));
        let mk = |i: u32| {
            let id = ReplicaId::new(i);
            Replica::new(
                id,
                g.placement().registers_of(id).clone(),
                Box::new(EdgeTracker::new(reg.clone(), id)) as Box<dyn CausalityTracker>,
            )
        };
        (mk(0), mk(1))
    }

    #[test]
    fn write_then_deliver() {
        let (mut a, mut b) = pair();
        let (msg, _) = a
            .write(RegisterId::new(0), Value::from(5u64), vec![b.id()])
            .unwrap();
        let applied = b.receive(msg);
        assert_eq!(applied.len(), 1);
        assert_eq!(b.read(RegisterId::new(0)), Some(&Value::from(5u64)));
        assert_eq!(b.applied_count(), 1);
        assert_eq!(b.pending_count(), 0);
    }

    #[test]
    fn out_of_order_buffered_then_drained() {
        let (mut a, mut b) = pair();
        let (m1, _) = a
            .write(RegisterId::new(0), Value::from(1u64), vec![b.id()])
            .unwrap();
        let (m2, _) = a
            .write(RegisterId::new(0), Value::from(2u64), vec![b.id()])
            .unwrap();
        // Deliver out of order.
        assert!(b.receive(m2).is_empty());
        assert_eq!(b.pending_count(), 1);
        let applied = b.receive(m1);
        assert_eq!(applied.len(), 2);
        assert_eq!(applied[0].msg.seq, 0);
        assert_eq!(applied[1].msg.seq, 1);
        // Final value is the later write.
        assert_eq!(b.read(RegisterId::new(0)), Some(&Value::from(2u64)));
    }

    #[test]
    fn write_unstored_register_rejected() {
        let (mut a, _) = pair();
        let err = a
            .write(RegisterId::new(9), Value::from(0u64), vec![])
            .unwrap_err();
        assert!(matches!(err, ReplicaError::NotStored { .. }));
        assert!(err.to_string().contains("not stored"));
    }

    #[test]
    fn metadata_only_update_skips_store() {
        let (mut a, mut b) = pair();
        let (mut msg, _) = a
            .write(RegisterId::new(0), Value::from(1u64), vec![b.id()])
            .unwrap();
        msg.value = None; // simulate a dummy-register delivery
        let applied = b.receive(msg);
        assert_eq!(applied.len(), 1);
        assert_eq!(b.read(RegisterId::new(0)), None);
    }

    #[test]
    fn value_for_unstored_register_not_written() {
        let (mut a, _) = pair();
        // Build a replica that doesn't store register 0.
        let g = topology::path(2);
        let reg = Arc::new(TsRegistry::new(
            &g,
            TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE),
        ));
        let mut stranger = Replica::new(
            ReplicaId::new(1),
            RegSet::new(), // stores nothing
            Box::new(EdgeTracker::new(reg, ReplicaId::new(1))),
        );
        let (msg, _) = a
            .write(RegisterId::new(0), Value::from(1u64), vec![])
            .unwrap();
        stranger.receive(msg);
        assert_eq!(stranger.read(RegisterId::new(0)), None);
    }

    #[test]
    fn seq_numbers_increase() {
        let (mut a, _) = pair();
        for i in 0..3 {
            let (m, _) = a
                .write(RegisterId::new(0), Value::from(i as u64), vec![])
                .unwrap();
            assert_eq!(m.seq, i);
        }
        let virt = a.issue_virtual(RegisterId::new(0), None);
        assert_eq!(virt.seq, 3);
    }

    #[test]
    fn debug_output_nonempty() {
        let (a, _) = pair();
        let s = format!("{a:?}");
        assert!(s.contains("Replica"));
    }
}
