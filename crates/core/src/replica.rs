//! The replica state machine — the algorithm prototype of Section 2.1.
//!
//! A [`Replica`] owns the local copies of its registers, a pluggable
//! [`CausalityTracker`], and the `pending` buffer of undeliverable
//! updates. It is transport-agnostic: `write` returns the update messages
//! to send, `receive` ingests one and returns every update that became
//! applicable (step 4 loops until the predicate admits nothing more).
//!
//! # Pending-delivery scheduling
//!
//! Both scheduling modes implement the same specification — *repeatedly
//! apply the earliest-arrived pending update whose predicate `J` holds* —
//! so they produce identical apply orders:
//!
//! * [`PendingMode::Scan`] re-evaluates `J` over the whole buffer, in
//!   arrival order, after every apply (the obvious implementation;
//!   quadratic predicate evaluations on a reversed burst);
//! * [`PendingMode::Wakeup`] (default) evaluates `J` once on arrival and,
//!   if the update is blocked, parks it under the first unsatisfied
//!   `(counter slot, needed value)` requirement its tracker reports. A
//!   parked update is woken — re-evaluated — iff one of its blocking
//!   counters advanced during a merge, so a reversed burst of `n` updates
//!   costs `O(n)` predicate evaluations instead of `O(n²)`.
//!
//! [`Replica::predicate_evals`] counts evaluations in both modes; the
//! `pending_drain` bench in `prcc-bench` measures the gap.

use crate::message::UpdateMsg;
use crate::store_cow::CowStore;
use crate::tracker::{CausalityTracker, ReadyCheck};
use crate::value::Value;
use prcc_checker::UpdateId;
use prcc_sharegraph::{RegisterId, ReplicaId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Errors returned by replica operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// The register is not stored at this replica.
    NotStored {
        /// The offending register.
        register: RegisterId,
        /// This replica.
        replica: ReplicaId,
    },
    /// The replica is crashed (between a scripted crash and its
    /// restart) and cannot serve operations.
    Crashed {
        /// This replica.
        replica: ReplicaId,
    },
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::NotStored { register, replica } => {
                write!(f, "register {register} is not stored at replica {replica}")
            }
            ReplicaError::Crashed { replica } => {
                write!(f, "replica {replica} is crashed")
            }
        }
    }
}

impl std::error::Error for ReplicaError {}

/// An update that was applied during [`Replica::receive`], with the
/// number of pending-queue passes it waited (0 = applied immediately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Applied {
    /// The applied update.
    pub msg: UpdateMsg,
}

/// How a [`Replica`] schedules its pending buffer (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PendingMode {
    /// Re-scan the whole buffer after every apply (ablation oracle).
    Scan,
    /// Dependency-counting wakeup index (default).
    #[default]
    Wakeup,
}

/// One buffered update plus its arrival order.
#[derive(Debug, Clone)]
struct Parked {
    arrival: u64,
    msg: UpdateMsg,
}

/// The wakeup index over parked updates. All maps key messages by their
/// arrival sequence number; `msgs` owns the messages themselves.
///
/// Invariant: a parked message is woken (re-evaluated) iff one of its
/// blocking counters advanced. Each parked message is in exactly one
/// place: `waiting[slot]` (tracker reported `BlockedOn{slot, ..}`),
/// `unknown` (tracker cannot localize the block; re-woken after every
/// apply), or `dead` (never deliverable; kept only for accounting, like
/// the scan mode's perpetually-unready messages).
#[derive(Debug, Clone, Default)]
struct WakeupIndex {
    msgs: HashMap<u64, Parked>,
    /// Per counter slot: `(needed value, arrival)` of blocked messages.
    waiting: HashMap<usize, Vec<(u64, u64)>>,
    /// Arrivals blocked for non-localizable reasons.
    unknown: Vec<u64>,
    /// Arrivals that can never become deliverable.
    dead: Vec<u64>,
}

/// The replica prototype: local store + tracker + pending buffer.
///
/// # Examples
///
/// ```
/// use prcc_core::{Replica, EdgeTracker, Value};
/// use prcc_sharegraph::{topology, LoopConfig, TimestampGraphs, ReplicaId, RegisterId};
/// use prcc_timestamp::TsRegistry;
/// use std::sync::Arc;
///
/// let g = topology::path(2);
/// let reg = Arc::new(TsRegistry::new(&g, TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE)));
/// let r0 = ReplicaId::new(0);
/// let mut replica = Replica::new(
///     r0,
///     g.placement().registers_of(r0).clone(),
///     Box::new(EdgeTracker::new(reg.clone(), r0)),
/// );
/// let (msg, recipients) = replica
///     .write(RegisterId::new(0), Value::from(7u64), vec![ReplicaId::new(1)])
///     .unwrap();
/// assert_eq!(recipients, vec![ReplicaId::new(1)]);
/// assert_eq!(msg.seq, 0);
/// assert_eq!(replica.read(RegisterId::new(0)), Some(&Value::from(7u64)));
/// ```
#[derive(Clone)]
pub struct Replica {
    id: ReplicaId,
    /// Registers actually stored here (data, not dummies).
    stores: prcc_sharegraph::RegSet,
    tracker: Box<dyn CausalityTracker>,
    /// Value + provenance, sharded for O(Δ) copy-on-write publishes
    /// (the provenance is what the serving tier's session-guarantee
    /// fast path reads from published snapshots).
    store: CowStore,
    mode: PendingMode,
    /// Scan mode: buffered updates in arrival order.
    pending: Vec<Parked>,
    /// Wakeup mode: the dependency-counting index.
    wakeup: WakeupIndex,
    /// Monotone arrival stamp shared by both modes.
    next_arrival: u64,
    /// Predicate-`J` evaluations performed so far (both modes).
    predicate_evals: u64,
    next_seq: u64,
    applied_count: u64,
    /// Updates admitted through the once-per-batch fast path.
    batch_fast_applies: u64,
}

impl fmt::Debug for Replica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("mode", &self.mode)
            .field("pending", &self.pending_count())
            .field("applied", &self.applied_count)
            .field("tracker", &self.tracker)
            .finish()
    }
}

impl Replica {
    /// Creates a replica storing `stores`, tracking causality with
    /// `tracker`, scheduling pending delivery with the default
    /// [`PendingMode::Wakeup`] index.
    pub fn new(
        id: ReplicaId,
        stores: prcc_sharegraph::RegSet,
        tracker: Box<dyn CausalityTracker>,
    ) -> Self {
        Self::new_with_mode(id, stores, tracker, PendingMode::default())
    }

    /// [`Replica::new`] with an explicit [`PendingMode`] — `Scan` is the
    /// differential-testing oracle and ablation baseline.
    pub fn new_with_mode(
        id: ReplicaId,
        stores: prcc_sharegraph::RegSet,
        tracker: Box<dyn CausalityTracker>,
        mode: PendingMode,
    ) -> Self {
        Replica {
            id,
            store: CowStore::new(stores.len()),
            stores,
            tracker,
            mode,
            pending: Vec::new(),
            wakeup: WakeupIndex::default(),
            next_arrival: 0,
            predicate_evals: 0,
            next_seq: 0,
            applied_count: 0,
            batch_fast_applies: 0,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Step 1: serve a local read.
    pub fn read(&self, x: RegisterId) -> Option<&Value> {
        self.store.get(x)
    }

    /// A full clone of the local store. The threaded runtime's
    /// [`StoreMode::Clone`](crate::StoreMode) oracle publishes this as
    /// an immutable read snapshot after every state change; the default
    /// COW path shares shards via [`Replica::store_cow`] instead.
    pub fn store_snapshot(&self) -> HashMap<RegisterId, Value> {
        self.store.flat_store()
    }

    /// Per-register provenance: the update whose value each stored
    /// register currently holds. Registers written through the routed
    /// protocol's payload path ([`Replica::store_local`]) have no entry —
    /// their producing update is not known to this replica.
    pub fn store_src(&self) -> HashMap<RegisterId, UpdateId> {
        self.store.flat_src()
    }

    /// The sharded copy-on-write store itself — the threaded runtime
    /// publishes O(Δ) snapshots from it via [`CowStore::share`].
    pub fn store_cow(&self) -> &CowStore {
        &self.store
    }

    /// True if this replica stores `x` (as data).
    pub fn stores(&self, x: RegisterId) -> bool {
        self.stores.contains(x)
    }

    /// Step 2: serve a local write. Writes the local copy, advances the
    /// timestamp, and returns the update message to distribute to
    /// `recipients` (the caller decides who those are — plain holders, or
    /// holders plus dummy-register subscribers).
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NotStored`] if `x ∉ X_i`.
    pub fn write(
        &mut self,
        x: RegisterId,
        v: Value,
        recipients: Vec<ReplicaId>,
    ) -> Result<(UpdateMsg, Vec<ReplicaId>), ReplicaError> {
        if !self.stores.contains(x) {
            return Err(ReplicaError::NotStored {
                register: x,
                replica: self.id,
            });
        }
        self.store.insert(
            x,
            v.clone(),
            Some(UpdateId {
                issuer: self.id,
                seq: self.next_seq,
            }),
        );
        let meta = std::sync::Arc::new(self.tracker.on_local_write(x));
        let msg = UpdateMsg {
            issuer: self.id,
            seq: self.next_seq,
            register: x,
            value: Some(v),
            meta,
            transit: None,
        };
        self.next_seq += 1;
        Ok((msg, recipients))
    }

    /// Like [`write`](Self::write) but for issuing a metadata-carrying
    /// update the replica does not store data for (virtual registers in
    /// the routed protocol, Appendix D). The register must still be part
    /// of the tracker's share graph.
    pub fn issue_virtual(&mut self, x: RegisterId, v: Option<Value>) -> UpdateMsg {
        let meta = std::sync::Arc::new(self.tracker.on_local_write(x));
        let msg = UpdateMsg {
            issuer: self.id,
            seq: self.next_seq,
            register: x,
            value: v,
            meta,
            transit: None,
        };
        self.next_seq += 1;
        msg
    }

    /// Steps 3–4: ingest one update message, then drain the pending buffer
    /// until the predicate admits nothing further. Returns all updates
    /// applied by this call, in application order.
    ///
    /// Both modes apply the same deterministic order: the earliest-arrived
    /// ready update first, re-deciding after every apply.
    pub fn receive(&mut self, msg: UpdateMsg) -> Vec<Applied> {
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        let parked = Parked { arrival, msg };
        match self.mode {
            PendingMode::Scan => self.drain_scan(parked),
            PendingMode::Wakeup => self.drain_wakeup(parked),
        }
    }

    /// Batched steps 3–4: ingest a run of consecutive updates from one
    /// issuer (one pair stream, send order) as a unit.
    ///
    /// **Fast path** — taken when nothing parked could still become
    /// deliverable (no `waiting`/`unknown` entries; dead-parked
    /// duplicates don't count) *and* the tracker's batched predicate
    /// ([`CausalityTracker::batch_ready`]) admits the whole run: every
    /// update's store write is applied in order, the frontier is merged
    /// **once** (the last update's metadata — equal to `k` sequential
    /// merges because sender stamps are pointwise monotone along the
    /// stream), and no wakeup pass runs at all (nothing is parked that an
    /// advance could wake). The resulting replica state and apply order
    /// are byte-identical to calling [`Replica::receive`] per message;
    /// only `predicate_evals` differs (one batched evaluation).
    ///
    /// **Fallback** — any other situation (blocked batch, live parked
    /// updates, trackers without batch evaluation): per-message
    /// [`Replica::receive`], i.e. exactly the unbatched oracle.
    pub fn receive_batch(&mut self, msgs: Vec<UpdateMsg>) -> Vec<Applied> {
        let nothing_live_parked = match self.mode {
            PendingMode::Wakeup => {
                self.wakeup.unknown.is_empty() && self.wakeup.waiting.values().all(Vec::is_empty)
            }
            // Scan keeps dead messages in the same buffer as blocked
            // ones, so any parked message disables the fast path.
            PendingMode::Scan => self.pending.is_empty(),
        };
        if msgs.len() > 1 && nothing_live_parked && self.tracker.batch_ready(&msgs) == Some(true) {
            self.predicate_evals += 1;
            self.batch_fast_applies += msgs.len() as u64;
            let last = msgs.len() - 1;
            let mut applied = Vec::with_capacity(msgs.len());
            for (i, m) in msgs.into_iter().enumerate() {
                self.next_arrival += 1;
                self.apply_store(&m);
                if i == last {
                    self.tracker.on_apply(&m);
                }
                self.applied_count += 1;
                applied.push(Applied { msg: m });
            }
            applied
        } else {
            let mut applied = Vec::new();
            for m in msgs {
                applied.extend(self.receive(m));
            }
            applied
        }
    }

    /// Scan mode: after every apply, re-evaluate `J` over the whole buffer
    /// from the front (arrival order) and apply the first ready update.
    fn drain_scan(&mut self, parked: Parked) -> Vec<Applied> {
        self.pending.push(parked);
        let mut applied = Vec::new();
        loop {
            let mut found = None;
            for (pos, p) in self.pending.iter().enumerate() {
                self.predicate_evals += 1;
                if self.tracker.ready(&p.msg) {
                    found = Some(pos);
                    break;
                }
            }
            let Some(pos) = found else { break };
            // Stable removal keeps the remaining buffer in arrival order.
            let p = self.pending.remove(pos);
            self.apply(&p.msg);
            applied.push(Applied { msg: p.msg });
        }
        applied
    }

    /// Wakeup mode: evaluate `J` once per wake, parking blocked updates
    /// under their first unsatisfied counter requirement. An apply's merge
    /// reports which counters advanced; only their waiters (plus the
    /// non-localizable `unknown` bucket) are woken. Woken candidates are
    /// processed in arrival order via a min-heap, which reproduces the
    /// scan order exactly: every ready update is always in the heap, so
    /// the earliest-arrived ready update is applied first.
    fn drain_wakeup(&mut self, parked: Parked) -> Vec<Applied> {
        let mut candidates: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
        candidates.push(Reverse(parked.arrival));
        self.wakeup.msgs.insert(parked.arrival, parked);

        let mut applied = Vec::new();
        let mut advanced: Vec<(usize, u64)> = Vec::new();
        while let Some(Reverse(arrival)) = candidates.pop() {
            let p = &self.wakeup.msgs[&arrival];
            self.predicate_evals += 1;
            match self.tracker.ready_check(&p.msg) {
                ReadyCheck::Ready => {
                    let p = self.wakeup.msgs.remove(&arrival).expect("candidate parked");
                    advanced.clear();
                    self.apply_report(&p.msg, &mut advanced);
                    applied.push(Applied { msg: p.msg });
                    // Wake the waiters of every advanced counter…
                    for &(slot, new_value) in &advanced {
                        if let Some(waiters) = self.wakeup.waiting.get_mut(&slot) {
                            waiters.retain(|&(needs, a)| {
                                if needs <= new_value {
                                    candidates.push(Reverse(a));
                                    false
                                } else {
                                    true
                                }
                            });
                        }
                    }
                    // …and everything blocked for unlocalized reasons.
                    for a in self.wakeup.unknown.drain(..) {
                        candidates.push(Reverse(a));
                    }
                }
                ReadyCheck::BlockedOn { slot, needs } => {
                    self.wakeup
                        .waiting
                        .entry(slot)
                        .or_default()
                        .push((needs, arrival));
                }
                ReadyCheck::BlockedUnknown => self.wakeup.unknown.push(arrival),
                ReadyCheck::Dead => self.wakeup.dead.push(arrival),
            }
        }
        applied
    }

    fn apply(&mut self, m: &UpdateMsg) {
        self.apply_store(m);
        self.tracker.on_apply(m);
        self.applied_count += 1;
    }

    fn apply_report(&mut self, m: &UpdateMsg, advanced: &mut Vec<(usize, u64)>) {
        self.apply_store(m);
        self.tracker.on_apply_report(m, advanced);
        self.applied_count += 1;
    }

    fn apply_store(&mut self, m: &UpdateMsg) {
        if let Some(v) = &m.value {
            if self.stores.contains(m.register) {
                self.store.insert(
                    m.register,
                    v.clone(),
                    Some(UpdateId {
                        issuer: m.issuer,
                        seq: m.seq,
                    }),
                );
            }
        }
    }

    /// Writes `v` into the local copy of `x` without protocol actions —
    /// used by the routed protocol when a transit payload reaches its
    /// final holder (the timestamp work happened on the virtual-register
    /// updates). Clears the provenance entry: the producing update is
    /// unknown on this path.
    pub(crate) fn store_local(&mut self, x: RegisterId, v: Value) {
        self.store.insert(x, v, None);
    }

    /// Number of updates applied from remote replicas.
    pub fn applied_count(&self) -> u64 {
        self.applied_count
    }

    /// Number of predicate-`J` evaluations performed so far (both modes
    /// count; the `pending_drain` bench reports the scan/wakeup ratio).
    pub fn predicate_evals(&self) -> u64 {
        self.predicate_evals
    }

    /// Updates admitted through [`Replica::receive_batch`]'s once-per-
    /// batch fast path (vs falling back to per-message evaluation).
    pub fn batch_fast_applies(&self) -> u64 {
        self.batch_fast_applies
    }

    /// The scheduling mode in use.
    pub fn pending_mode(&self) -> PendingMode {
        self.mode
    }

    /// Updates currently buffered (predicate not yet satisfied).
    pub fn pending_count(&self) -> usize {
        match self.mode {
            PendingMode::Scan => self.pending.len(),
            PendingMode::Wakeup => self.wakeup.msgs.len(),
        }
    }

    /// The pending messages in arrival order (for diagnostics).
    pub fn pending(&self) -> Vec<&UpdateMsg> {
        let mut parked: Vec<&Parked> = match self.mode {
            PendingMode::Scan => self.pending.iter().collect(),
            PendingMode::Wakeup => self.wakeup.msgs.values().collect(),
        };
        parked.sort_by_key(|p| p.arrival);
        parked.into_iter().map(|p| &p.msg).collect()
    }

    /// The tracker (for size accounting and inspection).
    pub fn tracker(&self) -> &dyn CausalityTracker {
        self.tracker.as_ref()
    }

    /// Current metadata of this replica as attached to a hypothetical next
    /// message (without advancing) — unavailable generically; use
    /// [`Self::tracker`] sizes instead. Provided for symmetry in tests.
    pub fn timestamp_bytes(&self) -> usize {
        self.tracker.timestamp_bytes()
    }
}

/// What a successful write produces: the update message and its
/// recipients.
pub type WriteOutput = (UpdateMsg, Vec<ReplicaId>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::EdgeTracker;
    use prcc_sharegraph::{topology, LoopConfig, RegSet, TimestampGraphs};
    use prcc_timestamp::TsRegistry;
    use std::sync::Arc;

    fn pair() -> (Replica, Replica) {
        let g = topology::path(2);
        let reg = Arc::new(TsRegistry::new(
            &g,
            TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE),
        ));
        let mk = |i: u32| {
            let id = ReplicaId::new(i);
            Replica::new(
                id,
                g.placement().registers_of(id).clone(),
                Box::new(EdgeTracker::new(reg.clone(), id)) as Box<dyn CausalityTracker>,
            )
        };
        (mk(0), mk(1))
    }

    #[test]
    fn write_then_deliver() {
        let (mut a, mut b) = pair();
        let (msg, _) = a
            .write(RegisterId::new(0), Value::from(5u64), vec![b.id()])
            .unwrap();
        let applied = b.receive(msg);
        assert_eq!(applied.len(), 1);
        assert_eq!(b.read(RegisterId::new(0)), Some(&Value::from(5u64)));
        assert_eq!(b.applied_count(), 1);
        assert_eq!(b.pending_count(), 0);
    }

    #[test]
    fn out_of_order_buffered_then_drained() {
        let (mut a, mut b) = pair();
        let (m1, _) = a
            .write(RegisterId::new(0), Value::from(1u64), vec![b.id()])
            .unwrap();
        let (m2, _) = a
            .write(RegisterId::new(0), Value::from(2u64), vec![b.id()])
            .unwrap();
        // Deliver out of order.
        assert!(b.receive(m2).is_empty());
        assert_eq!(b.pending_count(), 1);
        let applied = b.receive(m1);
        assert_eq!(applied.len(), 2);
        assert_eq!(applied[0].msg.seq, 0);
        assert_eq!(applied[1].msg.seq, 1);
        // Final value is the later write.
        assert_eq!(b.read(RegisterId::new(0)), Some(&Value::from(2u64)));
    }

    #[test]
    fn write_unstored_register_rejected() {
        let (mut a, _) = pair();
        let err = a
            .write(RegisterId::new(9), Value::from(0u64), vec![])
            .unwrap_err();
        assert!(matches!(err, ReplicaError::NotStored { .. }));
        assert!(err.to_string().contains("not stored"));
    }

    #[test]
    fn metadata_only_update_skips_store() {
        let (mut a, mut b) = pair();
        let (mut msg, _) = a
            .write(RegisterId::new(0), Value::from(1u64), vec![b.id()])
            .unwrap();
        msg.value = None; // simulate a dummy-register delivery
        let applied = b.receive(msg);
        assert_eq!(applied.len(), 1);
        assert_eq!(b.read(RegisterId::new(0)), None);
    }

    #[test]
    fn value_for_unstored_register_not_written() {
        let (mut a, _) = pair();
        // Build a replica that doesn't store register 0.
        let g = topology::path(2);
        let reg = Arc::new(TsRegistry::new(
            &g,
            TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE),
        ));
        let mut stranger = Replica::new(
            ReplicaId::new(1),
            RegSet::new(), // stores nothing
            Box::new(EdgeTracker::new(reg, ReplicaId::new(1))),
        );
        let (msg, _) = a
            .write(RegisterId::new(0), Value::from(1u64), vec![])
            .unwrap();
        stranger.receive(msg);
        assert_eq!(stranger.read(RegisterId::new(0)), None);
    }

    #[test]
    fn seq_numbers_increase() {
        let (mut a, _) = pair();
        for i in 0..3 {
            let (m, _) = a.write(RegisterId::new(0), Value::from(i), vec![]).unwrap();
            assert_eq!(m.seq, i);
        }
        let virt = a.issue_virtual(RegisterId::new(0), None);
        assert_eq!(virt.seq, 3);
    }

    #[test]
    fn debug_output_nonempty() {
        let (a, _) = pair();
        let s = format!("{a:?}");
        assert!(s.contains("Replica"));
    }

    /// Builds replicas over one register shared by all 5 replicas, in the
    /// given pending mode.
    fn all_shared_five(mode: PendingMode) -> Vec<Replica> {
        let g = prcc_sharegraph::ShareGraph::new(
            prcc_sharegraph::Placement::builder(5)
                .share(0, [0, 1, 2, 3, 4])
                .build(),
        );
        let reg = Arc::new(TsRegistry::new(
            &g,
            TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE),
        ));
        (0..5u32)
            .map(|i| {
                let id = ReplicaId::new(i);
                Replica::new_with_mode(
                    id,
                    g.placement().registers_of(id).clone(),
                    Box::new(EdgeTracker::new(reg.clone(), id)) as Box<dyn CausalityTracker>,
                    mode,
                )
            })
            .collect()
    }

    /// Three updates `p`, `a`, `b` from distinct senders, all blocked on
    /// one update `y`, delivered before `y`: the drain must apply them in
    /// arrival order (`y`, `p`, `a`, `b`), in BOTH modes. (The former
    /// `swap_remove`-based scan applied `b` before `a` here.)
    #[test]
    fn apply_order_is_earliest_arrival_first_in_both_modes() {
        let x0 = RegisterId::new(0);
        let mut orders = Vec::new();
        for mode in [PendingMode::Scan, PendingMode::Wakeup] {
            let mut rs = all_shared_five(mode);
            let (y, _) = rs[0].write(x0, Value::from(0u64), vec![]).unwrap();
            let mut deps = Vec::new();
            for (i, r) in rs.iter_mut().enumerate().take(4).skip(1) {
                assert_eq!(r.receive(y.clone()).len(), 1);
                let (m, _) = r.write(x0, Value::from(i as u64), vec![]).unwrap();
                deps.push(m);
            }
            // Receiver 4: the three dependents first, then y.
            for m in &deps {
                assert!(rs[4].receive(m.clone()).is_empty());
            }
            assert_eq!(rs[4].pending_count(), 3);
            let applied = rs[4].receive(y.clone());
            let order: Vec<ReplicaId> = applied.iter().map(|a| a.msg.issuer).collect();
            assert_eq!(
                order,
                vec![
                    ReplicaId::new(0),
                    ReplicaId::new(1),
                    ReplicaId::new(2),
                    ReplicaId::new(3)
                ],
                "{mode:?} must apply in arrival order"
            );
            assert_eq!(rs[4].pending_count(), 0);
            orders.push(applied);
        }
        assert_eq!(orders[0], orders[1], "scan and wakeup orders must agree");
    }

    /// A reversed FIFO burst of n updates: scan re-evaluates the whole
    /// buffer after every apply (Θ(n²) predicate evaluations) while the
    /// wakeup index evaluates each message O(1) times amortized.
    #[test]
    fn wakeup_slashes_predicate_evaluations_on_reversed_burst() {
        let n = 64u64;
        let (mut w, _) = pair();
        let mut msgs = Vec::new();
        for i in 0..n {
            let (m, _) = w.write(RegisterId::new(0), Value::from(i), vec![]).unwrap();
            msgs.push(m);
        }
        let mut evals = Vec::new();
        for mode in [PendingMode::Scan, PendingMode::Wakeup] {
            let g = topology::path(2);
            let reg = Arc::new(TsRegistry::new(
                &g,
                TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE),
            ));
            let id = ReplicaId::new(1);
            let mut b = Replica::new_with_mode(
                id,
                g.placement().registers_of(id).clone(),
                Box::new(EdgeTracker::new(reg, id)) as Box<dyn CausalityTracker>,
                mode,
            );
            let mut applied = Vec::new();
            for m in msgs.iter().rev() {
                applied.extend(b.receive(m.clone()));
            }
            assert_eq!(applied.len(), n as usize);
            // FIFO order restored regardless of mode.
            assert!(applied.windows(2).all(|w| w[0].msg.seq + 1 == w[1].msg.seq));
            assert_eq!(b.pending_count(), 0);
            evals.push(b.predicate_evals());
        }
        let (scan, wakeup) = (evals[0], evals[1]);
        assert!(
            wakeup * 5 <= scan,
            "expected ≥5× fewer evaluations (scan={scan}, wakeup={wakeup})"
        );
        // Wakeup is linear: at most a small constant per message.
        assert!(wakeup <= 3 * n, "wakeup evals not linear: {wakeup}");
    }

    /// The batched fast path must leave the replica byte-identical to
    /// per-message delivery: same store, same tracker, same counters.
    #[test]
    fn receive_batch_fast_path_equals_sequential_oracle() {
        let (mut a, b) = pair();
        let mut batch = Vec::new();
        for i in 0..5u64 {
            let (m, _) = a
                .write(RegisterId::new(0), Value::from(i), vec![b.id()])
                .unwrap();
            batch.push(m);
        }
        let mut oracle = b.clone();
        let mut fast = b;
        let seq_applied: Vec<Applied> = batch
            .iter()
            .flat_map(|m| oracle.receive(m.clone()))
            .collect();
        let batch_applied = fast.receive_batch(batch);
        assert_eq!(batch_applied, seq_applied);
        assert_eq!(fast.batch_fast_applies(), 5, "fast path must engage");
        assert_eq!(
            fast.read(RegisterId::new(0)),
            oracle.read(RegisterId::new(0))
        );
        assert_eq!(fast.applied_count(), oracle.applied_count());
        assert_eq!(fast.pending_count(), oracle.pending_count());
        // Tracker frontiers agree: the next local write carries identical
        // metadata on both.
        let (fm, _) = fast
            .write(RegisterId::new(0), Value::from(9u64), vec![])
            .unwrap();
        let (om, _) = oracle
            .write(RegisterId::new(0), Value::from(9u64), vec![])
            .unwrap();
        assert_eq!(fm.meta, om.meta);
        assert!(fast.predicate_evals() < oracle.predicate_evals());
    }

    /// A batch that starts beyond the receiver's frontier falls back to
    /// per-message delivery and parks exactly like the oracle.
    #[test]
    fn receive_batch_blocked_run_falls_back_and_parks() {
        let (mut a, mut b) = pair();
        let (m1, _) = a
            .write(RegisterId::new(0), Value::from(1u64), vec![b.id()])
            .unwrap();
        let mut tail = Vec::new();
        for i in 2..4u64 {
            let (m, _) = a
                .write(RegisterId::new(0), Value::from(i), vec![b.id()])
                .unwrap();
            tail.push(m);
        }
        // The tail arrives first: not deliverable as a unit.
        assert!(b.receive_batch(tail).is_empty());
        assert_eq!(b.batch_fast_applies(), 0);
        assert_eq!(b.pending_count(), 2);
        // The gap-filling update releases everything in order.
        let applied = b.receive_batch(vec![m1]);
        assert_eq!(applied.len(), 3);
        assert!(applied.windows(2).all(|w| w[0].msg.seq + 1 == w[1].msg.seq));
        assert_eq!(b.read(RegisterId::new(0)), Some(&Value::from(3u64)));
    }

    /// With a live parked update from another writer, the fast path must
    /// stand down: the parked update may wake mid-batch, and applying it
    /// at the wrong point could reorder conflicting writes.
    #[test]
    fn receive_batch_defers_to_oracle_when_parked_updates_are_live() {
        let x0 = RegisterId::new(0);
        let mut rs = all_shared_five(PendingMode::Wakeup);
        let (y, _) = rs[0].write(x0, Value::from(100u64), vec![]).unwrap();
        // Replica 1 applies y, then issues two updates depending on it.
        assert_eq!(rs[1].receive(y.clone()).len(), 1);
        let mut batch = Vec::new();
        for i in 0..2u64 {
            let (m, _) = rs[1].write(x0, Value::from(i), vec![]).unwrap();
            batch.push(m);
        }
        // Receiver 4 holds the dependent batch first (parks), then y.
        let mut oracle = rs[4].clone();
        assert!(rs[4].receive_batch(batch.clone()).is_empty());
        assert_eq!(rs[4].batch_fast_applies(), 0, "blocked batch parks");
        let applied = rs[4].receive(y.clone());
        assert_eq!(applied.len(), 3, "y wakes the parked batch");
        // Oracle path: same messages, one at a time.
        for m in &batch {
            assert!(oracle.receive(m.clone()).is_empty());
        }
        assert_eq!(oracle.receive(y).len(), 3);
        assert_eq!(rs[4].read(x0), oracle.read(x0));
        assert_eq!(rs[4].read(x0), Some(&Value::from(1u64)));
    }

    /// Messages that can never become deliverable (duplicates) stay
    /// parked in both modes and never block fresh traffic.
    #[test]
    fn duplicates_stay_pending_in_both_modes() {
        for mode in [PendingMode::Scan, PendingMode::Wakeup] {
            let g = topology::path(2);
            let reg = Arc::new(TsRegistry::new(
                &g,
                TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE),
            ));
            let mk = |i: u32| {
                let id = ReplicaId::new(i);
                Replica::new_with_mode(
                    id,
                    g.placement().registers_of(id).clone(),
                    Box::new(EdgeTracker::new(reg.clone(), id)) as Box<dyn CausalityTracker>,
                    mode,
                )
            };
            let (mut a, mut b) = (mk(0), mk(1));
            let (m1, _) = a
                .write(RegisterId::new(0), Value::from(1u64), vec![])
                .unwrap();
            let (m2, _) = a
                .write(RegisterId::new(0), Value::from(2u64), vec![])
                .unwrap();
            assert_eq!(b.receive(m1.clone()).len(), 1);
            // Duplicate of m1: parked forever.
            assert!(b.receive(m1.clone()).is_empty());
            assert_eq!(b.pending_count(), 1);
            // Fresh traffic still flows.
            assert_eq!(b.receive(m2).len(), 1);
            assert_eq!(b.pending_count(), 1, "{mode:?}");
            assert_eq!(b.read(RegisterId::new(0)), Some(&Value::from(2u64)));
        }
    }
}
