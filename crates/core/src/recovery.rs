//! Crash/recovery for replicas: a durable recovery log with write-ahead
//! entries, snapshot compaction, and deterministic replay.
//!
//! The paper's replicas never fail; the fault schedule's scripted crashes
//! break that assumption, and this module repairs it. Each replica keeps
//! a [`RecoveryLog`] modelling its durable storage:
//!
//! * **WAL** — every local event, in execution order: own writes
//!   ([`WalEntry::OwnWrite`]) and session-delivered remote updates
//!   ([`WalEntry::Delivered`]).
//! * **Outbox** — every update message handed to the session layer, per
//!   peer, in send order. This is exactly the sender-stream history
//!   [`SessionEndpoint::restart`](prcc_net::SessionEndpoint::restart)
//!   rebuilds from (sequence `k` on the wire is `outbox[dst][k-1]`).
//! * **Snapshot** — a full [`Replica`] clone (store, tracker timestamp,
//!   and parked pending set) plus the per-peer durable delivery points,
//!   taken every [`snapshot_every`](RecoveryLog::new) WAL entries. A
//!   snapshot truncates the WAL — classic compaction.
//!
//! # Why replay is exact
//!
//! [`recover`](RecoveryLog::recover) clones the snapshot and re-executes
//! the WAL: `OwnWrite` re-runs [`Replica::write`] (with no recipients),
//! `Delivered` re-runs [`Replica::receive`]. Both operations are
//! deterministic functions of replica state and input, and the WAL
//! preserves their original interleaving, so the recovered replica is
//! *identical* to the crashed one at its last durable event — same
//! store, same tracker counters, same parked pending updates, same
//! next sequence number. (Replaying writes through the tracker rather
//! than restoring a bare store is what keeps an own write's metadata —
//! which may depend on remote updates applied just before it —
//! byte-for-byte right.)
//!
//! # The ack-after-durable discipline
//!
//! The harness records a [`WalEntry::Delivered`] *before* the session
//! ack for that frame reaches the network. A peer's cumulative-acked
//! point therefore never runs ahead of this log, which is what makes
//! the session layer's post-restart `CatchUp{recv_cum}` sound: the
//! recovered `recv_cum` ([`RecoveryLog::recv_cums`]) only ever asks the
//! peer to rewind *un-acked* suffix, never acked history.

use crate::message::BatchMsg;
use crate::replica::Replica;
use crate::value::Value;
use prcc_sharegraph::{RegisterId, ReplicaId};
use std::collections::HashMap;
use std::fmt;

/// One durable event in the write-ahead log.
#[derive(Debug, Clone)]
pub enum WalEntry {
    /// A local client write (recipients are reconstructed from the
    /// outbox, not replayed — replay never re-sends).
    OwnWrite {
        /// The register written.
        register: RegisterId,
        /// The written value.
        value: Value,
    },
    /// A remote batch the session layer delivered in order. One entry
    /// per session frame — a batch is the session stream's unit, so
    /// counting `Delivered` entries per peer yields the durable
    /// `recv_cum` directly.
    Delivered {
        /// The sending peer (stream owner).
        src: ReplicaId,
        /// The delivered batch, exactly as received.
        msg: BatchMsg,
    },
}

/// Durable per-replica recovery state: WAL + outbox + snapshot. See the
/// module docs for the protocol.
pub struct RecoveryLog {
    outbox: HashMap<ReplicaId, Vec<BatchMsg>>,
    wal: Vec<WalEntry>,
    snapshot: Replica,
    /// Per-peer in-order delivery count folded into the snapshot.
    snapshot_cums: HashMap<ReplicaId, u64>,
    /// Per-issuer applied frontier (`frontier[i]` = next expected seq of
    /// issuer `i`) folded into the snapshot — the serving tier's
    /// `ReplicaView` coverage vector, made durable alongside the store.
    snapshot_frontier: Vec<u64>,
    snapshot_every: usize,
    snapshots_taken: usize,
}

impl fmt::Debug for RecoveryLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecoveryLog")
            .field("wal", &self.wal.len())
            .field("outbox", &self.outbox.values().map(Vec::len).sum::<usize>())
            .field("snapshots_taken", &self.snapshots_taken)
            .finish()
    }
}

impl RecoveryLog {
    /// Creates the log for a replica whose initial (empty) state is
    /// `initial` — the time-zero snapshot. `snapshot_every` bounds the
    /// WAL length between compactions (0 disables snapshotting).
    pub fn new(initial: Replica, snapshot_every: usize) -> Self {
        RecoveryLog {
            outbox: HashMap::new(),
            wal: Vec::new(),
            snapshot: initial,
            snapshot_cums: HashMap::new(),
            snapshot_frontier: Vec::new(),
            snapshot_every,
            snapshots_taken: 0,
        }
    }

    /// Records a local write, in execution order.
    pub fn record_own_write(&mut self, register: RegisterId, value: Value) {
        self.wal.push(WalEntry::OwnWrite { register, value });
    }

    /// Records a session-delivered remote batch, in execution order.
    /// Must be called **before** the delivery's ack is transmitted
    /// (ack-after-durable).
    pub fn record_delivery(&mut self, src: ReplicaId, msg: BatchMsg) {
        self.wal.push(WalEntry::Delivered { src, msg });
    }

    /// Records a batch handed to the session layer for `dst` (send
    /// order = session sequence order).
    pub fn record_send(&mut self, dst: ReplicaId, msg: BatchMsg) {
        self.outbox.entry(dst).or_default().push(msg);
    }

    /// Compacts the WAL into a snapshot of the live replica, if the WAL
    /// has reached the configured length. `live` must be the replica
    /// whose state reflects every logged event (the harness calls this
    /// right after logging).
    pub fn maybe_snapshot(&mut self, live: &Replica) {
        let frontier = self.snapshot_frontier.clone();
        self.maybe_snapshot_with_frontier(live, &frontier);
    }

    /// Like [`maybe_snapshot`](RecoveryLog::maybe_snapshot), but also
    /// persists the live replica's applied frontier so
    /// [`recover_with_frontier`](RecoveryLog::recover_with_frontier) can
    /// rebuild the serving tier's coverage vector without replaying the
    /// compacted history.
    pub fn maybe_snapshot_with_frontier(&mut self, live: &Replica, frontier: &[u64]) {
        if self.snapshot_every == 0 || self.wal.len() < self.snapshot_every {
            return;
        }
        for e in &self.wal {
            if let WalEntry::Delivered { src, .. } = e {
                *self.snapshot_cums.entry(*src).or_insert(0) += 1;
            }
        }
        self.snapshot = live.clone();
        self.snapshot_frontier = frontier.to_vec();
        self.wal.clear();
        self.snapshots_taken += 1;
    }

    /// The per-peer durable in-order delivery points (session
    /// `recv_cum`s): snapshot counts plus WAL deliveries.
    pub fn recv_cums(&self) -> HashMap<ReplicaId, u64> {
        let mut cums = self.snapshot_cums.clone();
        for e in &self.wal {
            if let WalEntry::Delivered { src, .. } = e {
                *cums.entry(*src).or_insert(0) += 1;
            }
        }
        cums
    }

    /// The per-peer send history (session sender-stream payloads).
    pub fn outbox(&self) -> &HashMap<ReplicaId, Vec<BatchMsg>> {
        &self.outbox
    }

    /// Rebuilds the replica as of its last durable event: snapshot clone
    /// plus WAL replay (see the module docs for why this is exact).
    pub fn recover(&self) -> Replica {
        let n = self.snapshot_frontier.len();
        self.recover_with_frontier(n).0
    }

    /// Rebuilds the replica *and* its applied frontier (the per-issuer
    /// next-expected-seq vector published as the serving tier's
    /// `ReplicaView` coverage). The frontier starts from the snapshot's
    /// persisted copy (resized to `num_replicas`) and is advanced by the
    /// WAL replay: an own write moves the replica's own slot, and every
    /// update the replay *applies* (parked pending updates stay parked,
    /// exactly like the live run) moves its issuer's slot.
    pub fn recover_with_frontier(&self, num_replicas: usize) -> (Replica, Vec<u64>) {
        let mut replica = self.snapshot.clone();
        let mut frontier = self.snapshot_frontier.clone();
        if frontier.len() < num_replicas {
            frontier.resize(num_replicas, 0);
        }
        let bump = |frontier: &mut Vec<u64>, issuer: ReplicaId, seq: u64| {
            if issuer.index() >= frontier.len() {
                frontier.resize(issuer.index() + 1, 0);
            }
            let slot = &mut frontier[issuer.index()];
            *slot = (*slot).max(seq + 1);
        };
        for e in &self.wal {
            match e {
                WalEntry::OwnWrite { register, value } => {
                    let (msg, _) = replica
                        .write(*register, value.clone(), Vec::new())
                        .expect("replayed write targets a stored register");
                    bump(&mut frontier, msg.issuer, msg.seq);
                }
                WalEntry::Delivered { msg, .. } => {
                    // `receive_batch` is state-identical to a per-update
                    // `receive` loop (its fallback IS that loop, and the
                    // fast path is proven equivalent), so replay stays
                    // exact at batch granularity.
                    for applied in replica.receive_batch(msg.updates.clone()) {
                        bump(&mut frontier, applied.msg.issuer, applied.msg.seq);
                    }
                }
            }
        }
        (replica, frontier)
    }

    /// Current WAL length (entries since the last snapshot).
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }

    /// Snapshots taken (WAL compactions).
    pub fn snapshots_taken(&self) -> usize {
        self.snapshots_taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::{CausalityTracker, EdgeTracker};
    use prcc_sharegraph::{topology, LoopConfig, TimestampGraphs};
    use prcc_timestamp::TsRegistry;
    use std::sync::Arc;

    fn pair() -> (Replica, Replica) {
        let g = topology::path(2);
        let reg = Arc::new(TsRegistry::new(
            &g,
            TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE),
        ));
        let mk = |i: u32| {
            let id = ReplicaId::new(i);
            Replica::new(
                id,
                g.placement().registers_of(id).clone(),
                Box::new(EdgeTracker::new(reg.clone(), id)) as Box<dyn CausalityTracker>,
            )
        };
        (mk(0), mk(1))
    }

    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }
    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    /// Drives a replica and its log through interleaved own writes and
    /// deliveries, then checks the recovered clone matches the live one.
    #[test]
    fn replay_reproduces_interleaved_state() {
        let (mut a, mut b) = pair();
        let mut log = RecoveryLog::new(b.clone(), 0);
        // a writes 1, b applies it, b writes 2 (whose metadata now
        // depends on a's update), a writes 3, b applies it.
        let (m1, _) = a.write(x(0), Value::from(1u64), vec![r(1)]).unwrap();
        b.receive(m1.clone());
        log.record_delivery(r(0), BatchMsg::singleton(m1));
        b.write(x(0), Value::from(2u64), vec![r(0)]).unwrap();
        log.record_own_write(x(0), Value::from(2u64));
        let (m3, _) = a.write(x(0), Value::from(3u64), vec![r(1)]).unwrap();
        b.receive(m3.clone());
        log.record_delivery(r(0), BatchMsg::singleton(m3));

        let recovered = log.recover();
        assert_eq!(recovered.read(x(0)), b.read(x(0)));
        assert_eq!(recovered.applied_count(), b.applied_count());
        assert_eq!(recovered.pending_count(), b.pending_count());
        assert_eq!(
            recovered.tracker().timestamp_bytes(),
            b.tracker().timestamp_bytes()
        );
        // The next local write carries identical metadata on both.
        let mut live = b.clone();
        let mut rec = recovered;
        let (lm, _) = live.write(x(0), Value::from(9u64), vec![]).unwrap();
        let (rm, _) = rec.write(x(0), Value::from(9u64), vec![]).unwrap();
        assert_eq!(lm.meta, rm.meta, "replayed tracker must match exactly");
        assert_eq!(lm.seq, rm.seq);
    }

    #[test]
    fn pending_updates_survive_recovery() {
        let (mut a, mut b) = pair();
        let mut log = RecoveryLog::new(b.clone(), 0);
        let (m1, _) = a.write(x(0), Value::from(1u64), vec![r(1)]).unwrap();
        let (m2, _) = a.write(x(0), Value::from(2u64), vec![r(1)]).unwrap();
        // Out of order: m2 parks in pending.
        b.receive(m2.clone());
        log.record_delivery(r(0), BatchMsg::singleton(m2));
        assert_eq!(b.pending_count(), 1);
        let recovered = log.recover();
        assert_eq!(recovered.pending_count(), 1, "parked update preserved");
        // Recovery then unblocks exactly like the live replica would.
        let mut rec = recovered;
        assert_eq!(rec.receive(m1).len(), 2);
        assert_eq!(rec.read(x(0)), Some(&Value::from(2u64)));
    }

    #[test]
    fn snapshot_compacts_and_preserves_cums() {
        let (mut a, mut b) = pair();
        let mut log = RecoveryLog::new(b.clone(), 2);
        for i in 0..5u64 {
            let (m, _) = a.write(x(0), Value::from(i), vec![r(1)]).unwrap();
            b.receive(m.clone());
            log.record_delivery(r(0), BatchMsg::singleton(m));
            log.maybe_snapshot(&b);
        }
        assert!(log.snapshots_taken() >= 2);
        assert!(log.wal_len() < 2);
        assert_eq!(log.recv_cums().get(&r(0)), Some(&5));
        let recovered = log.recover();
        assert_eq!(recovered.read(x(0)), Some(&Value::from(4u64)));
        assert_eq!(recovered.applied_count(), 5);
    }

    #[test]
    fn recovered_frontier_tracks_applies_across_snapshots() {
        let (mut a, mut b) = pair();
        let mut log = RecoveryLog::new(b.clone(), 2);
        let mut frontier = vec![0u64; 2];
        for i in 0..5u64 {
            let (m, _) = a.write(x(0), Value::from(i), vec![r(1)]).unwrap();
            b.receive(m.clone());
            frontier[0] = m.seq + 1;
            log.record_delivery(r(0), BatchMsg::singleton(m));
            log.maybe_snapshot_with_frontier(&b, &frontier);
        }
        b.write(x(0), Value::from(99u64), vec![]).unwrap();
        log.record_own_write(x(0), Value::from(99u64));
        frontier[1] = 1;
        let (rec, rec_frontier) = log.recover_with_frontier(2);
        assert_eq!(rec_frontier, frontier, "frontier survives compaction");
        assert_eq!(rec.read(x(0)), b.read(x(0)));
    }

    #[test]
    fn recovered_frontier_ignores_parked_pending() {
        let (mut a, mut b) = pair();
        let mut log = RecoveryLog::new(b.clone(), 0);
        let (_m1, _) = a.write(x(0), Value::from(1u64), vec![r(1)]).unwrap();
        let (m2, _) = a.write(x(0), Value::from(2u64), vec![r(1)]).unwrap();
        // m2 parks (m1 missing): it must NOT advance the frontier, or a
        // restarted holder would claim coverage it cannot serve.
        b.receive(m2.clone());
        log.record_delivery(r(0), BatchMsg::singleton(m2));
        let (rec, frontier) = log.recover_with_frontier(2);
        assert_eq!(frontier, vec![0, 0]);
        assert_eq!(rec.pending_count(), 1);
    }

    #[test]
    fn outbox_accumulates_in_send_order() {
        let (mut a, _) = pair();
        let mut log = RecoveryLog::new(a.clone(), 0);
        for i in 0..3u64 {
            let (m, _) = a.write(x(0), Value::from(i), vec![r(1)]).unwrap();
            log.record_send(r(1), BatchMsg::singleton(m));
        }
        let ob = log.outbox();
        assert_eq!(ob[&r(1)].len(), 3);
        assert!(ob[&r(1)]
            .windows(2)
            .all(|w| w[0].updates[0].seq + 1 == w[1].updates[0].seq));
    }
}
