//! A threaded deployment: one OS thread per replica over a
//! [`ThreadNet`] transport.
//!
//! [`ThreadedCluster`] runs the same [`Replica`] state machines as the
//! simulated [`System`](crate::System), but under genuine concurrency and
//! wall-clock message delays — the reproduction's stand-in for the
//! "async nodes" deployment (the offline crate set has no async runtime,
//! so real threads + crossbeam channels play that role).
//!
//! # The hot path
//!
//! Three design points keep client operations off the contended paths:
//!
//! * **Per-thread trace shards.** Each replica thread appends protocol
//!   events to its own shard (a private `Mutex<Vec<_>>`, uncontended in
//!   steady state) stamped with nanoseconds since a shared epoch. The
//!   shards are merged and re-sorted into a causally valid global
//!   [`Trace`] only when [`check`](ThreadedCluster::check) or
//!   [`trace_snapshot`](ThreadedCluster::trace_snapshot) asks — no
//!   global trace lock on the apply path.
//! * **Lock-free read snapshots.** After every state change, a replica
//!   thread publishes an immutable `Arc` snapshot of its store.
//!   [`read`](ThreadedCluster::read) clones the `Arc` and never enqueues
//!   into the replica thread, so readers cannot observe torn state and
//!   cannot slow writers down.
//! * **Batched update pipeline.** Outgoing updates coalesce per
//!   destination under the cluster's [`BatchPolicy`] and ship as
//!   [`BatchMsg`] frames, cutting per-envelope router work; receivers
//!   ingest them through [`Replica::receive_batch`]'s once-per-batch
//!   predicate fast path.
//!
//! Client command channels are *bounded*
//! ([`ClusterConfig::channel_depth`]): a flooded replica thread exerts
//! backpressure on writers instead of growing an unbounded queue.

use crate::codec::{WireCodec, WireMode};
use crate::message::{BatchMsg, UpdateMsg};
use crate::replica::Replica;
use crate::system::BatchPolicy;
use crate::tracker::{CausalityTracker, EdgeTracker};
use crate::value::Value;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use prcc_checker::{check, CheckReport, Trace, UpdateId};
use prcc_net::{
    DelayModel, FaultPlan, NodeHandle, SessionConfig, SessionEndpoint, SessionFrame, ThreadNet,
};
use prcc_sharegraph::{LoopConfig, RegisterId, ReplicaId, ShareGraph, TimestampGraphs};
use prcc_timestamp::TsRegistry;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One delay-model tick in wall-clock time (matches the `ThreadNet`
/// router's tick).
const TICK: Duration = Duration::from_micros(200);

/// Full configuration for a [`ThreadedCluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-recipient metadata wire mode.
    pub wire: WireMode,
    /// Router fault plan (drops / duplicates).
    pub faults: FaultPlan,
    /// Reliable-delivery session layer, if any.
    pub session: Option<SessionConfig>,
    /// Sender-side update batching (`flush_after` is in delay-model
    /// ticks of 200 µs, mirroring the simulated system).
    pub batch: BatchPolicy,
    /// Client command channel bound per replica thread. A full channel
    /// blocks the calling writer — bounded backpressure, never an
    /// unbounded queue.
    pub channel_depth: usize,
    /// Per-node network ingress bound (frames beyond it are shed by the
    /// router and, with a session, repaired by retransmission).
    pub ingress_depth: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            wire: WireMode::default(),
            faults: FaultPlan::default(),
            session: None,
            batch: BatchPolicy::default(),
            channel_depth: 1024,
            ingress_depth: 4096,
        }
    }
}

enum Cmd {
    Write {
        register: RegisterId,
        value: Value,
        reply: Sender<UpdateId>,
    },
    Shutdown,
}

/// One protocol event in a per-replica trace shard. The shard owner is
/// implicit: issues belong to the issuing replica's shard, applies to
/// the applying replica's.
#[derive(Clone)]
enum ShardEvent {
    Issue { id: UpdateId, register: RegisterId },
    Apply { id: UpdateId },
}

/// A shard event stamped for the global merge: nanoseconds since the
/// cluster epoch plus a per-shard sequence number (tiebreak that
/// preserves thread-local order).
#[derive(Clone)]
struct Stamped {
    nanos: u64,
    seq: u64,
    ev: ShardEvent,
}

type TraceShard = Mutex<Vec<Stamped>>;

/// Merges per-replica shards into one causally valid [`Trace`].
///
/// Sort key: `(nanos, kind, shard, seq)` with issues before applies at
/// equal instants. This is a faithful real-time linearization: an issue
/// is stamped *before* its update is handed to the network and an apply
/// *after* delivery, so — `Instant` being monotonic across threads — an
/// apply never carries an earlier stamp than its issue, and the
/// issue-first tiebreak settles exact ties. Per-shard order survives
/// because stamps within one thread are non-decreasing with `seq`
/// strictly increasing.
fn merge_shards(shards: &[Arc<TraceShard>]) -> Trace {
    let mut all: Vec<(u64, u8, usize, u64, ShardEvent)> = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        for s in shard.lock().iter() {
            let kind = match s.ev {
                ShardEvent::Issue { .. } => 0u8,
                ShardEvent::Apply { .. } => 1u8,
            };
            all.push((s.nanos, kind, i, s.seq, s.ev.clone()));
        }
    }
    all.sort_by_key(|&(nanos, kind, shard, seq, _)| (nanos, kind, shard, seq));
    let mut trace = Trace::new();
    let mut issued: HashSet<UpdateId> = HashSet::new();
    for (_, _, shard, _, ev) in all {
        match ev {
            ShardEvent::Issue { id, register } => {
                trace.record_issue_with_id(id, register);
                issued.insert(id);
            }
            ShardEvent::Apply { id } => {
                debug_assert!(issued.contains(&id), "apply of {id} stamped before issue");
                if issued.contains(&id) {
                    trace.record_apply(id, ReplicaId::new(shard as u32));
                }
            }
        }
    }
    trace
}

/// An immutable published store snapshot plus a monotonically increasing
/// version. Readers take the read lock only long enough to clone the
/// `Arc`; a snapshot, once published, never mutates — torn reads are
/// impossible by construction.
struct SnapshotCell {
    map: RwLock<Arc<HashMap<RegisterId, Value>>>,
    version: AtomicU64,
}

impl SnapshotCell {
    fn new() -> Self {
        SnapshotCell {
            map: RwLock::new(Arc::new(HashMap::new())),
            version: AtomicU64::new(0),
        }
    }

    fn publish(&self, snap: HashMap<RegisterId, Value>) {
        *self.map.write() = Arc::new(snap);
        self.version.fetch_add(1, Ordering::Release);
    }

    fn load(&self) -> Arc<HashMap<RegisterId, Value>> {
        Arc::clone(&self.map.read())
    }

    fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

/// A running threaded cluster.
///
/// # Examples
///
/// ```
/// use prcc_core::runtime::ThreadedCluster;
/// use prcc_core::Value;
/// use prcc_net::DelayModel;
/// use prcc_sharegraph::{topology, ReplicaId, RegisterId};
///
/// let cluster = ThreadedCluster::new(topology::ring(4), DelayModel::Fixed(1), 7);
/// cluster.write(ReplicaId::new(0), RegisterId::new(0), Value::from(5u64));
/// cluster.settle();
/// assert_eq!(
///     cluster.read(ReplicaId::new(1), RegisterId::new(0)),
///     Some(Value::from(5u64))
/// );
/// assert!(cluster.check().is_consistent());
/// ```
pub struct ThreadedCluster {
    graph: Arc<ShareGraph>,
    cmd_txs: Vec<Sender<Cmd>>,
    threads: Vec<JoinHandle<()>>,
    /// Per-replica trace shards, merged on demand.
    shards: Vec<Arc<TraceShard>>,
    /// Per-replica published read snapshots.
    snapshots: Vec<Arc<SnapshotCell>>,
    /// Total updates applied across all replicas (remote applies).
    applied: Arc<AtomicUsize>,
    /// Total updates currently parked in pending buffers.
    pending: Arc<AtomicUsize>,
    /// Total update messages sent.
    sent: Arc<AtomicUsize>,
    /// Total metadata bytes put on the wire (post-codec frame sizes).
    wire_bytes: Arc<AtomicUsize>,
    /// Total session-layer retransmissions across all replica threads.
    retransmits: Arc<AtomicUsize>,
    /// Total wire-codec demotions (derived-row verification failures)
    /// across all replica threads.
    demotions: Arc<AtomicUsize>,
    /// Keep the net alive for the cluster's lifetime.
    _net: ThreadNet<SessionFrame<BatchMsg>>,
}

impl fmt::Debug for ThreadedCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadedCluster")
            .field("replicas", &self.cmd_txs.len())
            .field("applied", &self.applied.load(Ordering::Relaxed))
            .finish()
    }
}

impl ThreadedCluster {
    /// Spawns one thread per replica of `graph`, all using the exact
    /// edge-indexed tracker and the default configuration (compressed
    /// wire, batching on, no faults, no session).
    pub fn new(graph: ShareGraph, delay: DelayModel, seed: u64) -> Self {
        Self::with_config(graph, delay, seed, ClusterConfig::default())
    }

    /// Like [`ThreadedCluster::new`], with an explicit wire mode for the
    /// per-recipient metadata codec.
    pub fn new_with_wire(graph: ShareGraph, delay: DelayModel, seed: u64, wire: WireMode) -> Self {
        Self::with_config(
            graph,
            delay,
            seed,
            ClusterConfig {
                wire,
                ..ClusterConfig::default()
            },
        )
    }

    /// A cluster over a lossy transport. The router rolls `faults` on
    /// every frame; `session` (if given) arms a per-replica
    /// [`SessionEndpoint`] whose retransmission timers run on wall-clock
    /// milliseconds — pick `rto_base` comfortably above the delay
    /// model's round trip (delay ticks are 200 µs each). Without a
    /// session config, losses are permanent, exactly as in the simulated
    /// [`System`](crate::System) without one.
    pub fn new_faulty(
        graph: ShareGraph,
        delay: DelayModel,
        seed: u64,
        wire: WireMode,
        faults: FaultPlan,
        session: Option<SessionConfig>,
    ) -> Self {
        Self::with_config(
            graph,
            delay,
            seed,
            ClusterConfig {
                wire,
                faults,
                session,
                ..ClusterConfig::default()
            },
        )
    }

    /// Full-control constructor.
    pub fn with_config(
        graph: ShareGraph,
        delay: DelayModel,
        seed: u64,
        config: ClusterConfig,
    ) -> Self {
        let graph = Arc::new(graph);
        let registry = Arc::new(TsRegistry::new(
            &graph,
            TimestampGraphs::build(&graph, LoopConfig::EXHAUSTIVE),
        ));
        let net: ThreadNet<SessionFrame<BatchMsg>> = ThreadNet::with_config(
            graph.num_replicas(),
            delay,
            seed,
            config.faults.clone(),
            config.ingress_depth,
        );
        let applied = Arc::new(AtomicUsize::new(0));
        let pending = Arc::new(AtomicUsize::new(0));
        let sent = Arc::new(AtomicUsize::new(0));
        let wire_bytes = Arc::new(AtomicUsize::new(0));
        let retransmits = Arc::new(AtomicUsize::new(0));
        let demotions = Arc::new(AtomicUsize::new(0));
        let epoch = Instant::now();

        let mut cmd_txs = Vec::new();
        let mut threads = Vec::new();
        let mut shards = Vec::new();
        let mut snapshots = Vec::new();
        for i in graph.replicas() {
            let (tx, rx) = bounded::<Cmd>(config.channel_depth.max(1));
            cmd_txs.push(tx);
            let shard: Arc<TraceShard> = Arc::new(Mutex::new(Vec::new()));
            shards.push(shard.clone());
            let snapshot = Arc::new(SnapshotCell::new());
            snapshots.push(snapshot.clone());
            let handle = net.handle(i);
            let graph = graph.clone();
            let registry = registry.clone();
            let config = config.clone();
            let applied = applied.clone();
            let pending = pending.clone();
            let sent = sent.clone();
            let wire_bytes = wire_bytes.clone();
            let retransmits = retransmits.clone();
            let demotions = demotions.clone();
            threads.push(std::thread::spawn(move || {
                replica_main(ReplicaCtx {
                    id: i,
                    graph,
                    registry,
                    config,
                    epoch,
                    net: handle,
                    cmds: rx,
                    shard,
                    snapshot,
                    applied_ctr: applied,
                    pending_ctr: pending,
                    sent_ctr: sent,
                    wire_bytes_ctr: wire_bytes,
                    retransmits_ctr: retransmits,
                    demotions_ctr: demotions,
                })
            }));
        }
        ThreadedCluster {
            graph,
            cmd_txs,
            threads,
            shards,
            snapshots,
            applied,
            pending,
            sent,
            wire_bytes,
            retransmits,
            demotions,
            _net: net,
        }
    }

    /// Performs a blocking write at replica `r`. A full command channel
    /// blocks until the replica thread drains (bounded backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `r` does not store `x` or the cluster has shut down.
    pub fn write(&self, r: ReplicaId, x: RegisterId, v: Value) -> UpdateId {
        let (reply, rx) = bounded(1);
        self.cmd_txs[r.index()]
            .send(Cmd::Write {
                register: x,
                value: v,
                reply,
            })
            .expect("cluster alive");
        rx.recv().expect("replica thread alive")
    }

    /// Pipelined writes: enqueues every command before collecting any
    /// reply, so the replica thread coalesces the burst into batches
    /// instead of ping-ponging one command per reply. The command
    /// channel's bound still applies — a burst deeper than
    /// `channel_depth` blocks until the replica drains.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not store one of the registers or the cluster
    /// has shut down.
    pub fn write_burst(&self, r: ReplicaId, writes: &[(RegisterId, Value)]) -> Vec<UpdateId> {
        let (reply, rx) = bounded(writes.len().max(1));
        for (x, v) in writes {
            self.cmd_txs[r.index()]
                .send(Cmd::Write {
                    register: *x,
                    value: v.clone(),
                    reply: reply.clone(),
                })
                .expect("cluster alive");
        }
        drop(reply);
        let mut ids = Vec::with_capacity(writes.len());
        for _ in writes {
            ids.push(rx.recv().expect("replica thread alive"));
        }
        ids
    }

    /// Reads register `x` at replica `r` from its published snapshot —
    /// no round trip into the replica thread, no torn reads (snapshots
    /// are immutable once published). Reflects the replica's own writes
    /// as soon as [`write`](Self::write) returns.
    pub fn read(&self, r: ReplicaId, x: RegisterId) -> Option<Value> {
        self.snapshots[r.index()].load().get(&x).cloned()
    }

    /// The full immutable store snapshot currently published by `r`.
    pub fn store_snapshot(&self, r: ReplicaId) -> Arc<HashMap<RegisterId, Value>> {
        self.snapshots[r.index()].load()
    }

    /// The snapshot publication counter of `r` (monotonically
    /// increasing; one bump per published state change).
    pub fn snapshot_version(&self, r: ReplicaId) -> u64 {
        self.snapshots[r.index()].version()
    }

    /// Blocks until the cluster is quiescent: every sent message that has
    /// a recipient has been applied and no pending buffers remain, stable
    /// for a grace period.
    pub fn settle(&self) {
        let mut last = (usize::MAX, usize::MAX);
        let mut stable_since = Instant::now();
        loop {
            let now = (
                self.applied.load(Ordering::SeqCst),
                self.pending.load(Ordering::SeqCst),
            );
            let sent = self.sent.load(Ordering::SeqCst);
            let drained = now.0 >= sent && now.1 == 0;
            if now != last {
                last = now;
                stable_since = Instant::now();
            } else if drained && stable_since.elapsed() > Duration::from_millis(50) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Checks the recorded trace for replica-centric causal consistency.
    pub fn check(&self) -> CheckReport {
        check(&merge_shards(&self.shards), self.graph.placement())
    }

    /// A snapshot of the trace so far (shards merged and causally
    /// re-sorted).
    pub fn trace_snapshot(&self) -> Trace {
        merge_shards(&self.shards)
    }

    /// Total remote applies so far.
    pub fn total_applied(&self) -> usize {
        self.applied.load(Ordering::SeqCst)
    }

    /// Total metadata bytes sent so far, as framed by the wire codec.
    pub fn total_wire_bytes(&self) -> usize {
        self.wire_bytes.load(Ordering::SeqCst)
    }

    /// Total session-layer retransmissions so far (0 without a session
    /// or on a clean network).
    pub fn total_retransmits(&self) -> usize {
        self.retransmits.load(Ordering::SeqCst)
    }

    /// Total wire-codec demotions so far (0 unless a malformed layout
    /// was injected — registry layouts verify at construction).
    pub fn total_codec_demotions(&self) -> usize {
        self.demotions.load(Ordering::SeqCst)
    }

    /// Shuts the cluster down, joining all replica threads.
    pub fn shutdown(mut self) -> Trace {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        merge_shards(&self.shards)
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Everything one replica thread owns.
struct ReplicaCtx {
    id: ReplicaId,
    graph: Arc<ShareGraph>,
    registry: Arc<TsRegistry>,
    config: ClusterConfig,
    epoch: Instant,
    net: NodeHandle<SessionFrame<BatchMsg>>,
    cmds: Receiver<Cmd>,
    shard: Arc<TraceShard>,
    snapshot: Arc<SnapshotCell>,
    applied_ctr: Arc<AtomicUsize>,
    pending_ctr: Arc<AtomicUsize>,
    sent_ctr: Arc<AtomicUsize>,
    wire_bytes_ctr: Arc<AtomicUsize>,
    retransmits_ctr: Arc<AtomicUsize>,
    demotions_ctr: Arc<AtomicUsize>,
}

/// A per-destination pending batch on the sender side.
struct Outq {
    msgs: Vec<UpdateMsg>,
    bytes: usize,
    due: Instant,
}

/// Wraps queued updates as a batch and hands it to the session layer
/// (or ships it bare).
fn ship(
    msgs: Vec<UpdateMsg>,
    dst: ReplicaId,
    endpoint: &mut Option<SessionEndpoint<BatchMsg>>,
    net: &NodeHandle<SessionFrame<BatchMsg>>,
    now_ms: u64,
) {
    let batch = BatchMsg { updates: msgs };
    let frame = match endpoint.as_mut() {
        Some(ep) => ep.send(dst, batch, now_ms),
        None => SessionFrame::Bare(batch),
    };
    net.send(dst, frame);
}

fn replica_main(ctx: ReplicaCtx) {
    let ReplicaCtx {
        id,
        graph,
        registry,
        config,
        epoch,
        net,
        cmds,
        shard,
        snapshot,
        applied_ctr,
        pending_ctr,
        sent_ctr,
        wire_bytes_ctr,
        retransmits_ctr,
        demotions_ctr,
    } = ctx;
    // Each sender thread owns the codec for its outgoing pair streams —
    // per-pair delta state never crosses threads.
    let mut codec = WireCodec::new(config.wire, Some(registry.clone()));
    let mut replica = Replica::new(
        id,
        graph.placement().registers_of(id).clone(),
        Box::new(EdgeTracker::new(registry, id)) as Box<dyn CausalityTracker>,
    );
    // Session timers run on wall-clock milliseconds since the cluster
    // epoch — the real-timer counterpart of the sim clock.
    let mut endpoint = config.session.map(|cfg| SessionEndpoint::new(id, cfg));
    let now_ms = |epoch: &Instant| epoch.elapsed().as_millis() as u64;
    let mut last_retx = 0usize;
    let mut last_demotions = 0usize;
    let mut local_pending = 0usize;
    let mut shard_seq = 0u64;
    let mut outq: HashMap<ReplicaId, Outq> = HashMap::new();
    let eager = config.batch.batch_count <= 1;
    let flush_window = TICK * config.batch.flush_after.min(u32::MAX as u64) as u32;
    loop {
        let mut idle = true;
        // Drain a burst of client commands (writes from concurrent
        // drivers coalesce into the same pending batches).
        for _ in 0..64 {
            match cmds.try_recv() {
                Ok(Cmd::Write {
                    register,
                    value,
                    reply,
                }) => {
                    idle = false;
                    let recipients: Vec<ReplicaId> = graph
                        .placement()
                        .holders(register)
                        .iter()
                        .copied()
                        .filter(|&h| h != id)
                        .collect();
                    let (msg, recipients) = replica
                        .write(register, value, recipients)
                        .unwrap_or_else(|e| panic!("{e}"));
                    let uid = UpdateId {
                        issuer: id,
                        seq: msg.seq,
                    };
                    // Stamp the issue *before* any send: the shard merge
                    // relies on issue stamps preceding all apply stamps.
                    shard.lock().push(Stamped {
                        nanos: epoch.elapsed().as_nanos() as u64,
                        seq: shard_seq,
                        ev: ShardEvent::Issue { id: uid, register },
                    });
                    shard_seq += 1;
                    // Encode-once fan-out: the metadata `Arc` (or its
                    // per-pair projected frame) is shared, not cloned,
                    // and identical pair streams share one varint pass.
                    let metas = codec.encode_fanout(id, &recipients, &msg.meta);
                    let demoted = codec.stats().demotions;
                    if demoted > last_demotions {
                        // Delta, not a store: other replica threads are
                        // adding their own demotions to the same counter.
                        demotions_ctr.fetch_add(demoted - last_demotions, Ordering::SeqCst);
                        last_demotions = demoted;
                    }
                    for (dst, meta) in recipients.into_iter().zip(metas) {
                        sent_ctr.fetch_add(1, Ordering::SeqCst);
                        let m = UpdateMsg {
                            meta,
                            ..msg.clone()
                        };
                        wire_bytes_ctr.fetch_add(m.meta.size_bytes(), Ordering::SeqCst);
                        if eager {
                            ship(vec![m], dst, &mut endpoint, &net, now_ms(&epoch));
                        } else {
                            let q = outq.entry(dst).or_insert_with(|| Outq {
                                msgs: Vec::new(),
                                bytes: 0,
                                due: Instant::now() + flush_window,
                            });
                            q.bytes += m.size_bytes();
                            q.msgs.push(m);
                            if q.msgs.len() >= config.batch.batch_count
                                || q.bytes >= config.batch.batch_bytes
                            {
                                let q = outq.remove(&dst).expect("slot just filled");
                                ship(q.msgs, dst, &mut endpoint, &net, now_ms(&epoch));
                            }
                        }
                    }
                    // Publish before replying: a reader that saw this
                    // write return must find it in the snapshot
                    // (read-own-writes).
                    snapshot.publish(replica.store_snapshot());
                    let _ = reply.send(uid);
                }
                Ok(Cmd::Shutdown) => {
                    // Flush unshipped batches so nothing queued is lost.
                    for (dst, q) in outq.drain() {
                        ship(q.msgs, dst, &mut endpoint, &net, now_ms(&epoch));
                    }
                    return;
                }
                Err(_) => break,
            }
        }
        // Then a burst of network input.
        let mut applied_any = false;
        for _ in 0..256 {
            let Some(env) = net.try_recv() else { break };
            idle = false;
            let payloads = match endpoint.as_mut() {
                Some(ep) => {
                    let mut resp = Vec::new();
                    let msgs = ep.on_frame(env.src, env.msg, now_ms(&epoch), &mut resp);
                    for (dst, f) in resp {
                        net.send(dst, f);
                    }
                    msgs
                }
                None => match env.msg {
                    SessionFrame::Bare(b) => vec![b],
                    // Session frames without a session endpoint cannot
                    // happen (both are chosen by the same constructor).
                    _ => Vec::new(),
                },
            };
            for batch in payloads {
                let applied = replica.receive_batch(batch.updates);
                if !applied.is_empty() {
                    applied_any = true;
                    let mut s = shard.lock();
                    let nanos = epoch.elapsed().as_nanos() as u64;
                    for a in &applied {
                        s.push(Stamped {
                            nanos,
                            seq: shard_seq,
                            ev: ShardEvent::Apply {
                                id: UpdateId {
                                    issuer: a.msg.issuer,
                                    seq: a.msg.seq,
                                },
                            },
                        });
                        shard_seq += 1;
                    }
                }
                applied_ctr.fetch_add(applied.len(), Ordering::SeqCst);
            }
        }
        if applied_any {
            snapshot.publish(replica.store_snapshot());
        }
        let np = replica.pending_count();
        if np != local_pending {
            if np > local_pending {
                pending_ctr.fetch_add(np - local_pending, Ordering::SeqCst);
            } else {
                pending_ctr.fetch_sub(local_pending - np, Ordering::SeqCst);
            }
            local_pending = np;
        }
        // Flush batches whose coalescing window has closed.
        if !outq.is_empty() {
            let now = Instant::now();
            let due: Vec<ReplicaId> = outq
                .iter()
                .filter(|(_, q)| q.due <= now)
                .map(|(&d, _)| d)
                .collect();
            for dst in due {
                let q = outq.remove(&dst).expect("due batch present");
                ship(q.msgs, dst, &mut endpoint, &net, now_ms(&epoch));
            }
            // Stay hot while a batch is waiting for its window.
            idle = idle && outq.is_empty();
        }
        // Retransmission timers: fire whatever is due.
        if let Some(ep) = endpoint.as_mut() {
            let now = now_ms(&epoch);
            if ep.next_deadline().is_some_and(|d| d <= now) {
                let mut due = Vec::new();
                ep.poll(now, &mut due);
                for (dst, f) in due {
                    net.send(dst, f);
                }
            }
            let retx = ep.stats().retransmits;
            if retx != last_retx {
                retransmits_ctr.fetch_add(retx - last_retx, Ordering::SeqCst);
                last_retx = retx;
            }
        }
        if idle {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::topology;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn concurrent_writers_converge_consistently() {
        let cluster =
            ThreadedCluster::new(topology::ring(4), DelayModel::Uniform { min: 0, max: 5 }, 3);
        // Writers on all replicas concurrently (via the blocking API from
        // multiple driver threads).
        std::thread::scope(|s| {
            for i in 0..4u32 {
                let c = &cluster;
                s.spawn(move || {
                    for round in 0..10u64 {
                        c.write(r(i), x(i), Value::from(round));
                    }
                });
            }
        });
        cluster.settle();
        let rep = cluster.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
        assert_eq!(cluster.total_applied(), 4 * 10); // each write has 1 recipient
                                                     // Final values visible on both holders.
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(9u64)));
        let trace = cluster.shutdown();
        assert_eq!(trace.num_updates(), 40);
    }

    #[test]
    fn causal_chain_across_threads() {
        let cluster =
            ThreadedCluster::new(topology::path(3), DelayModel::Uniform { min: 0, max: 3 }, 9);
        cluster.write(r(0), x(0), Value::from(1u64));
        cluster.settle();
        // Replica 1 saw the write; its next write is causally after.
        cluster.write(r(1), x(1), Value::from(2u64));
        cluster.settle();
        assert_eq!(cluster.read(r(2), x(1)), Some(Value::from(2u64)));
        assert!(cluster.check().is_consistent());
    }

    #[test]
    fn read_own_writes() {
        let cluster = ThreadedCluster::new(topology::path(2), DelayModel::Fixed(1), 0);
        cluster.write(r(0), x(0), Value::from(77u64));
        assert_eq!(cluster.read(r(0), x(0)), Some(Value::from(77u64)));
    }

    #[test]
    fn unbatched_cluster_still_converges() {
        let cluster = ThreadedCluster::with_config(
            topology::ring(3),
            DelayModel::Fixed(1),
            5,
            ClusterConfig {
                batch: BatchPolicy::unbatched(),
                channel_depth: 2,
                ..ClusterConfig::default()
            },
        );
        for round in 0..5u64 {
            for i in 0..3u32 {
                cluster.write(r(i), x(i), Value::from(round));
            }
        }
        cluster.settle();
        assert!(cluster.check().is_consistent());
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(4u64)));
    }

    #[test]
    fn snapshot_versions_are_monotone_and_readable_mid_run() {
        let cluster = ThreadedCluster::new(topology::path(2), DelayModel::Fixed(1), 2);
        let mut last_version = 0;
        for round in 0..20u64 {
            cluster.write(r(0), x(0), Value::from(round));
            let v = cluster.snapshot_version(r(0));
            assert!(v >= last_version, "snapshot version went backwards");
            assert!(v > 0, "write published a snapshot before replying");
            last_version = v;
            // The snapshot read reflects the acknowledged write.
            assert_eq!(cluster.read(r(0), x(0)), Some(Value::from(round)));
        }
        cluster.settle();
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(19u64)));
    }

    #[test]
    fn concurrent_snapshot_readers_never_see_torn_state() {
        // Ring(3): replica 0 stores registers 0 and 2. The writer bumps
        // x0 then x2 to the same value, so every honestly published
        // snapshot satisfies x2 <= x0. A torn read (x2 from a newer
        // state than x0) would invert that.
        let cluster = ThreadedCluster::new(topology::ring(3), DelayModel::Fixed(0), 4);
        let val = |v: Option<&Value>| match v {
            Some(&Value::U64(n)) => n,
            _ => 0,
        };
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let c = &cluster;
            let done = &done;
            s.spawn(move || {
                for k in 1..=200u64 {
                    c.write(r(0), x(0), Value::from(k));
                    c.write(r(0), x(2), Value::from(k));
                }
                done.store(true, Ordering::SeqCst);
            });
            for _ in 0..2 {
                s.spawn(move || {
                    let mut last_version = 0;
                    while !done.load(Ordering::SeqCst) {
                        let snap = c.store_snapshot(r(0));
                        let a = val(snap.get(&x(0)));
                        let b = val(snap.get(&x(2)));
                        assert!(b <= a, "torn snapshot: x2={b} ran ahead of x0={a}");
                        let v = c.snapshot_version(r(0));
                        assert!(v >= last_version, "snapshot version went backwards");
                        last_version = v;
                    }
                });
            }
        });
        cluster.settle();
        assert!(cluster.check().is_consistent());
    }

    #[test]
    fn lossy_network_converges_with_session() {
        // 30% drop + 20% duplication on real threads: the wall-clock
        // retransmission timers must restore every delivery. Delay ticks
        // are 200 µs, so a 10 ms base RTO clears the healthy round trip.
        let cluster = ThreadedCluster::new_faulty(
            topology::ring(4),
            DelayModel::Uniform { min: 0, max: 5 },
            11,
            WireMode::default(),
            FaultPlan {
                drop_prob: 0.3,
                duplicate_prob: 0.2,
                ..Default::default()
            },
            Some(SessionConfig {
                rto_base: 10,
                rto_max: 80,
                jitter: 3,
                ack_delay: 0,
            }),
        );
        for round in 0..10u64 {
            for i in 0..4u32 {
                cluster.write(r(i), x(i), Value::from(round));
            }
        }
        cluster.settle();
        let rep = cluster.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
        assert_eq!(cluster.total_applied(), 4 * 10);
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(9u64)));
    }
}
