//! A threaded deployment: one OS thread per replica over a
//! [`ThreadNet`] transport.
//!
//! [`ThreadedCluster`] runs the same [`Replica`] state machines as the
//! simulated [`System`](crate::System), but under genuine concurrency and
//! wall-clock message delays — the reproduction's stand-in for the
//! "async nodes" deployment (the offline crate set has no async runtime,
//! so real threads + crossbeam channels play that role).
//!
//! # The hot path
//!
//! Three design points keep client operations off the contended paths:
//!
//! * **Per-thread trace shards.** Each replica thread appends protocol
//!   events to its own shard (a private `Mutex<Vec<_>>`, uncontended in
//!   steady state) stamped with nanoseconds since a shared epoch. The
//!   shards are merged and re-sorted into a causally valid global
//!   [`Trace`] only when [`check`](ThreadedCluster::check) or
//!   [`trace_snapshot`](ThreadedCluster::trace_snapshot) asks — no
//!   global trace lock on the apply path.
//! * **Lock-free read snapshots.** After every state change, a replica
//!   thread publishes an immutable `Arc` snapshot of its store.
//!   [`read`](ThreadedCluster::read) clones the `Arc` and never enqueues
//!   into the replica thread, so readers cannot observe torn state and
//!   cannot slow writers down.
//! * **Batched update pipeline.** Outgoing updates coalesce per
//!   destination under the cluster's [`BatchPolicy`] and ship as
//!   [`BatchMsg`] frames, cutting per-envelope router work; receivers
//!   ingest them through [`Replica::receive_batch`]'s once-per-batch
//!   predicate fast path.
//!
//! Client command channels are *bounded*
//! ([`ClusterConfig::channel_depth`]): a flooded replica thread exerts
//! backpressure on writers instead of growing an unbounded queue.

use crate::codec::{WireCodec, WireMode};
use crate::message::{BatchMsg, UpdateMsg};
use crate::netframe::cluster_codec;
use crate::recovery::RecoveryLog;
use crate::replica::Replica;
use crate::store_cow::{SharedShards, StoreMode};
use crate::system::BatchPolicy;
use crate::tracker::{CausalityTracker, EdgeTracker};
use crate::value::Value;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use prcc_checker::{check, CheckReport, Trace, UpdateId};
use prcc_net::{
    BoundListener, DelayModel, FaultPlan, FaultSchedule, SessionConfig, SessionEndpoint,
    SessionFrame, TcpEndpoint, TcpNetConfig, TcpStatsSnapshot, ThreadNet, Transport,
};
use prcc_sharegraph::{LoopConfig, RegisterId, ReplicaId, ShareGraph, TimestampGraphs};
use prcc_timestamp::TsRegistry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One delay-model tick in wall-clock time (matches the `ThreadNet`
/// router's tick).
const TICK: Duration = Duration::from_micros(200);

/// Full configuration for a [`ThreadedCluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-recipient metadata wire mode.
    pub wire: WireMode,
    /// Router fault plan (drops / duplicates).
    pub faults: FaultPlan,
    /// Scripted fault schedule: link outages are enforced by the router
    /// (ticks of 200 µs from cluster construction) and crash/restart
    /// events are injected as commands by a driver thread walking
    /// [`FaultSchedule::crash_timeline`]. The schedule's embedded plan is
    /// used only when [`faults`](ClusterConfig::faults) is benign.
    pub schedule: FaultSchedule,
    /// Reliable-delivery session layer, if any.
    pub session: Option<SessionConfig>,
    /// Sender-side update batching (`flush_after` is in delay-model
    /// ticks of 200 µs, mirroring the simulated system).
    pub batch: BatchPolicy,
    /// Client command channel bound per replica thread. A full channel
    /// blocks the calling writer — bounded backpressure, never an
    /// unbounded queue.
    pub channel_depth: usize,
    /// Per-node network ingress bound (frames beyond it are shed by the
    /// router and, with a session, repaired by retransmission).
    pub ingress_depth: usize,
    /// Arms per-replica durable [`RecoveryLog`]s with this WAL length
    /// between snapshot compactions. Required for crash/restart (a crash
    /// without a log would be permanent data loss); auto-armed at 1024
    /// when the schedule scripts crashes. Forces eager (unbatched)
    /// shipping so every acknowledged write reaches the durable outbox
    /// before its ack — the ack-after-durable discipline.
    pub durability: Option<usize>,
    /// How publishes materialise snapshots: sharded copy-on-write
    /// (O(Δ) per publish, the default) or the original clone-the-world
    /// oracle ([`StoreMode::Clone`], O(store) per publish).
    pub store: StoreMode,
    /// Pipelines each replica loop into an apply thread plus an I/O
    /// thread (encode / ship / session / decode off the critical path).
    /// On by default; a replica falls back to the single-threaded inline
    /// loop whenever durability is armed (the WAL must observe sends in
    /// issue order), so every crash-bearing configuration runs inline
    /// and piped crash commands are the same no-op the inline loop
    /// performs without a WAL.
    pub pipeline: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            wire: WireMode::default(),
            faults: FaultPlan::default(),
            schedule: FaultSchedule::default(),
            session: None,
            batch: BatchPolicy::default(),
            channel_depth: 1024,
            ingress_depth: 4096,
            durability: None,
            store: StoreMode::default(),
            pipeline: true,
        }
    }
}

/// Why a cluster operation could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// The replica thread has exited (cluster shut down or thread died).
    Disconnected {
        /// The unreachable replica.
        replica: ReplicaId,
    },
    /// The replica is inside a crash window: it is discarding commands
    /// and network frames until its scripted (or explicit) restart.
    Crashed {
        /// The crashed replica.
        replica: ReplicaId,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Disconnected { replica } => {
                write!(f, "replica {replica} thread is gone (cluster shut down?)")
            }
            ClusterError::Crashed { replica } => {
                write!(f, "replica {replica} is crashed (awaiting restart)")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Per-op outcome of a [`Cmd::WriteMany`] run: the issue succeeded, or
/// the replica was inside a crash window and the op must be re-routed by
/// the serving tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteStatus {
    /// Issued (and snapshot-visible) as this update.
    Done(UpdateId),
    /// Rejected: the replica is crashed. Nothing was issued.
    Crashed,
}

enum Cmd {
    Write {
        register: RegisterId,
        value: Value,
        reply: Sender<UpdateId>,
    },
    /// A coalesced run of client writes from the serving tier: every op
    /// is issued before the snapshot is republished once and any
    /// completion token is released — one command, one publish, one
    /// channel round trip for the whole run.
    WriteMany {
        ops: Vec<(u64, RegisterId, Value)>,
        reply: Sender<(u64, WriteStatus)>,
    },
    /// An authoritative read served from the replica's own store (a full
    /// command round trip — the slow path [`ThreadedCluster::read`]'s
    /// lock-free snapshots exist to avoid).
    ReadAt {
        register: RegisterId,
        reply: Sender<Option<Value>>,
    },
    /// Crash the replica: it keeps draining its channels but discards
    /// everything until [`Cmd::Restart`], modelling a fail-stop node
    /// whose durable [`RecoveryLog`] survives. Ignored when no log is
    /// armed. `done` (if any) is signalled once the crash took effect.
    Crash {
        done: Option<Sender<()>>,
    },
    /// Recover from the durable log: replica state and applied frontier
    /// are rebuilt by WAL replay, the session endpoint re-arms its sender
    /// streams from the outbox and probes peers with `CatchUp`.
    Restart {
        done: Option<Sender<()>>,
    },
    Shutdown,
}

/// One protocol event in a per-replica trace shard. The shard owner is
/// implicit: issues belong to the issuing replica's shard, applies to
/// the applying replica's.
#[derive(Clone)]
enum ShardEvent {
    Issue { id: UpdateId, register: RegisterId },
    Apply { id: UpdateId },
}

/// A shard event stamped for the global merge: nanoseconds since the
/// cluster epoch plus a per-shard sequence number (tiebreak that
/// preserves thread-local order).
#[derive(Clone)]
struct Stamped {
    nanos: u64,
    seq: u64,
    ev: ShardEvent,
}

type TraceShard = Mutex<Vec<Stamped>>;

/// Merges per-replica shards into one causally valid [`Trace`].
///
/// Sort key: `(nanos, kind, shard, seq)` with issues before applies at
/// equal instants. This is a faithful real-time linearization: an issue
/// is stamped *before* its update is handed to the network and an apply
/// *after* delivery, so — `Instant` being monotonic across threads — an
/// apply never carries an earlier stamp than its issue, and the
/// issue-first tiebreak settles exact ties. Per-shard order survives
/// because stamps within one thread are non-decreasing with `seq`
/// strictly increasing.
fn merge_shards(shards: &[Arc<TraceShard>]) -> Trace {
    let mut all: Vec<(u64, u8, usize, u64, ShardEvent)> = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        for s in shard.lock().iter() {
            let kind = match s.ev {
                ShardEvent::Issue { .. } => 0u8,
                ShardEvent::Apply { .. } => 1u8,
            };
            all.push((s.nanos, kind, i, s.seq, s.ev.clone()));
        }
    }
    all.sort_by_key(|&(nanos, kind, shard, seq, _)| (nanos, kind, shard, seq));
    let mut trace = Trace::new();
    let mut issued: HashSet<UpdateId> = HashSet::new();
    for (_, _, shard, _, ev) in all {
        match ev {
            ShardEvent::Issue { id, register } => {
                trace.record_issue_with_id(id, register);
                issued.insert(id);
            }
            ShardEvent::Apply { id } => {
                debug_assert!(issued.contains(&id), "apply of {id} stamped before issue");
                if issued.contains(&id) {
                    trace.record_apply(id, ReplicaId::new(shard as u32));
                }
            }
        }
    }
    trace
}

/// One immutable published replica state: the store, per-register update
/// provenance, and the per-issuer *applied frontier*. All three are
/// captured in a single publish, so a reader never sees a store newer
/// than the frontier that vouches for it.
///
/// The frontier is the serving tier's lock-free session-guarantee gate:
/// `frontier[i] = s + 1` means this replica has issued or applied every
/// update from issuer `i` up to sequence number `s`. Because applies are
/// causally ordered, a replica that stores register `x` and covers an
/// update `u` on `x` can never still hold (or later revert to) a value
/// of `x` causally older than `u` — so `covers` is a sufficient
/// read-your-writes / monotonic-reads test that needs no replica lock.
#[derive(Debug, Clone, Default)]
pub struct ReplicaView {
    repr: ViewRepr,
    frontier: Vec<u64>,
}

/// How a published view holds its store. `Flat` is the
/// [`StoreMode::Clone`] oracle (deep-cloned maps, O(store) to build);
/// `Shards` is the default O(Δ) path sharing shard `Arc`s with the live
/// [`CowStore`]. Readers can't tell them apart — same `get` /
/// `source_of` / `covers` answers, same torn-read impossibility (both
/// reprs are immutable once published).
#[derive(Debug, Clone)]
enum ViewRepr {
    Flat {
        store: HashMap<RegisterId, Value>,
        src: HashMap<RegisterId, UpdateId>,
    },
    Shards(SharedShards),
}

impl Default for ViewRepr {
    fn default() -> Self {
        ViewRepr::Flat {
            store: HashMap::new(),
            src: HashMap::new(),
        }
    }
}

impl ReplicaView {
    /// Captures `replica`'s store per `mode`, paired with the applied
    /// frontier that vouches for it. This is the single publish
    /// constructor: the threaded runtime, the lockstep oracle, and the
    /// publish microbench all build views through it.
    pub fn capture(replica: &Replica, mode: StoreMode, frontier: Vec<u64>) -> Self {
        let repr = match mode {
            StoreMode::Cow => ViewRepr::Shards(replica.store_cow().share()),
            StoreMode::Clone => ViewRepr::Flat {
                store: replica.store_snapshot(),
                src: replica.store_src(),
            },
        };
        ReplicaView { repr, frontier }
    }

    /// The published value of `x`, if any.
    pub fn get(&self, x: &RegisterId) -> Option<&Value> {
        match &self.repr {
            ViewRepr::Flat { store, .. } => store.get(x),
            ViewRepr::Shards(s) => s.get(*x),
        }
    }

    /// The full published store, collected into a flat map.
    pub fn store(&self) -> HashMap<RegisterId, Value> {
        match &self.repr {
            ViewRepr::Flat { store, .. } => store.clone(),
            ViewRepr::Shards(s) => s.iter().map(|(x, e)| (*x, e.value.clone())).collect(),
        }
    }

    /// The update that produced the published value of `x` (absent for
    /// unwritten registers and routed-payload writes, whose producing
    /// update is unknown).
    pub fn source_of(&self, x: RegisterId) -> Option<UpdateId> {
        match &self.repr {
            ViewRepr::Flat { src, .. } => src.get(&x).copied(),
            ViewRepr::Shards(s) => s.src_of(x),
        }
    }

    /// `(aliased, total)` physically shared store shards between two
    /// COW-published views; `None` unless both views were published by
    /// the [`StoreMode::Cow`] path. The shard-aliasing non-vacuity test
    /// uses this to prove consecutive publishes skip untouched shards.
    pub fn shards_shared_with(&self, other: &ReplicaView) -> Option<(usize, usize)> {
        match (&self.repr, &other.repr) {
            (ViewRepr::Shards(a), ViewRepr::Shards(b)) => Some(a.shards_shared_with(b)),
            _ => None,
        }
    }

    /// True if this view's issuer frontier includes update `u` — the
    /// replica has issued or applied it (and everything before it from
    /// the same issuer).
    pub fn covers(&self, u: UpdateId) -> bool {
        self.frontier
            .get(u.issuer.index())
            .is_some_and(|&f| f > u.seq)
    }

    /// The per-issuer applied frontier (`frontier[i]` = number of updates
    /// from issuer `i` issued or applied here).
    pub fn frontier(&self) -> &[u64] {
        &self.frontier
    }
}

/// An immutable published [`ReplicaView`] plus a monotonically increasing
/// version. Readers take the read lock only long enough to clone the
/// `Arc`; a view, once published, never mutates — torn reads are
/// impossible by construction.
struct SnapshotCell {
    view: RwLock<Arc<ReplicaView>>,
    version: AtomicU64,
}

impl SnapshotCell {
    fn new(num_replicas: usize) -> Self {
        SnapshotCell {
            view: RwLock::new(Arc::new(ReplicaView {
                repr: ViewRepr::default(),
                frontier: vec![0; num_replicas],
            })),
            version: AtomicU64::new(0),
        }
    }

    fn publish(&self, view: ReplicaView) {
        *self.view.write() = Arc::new(view);
        self.version.fetch_add(1, Ordering::Release);
    }

    fn load(&self) -> Arc<ReplicaView> {
        Arc::clone(&self.view.read())
    }

    fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

/// A running threaded cluster.
///
/// # Examples
///
/// ```
/// use prcc_core::runtime::ThreadedCluster;
/// use prcc_core::Value;
/// use prcc_net::DelayModel;
/// use prcc_sharegraph::{topology, ReplicaId, RegisterId};
///
/// let cluster = ThreadedCluster::new(topology::ring(4), DelayModel::Fixed(1), 7);
/// cluster.write(ReplicaId::new(0), RegisterId::new(0), Value::from(5u64));
/// cluster.settle();
/// assert_eq!(
///     cluster.read(ReplicaId::new(1), RegisterId::new(0)),
///     Some(Value::from(5u64))
/// );
/// assert!(cluster.check().is_consistent());
/// ```
pub struct ThreadedCluster {
    graph: Arc<ShareGraph>,
    cmd_txs: Vec<Sender<Cmd>>,
    threads: Vec<JoinHandle<()>>,
    /// Per-replica trace shards, merged on demand.
    shards: Vec<Arc<TraceShard>>,
    /// Per-replica published read snapshots.
    snapshots: Vec<Arc<SnapshotCell>>,
    /// Total updates applied across all replicas (remote applies).
    applied: Arc<AtomicUsize>,
    /// Total updates currently parked in pending buffers.
    pending: Arc<AtomicUsize>,
    /// Total update messages sent.
    sent: Arc<AtomicUsize>,
    /// Total metadata bytes put on the wire (post-codec frame sizes).
    wire_bytes: Arc<AtomicUsize>,
    /// Total session-layer retransmissions across all replica threads.
    retransmits: Arc<AtomicUsize>,
    /// Total wire-codec demotions (derived-row verification failures)
    /// across all replica threads.
    demotions: Arc<AtomicUsize>,
    /// Updates permanently lost to a crash window (counted only without
    /// a session — with one, retransmission repairs the loss).
    lost: Arc<AtomicUsize>,
    /// Completed replica restarts (crash recoveries).
    restarts: Arc<AtomicUsize>,
    /// Per-replica crash flags, observable without a command round trip
    /// (the serving tier's failover signal).
    crashed: Vec<Arc<AtomicBool>>,
    /// Whether recovery logs are armed (required by [`crash`](Self::crash)).
    durable: bool,
    /// Keep the net alive for the cluster's lifetime.
    net: NetBacking,
}

/// The message substrate a [`ThreadedCluster`] runs over — kept alive
/// (and shut down) with the cluster.
enum NetBacking {
    /// In-process crossbeam channels behind a delay-scheduling router.
    Thread(#[allow(dead_code)] ThreadNet<SessionFrame<BatchMsg>>),
    /// Real kernel sockets: one loopback [`TcpEndpoint`] per replica.
    Tcp(Vec<TcpEndpoint<SessionFrame<BatchMsg>>>),
}

impl fmt::Debug for ThreadedCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadedCluster")
            .field("replicas", &self.cmd_txs.len())
            .field("applied", &self.applied.load(Ordering::Relaxed))
            .finish()
    }
}

impl ThreadedCluster {
    /// Spawns one thread per replica of `graph`, all using the exact
    /// edge-indexed tracker and the default configuration (compressed
    /// wire, batching on, no faults, no session).
    pub fn new(graph: ShareGraph, delay: DelayModel, seed: u64) -> Self {
        Self::with_config(graph, delay, seed, ClusterConfig::default())
    }

    /// Like [`ThreadedCluster::new`], with an explicit wire mode for the
    /// per-recipient metadata codec.
    pub fn new_with_wire(graph: ShareGraph, delay: DelayModel, seed: u64, wire: WireMode) -> Self {
        Self::with_config(
            graph,
            delay,
            seed,
            ClusterConfig {
                wire,
                ..ClusterConfig::default()
            },
        )
    }

    /// A cluster over a lossy transport. The router rolls `faults` on
    /// every frame; `session` (if given) arms a per-replica
    /// [`SessionEndpoint`] whose retransmission timers run on wall-clock
    /// milliseconds — pick `rto_base` comfortably above the delay
    /// model's round trip (delay ticks are 200 µs each). Without a
    /// session config, losses are permanent, exactly as in the simulated
    /// [`System`](crate::System) without one.
    pub fn new_faulty(
        graph: ShareGraph,
        delay: DelayModel,
        seed: u64,
        wire: WireMode,
        faults: FaultPlan,
        session: Option<SessionConfig>,
    ) -> Self {
        Self::with_config(
            graph,
            delay,
            seed,
            ClusterConfig {
                wire,
                faults,
                session,
                ..ClusterConfig::default()
            },
        )
    }

    /// Full-control constructor.
    pub fn with_config(
        graph: ShareGraph,
        delay: DelayModel,
        seed: u64,
        config: ClusterConfig,
    ) -> Self {
        let mut config = config;
        // The legacy plan field and the schedule's embedded plan are the
        // same knob at two API generations; a non-benign `faults` wins.
        if !config.faults.is_benign() {
            config.schedule.plan = config.faults.clone();
        }
        // Scripted crashes without a recovery log would be permanent
        // data loss, which the threaded runtime does not model — arm
        // durability automatically.
        if !config.schedule.crashes.is_empty() && config.durability.is_none() {
            config.durability = Some(1024);
        }
        let graph = Arc::new(graph);
        let registry = Arc::new(TsRegistry::new(
            &graph,
            TimestampGraphs::build(&graph, LoopConfig::EXHAUSTIVE),
        ));
        let net: ThreadNet<SessionFrame<BatchMsg>> = ThreadNet::with_schedule(
            graph.num_replicas(),
            delay,
            seed,
            config.schedule.clone(),
            config.ingress_depth,
        );
        let handles: Vec<_> = graph.replicas().map(|i| net.handle(i)).collect();
        Self::spawn(graph, registry, config, handles, NetBacking::Thread(net))
    }

    /// A cluster over **real kernel sockets**: every replica gets its own
    /// loopback [`TcpEndpoint`], per-peer TCP connections, and the
    /// [`cluster_codec`] link framing — the same replica threads, command
    /// surface, and trace machinery as [`with_config`](Self::with_config),
    /// with the [`ThreadNet`] router swapped for the kernel.
    ///
    /// Link-level fault injection ([`ClusterConfig::faults`] /
    /// [`FaultSchedule`] outages) is a router feature and does not apply
    /// here — the kernel's loopback does not drop frames. Scripted
    /// crash/restart events still work (they are injected as commands).
    /// A [`SessionConfig`] is still worth arming: the transport sheds
    /// frames on a backed-up or not-yet-connected peer, and only session
    /// retransmission repairs those.
    pub fn with_tcp(
        graph: ShareGraph,
        config: ClusterConfig,
        tcp: TcpNetConfig,
    ) -> io::Result<Self> {
        let mut config = config;
        if !config.schedule.crashes.is_empty() && config.durability.is_none() {
            config.durability = Some(1024);
        }
        let graph = Arc::new(graph);
        let registry = Arc::new(TsRegistry::new(
            &graph,
            TimestampGraphs::build(&graph, LoopConfig::EXHAUSTIVE),
        ));
        // Two-phase bind: every listener is live before any endpoint
        // starts, so first connects never race the accept loops.
        let loopback: SocketAddr = ([127, 0, 0, 1], 0).into();
        let mut bounds = Vec::with_capacity(graph.num_replicas());
        for i in graph.replicas() {
            bounds.push(BoundListener::bind(i, loopback)?);
        }
        let addrs: Vec<SocketAddr> = bounds.iter().map(BoundListener::local_addr).collect();
        let replicas: Vec<ReplicaId> = graph.replicas().collect();
        let mut endpoints = Vec::with_capacity(bounds.len());
        let mut handles = Vec::with_capacity(bounds.len());
        for bound in bounds {
            let me = bound.id();
            let peers: HashMap<ReplicaId, SocketAddr> = replicas
                .iter()
                .filter(|&&r| r != me)
                .map(|&r| (r, addrs[r.index()]))
                .collect();
            let mut cfg = tcp.clone();
            cfg.ingress_depth = config.ingress_depth;
            let ep = TcpEndpoint::start(bound, peers, cfg, cluster_codec(me, registry.clone()))?;
            handles.push(ep.handle());
            endpoints.push(ep);
        }
        Ok(Self::spawn(
            graph,
            registry,
            config,
            handles,
            NetBacking::Tcp(endpoints),
        ))
    }

    /// Spawns the replica threads over already-built transport handles —
    /// the substrate-independent half of every constructor.
    fn spawn<T: Transport<Msg = SessionFrame<BatchMsg>>>(
        graph: Arc<ShareGraph>,
        registry: Arc<TsRegistry>,
        config: ClusterConfig,
        handles: Vec<T>,
        net: NetBacking,
    ) -> Self {
        let applied = Arc::new(AtomicUsize::new(0));
        let pending = Arc::new(AtomicUsize::new(0));
        let sent = Arc::new(AtomicUsize::new(0));
        let wire_bytes = Arc::new(AtomicUsize::new(0));
        let retransmits = Arc::new(AtomicUsize::new(0));
        let demotions = Arc::new(AtomicUsize::new(0));
        let lost = Arc::new(AtomicUsize::new(0));
        let restarts = Arc::new(AtomicUsize::new(0));
        let epoch = Instant::now();

        let mut cmd_txs = Vec::new();
        let mut threads = Vec::new();
        let mut shards = Vec::new();
        let mut snapshots = Vec::new();
        let mut crashed = Vec::new();
        for (i, handle) in graph.replicas().zip(handles) {
            let (tx, rx) = bounded::<Cmd>(config.channel_depth.max(1));
            cmd_txs.push(tx);
            let shard: Arc<TraceShard> = Arc::new(Mutex::new(Vec::new()));
            shards.push(shard.clone());
            let snapshot = Arc::new(SnapshotCell::new(graph.num_replicas()));
            snapshots.push(snapshot.clone());
            let crashed_flag = Arc::new(AtomicBool::new(false));
            crashed.push(crashed_flag.clone());
            let graph = graph.clone();
            let registry = registry.clone();
            let config = config.clone();
            let applied = applied.clone();
            let pending = pending.clone();
            let sent = sent.clone();
            let wire_bytes = wire_bytes.clone();
            let retransmits = retransmits.clone();
            let demotions = demotions.clone();
            let lost = lost.clone();
            let restarts = restarts.clone();
            let builder = std::thread::Builder::new().name(format!("apply-{}", i.raw()));
            let handle_t = builder.spawn(move || {
                replica_main(ReplicaCtx {
                    id: i,
                    graph,
                    registry,
                    config,
                    epoch,
                    net: handle,
                    cmds: rx,
                    shard,
                    snapshot,
                    crashed_flag,
                    applied_ctr: applied,
                    pending_ctr: pending,
                    sent_ctr: sent,
                    wire_bytes_ctr: wire_bytes,
                    retransmits_ctr: retransmits,
                    demotions_ctr: demotions,
                    lost_ctr: lost,
                    restarts_ctr: restarts,
                })
            });
            threads.push(handle_t.expect("spawn replica apply thread"));
        }
        // The fault driver: walks the scripted crash/restart timeline on
        // the shared wall-clock tick and injects the events as commands.
        // Detached — it exits on its own once the timeline is done or the
        // replica threads are gone.
        let timeline = config.schedule.crash_timeline();
        if !timeline.is_empty() {
            let txs = cmd_txs.clone();
            std::thread::spawn(move || {
                for (tick, r, is_restart) in timeline {
                    let due = epoch + TICK * tick.min(u32::MAX as u64) as u32;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let mut cmd = Some(if is_restart {
                        Cmd::Restart { done: None }
                    } else {
                        Cmd::Crash { done: None }
                    });
                    // Bounded retry on a full channel: the event lands a
                    // little late rather than blocking forever against a
                    // cluster that is shutting down.
                    let deadline = Instant::now() + Duration::from_secs(2);
                    while let Some(c) = cmd.take() {
                        match txs[r.index()].try_send(c) {
                            Ok(()) => {}
                            Err(TrySendError::Full(c)) => {
                                if Instant::now() >= deadline {
                                    break;
                                }
                                cmd = Some(c);
                                std::thread::sleep(TICK);
                            }
                            Err(TrySendError::Disconnected(_)) => return,
                        }
                    }
                }
            });
        }
        ThreadedCluster {
            graph,
            cmd_txs,
            threads,
            shards,
            snapshots,
            applied,
            pending,
            sent,
            wire_bytes,
            retransmits,
            demotions,
            lost,
            restarts,
            crashed,
            durable: config.durability.is_some(),
            net,
        }
    }

    /// Per-replica transport counters when this cluster runs over TCP
    /// ([`with_tcp`](Self::with_tcp)); `None` over the in-process router.
    pub fn tcp_stats(&self) -> Option<Vec<TcpStatsSnapshot>> {
        match &self.net {
            NetBacking::Tcp(eps) => Some(eps.iter().map(TcpEndpoint::stats).collect()),
            NetBacking::Thread(_) => None,
        }
    }

    /// Per-delivery latencies in nanoseconds — one entry per recorded
    /// apply, `apply stamp − issue stamp` on the shared cluster epoch.
    /// Meaningful for any single-process cluster (both substrates share
    /// one monotonic epoch).
    pub fn delivery_latencies_nanos(&self) -> Vec<u64> {
        let mut issued: HashMap<UpdateId, u64> = HashMap::new();
        let mut out = Vec::new();
        for shard in &self.shards {
            for s in shard.lock().iter() {
                if let ShardEvent::Issue { id, .. } = s.ev {
                    issued.insert(id, s.nanos);
                }
            }
        }
        for shard in &self.shards {
            for s in shard.lock().iter() {
                if let ShardEvent::Apply { id } = s.ev {
                    if let Some(&t0) = issued.get(&id) {
                        out.push(s.nanos.saturating_sub(t0));
                    }
                }
            }
        }
        out
    }

    /// Performs a blocking write at replica `r`. A full command channel
    /// blocks until the replica thread drains (bounded backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `r` does not store `x`, is crashed, or the cluster has
    /// shut down. Fallible callers (the serving tier) use
    /// [`try_write`](Self::try_write).
    pub fn write(&self, r: ReplicaId, x: RegisterId, v: Value) -> UpdateId {
        self.try_write(r, x, v)
            .unwrap_or_else(|e| panic!("write({r}, {x}): {e}"))
    }

    /// Fallible blocking write at replica `r`: a crashed replica or dead
    /// thread yields a typed [`ClusterError`] instead of a panic.
    pub fn try_write(
        &self,
        r: ReplicaId,
        x: RegisterId,
        v: Value,
    ) -> Result<UpdateId, ClusterError> {
        let (reply, rx) = bounded(1);
        if self.cmd_txs[r.index()]
            .send(Cmd::Write {
                register: x,
                value: v,
                reply,
            })
            .is_err()
        {
            return Err(ClusterError::Disconnected { replica: r });
        }
        rx.recv().map_err(|_| self.unreachable_kind(r))
    }

    /// Classifies why a reply channel from `r` died: the thread dropped
    /// the reply because the replica is crashed, or the thread is gone.
    fn unreachable_kind(&self, r: ReplicaId) -> ClusterError {
        if self.is_crashed(r) {
            ClusterError::Crashed { replica: r }
        } else {
            ClusterError::Disconnected { replica: r }
        }
    }

    /// Pipelined writes: enqueues every command before collecting any
    /// reply, so the replica thread coalesces the burst into batches
    /// instead of ping-ponging one command per reply. The command
    /// channel's bound still applies — a burst deeper than
    /// `channel_depth` blocks until the replica drains.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not store one of the registers or the cluster
    /// has shut down.
    pub fn write_burst(&self, r: ReplicaId, writes: &[(RegisterId, Value)]) -> Vec<UpdateId> {
        let (reply, rx) = bounded(writes.len().max(1));
        for (x, v) in writes {
            if self.cmd_txs[r.index()]
                .send(Cmd::Write {
                    register: *x,
                    value: v.clone(),
                    reply: reply.clone(),
                })
                .is_err()
            {
                panic!(
                    "write_burst({r}): {}",
                    ClusterError::Disconnected { replica: r }
                );
            }
        }
        drop(reply);
        let mut ids = Vec::with_capacity(writes.len());
        for _ in writes {
            match rx.recv() {
                Ok(id) => ids.push(id),
                Err(_) => panic!("write_burst({r}): {}", self.unreachable_kind(r)),
            }
        }
        ids
    }

    /// Reads register `x` at replica `r` from its published snapshot —
    /// no round trip into the replica thread, no torn reads (snapshots
    /// are immutable once published). Reflects the replica's own writes
    /// as soon as [`write`](Self::write) returns.
    pub fn read(&self, r: ReplicaId, x: RegisterId) -> Option<Value> {
        self.snapshots[r.index()].load().get(&x).cloned()
    }

    /// Reads register `x` authoritatively *at* the replica thread: a
    /// blocking command round trip serving from the replica's own store.
    /// Semantically equivalent to [`read`](Self::read) once the write
    /// publishing the value returned; exists as the naive-serving
    /// baseline the lock-free snapshot path is measured against.
    pub fn read_at(&self, r: ReplicaId, x: RegisterId) -> Option<Value> {
        self.try_read_at(r, x)
            .unwrap_or_else(|e| panic!("read_at({r}, {x}): {e}"))
    }

    /// Fallible authoritative read: a crashed replica or dead thread
    /// yields a typed [`ClusterError`] instead of a panic.
    pub fn try_read_at(&self, r: ReplicaId, x: RegisterId) -> Result<Option<Value>, ClusterError> {
        let (reply, rx) = bounded(1);
        if self.cmd_txs[r.index()]
            .send(Cmd::ReadAt { register: x, reply })
            .is_err()
        {
            return Err(ClusterError::Disconnected { replica: r });
        }
        rx.recv().map_err(|_| self.unreachable_kind(r))
    }

    /// The full immutable [`ReplicaView`] currently published by `r`
    /// (store, provenance, and applied frontier, captured atomically).
    pub fn store_snapshot(&self, r: ReplicaId) -> Arc<ReplicaView> {
        self.snapshots[r.index()].load()
    }

    /// The share graph the cluster runs over.
    pub fn graph(&self) -> &ShareGraph {
        &self.graph
    }

    /// Enqueues a coalesced run of tagged writes at replica `r` without
    /// waiting for completion; each `(token, WriteStatus)` completion is
    /// delivered on `reply` — [`WriteStatus::Done`] after the replica
    /// republishes its snapshot (so a completion implies read-your-writes
    /// visibility), [`WriteStatus::Crashed`] when the replica is inside a
    /// crash window and the op must be re-routed. When the replica
    /// thread is gone entirely (cluster shutting down) nothing is
    /// enqueued and the ops are handed back for the caller to re-route.
    /// The serving tier's write-ingress path.
    pub(crate) fn send_write_many(
        &self,
        r: ReplicaId,
        ops: Vec<(u64, RegisterId, Value)>,
        reply: Sender<(u64, WriteStatus)>,
    ) -> Result<(), Vec<(u64, RegisterId, Value)>> {
        self.cmd_txs[r.index()]
            .send(Cmd::WriteMany { ops, reply })
            .map_err(|e| match e.0 {
                Cmd::WriteMany { ops, .. } => ops,
                _ => unreachable!("send_write_many only sends WriteMany"),
            })
    }

    /// True if `r` is currently inside a crash window (lock-free flag —
    /// the serving tier's failover signal).
    pub fn is_crashed(&self, r: ReplicaId) -> bool {
        self.crashed[r.index()].load(Ordering::SeqCst)
    }

    /// Crashes replica `r` now, blocking until the crash took effect.
    /// The replica's volatile state is gone; its durable [`RecoveryLog`]
    /// survives for [`restart`](Self::restart).
    ///
    /// # Panics
    ///
    /// Panics if durability is not armed
    /// ([`ClusterConfig::durability`]) — a crash without a recovery log
    /// would be permanent data loss, which this runtime does not model —
    /// or if the cluster has shut down.
    pub fn crash(&self, r: ReplicaId) {
        assert!(
            self.durable,
            "crash({r}) requires ClusterConfig::durability (recovery logs are not armed)"
        );
        let (done, rx) = bounded(1);
        self.cmd_txs[r.index()]
            .send(Cmd::Crash { done: Some(done) })
            .unwrap_or_else(|_| panic!("crash({r}): cluster has shut down"));
        let _ = rx.recv();
    }

    /// Restarts a crashed replica `r` from its durable log, blocking
    /// until recovery (WAL replay + session stream rebuild + catch-up
    /// probes) completed. A no-op on a replica that is not crashed.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has shut down.
    pub fn restart(&self, r: ReplicaId) {
        let (done, rx) = bounded(1);
        self.cmd_txs[r.index()]
            .send(Cmd::Restart { done: Some(done) })
            .unwrap_or_else(|_| panic!("restart({r}): cluster has shut down"));
        let _ = rx.recv();
    }

    /// The snapshot publication counter of `r` (monotonically
    /// increasing; one bump per published state change).
    pub fn snapshot_version(&self, r: ReplicaId) -> u64 {
        self.snapshots[r.index()].version()
    }

    /// Blocks until the cluster is quiescent: every sent message that has
    /// a recipient has been applied (or, without a session to repair it,
    /// permanently lost to a crash window) and no pending buffers remain,
    /// stable for a grace period.
    pub fn settle(&self) {
        let mut last = (usize::MAX, usize::MAX);
        let mut stable_since = Instant::now();
        loop {
            let now = (
                self.applied.load(Ordering::SeqCst),
                self.pending.load(Ordering::SeqCst),
            );
            let sent = self.sent.load(Ordering::SeqCst);
            let lost = self.lost.load(Ordering::SeqCst);
            let drained = now.0 + lost >= sent && now.1 == 0;
            if now != last {
                last = now;
                stable_since = Instant::now();
            } else if drained && stable_since.elapsed() > Duration::from_millis(50) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Checks the recorded trace for replica-centric causal consistency.
    pub fn check(&self) -> CheckReport {
        check(&merge_shards(&self.shards), self.graph.placement())
    }

    /// A snapshot of the trace so far (shards merged and causally
    /// re-sorted).
    pub fn trace_snapshot(&self) -> Trace {
        merge_shards(&self.shards)
    }

    /// Total remote applies so far.
    pub fn total_applied(&self) -> usize {
        self.applied.load(Ordering::SeqCst)
    }

    /// Total metadata bytes sent so far, as framed by the wire codec.
    pub fn total_wire_bytes(&self) -> usize {
        self.wire_bytes.load(Ordering::SeqCst)
    }

    /// Total session-layer retransmissions so far (0 without a session
    /// or on a clean network).
    pub fn total_retransmits(&self) -> usize {
        self.retransmits.load(Ordering::SeqCst)
    }

    /// Total wire-codec demotions so far (0 unless a malformed layout
    /// was injected — registry layouts verify at construction).
    pub fn total_codec_demotions(&self) -> usize {
        self.demotions.load(Ordering::SeqCst)
    }

    /// Completed replica restarts (crash recoveries) so far.
    pub fn total_restarts(&self) -> usize {
        self.restarts.load(Ordering::SeqCst)
    }

    /// Updates permanently lost to crash windows so far (always 0 with a
    /// session layer — retransmission repairs crash-window losses).
    pub fn total_lost_to_crash(&self) -> usize {
        self.lost.load(Ordering::SeqCst)
    }

    /// Shuts the cluster down, joining all replica threads.
    pub fn shutdown(mut self) -> Trace {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        merge_shards(&self.shards)
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// One protocol event exported from a node's trace shard, in the node's
/// own thread order. The multi-process driver assembles per-node event
/// logs into one global [`Trace`] *topologically* (an apply is placed
/// after its issue) — wall clocks are not comparable across processes,
/// so no stamps are exported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeEvent {
    /// `id` was issued at this node, writing `register`.
    Issue {
        /// The new update's id.
        id: UpdateId,
        /// The register written.
        register: RegisterId,
    },
    /// `id` was applied at this node.
    Apply {
        /// The applied update's id.
        id: UpdateId,
    },
}

/// One replica of a cluster running **in this process**, its peers
/// reachable over TCP — the per-process unit behind `prcc-node`. Runs
/// exactly the [`ThreadedCluster`] replica loop (same commands, same
/// trace shard, same snapshot publishing) with a [`prcc_net::TcpHandle`]
/// as its transport.
pub struct NodeRuntime {
    id: ReplicaId,
    graph: Arc<ShareGraph>,
    cmd_tx: Sender<Cmd>,
    thread: Option<JoinHandle<()>>,
    shard: Arc<TraceShard>,
    snapshot: Arc<SnapshotCell>,
    applied: Arc<AtomicUsize>,
    pending: Arc<AtomicUsize>,
    sent: Arc<AtomicUsize>,
    wire_bytes: Arc<AtomicUsize>,
    endpoint: TcpEndpoint<SessionFrame<BatchMsg>>,
}

impl fmt::Debug for NodeRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeRuntime")
            .field("id", &self.id)
            .field("applied", &self.applied.load(Ordering::Relaxed))
            .finish()
    }
}

impl NodeRuntime {
    /// Starts replica `id` of `graph` on an already-bound listener,
    /// connecting out to `peers` (every other replica's listen address).
    ///
    /// # Panics
    ///
    /// Panics if `bound` was bound for a different replica id.
    pub fn start(
        graph: ShareGraph,
        config: ClusterConfig,
        tcp: TcpNetConfig,
        bound: BoundListener,
        peers: HashMap<ReplicaId, SocketAddr>,
    ) -> io::Result<NodeRuntime> {
        let id = bound.id();
        let graph = Arc::new(graph);
        // Every process derives the identical registry from the shared
        // graph — layout negotiation needs no cross-process exchange.
        let registry = Arc::new(TsRegistry::new(
            &graph,
            TimestampGraphs::build(&graph, LoopConfig::EXHAUSTIVE),
        ));
        let mut cfg = tcp;
        cfg.ingress_depth = config.ingress_depth;
        let endpoint = TcpEndpoint::start(bound, peers, cfg, cluster_codec(id, registry.clone()))?;
        let (cmd_tx, cmd_rx) = bounded::<Cmd>(config.channel_depth.max(1));
        let shard: Arc<TraceShard> = Arc::new(Mutex::new(Vec::new()));
        let snapshot = Arc::new(SnapshotCell::new(graph.num_replicas()));
        let applied = Arc::new(AtomicUsize::new(0));
        let pending = Arc::new(AtomicUsize::new(0));
        let sent = Arc::new(AtomicUsize::new(0));
        let wire_bytes = Arc::new(AtomicUsize::new(0));
        let thread = std::thread::spawn({
            let graph = graph.clone();
            let shard = shard.clone();
            let snapshot = snapshot.clone();
            let applied = applied.clone();
            let pending = pending.clone();
            let sent = sent.clone();
            let wire_bytes = wire_bytes.clone();
            let net = endpoint.handle();
            move || {
                replica_main(ReplicaCtx {
                    id,
                    graph,
                    registry,
                    config,
                    epoch: Instant::now(),
                    net,
                    cmds: cmd_rx,
                    shard,
                    snapshot,
                    crashed_flag: Arc::new(AtomicBool::new(false)),
                    applied_ctr: applied,
                    pending_ctr: pending,
                    sent_ctr: sent,
                    wire_bytes_ctr: wire_bytes,
                    retransmits_ctr: Arc::new(AtomicUsize::new(0)),
                    demotions_ctr: Arc::new(AtomicUsize::new(0)),
                    lost_ctr: Arc::new(AtomicUsize::new(0)),
                    restarts_ctr: Arc::new(AtomicUsize::new(0)),
                })
            }
        });
        Ok(NodeRuntime {
            id,
            graph,
            cmd_tx,
            thread: Some(thread),
            shard,
            snapshot,
            applied,
            pending,
            sent,
            wire_bytes,
            endpoint,
        })
    }

    /// This node's replica id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The share graph this node runs over.
    pub fn graph(&self) -> &ShareGraph {
        &self.graph
    }

    /// Blocking write of `v` to register `x` at this replica.
    ///
    /// # Panics
    ///
    /// Panics if this replica does not store `x` or the runtime has shut
    /// down.
    pub fn write(&self, x: RegisterId, v: Value) -> UpdateId {
        let (reply, rx) = bounded(1);
        self.cmd_tx
            .send(Cmd::Write {
                register: x,
                value: v,
                reply,
            })
            .unwrap_or_else(|_| panic!("write({x}): node {} has shut down", self.id));
        rx.recv()
            .unwrap_or_else(|_| panic!("write({x}): node {} replica thread died", self.id))
    }

    /// Lock-free snapshot read of register `x`.
    pub fn read(&self, x: RegisterId) -> Option<Value> {
        self.snapshot.load().get(&x).cloned()
    }

    /// The full published [`ReplicaView`].
    pub fn store_snapshot(&self) -> Arc<ReplicaView> {
        self.snapshot.load()
    }

    /// Remote updates applied here so far.
    pub fn total_applied(&self) -> usize {
        self.applied.load(Ordering::SeqCst)
    }

    /// Update messages sent from here so far.
    pub fn total_sent(&self) -> usize {
        self.sent.load(Ordering::SeqCst)
    }

    /// Metadata bytes put on the wire so far (wire-codec frame sizes).
    pub fn total_wire_bytes(&self) -> usize {
        self.wire_bytes.load(Ordering::SeqCst)
    }

    /// Blocks until this node has applied at least `expected_applies`
    /// remote updates with nothing parked in pending buffers, stable for
    /// a grace period. Returns `false` on timeout — the multi-process
    /// quiescence primitive (each node knows its own expected apply count
    /// from the shared seeded workload; no cross-process counter exists).
    pub fn wait_quiescent(&self, expected_applies: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stable_since = Instant::now();
        let mut last = usize::MAX;
        loop {
            let applied = self.applied.load(Ordering::SeqCst);
            let drained = applied >= expected_applies && self.pending.load(Ordering::SeqCst) == 0;
            if applied != last {
                last = applied;
                stable_since = Instant::now();
            } else if drained && stable_since.elapsed() > Duration::from_millis(50) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// This node's protocol events so far, in thread order.
    pub fn events(&self) -> Vec<NodeEvent> {
        self.shard
            .lock()
            .iter()
            .map(|s| match s.ev {
                ShardEvent::Issue { id, register } => NodeEvent::Issue { id, register },
                ShardEvent::Apply { id } => NodeEvent::Apply { id },
            })
            .collect()
    }

    /// Transport counters for this node's endpoint.
    pub fn tcp_stats(&self) -> TcpStatsSnapshot {
        self.endpoint.stats()
    }

    /// Shuts the node down: flushes queued batches, joins the replica
    /// thread, and returns the final event log.
    pub fn shutdown(mut self) -> Vec<NodeEvent> {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.endpoint.shutdown();
        self.events()
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Everything one replica thread owns. Generic over the [`Transport`]
/// carrying session frames: [`prcc_net::NodeHandle`] in-process,
/// [`prcc_net::TcpHandle`] over real sockets — the loop is identical.
struct ReplicaCtx<T: Transport<Msg = SessionFrame<BatchMsg>>> {
    id: ReplicaId,
    graph: Arc<ShareGraph>,
    registry: Arc<TsRegistry>,
    config: ClusterConfig,
    epoch: Instant,
    net: T,
    cmds: Receiver<Cmd>,
    shard: Arc<TraceShard>,
    snapshot: Arc<SnapshotCell>,
    crashed_flag: Arc<AtomicBool>,
    applied_ctr: Arc<AtomicUsize>,
    pending_ctr: Arc<AtomicUsize>,
    sent_ctr: Arc<AtomicUsize>,
    wire_bytes_ctr: Arc<AtomicUsize>,
    retransmits_ctr: Arc<AtomicUsize>,
    demotions_ctr: Arc<AtomicUsize>,
    lost_ctr: Arc<AtomicUsize>,
    restarts_ctr: Arc<AtomicUsize>,
}

/// A per-destination pending batch on the sender side.
struct Outq {
    msgs: Vec<UpdateMsg>,
    bytes: usize,
    due: Instant,
}

/// Wraps queued updates as a batch and hands it to the session layer
/// (or ships it bare). With a recovery log armed, the batch enters the
/// durable outbox *before* the network sees it — restart rebuilds the
/// session sender streams from exactly this history.
fn ship<T: Transport<Msg = SessionFrame<BatchMsg>>>(
    msgs: Vec<UpdateMsg>,
    dst: ReplicaId,
    endpoint: &mut Option<SessionEndpoint<BatchMsg>>,
    net: &T,
    now_ms: u64,
    log: &mut Option<RecoveryLog>,
) {
    let batch = BatchMsg { updates: msgs };
    if let Some(lg) = log.as_mut() {
        lg.record_send(dst, batch.clone());
    }
    let frame = match endpoint.as_mut() {
        Some(ep) => ep.send(dst, batch, now_ms),
        None => SessionFrame::Bare(batch),
    };
    net.send(dst, frame);
}

/// The encode-and-ship half of a replica's transmit path: wire codec,
/// pending per-destination batches, session endpoint, and the network
/// handle. Owned by the replica thread in the inline loop (inside
/// [`TxPath`]) and by the dedicated I/O thread in the pipelined loop —
/// per-pair codec delta state never crosses threads either way.
struct FanoutPath<T: Transport<Msg = SessionFrame<BatchMsg>>> {
    id: ReplicaId,
    codec: WireCodec,
    outq: HashMap<ReplicaId, Outq>,
    endpoint: Option<SessionEndpoint<BatchMsg>>,
    net: T,
    epoch: Instant,
    batch: BatchPolicy,
    eager: bool,
    flush_window: Duration,
    wire_bytes_ctr: Arc<AtomicUsize>,
    demotions_ctr: Arc<AtomicUsize>,
    retransmits_ctr: Arc<AtomicUsize>,
    last_demotions: usize,
    last_retx: usize,
}

impl<T: Transport<Msg = SessionFrame<BatchMsg>>> FanoutPath<T> {
    /// Session timers run on wall-clock milliseconds since the cluster
    /// epoch — the real-timer counterpart of the sim clock.
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn ship(&mut self, msgs: Vec<UpdateMsg>, dst: ReplicaId, log: &mut Option<RecoveryLog>) {
        let now_ms = self.now_ms();
        ship(msgs, dst, &mut self.endpoint, &self.net, now_ms, log);
    }

    /// Encodes `msg` for each recipient and ships it (eager) or
    /// coalesces it into the per-destination batch. Encode-once
    /// fan-out: the metadata `Arc` (or its per-pair projected frame) is
    /// shared, not cloned, and identical pair streams share one varint
    /// pass.
    fn fanout(
        &mut self,
        msg: &UpdateMsg,
        recipients: Vec<ReplicaId>,
        log: &mut Option<RecoveryLog>,
    ) {
        let metas = self.codec.encode_fanout(self.id, &recipients, &msg.meta);
        let demoted = self.codec.stats().demotions;
        if demoted > self.last_demotions {
            // Delta, not a store: other replica threads are adding
            // their own demotions to the same counter.
            self.demotions_ctr
                .fetch_add(demoted - self.last_demotions, Ordering::SeqCst);
            self.last_demotions = demoted;
        }
        for (dst, meta) in recipients.into_iter().zip(metas) {
            let m = UpdateMsg {
                meta,
                ..msg.clone()
            };
            self.wire_bytes_ctr
                .fetch_add(m.meta.size_bytes(), Ordering::SeqCst);
            if self.eager {
                self.ship(vec![m], dst, log);
            } else {
                let q = self.outq.entry(dst).or_insert_with(|| Outq {
                    msgs: Vec::new(),
                    bytes: 0,
                    due: Instant::now() + self.flush_window,
                });
                q.bytes += m.size_bytes();
                q.msgs.push(m);
                if q.msgs.len() >= self.batch.batch_count || q.bytes >= self.batch.batch_bytes {
                    let q = self.outq.remove(&dst).expect("slot just filled");
                    self.ship(q.msgs, dst, log);
                }
            }
        }
    }

    /// Ships batches whose coalescing window has closed. Returns true
    /// when nothing remains queued (the thread may doze).
    fn flush_due(&mut self, log: &mut Option<RecoveryLog>) -> bool {
        if self.outq.is_empty() {
            return true;
        }
        let now = Instant::now();
        let due: Vec<ReplicaId> = self
            .outq
            .iter()
            .filter(|(_, q)| q.due <= now)
            .map(|(&d, _)| d)
            .collect();
        for dst in due {
            let q = self.outq.remove(&dst).expect("due batch present");
            self.ship(q.msgs, dst, log);
        }
        // Stay hot while a batch is waiting for its window.
        self.outq.is_empty()
    }

    /// Flushes every unshipped batch so nothing queued is lost.
    fn flush_all(&mut self, log: &mut Option<RecoveryLog>) {
        let outq = std::mem::take(&mut self.outq);
        for (dst, q) in outq {
            self.ship(q.msgs, dst, log);
        }
    }

    /// Fires due retransmission timers and rolls the endpoint's
    /// retransmit counter delta into the cluster total.
    fn poll_session(&mut self) {
        let now = self.now_ms();
        let Some(ep) = self.endpoint.as_mut() else {
            return;
        };
        if ep.next_deadline().is_some_and(|d| d <= now) {
            let mut due = Vec::new();
            ep.poll(now, &mut due);
            for (dst, f) in due {
                self.net.send(dst, f);
            }
        }
        let retx = ep.stats().retransmits;
        if retx != self.last_retx {
            self.retransmits_ctr
                .fetch_add(retx - self.last_retx, Ordering::SeqCst);
            self.last_retx = retx;
        }
    }
}

/// The full single-threaded transmit path of the inline loop: issue
/// (WAL + write + stamp) fused with [`FanoutPath`] encode/ship, plus
/// the durable log the command loop also records deliveries through.
/// Factored out of the command loop so [`Cmd::Write`] and
/// [`Cmd::WriteMany`] share one issue path.
struct TxPath<'a, T: Transport<Msg = SessionFrame<BatchMsg>>> {
    fan: FanoutPath<T>,
    graph: &'a ShareGraph,
    /// Durable recovery log, when armed. Owned here because the WAL's
    /// outbox entries are written on the transmit path (`ship`), but the
    /// command loop also records deliveries and drives snapshots/recovery
    /// through it.
    log: Option<RecoveryLog>,
    shard: &'a TraceShard,
    shard_seq: u64,
    sent_ctr: &'a AtomicUsize,
}

impl<T: Transport<Msg = SessionFrame<BatchMsg>>> TxPath<'_, T> {
    /// Issues one write at `replica`, stamps the issue, and fans the
    /// update out to the register's other holders (batched or eager per
    /// policy). Returns the new update's id. Does *not* publish a
    /// snapshot — the caller publishes once per drain burst, which is
    /// what makes bursts cheap.
    fn issue(&mut self, replica: &mut Replica, register: RegisterId, value: Value) -> UpdateId {
        // Write-ahead: the WAL entry lands before the write executes or
        // any ack can escape (crashes are injected at command
        // granularity, so the entry and the state change are atomic).
        if let Some(lg) = self.log.as_mut() {
            lg.record_own_write(register, value.clone());
        }
        let (msg, recipients, uid) = issue_local(
            replica,
            self.graph,
            self.fan.id,
            self.shard,
            &mut self.shard_seq,
            self.fan.epoch,
            self.sent_ctr,
            register,
            value,
        );
        self.fan.fanout(&msg, recipients, &mut self.log);
        uid
    }
}

/// The issue half shared by both loops: WAL-free local write + issue
/// stamp + sent accounting. Returns the update to fan out (the caller
/// encodes and ships — inline directly, pipelined via the egress
/// channel).
#[allow(clippy::too_many_arguments)]
fn issue_local(
    replica: &mut Replica,
    graph: &ShareGraph,
    id: ReplicaId,
    shard: &TraceShard,
    shard_seq: &mut u64,
    epoch: Instant,
    sent_ctr: &AtomicUsize,
    register: RegisterId,
    value: Value,
) -> (UpdateMsg, Vec<ReplicaId>, UpdateId) {
    let recipients: Vec<ReplicaId> = graph
        .placement()
        .holders(register)
        .iter()
        .copied()
        .filter(|&h| h != id)
        .collect();
    let (msg, recipients) = replica
        .write(register, value, recipients)
        .unwrap_or_else(|e| panic!("{e}"));
    let uid = UpdateId {
        issuer: id,
        seq: msg.seq,
    };
    // Stamp the issue *before* any send: the shard merge relies on
    // issue stamps preceding all apply stamps.
    shard.lock().push(Stamped {
        nanos: epoch.elapsed().as_nanos() as u64,
        seq: *shard_seq,
        ev: ShardEvent::Issue { id: uid, register },
    });
    *shard_seq += 1;
    sent_ctr.fetch_add(recipients.len(), Ordering::SeqCst);
    (msg, recipients, uid)
}

/// Publishes `replica`'s current state as one immutable [`ReplicaView`]:
/// store, per-register provenance, and the applied frontier, captured
/// together so readers never see a store newer than its frontier.
fn publish_view(snapshot: &SnapshotCell, replica: &Replica, frontier: &[u64], mode: StoreMode) {
    snapshot.publish(ReplicaView::capture(replica, mode, frontier.to_vec()));
}

/// A [`Cmd::WriteMany`] reply channel plus the per-write statuses owed
/// to it once the burst's publish lands.
type ManyReply = (Sender<(u64, WriteStatus)>, Vec<(u64, WriteStatus)>);

/// Write completions held back until the burst's single publish. The
/// COW publish invariant (DESIGN §14): a completion token never escapes
/// to a client before its write is snapshot-visible, so read-your-
/// writes needs no replica lock — releasing always publishes first
/// when any write is pending.
#[derive(Default)]
struct DeferredReplies {
    wrote: bool,
    writes: Vec<(Sender<UpdateId>, UpdateId)>,
    many: Vec<ManyReply>,
}

impl DeferredReplies {
    /// Publishes once (iff any write is pending) and releases every
    /// held completion token — the one-publish-per-drain-burst path
    /// shared by [`Cmd::Write`] and [`Cmd::WriteMany`].
    fn release(
        &mut self,
        snapshot: &SnapshotCell,
        replica: &Replica,
        frontier: &[u64],
        mode: StoreMode,
    ) {
        if self.wrote {
            publish_view(snapshot, replica, frontier, mode);
            self.wrote = false;
        }
        for (reply, uid) in self.writes.drain(..) {
            let _ = reply.send(uid);
        }
        for (reply, statuses) in self.many.drain(..) {
            for s in statuses {
                let _ = reply.send(s);
            }
        }
    }
}

/// Loop state shared by the inline and pipelined replica loops.
struct LoopShared<'a> {
    id: ReplicaId,
    graph: &'a ShareGraph,
    mode: StoreMode,
    epoch: Instant,
    cmds: &'a Receiver<Cmd>,
    shard: &'a TraceShard,
    snapshot: &'a SnapshotCell,
    applied_ctr: &'a AtomicUsize,
    pending_ctr: &'a AtomicUsize,
    sent_ctr: &'a AtomicUsize,
}

/// Applies one decoded batch: store writes, tracker merge, frontier
/// advance, apply stamps, and the cluster apply counter. Returns true
/// when anything was applied (the caller owes a publish).
fn apply_batch(
    replica: &mut Replica,
    batch: BatchMsg,
    sh: &LoopShared<'_>,
    shard_seq: &mut u64,
    frontier: &mut [u64],
) -> bool {
    let applied = replica.receive_batch(batch.updates);
    let any = !applied.is_empty();
    if any {
        let mut s = sh.shard.lock();
        let nanos = sh.epoch.elapsed().as_nanos() as u64;
        for a in &applied {
            let issuer = a.msg.issuer;
            let f = &mut frontier[issuer.index()];
            *f = (*f).max(a.msg.seq + 1);
            s.push(Stamped {
                nanos,
                seq: *shard_seq,
                ev: ShardEvent::Apply {
                    id: UpdateId {
                        issuer,
                        seq: a.msg.seq,
                    },
                },
            });
            *shard_seq += 1;
        }
    }
    sh.applied_ctr.fetch_add(applied.len(), Ordering::SeqCst);
    any
}

/// Rolls the replica's pending count delta into the cluster counter.
fn sync_pending(replica: &Replica, sh: &LoopShared<'_>, local_pending: &mut usize) {
    let np = replica.pending_count();
    if np != *local_pending {
        if np > *local_pending {
            sh.pending_ctr
                .fetch_add(np - *local_pending, Ordering::SeqCst);
        } else {
            sh.pending_ctr
                .fetch_sub(*local_pending - np, Ordering::SeqCst);
        }
        *local_pending = np;
    }
}

fn replica_main<T: Transport<Msg = SessionFrame<BatchMsg>> + Send>(ctx: ReplicaCtx<T>) {
    let ReplicaCtx {
        id,
        graph,
        registry,
        config,
        epoch,
        net,
        cmds,
        shard,
        snapshot,
        crashed_flag,
        applied_ctr,
        pending_ctr,
        sent_ctr,
        wire_bytes_ctr,
        retransmits_ctr,
        demotions_ctr,
        lost_ctr,
        restarts_ctr,
    } = ctx;
    // Each sender thread owns the codec for its outgoing pair streams —
    // per-pair delta state never crosses threads.
    let wire_mode = config.wire;
    let replica = Replica::new(
        id,
        graph.placement().registers_of(id).clone(),
        Box::new(EdgeTracker::new(registry.clone(), id)) as Box<dyn CausalityTracker>,
    );
    let endpoint = config.session.map(|cfg| SessionEndpoint::new(id, cfg));
    let log = config
        .durability
        .map(|every| RecoveryLog::new(replica.clone(), every));
    // Durability forces eager shipping: an acked write must already sit
    // in the outbox when a crash hits, and crash atomicity is per
    // command — a batch coalescing across commands would ack writes
    // whose updates exist nowhere durable.
    let eager = config.batch.batch_count <= 1 || log.is_some();
    let flush_window = TICK * config.batch.flush_after.min(u32::MAX as u64) as u32;
    let fan = FanoutPath {
        id,
        codec: WireCodec::new(wire_mode, Some(registry.clone())),
        outq: HashMap::new(),
        endpoint,
        net,
        epoch,
        batch: config.batch,
        eager,
        flush_window,
        wire_bytes_ctr,
        demotions_ctr,
        retransmits_ctr,
        last_demotions: 0,
        last_retx: 0,
    };
    let sh = LoopShared {
        id,
        graph: &graph,
        mode: config.store,
        epoch,
        cmds: &cmds,
        shard: &shard,
        snapshot: &snapshot,
        applied_ctr: &applied_ctr,
        pending_ctr: &pending_ctr,
        sent_ctr: &sent_ctr,
    };
    // The pipelined loop covers exactly the configurations where a
    // crash command is a no-op (no durable log, so the inline loop
    // ignores crashes too — a crash without a WAL would be permanent
    // data loss). Every fault-bearing configuration runs inline.
    if config.pipeline && log.is_none() {
        piped_main(
            &sh,
            replica,
            fan,
            config.channel_depth,
            config.ingress_depth,
        );
    } else {
        inline_main(
            &sh,
            replica,
            fan,
            log,
            &crashed_flag,
            &lost_ctr,
            &restarts_ctr,
            &registry,
            wire_mode,
        );
    }
}

/// The original single-threaded replica loop: commands, network input,
/// publishes, session timers, WAL, and crash/restart all on one thread.
/// This is the only loop that runs with durability armed (the WAL must
/// observe sends in issue order) and the oracle the pipelined loop is
/// differentially tested against.
#[allow(clippy::too_many_arguments)]
fn inline_main<T: Transport<Msg = SessionFrame<BatchMsg>>>(
    sh: &LoopShared<'_>,
    mut replica: Replica,
    fan: FanoutPath<T>,
    log: Option<RecoveryLog>,
    crashed_flag: &AtomicBool,
    lost_ctr: &AtomicUsize,
    restarts_ctr: &AtomicUsize,
    registry: &Arc<TsRegistry>,
    wire_mode: WireMode,
) {
    let id = sh.id;
    let mut tx = TxPath {
        fan,
        graph: sh.graph,
        log,
        shard: sh.shard,
        shard_seq: 0,
        sent_ctr: sh.sent_ctr,
    };
    let mut local_pending = 0usize;
    // Per-issuer applied frontier published with every snapshot — the
    // serving tier's lock-free session-guarantee gate (see
    // [`ReplicaView::covers`]).
    let mut frontier = vec![0u64; sh.graph.num_replicas()];
    // Inside a crash window: commands and frames are discarded (clients
    // get typed rejections), volatile state is dead weight awaiting the
    // restart's WAL replay.
    let mut crashed = false;
    // A command caught by the idle `recv_timeout` below, consumed ahead
    // of the channel on the next drain pass.
    let mut carry: Option<Cmd> = None;
    // Completion tokens held for the burst's single publish.
    let mut deferred = DeferredReplies::default();
    loop {
        let mut idle = true;
        // Drain a burst of client commands (writes from concurrent
        // drivers coalesce into the same pending batches and share one
        // snapshot publish).
        for _ in 0..64 {
            let cmd = match carry.take() {
                Some(c) => c,
                None => match sh.cmds.try_recv() {
                    Ok(c) => c,
                    Err(_) => break,
                },
            };
            match cmd {
                Cmd::Write {
                    register,
                    value,
                    reply,
                } => {
                    idle = false;
                    if crashed {
                        // Dropping the reply sender surfaces as a typed
                        // ClusterError::Crashed at the caller.
                        drop(reply);
                        continue;
                    }
                    let uid = tx.issue(&mut replica, register, value);
                    frontier[id.index()] = uid.seq + 1;
                    // Defer the completion: the burst publishes once,
                    // and no token escapes before that publish
                    // (read-own-writes).
                    deferred.wrote = true;
                    deferred.writes.push((reply, uid));
                }
                Cmd::WriteMany { ops, reply } => {
                    idle = false;
                    if crashed {
                        // Typed per-op rejection: the serving tier
                        // re-routes each op to a live holder.
                        for (token, _, _) in ops {
                            let _ = reply.send((token, WriteStatus::Crashed));
                        }
                        continue;
                    }
                    let mut done = Vec::with_capacity(ops.len());
                    for (token, register, value) in ops {
                        let uid = tx.issue(&mut replica, register, value);
                        frontier[id.index()] = uid.seq + 1;
                        done.push((token, WriteStatus::Done(uid)));
                    }
                    deferred.wrote |= !done.is_empty();
                    deferred.many.push((reply, done));
                }
                Cmd::ReadAt { register, reply } => {
                    idle = false;
                    if crashed {
                        drop(reply);
                        continue;
                    }
                    let _ = reply.send(replica.read(register).cloned());
                }
                Cmd::Crash { done } => {
                    idle = false;
                    // The crash must observe every completion already
                    // promised: publish and release before the window
                    // opens.
                    deferred.release(sh.snapshot, &replica, &frontier, sh.mode);
                    // Without a durable log a crash would be permanent
                    // data loss; this runtime only models recoverable
                    // fail-stop, so the command is ignored.
                    if !crashed && tx.log.is_some() {
                        crashed = true;
                        crashed_flag.store(true, Ordering::SeqCst);
                        // Volatile sender state dies with the process
                        // image. Durability keeps shipping eager, so the
                        // outq is empty and no acked write is in it.
                        tx.fan.outq.clear();
                    }
                    if let Some(d) = done {
                        let _ = d.send(());
                    }
                }
                Cmd::Restart { done } => {
                    idle = false;
                    deferred.release(sh.snapshot, &replica, &frontier, sh.mode);
                    if crashed {
                        let lg = tx.log.as_ref().expect("crashed implies a log");
                        let (rec, fr) = lg.recover_with_frontier(sh.graph.num_replicas());
                        replica = rec;
                        frontier = fr;
                        // Fresh codec: per-pair delta streams restart
                        // from scratch. Sound because frames carry
                        // decoded metadata values (receivers hold no
                        // stream state); only byte accounting changes.
                        tx.fan.codec = WireCodec::new(wire_mode, Some(registry.clone()));
                        if let Some(ep) = tx.fan.endpoint.as_mut() {
                            let lg = tx.log.as_ref().expect("crashed implies a log");
                            let mut out = Vec::new();
                            let now_ms = sh.epoch.elapsed().as_millis() as u64;
                            ep.restart(lg.outbox(), &lg.recv_cums(), now_ms, &mut out);
                            for (dst, f) in out {
                                tx.fan.net.send(dst, f);
                            }
                        }
                        crashed = false;
                        crashed_flag.store(false, Ordering::SeqCst);
                        restarts_ctr.fetch_add(1, Ordering::SeqCst);
                        // Republish from recovered state: durable writes
                        // become snapshot-visible again immediately.
                        publish_view(sh.snapshot, &replica, &frontier, sh.mode);
                    }
                    if let Some(d) = done {
                        let _ = d.send(());
                    }
                }
                Cmd::Shutdown => {
                    deferred.release(sh.snapshot, &replica, &frontier, sh.mode);
                    if !crashed {
                        tx.fan.flush_all(&mut tx.log);
                    }
                    return;
                }
            }
        }
        // One publish for the whole burst, then every held completion
        // token — never a token before its write is snapshot-visible.
        deferred.release(sh.snapshot, &replica, &frontier, sh.mode);
        // Then a burst of network input.
        let mut applied_any = false;
        let mut shard_seq = tx.shard_seq;
        for _ in 0..256 {
            let Some(env) = tx.fan.net.try_recv() else {
                break;
            };
            idle = false;
            if crashed {
                // A crashed node's NIC is dark: frames vanish. Bare
                // frames (no session) are permanent losses and must be
                // accounted so `settle` can still converge; session
                // frames will be retransmitted until after the restart.
                if tx.fan.endpoint.is_none() {
                    if let SessionFrame::Bare(b) = env.msg {
                        lost_ctr.fetch_add(b.updates.len(), Ordering::SeqCst);
                    }
                }
                continue;
            }
            let payloads = match tx.fan.endpoint.as_mut() {
                Some(ep) => {
                    let now = sh.epoch.elapsed().as_millis() as u64;
                    let mut resp = Vec::new();
                    let msgs = ep.on_frame(env.src, env.msg, now, &mut resp);
                    // Ack-after-durable: every in-order payload reaches
                    // the WAL before the cumulative ack for it can reach
                    // the network, so a peer's acked point never runs
                    // ahead of this replica's durable log.
                    if let Some(lg) = tx.log.as_mut() {
                        for b in &msgs {
                            lg.record_delivery(env.src, b.clone());
                        }
                    }
                    for (dst, f) in resp {
                        tx.fan.net.send(dst, f);
                    }
                    msgs
                }
                None => match env.msg {
                    SessionFrame::Bare(b) => {
                        if let Some(lg) = tx.log.as_mut() {
                            lg.record_delivery(env.src, b.clone());
                        }
                        vec![b]
                    }
                    // Session frames without a session endpoint cannot
                    // happen (both are chosen by the same constructor).
                    _ => Vec::new(),
                },
            };
            for batch in payloads {
                applied_any |= apply_batch(&mut replica, batch, sh, &mut shard_seq, &mut frontier);
            }
        }
        tx.shard_seq = shard_seq;
        if applied_any {
            publish_view(sh.snapshot, &replica, &frontier, sh.mode);
        }
        if !crashed {
            // Compact the WAL once per loop pass: the live state now
            // reflects every logged event of this pass.
            if let Some(lg) = tx.log.as_mut() {
                lg.maybe_snapshot_with_frontier(&replica, &frontier);
            }
            sync_pending(&replica, sh, &mut local_pending);
            // Flush batches whose coalescing window has closed.
            idle = idle && tx.fan.flush_due(&mut tx.log);
            // Retransmission timers: fire whatever is due.
            tx.fan.poll_session();
        }
        if idle {
            // Doze for at most one tick, but wake instantly on a client
            // command — the serving tier's write latency must not eat a
            // full sleep quantum.
            if let Ok(c) = sh.cmds.recv_timeout(TICK) {
                carry = Some(c);
            }
        }
    }
}

/// What the apply thread hands its I/O thread.
enum Egress {
    /// Encode `msg` per recipient and ship (or coalesce) it.
    Update {
        msg: UpdateMsg,
        recipients: Vec<ReplicaId>,
    },
    /// Flush everything queued and exit.
    Shutdown,
}

/// The pipelined replica loop: an **apply thread** (this function —
/// issues, `J`-predicate evaluation, frontier, publishes, client
/// replies) and an **I/O thread** ([`io_main`] — wire encode, session
/// acks/retransmits, wire decode) connected by two bounded channels.
/// Wire work leaves the critical path, so a write's publish-and-reply
/// no longer waits behind codec passes or frame decode.
///
/// Only runs without a durable log (see [`replica_main`]): crash and
/// restart commands are the same no-ops the inline loop performs when
/// no WAL is armed, and acks may precede applies because a decoded
/// batch parked in the ingress channel can no longer be lost.
fn piped_main<T: Transport<Msg = SessionFrame<BatchMsg>> + Send>(
    sh: &LoopShared<'_>,
    mut replica: Replica,
    fan: FanoutPath<T>,
    egress_depth: usize,
    ingress_depth: usize,
) {
    let (eg_tx, eg_rx) = bounded::<Egress>(egress_depth.max(1));
    let (in_tx, in_rx) = bounded::<BatchMsg>(ingress_depth.max(1));
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name(format!("io-{}", sh.id.raw()))
            .spawn_scoped(scope, move || io_main(fan, eg_rx, in_tx))
            .expect("spawn replica io thread");
        let mut shard_seq = 0u64;
        let mut local_pending = 0usize;
        let mut frontier = vec![0u64; sh.graph.num_replicas()];
        let mut carry: Option<Cmd> = None;
        let mut deferred = DeferredReplies::default();
        let issue = |replica: &mut Replica,
                     shard_seq: &mut u64,
                     register: RegisterId,
                     value: Value|
         -> UpdateId {
            let (msg, recipients, uid) = issue_local(
                replica,
                sh.graph,
                sh.id,
                sh.shard,
                shard_seq,
                sh.epoch,
                sh.sent_ctr,
                register,
                value,
            );
            if !recipients.is_empty() {
                // A full egress channel blocks here: bounded
                // backpressure against the I/O thread, which never
                // blocks back (it parks ingress overflow in its spill),
                // so this cannot deadlock.
                let _ = eg_tx.send(Egress::Update { msg, recipients });
            }
            uid
        };
        loop {
            let mut idle = true;
            for _ in 0..64 {
                let cmd = match carry.take() {
                    Some(c) => c,
                    None => match sh.cmds.try_recv() {
                        Ok(c) => c,
                        Err(_) => break,
                    },
                };
                match cmd {
                    Cmd::Write {
                        register,
                        value,
                        reply,
                    } => {
                        idle = false;
                        let uid = issue(&mut replica, &mut shard_seq, register, value);
                        frontier[sh.id.index()] = uid.seq + 1;
                        deferred.wrote = true;
                        deferred.writes.push((reply, uid));
                    }
                    Cmd::WriteMany { ops, reply } => {
                        idle = false;
                        let mut done = Vec::with_capacity(ops.len());
                        for (token, register, value) in ops {
                            let uid = issue(&mut replica, &mut shard_seq, register, value);
                            frontier[sh.id.index()] = uid.seq + 1;
                            done.push((token, WriteStatus::Done(uid)));
                        }
                        deferred.wrote |= !done.is_empty();
                        deferred.many.push((reply, done));
                    }
                    Cmd::ReadAt { register, reply } => {
                        idle = false;
                        let _ = reply.send(replica.read(register).cloned());
                    }
                    Cmd::Crash { done } | Cmd::Restart { done } => {
                        idle = false;
                        // No durable log in this configuration, so a
                        // crash would be permanent data loss — ignored,
                        // exactly like the inline loop without a WAL.
                        if let Some(d) = done {
                            let _ = d.send(());
                        }
                    }
                    Cmd::Shutdown => {
                        deferred.release(sh.snapshot, &replica, &frontier, sh.mode);
                        let _ = eg_tx.send(Egress::Shutdown);
                        return;
                    }
                }
            }
            // One publish per burst, then the held completion tokens.
            deferred.release(sh.snapshot, &replica, &frontier, sh.mode);
            // Decoded ingress from the I/O thread.
            let mut applied_any = false;
            for _ in 0..256 {
                let Ok(batch) = in_rx.try_recv() else { break };
                idle = false;
                applied_any |= apply_batch(&mut replica, batch, sh, &mut shard_seq, &mut frontier);
            }
            if applied_any {
                publish_view(sh.snapshot, &replica, &frontier, sh.mode);
            }
            sync_pending(&replica, sh, &mut local_pending);
            if idle {
                // Doze for at most one tick, waking instantly on a
                // client command (ingress batches wait at most the tick).
                if let Ok(c) = sh.cmds.recv_timeout(TICK) {
                    carry = Some(c);
                }
            }
        }
    });
}

/// The per-replica I/O thread: drains the egress channel (encode +
/// ship + coalesce), pumps the network (session frames decoded, acks
/// answered, payload batches handed to the apply thread), and fires
/// session retransmit timers. Never blocks on the apply thread: when
/// the ingress channel is full, decoded payloads park in a spill queue
/// and no further frames are pulled from the net — backpressure without
/// ever dropping a decoded bare payload (which, sessionless, would be
/// permanent loss).
fn io_main<T: Transport<Msg = SessionFrame<BatchMsg>>>(
    mut fan: FanoutPath<T>,
    eg_rx: Receiver<Egress>,
    in_tx: Sender<BatchMsg>,
) {
    // The pipelined configuration never arms a WAL.
    let mut no_log: Option<RecoveryLog> = None;
    let mut spill: VecDeque<BatchMsg> = VecDeque::new();
    loop {
        let mut idle = true;
        for _ in 0..256 {
            match eg_rx.try_recv() {
                Ok(Egress::Update { msg, recipients }) => {
                    idle = false;
                    fan.fanout(&msg, recipients, &mut no_log);
                }
                Ok(Egress::Shutdown) => {
                    fan.flush_all(&mut no_log);
                    return;
                }
                Err(_) => break,
            }
        }
        // Retry the spill before pulling new frames: ingress order is
        // decode order.
        while let Some(b) = spill.pop_front() {
            match in_tx.try_send(b) {
                Ok(()) => {}
                Err(TrySendError::Full(b)) => {
                    spill.push_front(b);
                    break;
                }
                Err(TrySendError::Disconnected(_)) => return,
            }
        }
        if spill.is_empty() {
            for _ in 0..256 {
                let Some(env) = fan.net.try_recv() else { break };
                idle = false;
                let payloads = match fan.endpoint.as_mut() {
                    Some(ep) => {
                        let now = fan.epoch.elapsed().as_millis() as u64;
                        let mut resp = Vec::new();
                        let msgs = ep.on_frame(env.src, env.msg, now, &mut resp);
                        for (dst, f) in resp {
                            fan.net.send(dst, f);
                        }
                        msgs
                    }
                    None => match env.msg {
                        SessionFrame::Bare(b) => vec![b],
                        _ => Vec::new(),
                    },
                };
                for b in payloads {
                    if spill.is_empty() {
                        match in_tx.try_send(b) {
                            Ok(()) => continue,
                            Err(TrySendError::Full(b)) => spill.push_back(b),
                            Err(TrySendError::Disconnected(_)) => return,
                        }
                    } else {
                        // One frame can decode to several in-order
                        // batches; once the channel filled, the rest of
                        // the frame follows through the spill.
                        spill.push_back(b);
                    }
                }
                if !spill.is_empty() {
                    break;
                }
            }
        }
        idle = idle && fan.flush_due(&mut no_log);
        fan.poll_session();
        if idle {
            match eg_rx.recv_timeout(TICK) {
                Ok(Egress::Update { msg, recipients }) => {
                    fan.fanout(&msg, recipients, &mut no_log);
                }
                Ok(Egress::Shutdown) => {
                    fan.flush_all(&mut no_log);
                    return;
                }
                // The apply thread is gone; nothing more can be shipped
                // or delivered.
                Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::topology;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn concurrent_writers_converge_consistently() {
        let cluster =
            ThreadedCluster::new(topology::ring(4), DelayModel::Uniform { min: 0, max: 5 }, 3);
        // Writers on all replicas concurrently (via the blocking API from
        // multiple driver threads).
        std::thread::scope(|s| {
            for i in 0..4u32 {
                let c = &cluster;
                s.spawn(move || {
                    for round in 0..10u64 {
                        c.write(r(i), x(i), Value::from(round));
                    }
                });
            }
        });
        cluster.settle();
        let rep = cluster.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
        assert_eq!(cluster.total_applied(), 4 * 10); // each write has 1 recipient
                                                     // Final values visible on both holders.
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(9u64)));
        let trace = cluster.shutdown();
        assert_eq!(trace.num_updates(), 40);
    }

    #[test]
    fn causal_chain_across_threads() {
        let cluster =
            ThreadedCluster::new(topology::path(3), DelayModel::Uniform { min: 0, max: 3 }, 9);
        cluster.write(r(0), x(0), Value::from(1u64));
        cluster.settle();
        // Replica 1 saw the write; its next write is causally after.
        cluster.write(r(1), x(1), Value::from(2u64));
        cluster.settle();
        assert_eq!(cluster.read(r(2), x(1)), Some(Value::from(2u64)));
        assert!(cluster.check().is_consistent());
    }

    #[test]
    fn read_own_writes() {
        let cluster = ThreadedCluster::new(topology::path(2), DelayModel::Fixed(1), 0);
        cluster.write(r(0), x(0), Value::from(77u64));
        assert_eq!(cluster.read(r(0), x(0)), Some(Value::from(77u64)));
    }

    #[test]
    fn authoritative_read_at_round_trips_into_the_replica_thread() {
        let cluster = ThreadedCluster::new(topology::path(2), DelayModel::Fixed(1), 0);
        assert_eq!(cluster.read_at(r(0), x(0)), None);
        cluster.write(r(0), x(0), Value::from(5u64));
        // Agrees with the lock-free snapshot path once the write returned.
        assert_eq!(cluster.read_at(r(0), x(0)), Some(Value::from(5u64)));
        assert_eq!(cluster.read_at(r(0), x(0)), cluster.read(r(0), x(0)));
        // A remote write becomes visible to read_at after settle.
        cluster.write(r(1), x(0), Value::from(6u64));
        cluster.settle();
        assert_eq!(cluster.read_at(r(0), x(0)), Some(Value::from(6u64)));
    }

    #[test]
    fn unbatched_cluster_still_converges() {
        let cluster = ThreadedCluster::with_config(
            topology::ring(3),
            DelayModel::Fixed(1),
            5,
            ClusterConfig {
                batch: BatchPolicy::unbatched(),
                channel_depth: 2,
                ..ClusterConfig::default()
            },
        );
        for round in 0..5u64 {
            for i in 0..3u32 {
                cluster.write(r(i), x(i), Value::from(round));
            }
        }
        cluster.settle();
        assert!(cluster.check().is_consistent());
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(4u64)));
    }

    #[test]
    fn snapshot_versions_are_monotone_and_readable_mid_run() {
        let cluster = ThreadedCluster::new(topology::path(2), DelayModel::Fixed(1), 2);
        let mut last_version = 0;
        for round in 0..20u64 {
            cluster.write(r(0), x(0), Value::from(round));
            let v = cluster.snapshot_version(r(0));
            assert!(v >= last_version, "snapshot version went backwards");
            assert!(v > 0, "write published a snapshot before replying");
            last_version = v;
            // The snapshot read reflects the acknowledged write.
            assert_eq!(cluster.read(r(0), x(0)), Some(Value::from(round)));
        }
        cluster.settle();
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(19u64)));
    }

    #[test]
    fn concurrent_snapshot_readers_never_see_torn_state() {
        // Ring(3): replica 0 stores registers 0 and 2. The writer bumps
        // x0 then x2 to the same value, so every honestly published
        // snapshot satisfies x2 <= x0. A torn read (x2 from a newer
        // state than x0) would invert that.
        let cluster = ThreadedCluster::new(topology::ring(3), DelayModel::Fixed(0), 4);
        let val = |v: Option<&Value>| match v {
            Some(&Value::U64(n)) => n,
            _ => 0,
        };
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let c = &cluster;
            let done = &done;
            s.spawn(move || {
                for k in 1..=200u64 {
                    c.write(r(0), x(0), Value::from(k));
                    c.write(r(0), x(2), Value::from(k));
                }
                done.store(true, Ordering::SeqCst);
            });
            for _ in 0..2 {
                s.spawn(move || {
                    let mut last_version = 0;
                    while !done.load(Ordering::SeqCst) {
                        let snap = c.store_snapshot(r(0));
                        let a = val(snap.get(&x(0)));
                        let b = val(snap.get(&x(2)));
                        assert!(b <= a, "torn snapshot: x2={b} ran ahead of x0={a}");
                        let v = c.snapshot_version(r(0));
                        assert!(v >= last_version, "snapshot version went backwards");
                        last_version = v;
                    }
                });
            }
        });
        cluster.settle();
        assert!(cluster.check().is_consistent());
    }

    fn fast_session() -> Option<SessionConfig> {
        Some(SessionConfig {
            rto_base: 10,
            rto_max: 80,
            jitter: 3,
            ack_delay: 0,
        })
    }

    #[test]
    fn crash_restart_recovers_durable_state() {
        let cluster = ThreadedCluster::with_config(
            topology::path(2),
            DelayModel::Fixed(1),
            3,
            ClusterConfig {
                durability: Some(4),
                session: fast_session(),
                ..ClusterConfig::default()
            },
        );
        for k in 0..10u64 {
            cluster.write(r(0), x(0), Value::from(k));
        }
        cluster.settle();
        cluster.crash(r(0));
        assert!(cluster.is_crashed(r(0)));
        assert_eq!(
            cluster.try_write(r(0), x(0), Value::from(99u64)),
            Err(ClusterError::Crashed { replica: r(0) })
        );
        assert_eq!(
            cluster.try_read_at(r(0), x(0)),
            Err(ClusterError::Crashed { replica: r(0) })
        );
        // The surviving holder keeps writing while its peer is down.
        cluster.write(r(1), x(0), Value::from(50u64));
        cluster.restart(r(0));
        assert!(!cluster.is_crashed(r(0)));
        assert_eq!(cluster.total_restarts(), 1);
        cluster.settle();
        // Catch-up delivered the write issued during the crash window.
        assert_eq!(cluster.read(r(0), x(0)), Some(Value::from(50u64)));
        // The recovered replica continues its durable sequence exactly.
        let uid = cluster.write(r(0), x(0), Value::from(77u64));
        assert_eq!(uid.seq, 10, "seq must continue from the durable log");
        cluster.settle();
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(77u64)));
        let rep = cluster.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
    }

    #[test]
    fn acked_writes_survive_crash_before_restart() {
        // Writes acked just before the crash must be present after
        // recovery — the acked ⇒ durable ⇒ survives invariant, with a
        // snapshot interval small enough to exercise compaction.
        let cluster = ThreadedCluster::with_config(
            topology::ring(3),
            DelayModel::Fixed(1),
            9,
            ClusterConfig {
                durability: Some(3),
                session: fast_session(),
                ..ClusterConfig::default()
            },
        );
        let mut acked = Vec::new();
        for k in 0..20u64 {
            acked.push(cluster.write(r(0), x(0), Value::from(k)));
        }
        // Crash immediately — no settle: in-flight fan-out is repaired
        // by the session layer after restart.
        cluster.crash(r(0));
        cluster.restart(r(0));
        cluster.settle();
        let view = cluster.store_snapshot(r(0));
        for uid in &acked {
            assert!(view.covers(*uid), "acked write {uid} lost in recovery");
        }
        assert_eq!(cluster.read(r(0), x(0)), Some(Value::from(19u64)));
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(19u64)));
        assert!(cluster.check().is_consistent());
    }

    #[test]
    fn scheduled_crash_fires_and_heals() {
        // Replica 1 is scripted to crash at tick 25 (5 ms) and restart
        // at tick 500 (100 ms); durability auto-arms.
        let cluster = ThreadedCluster::with_config(
            topology::path(2),
            DelayModel::Fixed(1),
            5,
            ClusterConfig {
                schedule: FaultSchedule::none().crash(r(1), 25, 500),
                session: fast_session(),
                ..ClusterConfig::default()
            },
        );
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            cluster.is_crashed(r(1)),
            "scripted crash did not fire by mid-window"
        );
        for k in 0..5u64 {
            cluster.write(r(0), x(0), Value::from(k));
        }
        std::thread::sleep(Duration::from_millis(120));
        assert!(!cluster.is_crashed(r(1)), "scripted restart did not fire");
        cluster.settle();
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(4u64)));
        assert_eq!(cluster.total_restarts(), 1);
        assert!(cluster.check().is_consistent());
    }

    #[test]
    fn lossy_network_converges_with_session() {
        // 30% drop + 20% duplication on real threads: the wall-clock
        // retransmission timers must restore every delivery. Delay ticks
        // are 200 µs, so a 10 ms base RTO clears the healthy round trip.
        let cluster = ThreadedCluster::new_faulty(
            topology::ring(4),
            DelayModel::Uniform { min: 0, max: 5 },
            11,
            WireMode::default(),
            FaultPlan {
                drop_prob: 0.3,
                duplicate_prob: 0.2,
                ..Default::default()
            },
            Some(SessionConfig {
                rto_base: 10,
                rto_max: 80,
                jitter: 3,
                ack_delay: 0,
            }),
        );
        for round in 0..10u64 {
            for i in 0..4u32 {
                cluster.write(r(i), x(i), Value::from(round));
            }
        }
        cluster.settle();
        let rep = cluster.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
        assert_eq!(cluster.total_applied(), 4 * 10);
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(9u64)));
    }
}
