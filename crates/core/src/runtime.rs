//! A threaded deployment: one OS thread per replica over a
//! [`ThreadNet`] transport.
//!
//! [`ThreadedCluster`] runs the same [`Replica`] state machines as the
//! simulated [`System`](crate::System), but under genuine concurrency and
//! wall-clock message delays — the reproduction's stand-in for the
//! "async nodes" deployment (the offline crate set has no async runtime,
//! so real threads + crossbeam channels play that role). All protocol
//! events still flow into a shared [`Trace`] for offline checking.

use crate::codec::{WireCodec, WireMode};
use crate::message::UpdateMsg;
use crate::replica::Replica;
use crate::tracker::{CausalityTracker, EdgeTracker};
use crate::value::Value;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use prcc_checker::{check, CheckReport, Trace, UpdateId};
use prcc_net::{DelayModel, FaultPlan, SessionConfig, SessionEndpoint, SessionFrame, ThreadNet};
use prcc_sharegraph::{LoopConfig, RegisterId, ReplicaId, ShareGraph, TimestampGraphs};
use prcc_timestamp::TsRegistry;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Cmd {
    Write {
        register: RegisterId,
        value: Value,
        reply: Sender<UpdateId>,
    },
    Read {
        register: RegisterId,
        reply: Sender<Option<Value>>,
    },
    Shutdown,
}

/// A running threaded cluster.
///
/// # Examples
///
/// ```
/// use prcc_core::runtime::ThreadedCluster;
/// use prcc_core::Value;
/// use prcc_net::DelayModel;
/// use prcc_sharegraph::{topology, ReplicaId, RegisterId};
///
/// let cluster = ThreadedCluster::new(topology::ring(4), DelayModel::Fixed(1), 7);
/// cluster.write(ReplicaId::new(0), RegisterId::new(0), Value::from(5u64));
/// cluster.settle();
/// assert_eq!(
///     cluster.read(ReplicaId::new(1), RegisterId::new(0)),
///     Some(Value::from(5u64))
/// );
/// assert!(cluster.check().is_consistent());
/// ```
pub struct ThreadedCluster {
    graph: Arc<ShareGraph>,
    cmd_txs: Vec<Sender<Cmd>>,
    threads: Vec<JoinHandle<()>>,
    trace: Arc<Mutex<Trace>>,
    /// Total updates applied across all replicas (remote applies).
    applied: Arc<AtomicUsize>,
    /// Total updates currently parked in pending buffers.
    pending: Arc<AtomicUsize>,
    /// Total update messages sent.
    sent: Arc<AtomicUsize>,
    /// Total metadata bytes put on the wire (post-codec frame sizes).
    wire_bytes: Arc<AtomicUsize>,
    /// Total session-layer retransmissions across all replica threads.
    retransmits: Arc<AtomicUsize>,
    /// Keep the net alive for the cluster's lifetime.
    _net: ThreadNet<SessionFrame<UpdateMsg>>,
}

impl fmt::Debug for ThreadedCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadedCluster")
            .field("replicas", &self.cmd_txs.len())
            .field("applied", &self.applied.load(Ordering::Relaxed))
            .finish()
    }
}

impl ThreadedCluster {
    /// Spawns one thread per replica of `graph`, all using the exact
    /// edge-indexed tracker and the default wire mode
    /// ([`WireMode::Compressed`]).
    pub fn new(graph: ShareGraph, delay: DelayModel, seed: u64) -> Self {
        Self::new_with_wire(graph, delay, seed, WireMode::default())
    }

    /// Like [`ThreadedCluster::new`], with an explicit wire mode for the
    /// per-recipient metadata codec.
    pub fn new_with_wire(graph: ShareGraph, delay: DelayModel, seed: u64, wire: WireMode) -> Self {
        Self::new_faulty(graph, delay, seed, wire, FaultPlan::default(), None)
    }

    /// A cluster over a lossy transport. The router rolls `faults` on
    /// every frame; `session` (if given) arms a per-replica
    /// [`SessionEndpoint`] whose retransmission timers run on wall-clock
    /// milliseconds — pick `rto_base` comfortably above the delay
    /// model's round trip (delay ticks are 200 µs each). Without a
    /// session config, losses are permanent, exactly as in the simulated
    /// [`System`](crate::System) without one.
    pub fn new_faulty(
        graph: ShareGraph,
        delay: DelayModel,
        seed: u64,
        wire: WireMode,
        faults: FaultPlan,
        session: Option<SessionConfig>,
    ) -> Self {
        let graph = Arc::new(graph);
        let registry = Arc::new(TsRegistry::new(
            &graph,
            TimestampGraphs::build(&graph, LoopConfig::EXHAUSTIVE),
        ));
        let net: ThreadNet<SessionFrame<UpdateMsg>> =
            ThreadNet::with_faults(graph.num_replicas(), delay, seed, faults);
        let trace = Arc::new(Mutex::new(Trace::new()));
        let applied = Arc::new(AtomicUsize::new(0));
        let pending = Arc::new(AtomicUsize::new(0));
        let sent = Arc::new(AtomicUsize::new(0));
        let wire_bytes = Arc::new(AtomicUsize::new(0));
        let retransmits = Arc::new(AtomicUsize::new(0));
        let epoch = Instant::now();

        let mut cmd_txs = Vec::new();
        let mut threads = Vec::new();
        for i in graph.replicas() {
            let (tx, rx) = unbounded::<Cmd>();
            cmd_txs.push(tx);
            let handle = net.handle(i);
            let graph = graph.clone();
            let registry = registry.clone();
            let trace = trace.clone();
            let applied = applied.clone();
            let pending = pending.clone();
            let sent = sent.clone();
            let wire_bytes = wire_bytes.clone();
            let retransmits = retransmits.clone();
            threads.push(std::thread::spawn(move || {
                replica_main(
                    i,
                    graph,
                    registry,
                    wire,
                    session,
                    epoch,
                    handle,
                    rx,
                    trace,
                    applied,
                    pending,
                    sent,
                    wire_bytes,
                    retransmits,
                )
            }));
        }
        ThreadedCluster {
            graph,
            cmd_txs,
            threads,
            trace,
            applied,
            pending,
            sent,
            wire_bytes,
            retransmits,
            _net: net,
        }
    }

    /// Performs a blocking write at replica `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not store `x` or the cluster has shut down.
    pub fn write(&self, r: ReplicaId, x: RegisterId, v: Value) -> UpdateId {
        let (reply, rx) = unbounded();
        self.cmd_txs[r.index()]
            .send(Cmd::Write {
                register: x,
                value: v,
                reply,
            })
            .expect("cluster alive");
        rx.recv().expect("replica thread alive")
    }

    /// Performs a blocking read at replica `r`.
    pub fn read(&self, r: ReplicaId, x: RegisterId) -> Option<Value> {
        let (reply, rx) = unbounded();
        self.cmd_txs[r.index()]
            .send(Cmd::Read { register: x, reply })
            .expect("cluster alive");
        rx.recv().expect("replica thread alive")
    }

    /// Blocks until the cluster is quiescent: every sent message that has
    /// a recipient has been applied and no pending buffers remain, stable
    /// for a grace period.
    pub fn settle(&self) {
        let mut last = (usize::MAX, usize::MAX);
        let mut stable_since = Instant::now();
        loop {
            let now = (
                self.applied.load(Ordering::SeqCst),
                self.pending.load(Ordering::SeqCst),
            );
            let sent = self.sent.load(Ordering::SeqCst);
            let drained = now.0 >= sent && now.1 == 0;
            if now != last {
                last = now;
                stable_since = Instant::now();
            } else if drained && stable_since.elapsed() > Duration::from_millis(50) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Checks the recorded trace for replica-centric causal consistency.
    pub fn check(&self) -> CheckReport {
        check(&self.trace.lock(), self.graph.placement())
    }

    /// A snapshot of the trace so far.
    pub fn trace_snapshot(&self) -> Trace {
        self.trace.lock().clone()
    }

    /// Total remote applies so far.
    pub fn total_applied(&self) -> usize {
        self.applied.load(Ordering::SeqCst)
    }

    /// Total metadata bytes sent so far, as framed by the wire codec.
    pub fn total_wire_bytes(&self) -> usize {
        self.wire_bytes.load(Ordering::SeqCst)
    }

    /// Total session-layer retransmissions so far (0 without a session
    /// or on a clean network).
    pub fn total_retransmits(&self) -> usize {
        self.retransmits.load(Ordering::SeqCst)
    }

    /// Shuts the cluster down, joining all replica threads.
    pub fn shutdown(mut self) -> Trace {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let trace = self.trace.lock().clone();
        trace
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn replica_main(
    id: ReplicaId,
    graph: Arc<ShareGraph>,
    registry: Arc<TsRegistry>,
    wire: WireMode,
    session: Option<SessionConfig>,
    epoch: Instant,
    net: prcc_net::NodeHandle<SessionFrame<UpdateMsg>>,
    cmds: Receiver<Cmd>,
    trace: Arc<Mutex<Trace>>,
    applied_ctr: Arc<AtomicUsize>,
    pending_ctr: Arc<AtomicUsize>,
    sent_ctr: Arc<AtomicUsize>,
    wire_bytes_ctr: Arc<AtomicUsize>,
    retransmits_ctr: Arc<AtomicUsize>,
) {
    // Each sender thread owns the codec for its outgoing pair streams —
    // per-pair delta state never crosses threads.
    let mut codec = WireCodec::new(wire, Some(registry.clone()));
    let mut replica = Replica::new(
        id,
        graph.placement().registers_of(id).clone(),
        Box::new(EdgeTracker::new(registry, id)) as Box<dyn CausalityTracker>,
    );
    // Session timers run on wall-clock milliseconds since the cluster
    // epoch — the real-timer counterpart of the sim clock.
    let mut endpoint = session.map(|cfg| SessionEndpoint::new(id, cfg));
    let now_ms = |epoch: Instant| epoch.elapsed().as_millis() as u64;
    let mut last_retx = 0usize;
    let mut local_pending = 0usize;
    loop {
        let mut idle = true;
        // Commands first (client ops take priority over gossip).
        match cmds.try_recv() {
            Ok(Cmd::Write {
                register,
                value,
                reply,
            }) => {
                idle = false;
                let recipients: Vec<ReplicaId> = graph
                    .placement()
                    .holders(register)
                    .iter()
                    .copied()
                    .filter(|&h| h != id)
                    .collect();
                let (msg, recipients) = replica
                    .write(register, value, recipients)
                    .unwrap_or_else(|e| panic!("{e}"));
                let uid = UpdateId {
                    issuer: id,
                    seq: msg.seq,
                };
                // Record the issue *before* any send so applies can never
                // precede it in the global trace order.
                trace.lock().record_issue_with_id(uid, register);
                for dst in recipients {
                    sent_ctr.fetch_add(1, Ordering::SeqCst);
                    // Zero-copy fan-out: the metadata `Arc` (or its
                    // per-pair projected frame) is shared, not cloned.
                    let m = UpdateMsg {
                        meta: codec.encode(id, dst, &msg.meta),
                        ..msg.clone()
                    };
                    wire_bytes_ctr.fetch_add(m.meta.size_bytes(), Ordering::SeqCst);
                    let frame = match endpoint.as_mut() {
                        Some(ep) => ep.send(dst, m, now_ms(epoch)),
                        None => SessionFrame::Bare(m),
                    };
                    net.send(dst, frame);
                }
                let _ = reply.send(uid);
            }
            Ok(Cmd::Read { register, reply }) => {
                idle = false;
                let _ = reply.send(replica.read(register).cloned());
            }
            Ok(Cmd::Shutdown) => return,
            Err(_) => {}
        }
        // Then network input.
        if let Some(env) = net.try_recv() {
            idle = false;
            let payloads = match endpoint.as_mut() {
                Some(ep) => {
                    let mut resp = Vec::new();
                    let msgs = ep.on_frame(env.src, env.msg, now_ms(epoch), &mut resp);
                    for (dst, f) in resp {
                        net.send(dst, f);
                    }
                    msgs
                }
                None => match env.msg {
                    SessionFrame::Bare(m) => vec![m],
                    // Session frames without a session endpoint cannot
                    // happen (both are chosen by the same constructor).
                    _ => Vec::new(),
                },
            };
            for msg in payloads {
                let applied = replica.receive(msg);
                {
                    let mut t = trace.lock();
                    for a in &applied {
                        t.record_apply(
                            UpdateId {
                                issuer: a.msg.issuer,
                                seq: a.msg.seq,
                            },
                            id,
                        );
                    }
                }
                applied_ctr.fetch_add(applied.len(), Ordering::SeqCst);
            }
            let np = replica.pending_count();
            if np != local_pending {
                if np > local_pending {
                    pending_ctr.fetch_add(np - local_pending, Ordering::SeqCst);
                } else {
                    pending_ctr.fetch_sub(local_pending - np, Ordering::SeqCst);
                }
                local_pending = np;
            }
        }
        // Retransmission timers: fire whatever is due.
        if let Some(ep) = endpoint.as_mut() {
            let now = now_ms(epoch);
            if ep.next_deadline().is_some_and(|d| d <= now) {
                let mut due = Vec::new();
                ep.poll(now, &mut due);
                for (dst, f) in due {
                    net.send(dst, f);
                }
            }
            let retx = ep.stats().retransmits;
            if retx != last_retx {
                retransmits_ctr.fetch_add(retx - last_retx, Ordering::SeqCst);
                last_retx = retx;
            }
        }
        if idle {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::topology;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn concurrent_writers_converge_consistently() {
        let cluster =
            ThreadedCluster::new(topology::ring(4), DelayModel::Uniform { min: 0, max: 5 }, 3);
        // Writers on all replicas concurrently (via the blocking API from
        // multiple driver threads).
        std::thread::scope(|s| {
            for i in 0..4u32 {
                let c = &cluster;
                s.spawn(move || {
                    for round in 0..10u64 {
                        c.write(r(i), x(i), Value::from(round));
                    }
                });
            }
        });
        cluster.settle();
        let rep = cluster.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
        assert_eq!(cluster.total_applied(), 4 * 10); // each write has 1 recipient
                                                     // Final values visible on both holders.
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(9u64)));
        let trace = cluster.shutdown();
        assert_eq!(trace.num_updates(), 40);
    }

    #[test]
    fn causal_chain_across_threads() {
        let cluster =
            ThreadedCluster::new(topology::path(3), DelayModel::Uniform { min: 0, max: 3 }, 9);
        cluster.write(r(0), x(0), Value::from(1u64));
        cluster.settle();
        // Replica 1 saw the write; its next write is causally after.
        cluster.write(r(1), x(1), Value::from(2u64));
        cluster.settle();
        assert_eq!(cluster.read(r(2), x(1)), Some(Value::from(2u64)));
        assert!(cluster.check().is_consistent());
    }

    #[test]
    fn read_own_writes() {
        let cluster = ThreadedCluster::new(topology::path(2), DelayModel::Fixed(1), 0);
        cluster.write(r(0), x(0), Value::from(77u64));
        assert_eq!(cluster.read(r(0), x(0)), Some(Value::from(77u64)));
    }

    #[test]
    fn lossy_network_converges_with_session() {
        // 30% drop + 20% duplication on real threads: the wall-clock
        // retransmission timers must restore every delivery. Delay ticks
        // are 200 µs, so a 10 ms base RTO clears the healthy round trip.
        let cluster = ThreadedCluster::new_faulty(
            topology::ring(4),
            DelayModel::Uniform { min: 0, max: 5 },
            11,
            WireMode::default(),
            FaultPlan {
                drop_prob: 0.3,
                duplicate_prob: 0.2,
                ..Default::default()
            },
            Some(SessionConfig {
                rto_base: 10,
                rto_max: 80,
                jitter: 3,
            }),
        );
        for round in 0..10u64 {
            for i in 0..4u32 {
                cluster.write(r(i), x(i), Value::from(round));
            }
        }
        cluster.settle();
        let rep = cluster.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
        assert_eq!(cluster.total_applied(), 4 * 10);
        assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(9u64)));
    }
}
