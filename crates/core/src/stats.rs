//! Latency sampling with percentile queries.
//!
//! The experiment tables report not just means but the tail (p99) of
//! visibility latency — the metric geo-replication papers care about.

use std::fmt;

/// A bag of latency samples (ticks) answering percentile queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyStats {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyStats {
    /// An empty collector.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
        }
    }

    /// Maximum (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile using nearest-rank (q in `[0, 1]`); 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return 0;
        }
        self.ensure_sorted();
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        self.samples[rank.min(self.samples.len() - 1)]
    }

    /// Merges another collector's samples into this one — how the
    /// serving tier folds per-worker latency histograms into one
    /// client-visible distribution without sharing a lock on the hot
    /// path.
    pub fn absorb(&mut self, other: LatencyStats) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend(other.samples);
        self.sorted = false;
    }

    /// Convenience: median.
    pub fn p50(&mut self) -> u64 {
        self.percentile(0.50)
    }

    /// Convenience: 99th percentile.
    pub fn p99(&mut self) -> u64 {
        self.percentile(0.99)
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut copy = self.clone();
        write!(
            f,
            "n={} mean={:.1} p50={} p99={} max={}",
            copy.len(),
            copy.mean(),
            copy.p50(),
            copy.p99(),
            copy.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let mut s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.p50(), 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = LatencyStats::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            s.record(v);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.p50(), 50);
        assert_eq!(s.percentile(0.9), 90);
        assert_eq!(s.p99(), 100);
        assert_eq!(s.percentile(0.0), 10);
        assert_eq!(s.percentile(1.0), 100);
        assert_eq!(s.max(), 100);
        assert!((s.mean() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_handled() {
        let mut s = LatencyStats::new();
        for v in [5u64, 1, 3, 2, 4] {
            s.record(v);
        }
        assert_eq!(s.p50(), 3);
        s.record(0);
        assert_eq!(s.percentile(0.001), 0); // re-sorts after new sample
    }

    #[test]
    fn display_nonempty() {
        let mut s = LatencyStats::new();
        s.record(7);
        assert!(s.to_string().contains("p99=7"));
        assert!(format!("{}", LatencyStats::new()).contains("n=0"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_validated() {
        let mut s = LatencyStats::new();
        s.record(1);
        s.percentile(1.5);
    }
}
