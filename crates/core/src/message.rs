//! Update messages exchanged between replicas.

use crate::value::Value;
use prcc_sharegraph::{RegisterId, ReplicaId};
use prcc_timestamp::{EdgeTimestamp, VectorClock};
use std::fmt;
use std::sync::Arc;

/// One entry of an explicit dependency list: an update identified by
/// `(issuer, seq)`, writing `register`. Carrying the register lets a
/// partial replica decide whether the dependency concerns it at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DepEntry {
    /// The issuing replica.
    pub issuer: ReplicaId,
    /// Issuer-local sequence number.
    pub seq: u64,
    /// The register the dependency wrote.
    pub register: RegisterId,
}

/// The metadata (timestamp) attached to an update message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metadata {
    /// Edge-indexed timestamp (Section 3.3 algorithm).
    Edge(EdgeTimestamp),
    /// Vector clock (full-replication / dummy-emulation baseline).
    Vector(VectorClock),
    /// Explicit full-transitive dependency list — the Full-Track-style
    /// baseline (Shen et al., cited in the paper's related work). Sorted,
    /// deduplicated.
    Deps(Vec<DepEntry>),
    /// An edge timestamp projected to the receiver's common-edge slice
    /// `E_i ∩ E_k` by the wire codec (`WireMode::{Projected, Compressed}`).
    /// `values` are the decoded counters in pair-slice order — exactly
    /// what the receiver's `merge`/`J` read; `encoded_len` is the number
    /// of bytes the frame occupied on the wire, so
    /// [`Metadata::size_bytes`] reports the real transmitted cost.
    Projected {
        /// Decoded common-slice counters, in the registry's pair order.
        values: Vec<u64>,
        /// Actual on-wire frame length in bytes.
        encoded_len: usize,
    },
}

impl Metadata {
    /// Serialized size of the metadata in bytes — the size of what the
    /// active wire mode actually transmitted (raw fixed layout for
    /// `Edge`/`Vector`/`Deps`, the real frame length for `Projected`).
    pub fn size_bytes(&self) -> usize {
        match self {
            Metadata::Edge(t) => t.wire_size_bytes(),
            Metadata::Vector(v) => v.wire_size_bytes(),
            // issuer (4) + seq (8) + register (4) per entry.
            Metadata::Deps(d) => d.len() * 16,
            Metadata::Projected { encoded_len, .. } => *encoded_len,
        }
    }

    /// Number of counters (or entries) carried.
    pub fn num_counters(&self) -> usize {
        match self {
            Metadata::Edge(t) => t.num_counters(),
            Metadata::Vector(v) => v.len(),
            Metadata::Deps(d) => d.len(),
            Metadata::Projected { values, .. } => values.len(),
        }
    }
}

/// Piggybacked payload for the routed protocol (Appendix D, "Restricting
/// inter-replica communication patterns"): a logical write travelling over
/// virtual-register updates toward its final holder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitInfo {
    /// The originating update: `(issuer, issuer-local seq)`.
    pub origin: (ReplicaId, u64),
    /// The *logical* register being written.
    pub register: RegisterId,
    /// The replica that should apply the write on arrival.
    pub final_dst: ReplicaId,
    /// The written value.
    pub value: Value,
}

/// An `update(i, τ, x, v)` message (step 2(iii) of the prototype), plus a
/// per-issuer sequence number used only for tracing/debugging — the
/// protocol itself relies solely on the timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateMsg {
    /// The issuing replica `i`.
    pub issuer: ReplicaId,
    /// Issuer-local sequence number (0-based).
    pub seq: u64,
    /// The register written.
    pub register: RegisterId,
    /// The new value; `None` for metadata-only deliveries (dummy-register
    /// recipients, Appendix D).
    pub value: Option<Value>,
    /// The issuer's timestamp after `advance`. Shared immutably: a
    /// broadcast clones the `Arc`, never the counters, and the wire codec
    /// swaps in a per-pair [`Metadata::Projected`] payload when a mode
    /// other than raw is active.
    pub meta: Arc<Metadata>,
    /// Routed-protocol piggyback, if any.
    pub transit: Option<TransitInfo>,
}

impl UpdateMsg {
    /// True if this message carries no data payload.
    pub fn is_metadata_only(&self) -> bool {
        self.value.is_none()
    }

    /// Total wire size: metadata plus payload plus fixed header (issuer,
    /// seq, register: 16 bytes), plus any transit piggyback (12-byte
    /// routing header + value).
    pub fn size_bytes(&self) -> usize {
        16 + self.meta.size_bytes()
            + self.value.as_ref().map_or(0, Value::size_bytes)
            + self
                .transit
                .as_ref()
                .map_or(0, |t| 12 + t.value.size_bytes())
    }
}

/// A run of consecutive [`UpdateMsg`]s from one issuer coalesced into a
/// single wire frame — the unit the batched pipeline ships per ordered
/// `(sender, receiver)` pair. Never empty; all updates share one issuer.
///
/// Byte accounting: the batch header carries the issuer and count
/// (6 bytes), and each update then needs only its sequence number and
/// register (10 bytes) on top of its metadata/value — the issuer is
/// hoisted out of the 16-byte singleton header. A singleton batch
/// therefore costs exactly what the unbatched message did (6 + 10 = 16),
/// so switching batching on with `batch_count = 1` is byte-identical to
/// the unbatched oracle, and a batch of `k` saves `6(k−1)` header bytes
/// before any session/envelope amortization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMsg {
    /// The coalesced updates, in pair-stream send order.
    pub updates: Vec<UpdateMsg>,
}

impl BatchMsg {
    /// Wraps one update as a batch (the differential oracle's unit).
    pub fn singleton(msg: UpdateMsg) -> BatchMsg {
        BatchMsg { updates: vec![msg] }
    }

    /// Number of updates carried.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True when the batch carries no updates (never constructed by the
    /// pipeline, but `Vec`-like completeness keeps clippy honest).
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The shared issuer.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch.
    pub fn issuer(&self) -> ReplicaId {
        self.updates[0].issuer
    }

    /// Total wire size: 6-byte batch header (issuer + count) plus, per
    /// update, a 10-byte header (seq + register) and its own
    /// metadata/value/transit bytes.
    pub fn size_bytes(&self) -> usize {
        6 + self
            .updates
            .iter()
            .map(|m| m.size_bytes() - 6)
            .sum::<usize>()
    }
}

impl fmt::Display for BatchMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch({}, {} updates)", self.issuer(), self.len())
    }
}

impl fmt::Display for UpdateMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "update({}#{}, {}, {})",
            self.issuer,
            self.seq,
            self.register,
            match &self.value {
                Some(v) => v.to_string(),
                None => "<meta>".into(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_sizes() {
        let vc = VectorClock::new(4);
        let m = Metadata::Vector(vc);
        assert_eq!(m.size_bytes(), 32);
        assert_eq!(m.num_counters(), 4);
    }

    #[test]
    fn projected_metadata_reports_wire_frame_size() {
        let m = Metadata::Projected {
            values: vec![3, 5, 8],
            encoded_len: 4,
        };
        assert_eq!(m.size_bytes(), 4);
        assert_eq!(m.num_counters(), 3);
    }

    #[test]
    fn message_size_accounting() {
        let msg = UpdateMsg {
            issuer: ReplicaId::new(0),
            seq: 0,
            register: RegisterId::new(1),
            value: Some(Value::U64(5)),
            meta: Arc::new(Metadata::Vector(VectorClock::new(2))),
            transit: None,
        };
        assert_eq!(msg.size_bytes(), 16 + 16 + 8);
        assert!(!msg.is_metadata_only());

        let meta_only = UpdateMsg { value: None, ..msg };
        assert!(meta_only.is_metadata_only());
        assert_eq!(meta_only.size_bytes(), 16 + 16);
        assert!(meta_only.to_string().contains("<meta>"));
    }

    #[test]
    fn batch_size_accounting() {
        let mk = |seq| UpdateMsg {
            issuer: ReplicaId::new(0),
            seq,
            register: RegisterId::new(1),
            value: Some(Value::U64(5)),
            meta: Arc::new(Metadata::Vector(VectorClock::new(2))),
            transit: None,
        };
        // Singleton batches cost exactly the unbatched message.
        let single = BatchMsg::singleton(mk(0));
        assert_eq!(single.size_bytes(), mk(0).size_bytes());
        assert_eq!(single.len(), 1);
        assert!(!single.is_empty());
        assert_eq!(single.issuer(), ReplicaId::new(0));
        // A batch of k saves 6(k−1) header bytes.
        let batch = BatchMsg {
            updates: (0..3).map(mk).collect(),
        };
        assert_eq!(batch.size_bytes(), 3 * mk(0).size_bytes() - 2 * 6);
        assert!(batch.to_string().contains("3 updates"));
    }
}
