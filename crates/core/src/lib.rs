//! Partially replicated causally consistent shared memory — the protocol
//! core.
//!
//! Implements the replica prototype of Xiang & Vaidya (Section 2.1) with
//! pluggable causality trackers, plus the paper's optimizations:
//!
//! * [`Replica`] — the prototype state machine (write / pending / apply);
//! * [`EdgeTracker`] — the edge-indexed algorithm (Section 3.3);
//! * [`VcTracker`] — the vector-clock baseline with metadata broadcast
//!   (full-replication emulation, Appendix D);
//! * [`System`] — a complete simulated deployment over a deterministic
//!   network, producing checkable execution traces and metrics;
//! * dummy registers and oblivious replicas via [`SystemBuilder`];
//! * loop-truncated tracking via [`TrackerKind::EdgeIndexed`] with a
//!   bounded `LoopConfig` (Appendix D, "sacrificing causality").
//!
//! # Examples
//!
//! ```
//! use prcc_core::{System, Value};
//! use prcc_sharegraph::{topology, ReplicaId, RegisterId};
//!
//! let mut sys = System::builder(topology::ring(4)).seed(1).build();
//! sys.write(ReplicaId::new(0), RegisterId::new(0), Value::from(7u64));
//! sys.run_to_quiescence();
//! assert_eq!(
//!     sys.read(ReplicaId::new(1), RegisterId::new(0)),
//!     Some(&Value::from(7u64))
//! );
//! assert!(sys.check().is_consistent());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client_server;
pub mod codec;
pub mod construct;
pub mod explore;
pub mod explore_cs;
pub mod message;
pub mod netframe;
pub mod recovery;
pub mod replica;
pub mod routed;
pub mod routed_general;
pub mod runtime;
pub mod serving;
pub mod stats;
pub mod store_cow;
pub mod system;
pub mod tracker;
pub mod value;

pub use client_server::{ClientServerSystem, RequestId, SessionEvent};
pub use codec::{AdaptiveConfig, CodecStats, WireCodec, WireMode};
pub use construct::{propagate, release_all, WritePlan};
pub use explore::{ExplorationResult, Scenario, ScriptedWrite};
pub use explore_cs::{CsOp, CsScenario};
pub use message::{BatchMsg, DepEntry, Metadata, TransitInfo, UpdateMsg};
pub use netframe::{cluster_codec, ClusterCodec};
pub use recovery::{RecoveryLog, WalEntry};
pub use replica::{Applied, PendingMode, Replica, ReplicaError, WriteOutput};
pub use routed::RoutedRing;
pub use routed_general::{RoutedError, RoutedSystem};
pub use runtime::{
    ClusterConfig, ClusterError, NodeEvent, NodeRuntime, ReplicaView, ThreadedCluster,
};
pub use serving::{
    Collected, ServingConfig, ServingError, ServingStats, ServingTier, ServingWorker,
};
pub use stats::LatencyStats;
pub use store_cow::{CowStore, Entry, SharedShards, StoreMode};
pub use system::{BatchPolicy, System, SystemBuilder, SystemMetrics, TrackerKind};
pub use tracker::{CausalityTracker, EdgeTracker, FullDepsTracker, ReadyCheck, VcTracker};
pub use value::Value;
