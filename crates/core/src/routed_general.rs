//! Generalized restricted communication: break *any* set of share-graph
//! edges and route their registers' updates over virtual registers along
//! residual paths (Appendix D — "more general topologies may also be
//! created").
//!
//! [`RoutedSystem`] generalizes [`RoutedRing`](crate::RoutedRing): for
//! each broken edge `(a, b)`, each register shared by exactly `{a, b}` is
//! split into the original copy at `a` plus a twin at `b`; a BFS path
//! through the residual share graph carries writes between them as
//! metadata+payload updates on fresh virtual registers. The timestamp
//! graphs are built on the *effective* (post-surgery) share graph, which
//! is where the metadata savings come from.

use crate::message::{TransitInfo, UpdateMsg};
use crate::replica::Replica;
use crate::system::SystemMetrics;
use crate::tracker::{CausalityTracker, EdgeTracker};
use crate::value::Value;
use prcc_checker::{check, CheckReport, Trace, UpdateId};
use prcc_net::{DelayModel, SimNetwork};
use prcc_sharegraph::{
    LoopConfig, Placement, RegSet, RegisterId, ReplicaId, ShareGraph, TimestampGraphs,
};
use prcc_timestamp::TsRegistry;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Why a routing surgery could not be performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutedError {
    /// The named pair shares no registers.
    NothingShared(ReplicaId, ReplicaId),
    /// A register on the broken edge has holders beyond the pair, so
    /// removing the direct edge would not disconnect them.
    NotPairwise(RegisterId),
    /// After removing the broken edges, no residual path connects the
    /// pair.
    NoResidualPath(ReplicaId, ReplicaId),
}

impl fmt::Display for RoutedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutedError::NothingShared(a, b) => {
                write!(f, "replicas {a} and {b} share no registers")
            }
            RoutedError::NotPairwise(x) => {
                write!(f, "register {x} has holders beyond the broken pair")
            }
            RoutedError::NoResidualPath(a, b) => {
                write!(f, "no residual path between {a} and {b}")
            }
        }
    }
}

impl std::error::Error for RoutedError {}

#[derive(Debug, Clone)]
struct BrokenInfo {
    a: ReplicaId,
    b: ReplicaId,
    twin: RegisterId,
    /// Residual path `a = route[0], …, route[last] = b`.
    route: Vec<ReplicaId>,
}

/// A deployment with broken edges and routed registers.
pub struct RoutedSystem {
    logical: Placement,
    effective: ShareGraph,
    replicas: Vec<Replica>,
    net: SimNetwork<UpdateMsg>,
    trace: Trace,
    metrics: SystemMetrics,
    issue_time: HashMap<UpdateId, u64>,
    transit_issue: HashMap<(ReplicaId, u64), u64>,
    broken: HashMap<RegisterId, BrokenInfo>,
    /// Virtual register per undirected residual edge used by some route.
    virtuals: HashMap<(ReplicaId, ReplicaId), RegisterId>,
}

impl fmt::Debug for RoutedSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoutedSystem")
            .field("replicas", &self.replicas.len())
            .field("broken_registers", &self.broken.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl RoutedSystem {
    /// Breaks every `(a, b)` pair in `break_edges` on `graph`.
    ///
    /// # Errors
    ///
    /// See [`RoutedError`]. All registers on a broken edge must be held
    /// by exactly that pair, and the residual graph must still connect
    /// each pair.
    pub fn new(
        graph: &ShareGraph,
        break_edges: &[(ReplicaId, ReplicaId)],
        delay: DelayModel,
        seed: u64,
    ) -> Result<Self, RoutedError> {
        let logical = graph.placement().clone();
        let n = logical.num_replicas();
        let mut sets: Vec<RegSet> = (0..n)
            .map(|i| logical.registers_of(ReplicaId::new(i as u32)).clone())
            .collect();
        let mut next_reg = logical.num_registers() as u32;
        let mut broken: HashMap<RegisterId, BrokenInfo> = HashMap::new();

        // Surgery: split each pairwise register of each broken edge.
        let mut pending_routes: Vec<(RegisterId, ReplicaId, ReplicaId)> = Vec::new();
        for &(a, b) in break_edges {
            let shared = logical.shared(a, b);
            if shared.is_empty() {
                return Err(RoutedError::NothingShared(a, b));
            }
            for x in shared.iter() {
                if logical.holders(x) != [a.min(b), a.max(b)] {
                    return Err(RoutedError::NotPairwise(x));
                }
                let twin = RegisterId::new(next_reg);
                next_reg += 1;
                sets[b.index()].remove(x);
                sets[b.index()].insert(twin);
                broken.insert(
                    x,
                    BrokenInfo {
                        a,
                        b,
                        twin,
                        route: Vec::new(),
                    },
                );
                pending_routes.push((x, a, b));
            }
        }

        // Residual graph (before virtuals) for route computation.
        let residual = ShareGraph::new(Placement::from_sets(sets.clone()));
        let mut virtuals: HashMap<(ReplicaId, ReplicaId), RegisterId> = HashMap::new();
        for (x, a, b) in pending_routes {
            let route = bfs_path(&residual, a, b).ok_or(RoutedError::NoResidualPath(a, b))?;
            for w in route.windows(2) {
                let key = (w[0].min(w[1]), w[0].max(w[1]));
                let vreg = *virtuals.entry(key).or_insert_with(|| {
                    let v = RegisterId::new(next_reg);
                    next_reg += 1;
                    sets[key.0.index()].insert(v);
                    sets[key.1.index()].insert(v);
                    v
                });
                let _ = vreg;
            }
            broken.get_mut(&x).expect("inserted above").route = route;
        }

        let effective = ShareGraph::new(Placement::from_sets(sets));
        let registry = Arc::new(TsRegistry::new(
            &effective,
            TimestampGraphs::build(&effective, LoopConfig::EXHAUSTIVE),
        ));
        let replicas = effective
            .replicas()
            .map(|i| {
                Replica::new(
                    i,
                    effective.placement().registers_of(i).clone(),
                    Box::new(EdgeTracker::new(registry.clone(), i)) as Box<dyn CausalityTracker>,
                )
            })
            .collect();

        Ok(RoutedSystem {
            logical,
            effective,
            replicas,
            net: SimNetwork::new(delay, seed),
            trace: Trace::new(),
            metrics: SystemMetrics::default(),
            issue_time: HashMap::new(),
            transit_issue: HashMap::new(),
            broken,
            virtuals,
        })
    }

    /// The effective (post-surgery) share graph.
    pub fn effective_graph(&self) -> &ShareGraph {
        &self.effective
    }

    /// Per-replica timestamp counter counts.
    pub fn timestamp_counters(&self) -> Vec<usize> {
        self.replicas
            .iter()
            .map(|r| r.tracker().num_counters())
            .collect()
    }

    fn local_register(&self, r: ReplicaId, x: RegisterId) -> RegisterId {
        match self.broken.get(&x) {
            Some(info) if r == info.b => info.twin,
            _ => x,
        }
    }

    /// Client write of the *logical* register `x` at replica `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not logically store `x`.
    pub fn write(&mut self, r: ReplicaId, x: RegisterId, v: Value) -> UpdateId {
        assert!(
            self.logical.stores(r, x),
            "register {x} not logically stored at {r}"
        );
        let local = self.local_register(r, x);
        let recipients: Vec<ReplicaId> = self
            .effective
            .placement()
            .holders(local)
            .iter()
            .copied()
            .filter(|&h| h != r)
            .collect();
        let (msg, recipients) = self.replicas[r.index()]
            .write(local, v.clone(), recipients)
            .unwrap_or_else(|e| panic!("{e}"));
        let id = UpdateId {
            issuer: r,
            seq: msg.seq,
        };
        self.trace.record_issue_with_id(id, x);
        self.issue_time.insert(id, self.net.now());
        for dst in &recipients {
            self.account_send(&msg);
            self.net.send(r, *dst, msg.clone());
        }
        if let Some(info) = self.broken.get(&x).cloned() {
            if r == info.a || r == info.b {
                let final_dst = if r == info.a { info.b } else { info.a };
                self.transit_issue.insert((r, msg.seq), self.net.now());
                self.send_transit_hop(
                    r,
                    TransitInfo {
                        origin: (r, msg.seq),
                        register: x,
                        final_dst,
                        value: v,
                    },
                );
            }
        }
        id
    }

    fn send_transit_hop(&mut self, at: ReplicaId, transit: TransitInfo) {
        let info = self.broken[&transit.register].clone();
        let pos = info
            .route
            .iter()
            .position(|&p| p == at)
            .expect("transit holder on route");
        let next = if transit.final_dst == info.b {
            info.route[pos + 1]
        } else {
            info.route[pos - 1]
        };
        let key = (at.min(next), at.max(next));
        let vreg = self.virtuals[&key];
        let mut msg = self.replicas[at.index()].issue_virtual(vreg, None);
        msg.transit = Some(transit);
        let id = UpdateId {
            issuer: at,
            seq: msg.seq,
        };
        self.trace.record_issue_with_id(id, vreg);
        self.issue_time.insert(id, self.net.now());
        self.account_send(&msg);
        self.net.send(at, next, msg);
    }

    fn account_send(&mut self, m: &UpdateMsg) {
        self.metrics.metadata_bytes += m.meta.size_bytes();
        if let Some(v) = &m.value {
            self.metrics.data_messages += 1;
            self.metrics.payload_bytes += v.size_bytes();
        } else {
            self.metrics.meta_messages += 1;
        }
    }

    /// Reads the *logical* register `x` at replica `r`.
    pub fn read(&self, r: ReplicaId, x: RegisterId) -> Option<&Value> {
        self.replicas[r.index()].read(self.local_register(r, x))
    }

    /// Delivers one message; returns `false` at quiescence.
    pub fn step(&mut self) -> bool {
        let Some((t, env)) = self.net.next_delivery() else {
            return false;
        };
        let dst = env.dst;
        let applied = self.replicas[dst.index()].receive(env.msg);
        for a in applied {
            let id = UpdateId {
                issuer: a.msg.issuer,
                seq: a.msg.seq,
            };
            if let Some(transit) = &a.msg.transit {
                if transit.final_dst == dst {
                    self.trace.record_apply(
                        UpdateId {
                            issuer: transit.origin.0,
                            seq: transit.origin.1,
                        },
                        dst,
                    );
                }
            }
            self.trace.record_apply(id, dst);
            self.metrics.applies += 1;
            if let Some(&issued) = self.issue_time.get(&id) {
                let vis = t.saturating_sub(issued);
                self.metrics.total_visibility += vis;
                self.metrics.visibility_samples += 1;
                self.metrics.max_visibility = self.metrics.max_visibility.max(vis);
            }
            if let Some(transit) = a.msg.transit.clone() {
                if transit.final_dst == dst {
                    let local = self.local_register(dst, transit.register);
                    self.replicas[dst.index()].store_local(local, transit.value.clone());
                    if let Some(issued) = self.transit_issue.remove(&transit.origin) {
                        let vis = t.saturating_sub(issued);
                        self.metrics.total_visibility += vis;
                        self.metrics.visibility_samples += 1;
                        self.metrics.max_visibility = self.metrics.max_visibility.max(vis);
                    }
                } else {
                    self.send_transit_hop(dst, transit);
                }
            }
        }
        true
    }

    /// Runs until quiescence.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// True if nothing is in flight or pending.
    pub fn is_settled(&self) -> bool {
        self.net.is_quiescent() && self.replicas.iter().all(|r| r.pending_count() == 0)
    }

    /// Checks the trace against the *logical* placement.
    pub fn check(&self) -> CheckReport {
        check(&self.trace, &self.logical)
    }

    /// Metrics so far.
    pub fn metrics(&self) -> &SystemMetrics {
        &self.metrics
    }
}

/// Shortest path `from → to` in `g`, inclusive of both endpoints.
fn bfs_path(g: &ShareGraph, from: ReplicaId, to: ReplicaId) -> Option<Vec<ReplicaId>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut prev: Vec<Option<ReplicaId>> = vec![None; g.num_replicas()];
    let mut seen = vec![false; g.num_replicas()];
    seen[from.index()] = true;
    let mut q = std::collections::VecDeque::from([from]);
    while let Some(v) = q.pop_front() {
        for &w in g.neighbors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                prev[w.index()] = Some(v);
                if w == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while let Some(p) = prev[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                q.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::topology;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn grid_with_broken_edge() {
        // Grid 3x3: break the edge between replicas 0 and 1 (register 0).
        let g = topology::grid(3, 3);
        let mut sys =
            RoutedSystem::new(&g, &[(r(0), r(1))], DelayModel::Fixed(1), 0).expect("routable");
        // Counters shrink at the endpoints relative to the plain grid.
        let plain = crate::System::builder(g.clone()).build();
        let plain_counters = plain.timestamp_counters();
        let routed_counters = sys.timestamp_counters();
        assert!(
            routed_counters.iter().sum::<usize>() <= plain_counters.iter().sum::<usize>() + 8,
            "virtual edges may add counters but the broken direct edge is gone"
        );
        // Writes to the broken register still converge.
        sys.write(r(0), x(0), Value::from(11u64));
        sys.run_to_quiescence();
        assert_eq!(sys.read(r(1), x(0)), Some(&Value::from(11u64)));
        sys.write(r(1), x(0), Value::from(12u64));
        sys.run_to_quiescence();
        assert_eq!(sys.read(r(0), x(0)), Some(&Value::from(12u64)));
        assert!(sys.is_settled());
        let rep = sys.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
    }

    #[test]
    fn multiple_broken_edges_on_torus() {
        let g = topology::torus(3, 3);
        // Break two disjoint edges.
        let e1 = (r(0), r(1));
        let shared01 = g.placement().shared(r(0), r(1));
        assert!(!shared01.is_empty());
        let e2 = (r(4), r(5));
        let mut sys = RoutedSystem::new(&g, &[e1, e2], DelayModel::Fixed(2), 3).expect("routable");
        // Drive writes on every logical register at one holder each.
        let logical_regs = g.placement().num_registers() as u32;
        for reg in 0..logical_regs {
            let holder = *g.placement().holders(x(reg)).first().unwrap();
            sys.write(holder, x(reg), Value::from(u64::from(reg)));
        }
        sys.run_to_quiescence();
        assert!(sys.is_settled());
        let rep = sys.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
        // Both broken registers reached their far endpoints.
        for reg in shared01.iter() {
            assert_eq!(
                sys.read(r(1), reg),
                Some(&Value::from(u64::from(reg.raw())))
            );
        }
    }

    #[test]
    fn ring_equivalence_with_routed_ring() {
        // Breaking ring edge (n−1, 0) reproduces RoutedRing's counters.
        let n = 6;
        let g = topology::ring(n);
        let sys = RoutedSystem::new(&g, &[(r((n - 1) as u32), r(0))], DelayModel::Fixed(1), 0)
            .expect("routable");
        let ring = crate::RoutedRing::new(n, DelayModel::Fixed(1), 0);
        assert_eq!(sys.timestamp_counters(), ring.timestamp_counters());
    }

    #[test]
    fn errors_reported() {
        let g = topology::path(3);
        // Non-adjacent pair.
        assert_eq!(
            RoutedSystem::new(&g, &[(r(0), r(2))], DelayModel::Fixed(1), 0).unwrap_err(),
            RoutedError::NothingShared(r(0), r(2))
        );
        // Breaking the only path disconnects: path 0-1, register 0.
        assert_eq!(
            RoutedSystem::new(&g, &[(r(0), r(1))], DelayModel::Fixed(1), 0).unwrap_err(),
            RoutedError::NoResidualPath(r(0), r(1))
        );
        // Register with three holders cannot be broken pairwise.
        let tri = prcc_sharegraph::ShareGraph::new(
            prcc_sharegraph::Placement::builder(3)
                .share(0, [0, 1, 2])
                .share(1, [0, 1])
                .build(),
        );
        assert_eq!(
            RoutedSystem::new(&tri, &[(r(0), r(2))], DelayModel::Fixed(1), 0).unwrap_err(),
            RoutedError::NotPairwise(x(0))
        );
    }

    #[test]
    fn causal_chains_across_broken_edges() {
        let g = topology::grid(3, 2);
        for seed in 0..5 {
            let mut sys = RoutedSystem::new(
                &g,
                &[(r(0), r(1))],
                DelayModel::Uniform { min: 1, max: 40 },
                seed,
            )
            .expect("routable");
            for round in 0..3u64 {
                for reg in 0..g.placement().num_registers() as u32 {
                    let holder = *g.placement().holders(x(reg)).first().unwrap();
                    sys.write(holder, x(reg), Value::from(round));
                    sys.step();
                }
            }
            sys.run_to_quiescence();
            assert!(sys.is_settled(), "seed {seed}");
            let rep = sys.check();
            assert!(rep.is_consistent(), "seed {seed}: {:?}", rep.violations);
        }
    }
}
