//! Exhaustive small-scope exploration of delivery interleavings — a
//! miniature model checker for the protocol.
//!
//! The paper's impossibility arguments quantify over *all* executions:
//! "there exists a delivery order such that…". The explorer makes that
//! quantifier executable: given a scenario of client writes with causal
//! preconditions, it enumerates **every** interleaving of message
//! deliveries (asynchronous, non-FIFO channels) and checks replica-centric
//! causal consistency in each. A scenario *verifies* when no interleaving
//! violates, and a counterexample interleaving is returned otherwise.
//!
//! State-space control: writes fire deterministically as soon as their
//! preconditions (updates applied at the issuer) hold, so branching comes
//! only from delivery choices; visited states are deduplicated by a
//! structural fingerprint.

use crate::message::UpdateMsg;
use crate::replica::Replica;
use crate::system::TrackerKind;
use crate::tracker::{CausalityTracker, EdgeTracker, VcTracker};
use crate::value::Value;
use prcc_checker::{check, Trace, UpdateId};
use prcc_sharegraph::{RegisterId, ReplicaId, ShareGraph, TimestampGraph, TimestampGraphs};
use prcc_timestamp::TsRegistry;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// One scripted client write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedWrite {
    /// The issuing replica.
    pub replica: ReplicaId,
    /// The register to write (must be stored at `replica`).
    pub register: RegisterId,
    /// Indices (into the script) of writes that must have been *applied
    /// at the issuer* before this write fires. Same-replica predecessors
    /// are implicit (they applied locally at issue).
    pub after_applied: Vec<usize>,
}

/// A scenario: a share graph plus scripted writes.
#[derive(Debug, Clone)]
pub struct Scenario {
    graph: ShareGraph,
    tracker: TrackerKind,
    writes: Vec<ScriptedWrite>,
    dropped_edges: Vec<(ReplicaId, prcc_sharegraph::EdgeId)>,
    max_states: usize,
}

impl Scenario {
    /// Starts a scenario over `graph` with the exact edge-indexed tracker.
    pub fn new(graph: ShareGraph) -> Self {
        Scenario {
            graph,
            tracker: TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE),
            writes: Vec::new(),
            dropped_edges: Vec::new(),
            max_states: 2_000_000,
        }
    }

    /// Selects the tracker.
    pub fn tracker(mut self, kind: TrackerKind) -> Self {
        self.tracker = kind;
        self
    }

    /// Makes replica `i` oblivious to edge `e` (Theorem 8 configurations).
    pub fn drop_edge(mut self, i: ReplicaId, e: prcc_sharegraph::EdgeId) -> Self {
        self.dropped_edges.push((i, e));
        self
    }

    /// Adds a write with no cross-replica precondition. Returns its index.
    pub fn write(&mut self, replica: ReplicaId, register: RegisterId) -> usize {
        self.write_after(replica, register, [])
    }

    /// Adds a write that fires only after the given script indices have
    /// been applied at `replica`. Returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `replica` does not store `register`, or a precondition
    /// index is out of range / not yet defined.
    pub fn write_after<I: IntoIterator<Item = usize>>(
        &mut self,
        replica: ReplicaId,
        register: RegisterId,
        after: I,
    ) -> usize {
        assert!(
            self.graph.placement().stores(replica, register),
            "{register} not stored at {replica}"
        );
        let after_applied: Vec<usize> = after.into_iter().collect();
        for &a in &after_applied {
            assert!(a < self.writes.len(), "precondition {a} out of range");
        }
        self.writes.push(ScriptedWrite {
            replica,
            register,
            after_applied,
        });
        self.writes.len() - 1
    }

    /// Caps the number of distinct states explored (default 2M).
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Explores every interleaving.
    pub fn explore(&self) -> ExplorationResult {
        Explorer::new(self).run()
    }
}

/// The outcome of an exploration.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    /// Distinct states visited.
    pub states: usize,
    /// Complete executions (all messages delivered, all writes fired).
    pub executions: usize,
    /// Executions whose final trace violated consistency, with one
    /// exemplar violation description.
    pub violations: usize,
    /// An exemplar violating delivery order (indices into the script's
    /// update ids), if any.
    pub counterexample: Option<String>,
    /// True if the state cap was hit (results then cover only part of the
    /// space).
    pub truncated: bool,
}

impl ExplorationResult {
    /// True if every explored execution was causally consistent and the
    /// space was fully covered.
    pub fn verified(&self) -> bool {
        self.violations == 0 && !self.truncated
    }
}

impl fmt::Display for ExplorationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} executions, {} violating{}{}",
            self.states,
            self.executions,
            self.violations,
            if self.truncated { " (TRUNCATED)" } else { "" },
            match &self.counterexample {
                Some(c) => format!("; e.g. {c}"),
                None => String::new(),
            }
        )
    }
}

/// A snapshot of the whole system: replicas + in-flight messages +
/// script progress.
#[derive(Clone)]
struct State {
    replicas: Vec<Replica>,
    /// In-flight `(dst, msg)` pairs, order-independent (channels are
    /// non-FIFO, so the set fully determines reachable behaviour).
    in_flight: Vec<(ReplicaId, UpdateMsg)>,
    /// Which script writes have fired, and their update ids.
    fired: Vec<Option<UpdateId>>,
    /// Which script writes have been applied at each replica:
    /// applied[replica][write_idx].
    applied: Vec<Vec<bool>>,
    /// Apply order per replica — part of the fingerprint, because safety
    /// depends on the *order* of applies, not just the applied set.
    apply_order: Vec<Vec<UpdateId>>,
    trace: Trace,
}

impl State {
    /// Structural fingerprint for visited-state deduplication.
    fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for (i, r) in self.replicas.iter().enumerate() {
            (i, r.applied_count(), r.pending_count()).hash(&mut h);
        }
        let mut fl: Vec<(u32, u32, u64)> = self
            .in_flight
            .iter()
            .map(|(d, m)| (d.raw(), m.issuer.raw(), m.seq))
            .collect();
        fl.sort_unstable();
        fl.hash(&mut h);
        for f in &self.fired {
            f.is_some().hash(&mut h);
        }
        for order in &self.apply_order {
            for u in order {
                (u.issuer.raw(), u.seq).hash(&mut h);
            }
            u64::MAX.hash(&mut h); // per-replica separator
        }
        h.finish()
    }
}

struct Explorer<'a> {
    scenario: &'a Scenario,
    visited: HashSet<u64>,
    states: usize,
    executions: usize,
    violations: usize,
    counterexample: Option<String>,
    truncated: bool,
}

impl<'a> Explorer<'a> {
    fn new(scenario: &'a Scenario) -> Self {
        Explorer {
            scenario,
            visited: HashSet::new(),
            states: 0,
            executions: 0,
            violations: 0,
            counterexample: None,
            truncated: false,
        }
    }

    fn initial_state(&self) -> State {
        let g = &self.scenario.graph;
        let n = g.num_replicas();
        let mut replicas = Vec::with_capacity(n);
        match self.scenario.tracker {
            TrackerKind::EdgeIndexed(loops) => {
                let mut graphs: Vec<TimestampGraph> = g
                    .replicas()
                    .map(|i| TimestampGraph::build(g, i, loops))
                    .collect();
                for (i, e) in &self.scenario.dropped_edges {
                    let edges: Vec<_> = graphs[i.index()]
                        .edges()
                        .iter()
                        .copied()
                        .filter(|x| x != e)
                        .collect();
                    graphs[i.index()] = TimestampGraph::from_edges(*i, edges);
                }
                let registry = Arc::new(TsRegistry::new(g, TimestampGraphs::from_graphs(graphs)));
                for i in g.replicas() {
                    replicas.push(Replica::new(
                        i,
                        g.placement().registers_of(i).clone(),
                        Box::new(EdgeTracker::new(registry.clone(), i))
                            as Box<dyn CausalityTracker>,
                    ));
                }
            }
            TrackerKind::VectorClock => {
                for i in g.replicas() {
                    replicas.push(Replica::new(
                        i,
                        g.placement().registers_of(i).clone(),
                        Box::new(VcTracker::new(i, n)) as Box<dyn CausalityTracker>,
                    ));
                }
            }
            TrackerKind::FullDeps => {
                for i in g.replicas() {
                    replicas.push(Replica::new(
                        i,
                        g.placement().registers_of(i).clone(),
                        Box::new(crate::tracker::FullDepsTracker::new(
                            i,
                            g.placement().registers_of(i).clone(),
                        )) as Box<dyn CausalityTracker>,
                    ));
                }
            }
        }
        State {
            replicas,
            in_flight: Vec::new(),
            fired: vec![None; self.scenario.writes.len()],
            applied: vec![vec![false; self.scenario.writes.len()]; n],
            apply_order: vec![Vec::new(); n],
            trace: Trace::new(),
        }
    }

    fn run(mut self) -> ExplorationResult {
        let mut init = self.initial_state();
        self.fire_enabled_writes(&mut init);
        self.dfs(init);
        ExplorationResult {
            states: self.states,
            executions: self.executions,
            violations: self.violations,
            counterexample: self.counterexample.take(),
            truncated: self.truncated,
        }
    }

    /// Fires every script write whose preconditions hold, in script order,
    /// repeating until a fixpoint (a write may enable another on the same
    /// replica).
    fn fire_enabled_writes(&self, st: &mut State) {
        let g = &self.scenario.graph;
        loop {
            let mut fired_any = false;
            for (idx, w) in self.scenario.writes.iter().enumerate() {
                if st.fired[idx].is_some() {
                    continue;
                }
                let ok = w
                    .after_applied
                    .iter()
                    .all(|&pre| st.fired[pre].is_some() && st.applied[w.replica.index()][pre]);
                if !ok {
                    continue;
                }
                let recipients: Vec<ReplicaId> = match self.scenario.tracker {
                    TrackerKind::EdgeIndexed(_) | TrackerKind::FullDeps => g
                        .placement()
                        .holders(w.register)
                        .iter()
                        .copied()
                        .filter(|&h| h != w.replica)
                        .collect(),
                    TrackerKind::VectorClock => g.replicas().filter(|&h| h != w.replica).collect(),
                };
                let data_holders: Vec<ReplicaId> = g
                    .placement()
                    .holders(w.register)
                    .iter()
                    .copied()
                    .filter(|&h| h != w.replica)
                    .collect();
                let (msg, recipients) = st.replicas[w.replica.index()]
                    .write(w.register, Value::from(idx as u64), recipients)
                    .expect("scripted write valid");
                let uid = UpdateId {
                    issuer: w.replica,
                    seq: msg.seq,
                };
                st.trace.record_issue_with_id(uid, w.register);
                st.fired[idx] = Some(uid);
                st.applied[w.replica.index()][idx] = true;
                for dst in recipients {
                    let mut m = msg.clone();
                    if !data_holders.contains(&dst) {
                        m.value = None;
                    }
                    st.in_flight.push((dst, m));
                }
                fired_any = true;
            }
            if !fired_any {
                return;
            }
        }
    }

    fn dfs(&mut self, st: State) {
        if self.states >= self.scenario.max_states {
            self.truncated = true;
            return;
        }
        let fp = st.fingerprint();
        if !self.visited.insert(fp) {
            return;
        }
        self.states += 1;
        if st.in_flight.is_empty() {
            self.executions += 1;
            // Terminal: check the trace. (Liveness: stuck pending shows up
            // as missing applies.)
            let rep = check(&st.trace, self.scenario.graph.placement());
            let unfired = st.fired.iter().any(Option::is_none);
            if !rep.is_consistent() || unfired {
                self.violations += 1;
                if self.counterexample.is_none() {
                    self.counterexample = Some(if unfired {
                        "some scripted writes never became enabled".to_owned()
                    } else {
                        rep.violations[0].to_string()
                    });
                }
            }
            return;
        }
        // Branch over every deliverable message.
        for k in 0..st.in_flight.len() {
            let mut next = st.clone();
            let (dst, msg) = next.in_flight.swap_remove(k);
            let applied = next.replicas[dst.index()].receive(msg);
            for a in &applied {
                let uid = UpdateId {
                    issuer: a.msg.issuer,
                    seq: a.msg.seq,
                };
                next.trace.record_apply(uid, dst);
                next.apply_order[dst.index()].push(uid);
                // Mark script progress.
                if let Some(idx) = next.fired.iter().position(|f| *f == Some(uid)) {
                    next.applied[dst.index()][idx] = true;
                }
            }
            self.fire_enabled_writes(&mut next);
            self.dfs(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::{edge, topology};

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn fifo_pair_verified_exhaustively() {
        let mut s = Scenario::new(topology::path(2));
        s.write(r(0), x(0));
        s.write(r(0), x(0));
        s.write(r(0), x(0));
        let res = s.explore();
        assert!(res.verified(), "{res}");
        // 3 messages to one destination: 3! = 6 orders, but dedup merges.
        assert!(res.executions >= 1);
    }

    #[test]
    fn triangle_causal_chain_verified() {
        // r0 → u0; r1 writes after applying u0; r2 must always see them in
        // order — over ALL interleavings.
        let g = prcc_sharegraph::ShareGraph::new(
            prcc_sharegraph::Placement::builder(3)
                .share(0, [0, 1, 2])
                .build(),
        );
        let mut s = Scenario::new(g);
        let u0 = s.write(r(0), x(0));
        s.write_after(r(1), x(0), [u0]);
        let res = s.explore();
        assert!(res.verified(), "{res}");
        assert!(res.states > 3);
    }

    #[test]
    fn ring4_chain_verified() {
        let mut s = Scenario::new(topology::ring(4));
        let u0 = s.write(r(0), x(0));
        let u1 = s.write_after(r(1), x(1), [u0]);
        let u2 = s.write_after(r(2), x(2), [u1]);
        s.write_after(r(3), x(3), [u2]);
        let res = s.explore();
        assert!(res.verified(), "{res}");
    }

    #[test]
    fn oblivious_receiver_found_by_search() {
        // Drop e_01 at the receiver: the explorer finds the violating
        // interleaving automatically (no hand-built schedule).
        let mut s = Scenario::new(topology::path(2)).drop_edge(r(1), edge(0, 1));
        s.write(r(0), x(0));
        s.write(r(0), x(0));
        let res = s.explore();
        assert!(!res.verified());
        assert!(res.violations > 0);
        assert!(res.counterexample.is_some());
    }

    #[test]
    fn truncated_tracker_counterexample_found() {
        // Ring of 4 with 3-edge loop cap: drops every far edge. The chain
        // scenario has an interleaving where the last update beats the
        // first — found automatically.
        let mut s = Scenario::new(topology::ring(4)).tracker(TrackerKind::EdgeIndexed(
            prcc_sharegraph::LoopConfig::bounded(3),
        ));
        let u0 = s.write(r(1), x(0)); // shared with r0
        let u1 = s.write_after(r(1), x(1), [u0]);
        let u2 = s.write_after(r(2), x(2), [u1]);
        s.write_after(r(3), x(3), [u2]); // shared with r0
        let res = s.explore();
        assert!(res.violations > 0, "{res}");
        // The exact tracker verifies the same scenario.
        let mut s2 = Scenario::new(topology::ring(4));
        let v0 = s2.write(r(1), x(0));
        let v1 = s2.write_after(r(1), x(1), [v0]);
        let v2 = s2.write_after(r(2), x(2), [v1]);
        s2.write_after(r(3), x(3), [v2]);
        let res2 = s2.explore();
        assert!(res2.verified(), "{res2}");
    }

    #[test]
    fn vector_clock_scenario_verified() {
        let mut s = Scenario::new(topology::path(3)).tracker(TrackerKind::VectorClock);
        let u0 = s.write(r(0), x(0));
        s.write_after(r(1), x(1), [u0]);
        let res = s.explore();
        assert!(res.verified(), "{res}");
    }

    #[test]
    fn state_cap_reports_truncation() {
        let mut s = Scenario::new(topology::ring(4)).max_states(3);
        for i in 0..4u32 {
            s.write(r(i), x(i));
        }
        let res = s.explore();
        assert!(res.truncated);
        assert!(!res.verified());
    }

    #[test]
    #[should_panic(expected = "not stored")]
    fn scripted_write_validated() {
        let mut s = Scenario::new(topology::path(2));
        s.write(r(0), x(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn precondition_validated() {
        let mut s = Scenario::new(topology::path(2));
        s.write_after(r(0), x(0), [3]);
    }
}
