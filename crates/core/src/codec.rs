//! The wire codec: what an update's metadata looks like on the way to
//! each recipient.
//!
//! The lockstep [`System`](crate::System) and the threaded
//! [`ThreadedCluster`](crate::ThreadedCluster) both run every outgoing
//! edge-timestamp through a [`WireCodec`] keyed by the ordered pair
//! `(sender, receiver)`:
//!
//! * [`WireMode::Raw`] — ship the full timestamp, fixed 8 bytes per
//!   counter. The differential-testing oracle, mirroring
//!   [`PendingMode::Scan`](crate::PendingMode).
//! * [`WireMode::Projected`] — ship only the common-edge slice
//!   `E_i ∩ E_k` the receiver's `merge`/`J` read, still 8 bytes per
//!   counter.
//! * [`WireMode::Compressed`] (default) — project, drop the linearly
//!   derived counters of the sender's own outgoing edges (Section 5),
//!   and frame the rest as zig-zag varint deltas against the previous
//!   frame on the same pair stream.
//! * [`WireMode::Adaptive`] — start every pair compressed, then fall
//!   back Compressed → Projected → Raw per pair when the modelled CPU
//!   cost of encoding exceeds the modelled value of the bytes saved
//!   (see [`AdaptiveConfig`]).
//!
//! Delta coding needs FIFO framing, which the protocol's delivery layer
//! deliberately is not. The codec therefore models a per-pair FIFO byte
//! stream *underneath* the non-FIFO delivery (exactly what a TCP
//! connection per pair provides): each frame is framed against the
//! previous frame on the same pair stream, the projected slice travels in
//! the simulated message as [`Metadata::Projected`], and only the frame's
//! byte count is charged to the wire. Delivery reordering then affects
//! message order, never stream state — the same split a real deployment
//! gets from framing on an ordered transport.
//!
//! # Encode-once fan-out
//!
//! A write on a dense share graph fans out to many recipients whose
//! layouts — and therefore whose delta streams — are frequently
//! *identical* (on a full-replication clique, all of them are: every
//! receiver shares the same common slice in the same order, and every
//! stream has seen the same frame sequence). [`WireCodec::encode_fanout`]
//! exploits this: per-pair stream state lives behind an `Arc`, streams
//! with the same layout start from one shared zero state, and within one
//! fan-out every group of pairs with pointer-equal `(layout, state)`
//! encodes **once** — the followers reuse the leader's frame, metadata
//! `Arc`, and new state. A clique write thus pays one varint pass plus k
//! cheap pointer compares instead of k full encodes, which is what takes
//! clique(24) compressed sends from ~130 µs back into raw's ballpark.
//!
//! The sender-side self-decode of the old path is replaced by
//! [`PairLayout::verify_derived`]: the projection is computed directly
//! (it is what a correct receiver reconstructs) and each derived-row
//! relation is checked against it. A relation that fails — only possible
//! with a corrupted or hand-built layout, since registry layouts are
//! verified symbolically at construction — demotes the pair to explicit
//! rows instead of panicking, and the demotion is counted in
//! [`NetStats::codec_demotions`](prcc_net::NetStats).

use crate::message::Metadata;
use prcc_sharegraph::ReplicaId;
use prcc_timestamp::wire::PairLayout;
use prcc_timestamp::TsRegistry;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// How update metadata is encoded for the wire (builder knob; see the
/// module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireMode {
    /// Full timestamp, fixed layout — the differential-testing oracle.
    Raw,
    /// Per-pair projection to `E_i ∩ E_k`, fixed 8 bytes per counter.
    Projected,
    /// Projection + derived-row compression + delta/varint framing.
    #[default]
    Compressed,
    /// Per-pair cost-based fallback Compressed → Projected → Raw.
    Adaptive,
}

/// Tuning for [`WireMode::Adaptive`]. The model is deterministic — no
/// wall-clock sampling — so adaptive runs are reproducible: per-frame CPU
/// cost is estimated from the layout's explicit/common counts (amortized
/// by the observed encode-once sharing factor) and traded against the
/// bytes each mode ships, valued at `ns_per_wire_byte`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Frames to observe on a pair before deciding its mode.
    pub probe_frames: u64,
    /// How many nanoseconds of CPU one wire byte is worth (≈ 1/bandwidth;
    /// the default 4 ns/B models a ~250 MB/s effective link).
    pub ns_per_wire_byte: f64,
    /// Modelled cost of writing one explicit counter's varint delta, in
    /// ns. See [`Default`] for the calibration procedure.
    pub ns_per_varint: f64,
    /// Modelled cost of gathering one projected counter, in ns.
    pub ns_per_gather: f64,
}

impl Default for AdaptiveConfig {
    /// Defaults calibrated from `benches/wire.rs`'s `wire_frame` group
    /// (`cargo bench -p prcc-bench --bench wire -- wire_frame`):
    ///
    /// * `ns_per_varint` ≈ `encode_frame/clique24` time ÷ the layout's
    ///   explicit-counter count (1227 ns ÷ 530 ≈ 2.3);
    /// * `ns_per_gather` ≈ `project/clique24` time ÷ the layout's
    ///   common-counter count (265 ns ÷ 552 ≈ 0.48, rounded to 0.5).
    ///
    /// To recalibrate on new hardware, rerun the group and divide each
    /// reported time by the counts the bench prints its layout from
    /// (clique_full(24, 2), pair 0→1). The constants only steer the
    /// deterministic fallback choice — they never touch wall clocks at
    /// run time, so adaptive runs stay reproducible.
    fn default() -> Self {
        AdaptiveConfig {
            probe_frames: 32,
            ns_per_wire_byte: 4.0,
            ns_per_varint: 2.3,
            ns_per_gather: 0.5,
        }
    }
}

/// Counters kept by the codec (surfaced through
/// [`System::net_stats`](crate::System::net_stats) and the cluster
/// runtime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// Frames shipped (one per recipient per update).
    pub frames: usize,
    /// Frames served from a fan-out group leader's single encode instead
    /// of a fresh varint pass.
    pub shared_frames: usize,
    /// Pairs demoted to explicit rows after a derived-row verification
    /// failure (a malformed layout; never the registry's own).
    pub demotions: usize,
    /// Pairs the adaptive policy walked down the fallback chain.
    pub adaptive_fallbacks: usize,
}

/// The mode a pair is currently running (fixed for Raw/Projected/
/// Compressed codecs; per-pair under Adaptive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairPath {
    Compressed,
    Projected,
    Raw,
}

/// Per-pair stream state. `state` holds the previous frame's explicit
/// values behind an `Arc`: pairs whose streams have seen identical frame
/// sequences share the allocation, which is what lets a fan-out detect
/// "same layout, same history" by two pointer compares.
struct PairStream {
    layout: Arc<PairLayout>,
    state: Arc<Vec<u64>>,
    path: PairPath,
    /// Frames shipped on this pair (adaptive accounting).
    frames: u64,
    /// Frames where this pair led its fan-out group and paid the encode.
    own_encodes: u64,
    /// Bytes shipped while compressed (adaptive accounting).
    comp_bytes: u64,
    /// Adaptive decision taken — the path is final.
    decided: bool,
}

/// A fan-out group leader's output, reused by every follower whose
/// `(layout, state)` matches by pointer. `old_state` keeps the previous
/// state allocation alive for the duration of the fan-out so the pointer
/// compare cannot be confused by an address reuse.
struct GroupFrame {
    layout: Arc<PairLayout>,
    old_state: Arc<Vec<u64>>,
    new_state: Arc<Vec<u64>>,
    meta: Arc<Metadata>,
    len: usize,
}

/// Encodes outgoing update metadata per recipient. Owns the per-pair
/// delta streams; non-edge metadata (vector clocks, dependency lists) and
/// [`WireMode::Raw`] pass through as shared `Arc` clones — the zero-copy
/// path.
pub struct WireCodec {
    mode: WireMode,
    registry: Option<Arc<TsRegistry>>,
    streams: HashMap<(ReplicaId, ReplicaId), PairStream>,
    /// Shared all-zero initial states, keyed by explicit count, so
    /// same-layout streams start pointer-equal and group from frame one.
    zero_states: HashMap<usize, Arc<Vec<u64>>>,
    /// Fault-injection layouts (see [`WireCodec::inject_layout`]).
    overrides: HashMap<(ReplicaId, ReplicaId), Arc<PairLayout>>,
    adaptive: AdaptiveConfig,
    /// Reusable frame scratch buffer.
    buf: Vec<u8>,
    stats: CodecStats,
}

impl fmt::Debug for WireCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WireCodec")
            .field("mode", &self.mode)
            .field("streams", &self.streams.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl WireCodec {
    /// Creates a codec. `registry` is required for the projected,
    /// compressed and adaptive modes to do anything; without it
    /// (vector-clock or dependency-list deployments) every mode degrades
    /// to raw pass-through.
    pub fn new(mode: WireMode, registry: Option<Arc<TsRegistry>>) -> Self {
        Self::with_adaptive(mode, registry, AdaptiveConfig::default())
    }

    /// [`WireCodec::new`] with an explicit adaptive cost model.
    pub fn with_adaptive(
        mode: WireMode,
        registry: Option<Arc<TsRegistry>>,
        adaptive: AdaptiveConfig,
    ) -> Self {
        WireCodec {
            mode,
            registry,
            streams: HashMap::new(),
            zero_states: HashMap::new(),
            overrides: HashMap::new(),
            adaptive,
            buf: Vec::new(),
            stats: CodecStats::default(),
        }
    }

    /// The active mode.
    pub fn mode(&self) -> WireMode {
        self.mode
    }

    /// The codec's counters so far.
    pub fn stats(&self) -> CodecStats {
        self.stats
    }

    /// Replaces the layout used for `sender → receiver` with an arbitrary
    /// one. Fault-injection surface: registry layouts are verified at
    /// construction, so exercising the checked demotion path requires
    /// planting a layout whose derived rows lie. Resets the pair's stream.
    pub fn inject_layout(&mut self, sender: ReplicaId, receiver: ReplicaId, layout: PairLayout) {
        self.overrides.insert((sender, receiver), Arc::new(layout));
        self.streams.remove(&(sender, receiver));
    }

    /// Encodes `meta` for the single hop `sender → receiver`. Equivalent
    /// to a one-recipient [`WireCodec::encode_fanout`].
    pub fn encode(
        &mut self,
        sender: ReplicaId,
        receiver: ReplicaId,
        meta: &Arc<Metadata>,
    ) -> Arc<Metadata> {
        self.encode_fanout(sender, std::slice::from_ref(&receiver), meta)
            .pop()
            .expect("one recipient in, one metadata out")
    }

    /// Encodes `meta` for every hop `sender → recipients[i]` of one
    /// update's fan-out, returning the per-recipient metadata in order.
    /// Pairs whose layout and stream history match share a single encode
    /// (see the module docs), so the cost of a dense fan-out is one
    /// varint pass, not one per recipient.
    pub fn encode_fanout(
        &mut self,
        sender: ReplicaId,
        recipients: &[ReplicaId],
        meta: &Arc<Metadata>,
    ) -> Vec<Arc<Metadata>> {
        let (Some(registry), Metadata::Edge(ts)) = (&self.registry, meta.as_ref()) else {
            return recipients.iter().map(|_| Arc::clone(meta)).collect();
        };
        if self.mode == WireMode::Raw {
            return recipients.iter().map(|_| Arc::clone(meta)).collect();
        }
        let registry = Arc::clone(registry);
        let full = ts.values();
        let mut out = Vec::with_capacity(recipients.len());
        // Fan-out-local memo of group leaders, one entry per distinct
        // (layout, state) seen. Tiny in practice: one entry on cliques,
        // a handful under mixed placements.
        let mut comp_groups: Vec<GroupFrame> = Vec::new();
        let mut proj_groups: Vec<(Arc<PairLayout>, Arc<Metadata>)> = Vec::new();

        for &dst in recipients {
            if !self.streams.contains_key(&(sender, dst)) {
                let layout = self
                    .overrides
                    .get(&(sender, dst))
                    .cloned()
                    .unwrap_or_else(|| registry.wire_layout(dst, sender));
                let state = Arc::clone(
                    self.zero_states
                        .entry(layout.num_explicit())
                        .or_insert_with(|| Arc::new(vec![0; layout.num_explicit()])),
                );
                let path = match self.mode {
                    WireMode::Projected => PairPath::Projected,
                    _ => PairPath::Compressed,
                };
                self.streams.insert(
                    (sender, dst),
                    PairStream {
                        layout,
                        state,
                        path,
                        frames: 0,
                        own_encodes: 0,
                        comp_bytes: 0,
                        decided: self.mode != WireMode::Adaptive,
                    },
                );
            }
            let stream = self.streams.get_mut(&(sender, dst)).expect("just inserted");
            self.stats.frames += 1;
            match stream.path {
                PairPath::Raw => out.push(Arc::clone(meta)),
                PairPath::Projected => {
                    let m = match proj_groups
                        .iter()
                        .find(|(l, _)| Arc::ptr_eq(l, &stream.layout))
                    {
                        Some((_, m)) => {
                            self.stats.shared_frames += 1;
                            Arc::clone(m)
                        }
                        None => {
                            let values = stream.layout.project(full);
                            let m = Arc::new(Metadata::Projected {
                                encoded_len: values.len() * 8,
                                values,
                            });
                            proj_groups.push((Arc::clone(&stream.layout), Arc::clone(&m)));
                            m
                        }
                    };
                    out.push(m);
                }
                PairPath::Compressed => {
                    let shared = comp_groups.iter().find(|g| {
                        Arc::ptr_eq(&g.layout, &stream.layout)
                            && Arc::ptr_eq(&g.old_state, &stream.state)
                    });
                    let len = match shared {
                        Some(g) => {
                            stream.state = Arc::clone(&g.new_state);
                            self.stats.shared_frames += 1;
                            out.push(Arc::clone(&g.meta));
                            g.len
                        }
                        None => {
                            let values = stream.layout.project(full);
                            if stream.layout.verify_derived(&values).is_err() {
                                // A derived row lies about the values it
                                // claims to reconstruct: a receiver would
                                // decode garbage. Demote the pair to
                                // explicit rows (fresh stream) and count
                                // it instead of taking the thread down.
                                self.stats.demotions += 1;
                                let demoted = Arc::new(stream.layout.to_explicit());
                                stream.state = Arc::clone(
                                    self.zero_states
                                        .entry(demoted.num_explicit())
                                        .or_insert_with(|| {
                                            Arc::new(vec![0; demoted.num_explicit()])
                                        }),
                                );
                                stream.layout = demoted;
                            }
                            self.buf.clear();
                            let mut next = Vec::new();
                            let len = stream.layout.encode_frame(
                                &stream.state,
                                full,
                                &mut self.buf,
                                &mut next,
                            );
                            #[cfg(debug_assertions)]
                            {
                                // The frame a real receiver would decode
                                // must reproduce the projection exactly.
                                let mut pos = 0;
                                let mut scratch = Vec::new();
                                let decoded = stream
                                    .layout
                                    .decode_frame(&stream.state, &self.buf, &mut pos, &mut scratch)
                                    .expect("self-decode of a frame we just encoded");
                                debug_assert_eq!(pos, self.buf.len());
                                debug_assert_eq!(
                                    decoded, values,
                                    "decoded frame must reproduce the projection"
                                );
                            }
                            let new_state = Arc::new(next);
                            let m = Arc::new(Metadata::Projected {
                                values,
                                encoded_len: len,
                            });
                            let old_state =
                                std::mem::replace(&mut stream.state, Arc::clone(&new_state));
                            stream.own_encodes += 1;
                            comp_groups.push(GroupFrame {
                                layout: Arc::clone(&stream.layout),
                                old_state,
                                new_state,
                                meta: Arc::clone(&m),
                                len,
                            });
                            out.push(m);
                            len
                        }
                    };
                    stream.frames += 1;
                    stream.comp_bytes += len as u64;
                    if !stream.decided && stream.frames >= self.adaptive.probe_frames {
                        stream.decided = true;
                        if let Some(path) = adaptive_fallback(stream, full.len(), &self.adaptive) {
                            stream.path = path;
                            self.stats.adaptive_fallbacks += 1;
                        }
                    }
                }
            }
        }
        out
    }
}

/// The adaptive decision for one pair after its probe window: returns the
/// fallback path, or `None` to stay compressed. Deterministic — driven
/// entirely by layout shape, observed frame bytes, and the observed
/// encode-sharing factor.
fn adaptive_fallback(
    stream: &PairStream,
    full_len: usize,
    cfg: &AdaptiveConfig,
) -> Option<PairPath> {
    let frames = stream.frames as f64;
    // Fraction of frames this pair actually paid an encode for; the rest
    // rode a group leader's varint pass.
    let paid = stream.own_encodes as f64 / frames;
    let common = stream.layout.common_len() as f64;
    let explicit = stream.layout.num_explicit() as f64;
    let wire = cfg.ns_per_wire_byte;
    let comp_cpu = paid * (cfg.ns_per_varint * explicit + cfg.ns_per_gather * common);
    let comp = comp_cpu + wire * (stream.comp_bytes as f64 / frames);
    let proj = paid * cfg.ns_per_gather * common + wire * 8.0 * common;
    let raw = wire * 8.0 * full_len as f64;
    if comp <= proj && comp <= raw {
        None
    } else if proj <= raw {
        Some(PairPath::Projected)
    } else {
        Some(PairPath::Raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::{topology, LoopConfig, RegisterId, TimestampGraphs};
    use prcc_timestamp::wire::DerivedRow;
    use prcc_timestamp::VectorClock;

    fn registry(g: &prcc_sharegraph::ShareGraph) -> Arc<TsRegistry> {
        Arc::new(TsRegistry::new(
            g,
            TimestampGraphs::build(g, LoopConfig::EXHAUSTIVE),
        ))
    }

    #[test]
    fn raw_mode_shares_the_arc() {
        let g = topology::ring(4);
        let reg = registry(&g);
        let mut ts = reg.new_timestamp(ReplicaId::new(0));
        reg.advance(&mut ts, RegisterId::new(0));
        let meta = Arc::new(Metadata::Edge(ts));
        let mut codec = WireCodec::new(WireMode::Raw, Some(reg));
        let out = codec.encode(ReplicaId::new(0), ReplicaId::new(1), &meta);
        assert!(Arc::ptr_eq(&meta, &out), "raw mode must not deep-clone");
    }

    #[test]
    fn compressed_mode_shrinks_and_preserves_the_slice() {
        let g = topology::clique_full(5, 3);
        let reg = registry(&g);
        let (s, r) = (ReplicaId::new(0), ReplicaId::new(1));
        let mut ts = reg.new_timestamp(s);
        for _ in 0..10 {
            reg.advance(&mut ts, RegisterId::new(0));
        }
        let layout = reg.wire_layout(r, s);
        let expect = layout.project(ts.values());
        let meta = Arc::new(Metadata::Edge(ts));
        let mut codec = WireCodec::new(WireMode::Compressed, Some(reg));
        let out = codec.encode(s, r, &meta);
        let Metadata::Projected {
            values,
            encoded_len,
        } = out.as_ref()
        else {
            panic!("expected projected metadata, got {out:?}");
        };
        assert_eq!(values, &expect);
        assert!(*encoded_len < meta.size_bytes());
        assert_eq!(out.size_bytes(), *encoded_len);
    }

    #[test]
    fn second_frame_on_a_stream_is_delta_small() {
        let g = topology::ring(6);
        let reg = registry(&g);
        let (s, r) = (ReplicaId::new(0), ReplicaId::new(1));
        let mut codec = WireCodec::new(WireMode::Compressed, Some(reg.clone()));
        let mut ts = reg.new_timestamp(s);
        for _ in 0..300 {
            reg.advance(&mut ts, RegisterId::new(0));
        }
        let first = codec.encode(s, r, &Arc::new(Metadata::Edge(ts.clone())));
        reg.advance(&mut ts, RegisterId::new(0));
        let second = codec.encode(s, r, &Arc::new(Metadata::Edge(ts)));
        // One counter moved by 1: every explicit delta is 0 or 1, one
        // byte each — no re-paying the absolute magnitudes.
        assert!(second.size_bytes() <= first.size_bytes());
        assert_eq!(second.size_bytes(), second.num_counters());
    }

    #[test]
    fn non_edge_metadata_passes_through() {
        let g = topology::ring(4);
        let reg = registry(&g);
        let meta = Arc::new(Metadata::Vector(VectorClock::new(4)));
        let mut codec = WireCodec::new(WireMode::Compressed, Some(reg));
        let out = codec.encode(ReplicaId::new(0), ReplicaId::new(1), &meta);
        assert!(Arc::ptr_eq(&meta, &out));
    }

    #[test]
    fn codec_without_registry_is_passthrough() {
        let g = topology::ring(4);
        let reg = registry(&g);
        let mut ts = reg.new_timestamp(ReplicaId::new(0));
        reg.advance(&mut ts, RegisterId::new(0));
        let meta = Arc::new(Metadata::Edge(ts));
        let mut codec = WireCodec::new(WireMode::Compressed, None);
        let out = codec.encode(ReplicaId::new(0), ReplicaId::new(1), &meta);
        assert!(Arc::ptr_eq(&meta, &out));
    }

    #[test]
    fn clique_fanout_encodes_once_and_shares_metadata() {
        // Full replication: every receiver's layout and stream history
        // are identical, so a fan-out must do exactly one encode and
        // hand every recipient the same metadata Arc.
        let g = topology::clique_full(6, 2);
        let reg = registry(&g);
        let s = ReplicaId::new(0);
        let recipients: Vec<ReplicaId> = (1..6).map(ReplicaId::new).collect();
        let mut codec = WireCodec::new(WireMode::Compressed, Some(reg.clone()));
        let mut ts = reg.new_timestamp(s);
        for round in 0..4 {
            reg.advance(&mut ts, RegisterId::new(round % 2));
            let meta = Arc::new(Metadata::Edge(ts.clone()));
            let out = codec.encode_fanout(s, &recipients, &meta);
            assert_eq!(out.len(), recipients.len());
            for m in &out[1..] {
                assert!(
                    Arc::ptr_eq(&out[0], m),
                    "identical streams must share one frame"
                );
            }
        }
        let stats = codec.stats();
        assert_eq!(stats.frames, 4 * recipients.len());
        assert_eq!(
            stats.shared_frames,
            4 * (recipients.len() - 1),
            "only the group leader pays an encode"
        );
        assert_eq!(stats.demotions, 0);
    }

    #[test]
    fn fanout_matches_per_recipient_encodes() {
        // The grouped fan-out must be byte- and value-identical to a
        // codec that encodes each recipient separately (the PR-2 path).
        for g in [topology::ring(6), topology::clique_full(5, 3)] {
            let reg = registry(&g);
            let s = ReplicaId::new(0);
            let recipients: Vec<ReplicaId> = g.replicas().filter(|&r| r != s).collect();
            let mut fan = WireCodec::new(WireMode::Compressed, Some(reg.clone()));
            let mut single = WireCodec::new(WireMode::Compressed, Some(reg.clone()));
            let mut ts = reg.new_timestamp(s);
            for round in 0..6 {
                reg.advance(&mut ts, RegisterId::new(round % 2));
                let meta = Arc::new(Metadata::Edge(ts.clone()));
                let fanned = fan.encode_fanout(s, &recipients, &meta);
                for (dst, got) in recipients.iter().zip(&fanned) {
                    let want = single.encode(s, *dst, &meta);
                    assert_eq!(
                        got.as_ref(),
                        want.as_ref(),
                        "fan-out differs for dst {dst} round {round}"
                    );
                }
            }
        }
    }

    #[test]
    fn malformed_layout_demotes_to_explicit_rows() {
        // Satellite regression: a layout whose derived row lies used to
        // panic the replica thread via `.expect()`. It must now demote
        // the pair to explicit rows, keep the projection intact, and
        // count the demotion.
        let g = topology::clique_full(4, 2);
        let reg = registry(&g);
        let (s, r) = (ReplicaId::new(0), ReplicaId::new(1));
        let good = reg.wire_layout(r, s);
        // Same projection, but a derived row claiming slice[last] is
        // half of the first explicit entry — false for real counters.
        let first_explicit = good.explicit_indices()[0];
        let target = good.common_len() - 1;
        let bad = PairLayout::from_raw_parts(
            good.sender_positions().to_vec(),
            good.explicit_indices()
                .iter()
                .copied()
                .filter(|&j| j != target)
                .collect(),
            vec![DerivedRow {
                index: target,
                terms: vec![(first_explicit, 1)],
                den: 2,
            }],
        );
        let mut codec = WireCodec::new(WireMode::Compressed, Some(reg.clone()));
        codec.inject_layout(s, r, bad);
        let mut ts = reg.new_timestamp(s);
        for _ in 0..3 {
            reg.advance(&mut ts, RegisterId::new(0));
        }
        let meta = Arc::new(Metadata::Edge(ts.clone()));
        let out = codec.encode(s, r, &meta);
        let Metadata::Projected { values, .. } = out.as_ref() else {
            panic!("expected projected metadata, got {out:?}");
        };
        assert_eq!(
            values,
            &good.project(ts.values()),
            "demoted pair must still ship the exact projection"
        );
        assert_eq!(codec.stats().demotions, 1);
        // The demotion is sticky: later frames reuse the explicit layout
        // without demoting again.
        reg.advance(&mut ts, RegisterId::new(0));
        let out = codec.encode(s, r, &Arc::new(Metadata::Edge(ts.clone())));
        let Metadata::Projected { values, .. } = out.as_ref() else {
            panic!("expected projected metadata, got {out:?}");
        };
        assert_eq!(values, &good.project(ts.values()));
        assert_eq!(codec.stats().demotions, 1);
    }

    #[test]
    fn adaptive_starts_compressed_and_stays_on_dense_graphs() {
        let g = topology::clique_full(5, 2);
        let reg = registry(&g);
        let s = ReplicaId::new(0);
        let recipients: Vec<ReplicaId> = (1..5).map(ReplicaId::new).collect();
        let mut codec = WireCodec::new(WireMode::Adaptive, Some(reg.clone()));
        let mut ts = reg.new_timestamp(s);
        for _ in 0..40 {
            reg.advance(&mut ts, RegisterId::new(0));
            codec.encode_fanout(s, &recipients, &Arc::new(Metadata::Edge(ts.clone())));
        }
        // Dense fan-out amortizes the encode: compression stays on.
        assert_eq!(codec.stats().adaptive_fallbacks, 0);
    }

    #[test]
    fn adaptive_falls_back_when_bytes_are_cheap() {
        // With wire bytes valued at ~0 the CPU tax can never pay off:
        // every pair must walk down the fallback chain to raw.
        let g = topology::ring(6);
        let reg = registry(&g);
        let (s, r) = (ReplicaId::new(0), ReplicaId::new(1));
        let cfg = AdaptiveConfig {
            probe_frames: 4,
            ns_per_wire_byte: 0.0,
            ..AdaptiveConfig::default()
        };
        let mut codec = WireCodec::with_adaptive(WireMode::Adaptive, Some(reg.clone()), cfg);
        let mut ts = reg.new_timestamp(s);
        let mut last = None;
        for _ in 0..8 {
            reg.advance(&mut ts, RegisterId::new(0));
            last = Some(codec.encode(s, r, &Arc::new(Metadata::Edge(ts.clone()))));
        }
        assert_eq!(codec.stats().adaptive_fallbacks, 1);
        // Post-fallback frames ship the raw metadata Arc.
        assert!(matches!(last.unwrap().as_ref(), Metadata::Edge(_)));
    }
}
