//! The wire codec: what an update's metadata looks like on the way to
//! each recipient.
//!
//! The lockstep [`System`](crate::System) and the threaded
//! [`ThreadedCluster`](crate::ThreadedCluster) both run every outgoing
//! edge-timestamp through a [`WireCodec`] keyed by the ordered pair
//! `(sender, receiver)`:
//!
//! * [`WireMode::Raw`] — ship the full timestamp, fixed 8 bytes per
//!   counter. The differential-testing oracle, mirroring
//!   [`PendingMode::Scan`](crate::PendingMode).
//! * [`WireMode::Projected`] — ship only the common-edge slice
//!   `E_i ∩ E_k` the receiver's `merge`/`J` read, still 8 bytes per
//!   counter.
//! * [`WireMode::Compressed`] (default) — project, drop the linearly
//!   derived counters of the sender's own outgoing edges (Section 5),
//!   and frame the rest as zig-zag varint deltas against the previous
//!   frame on the same pair stream.
//!
//! Delta coding needs FIFO framing, which the protocol's delivery layer
//! deliberately is not. The codec therefore models a per-pair FIFO byte
//! stream *underneath* the non-FIFO delivery (exactly what a TCP
//! connection per pair provides): each frame is encoded and immediately
//! decoded at the send point, the decoded slice travels in the simulated
//! message as [`Metadata::Projected`], and only the frame's byte count is
//! charged to the wire. Delivery reordering then affects message order,
//! never stream state — the same split a real deployment gets from
//! framing on an ordered transport.

use crate::message::Metadata;
use prcc_sharegraph::ReplicaId;
use prcc_timestamp::wire::{WireDecoder, WireEncoder};
use prcc_timestamp::TsRegistry;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// How update metadata is encoded for the wire (builder knob; see the
/// module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireMode {
    /// Full timestamp, fixed layout — the differential-testing oracle.
    Raw,
    /// Per-pair projection to `E_i ∩ E_k`, fixed 8 bytes per counter.
    Projected,
    /// Projection + derived-row compression + delta/varint framing.
    #[default]
    Compressed,
}

/// Per-pair stream state for [`WireMode::Compressed`]: the sender-side
/// encoder, the matching decoder (delta state must stay in lockstep with
/// the encoder, so it lives here, at the FIFO stream's head), and a
/// reusable frame buffer.
struct PairStream {
    enc: WireEncoder,
    dec: WireDecoder,
    buf: Vec<u8>,
}

/// Encodes outgoing update metadata per recipient. Owns the per-pair
/// delta streams; non-edge metadata (vector clocks, dependency lists) and
/// [`WireMode::Raw`] pass through as shared `Arc` clones — the zero-copy
/// path.
pub struct WireCodec {
    mode: WireMode,
    registry: Option<Arc<TsRegistry>>,
    streams: HashMap<(ReplicaId, ReplicaId), PairStream>,
}

impl fmt::Debug for WireCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WireCodec")
            .field("mode", &self.mode)
            .field("streams", &self.streams.len())
            .finish()
    }
}

impl WireCodec {
    /// Creates a codec. `registry` is required for the projected and
    /// compressed modes to do anything; without it (vector-clock or
    /// dependency-list deployments) every mode degrades to raw
    /// pass-through.
    pub fn new(mode: WireMode, registry: Option<Arc<TsRegistry>>) -> Self {
        WireCodec {
            mode,
            registry,
            streams: HashMap::new(),
        }
    }

    /// The active mode.
    pub fn mode(&self) -> WireMode {
        self.mode
    }

    /// Encodes `meta` for the hop `sender → receiver`, returning the
    /// metadata the recipient's message carries. Raw mode and non-edge
    /// metadata share the input `Arc` (no deep clone); the other modes
    /// return a per-pair [`Metadata::Projected`] whose `encoded_len` is
    /// the true transmitted size.
    pub fn encode(
        &mut self,
        sender: ReplicaId,
        receiver: ReplicaId,
        meta: &Arc<Metadata>,
    ) -> Arc<Metadata> {
        let (Some(registry), Metadata::Edge(ts)) = (&self.registry, meta.as_ref()) else {
            return Arc::clone(meta);
        };
        match self.mode {
            WireMode::Raw => Arc::clone(meta),
            WireMode::Projected => {
                let layout = registry.wire_layout(receiver, sender);
                let values = layout.project(ts.values());
                let encoded_len = values.len() * 8;
                Arc::new(Metadata::Projected {
                    values,
                    encoded_len,
                })
            }
            WireMode::Compressed => {
                let layout = registry.wire_layout(receiver, sender);
                let stream = self
                    .streams
                    .entry((sender, receiver))
                    .or_insert_with(|| PairStream {
                        enc: WireEncoder::new(&layout),
                        dec: WireDecoder::new(&layout),
                        buf: Vec::new(),
                    });
                let encoded_len = stream.enc.encode(&layout, ts.values(), &mut stream.buf);
                let values = stream
                    .dec
                    .decode(&layout, &stream.buf)
                    .expect("sender-side decode of a frame we just encoded");
                debug_assert_eq!(
                    values,
                    layout.project(ts.values()),
                    "decoded frame must reproduce the projection"
                );
                Arc::new(Metadata::Projected {
                    values,
                    encoded_len,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::{topology, LoopConfig, RegisterId, TimestampGraphs};
    use prcc_timestamp::VectorClock;

    fn registry(g: &prcc_sharegraph::ShareGraph) -> Arc<TsRegistry> {
        Arc::new(TsRegistry::new(
            g,
            TimestampGraphs::build(g, LoopConfig::EXHAUSTIVE),
        ))
    }

    #[test]
    fn raw_mode_shares_the_arc() {
        let g = topology::ring(4);
        let reg = registry(&g);
        let mut ts = reg.new_timestamp(ReplicaId::new(0));
        reg.advance(&mut ts, RegisterId::new(0));
        let meta = Arc::new(Metadata::Edge(ts));
        let mut codec = WireCodec::new(WireMode::Raw, Some(reg));
        let out = codec.encode(ReplicaId::new(0), ReplicaId::new(1), &meta);
        assert!(Arc::ptr_eq(&meta, &out), "raw mode must not deep-clone");
    }

    #[test]
    fn compressed_mode_shrinks_and_preserves_the_slice() {
        let g = topology::clique_full(5, 3);
        let reg = registry(&g);
        let (s, r) = (ReplicaId::new(0), ReplicaId::new(1));
        let mut ts = reg.new_timestamp(s);
        for _ in 0..10 {
            reg.advance(&mut ts, RegisterId::new(0));
        }
        let layout = reg.wire_layout(r, s);
        let expect = layout.project(ts.values());
        let meta = Arc::new(Metadata::Edge(ts));
        let mut codec = WireCodec::new(WireMode::Compressed, Some(reg));
        let out = codec.encode(s, r, &meta);
        let Metadata::Projected {
            values,
            encoded_len,
        } = out.as_ref()
        else {
            panic!("expected projected metadata, got {out:?}");
        };
        assert_eq!(values, &expect);
        assert!(*encoded_len < meta.size_bytes());
        assert_eq!(out.size_bytes(), *encoded_len);
    }

    #[test]
    fn second_frame_on_a_stream_is_delta_small() {
        let g = topology::ring(6);
        let reg = registry(&g);
        let (s, r) = (ReplicaId::new(0), ReplicaId::new(1));
        let mut codec = WireCodec::new(WireMode::Compressed, Some(reg.clone()));
        let mut ts = reg.new_timestamp(s);
        for _ in 0..300 {
            reg.advance(&mut ts, RegisterId::new(0));
        }
        let first = codec.encode(s, r, &Arc::new(Metadata::Edge(ts.clone())));
        reg.advance(&mut ts, RegisterId::new(0));
        let second = codec.encode(s, r, &Arc::new(Metadata::Edge(ts)));
        // One counter moved by 1: every explicit delta is 0 or 1, one
        // byte each — no re-paying the absolute magnitudes.
        assert!(second.size_bytes() <= first.size_bytes());
        assert_eq!(second.size_bytes(), second.num_counters());
    }

    #[test]
    fn non_edge_metadata_passes_through() {
        let g = topology::ring(4);
        let reg = registry(&g);
        let meta = Arc::new(Metadata::Vector(VectorClock::new(4)));
        let mut codec = WireCodec::new(WireMode::Compressed, Some(reg));
        let out = codec.encode(ReplicaId::new(0), ReplicaId::new(1), &meta);
        assert!(Arc::ptr_eq(&meta, &out));
    }

    #[test]
    fn codec_without_registry_is_passthrough() {
        let g = topology::ring(4);
        let reg = registry(&g);
        let mut ts = reg.new_timestamp(ReplicaId::new(0));
        reg.advance(&mut ts, RegisterId::new(0));
        let meta = Arc::new(Metadata::Edge(ts));
        let mut codec = WireCodec::new(WireMode::Compressed, None);
        let out = codec.encode(ReplicaId::new(0), ReplicaId::new(1), &meta);
        assert!(Arc::ptr_eq(&meta, &out));
    }
}
