//! Executable proof machinery: the `Propagation` procedure of Appendix C.
//!
//! Lemma 14's proof builds executions in which a chosen replica ends up
//! with a *prescribed* causal past while other replicas see controlled
//! subsets. The key ingredient is `Propagation(Tree, a, S)`: updates are
//! issued in post-order of a rooted spanning tree, messages toward
//! ancestors are delivered immediately, and messages toward everyone else
//! are held back in their channels.
//!
//! [`propagate`] implements exactly that on a live [`System`] using link
//! holds, and returns the set of updates issued. After it runs:
//!
//! * the root has applied (grown its causal past by) every issued update
//!   on registers it stores;
//! * replicas outside the issuing subtree have seen nothing;
//! * releasing the held links later completes delivery without breaking
//!   consistency (the algorithm under test permitting).

use crate::system::System;
use crate::value::Value;
use prcc_checker::UpdateId;
use prcc_sharegraph::spanning::SpanningTree;
use prcc_sharegraph::{RegisterId, ReplicaId};
use std::collections::HashMap;

/// The write plan for one `Propagation` run: registers each replica
/// issues, in order.
pub type WritePlan = HashMap<ReplicaId, Vec<RegisterId>>;

/// Runs `Propagation(tree, tree.root(), plan)` on `sys`:
///
/// 1. walks the tree in post-order;
/// 2. each replica holds its links to every non-ancestor before issuing;
/// 3. issues its planned writes (updates on registers shared with the
///    parent last, per the paper's ordering);
/// 4. the network drains so ancestor-bound updates apply.
///
/// Held links are left held; call [`release_all`] to complete delivery.
/// Returns all issued update ids in issue order.
///
/// # Panics
///
/// Panics if a planned register is not stored at its replica.
pub fn propagate(sys: &mut System, tree: &SpanningTree, plan: &WritePlan) -> Vec<UpdateId> {
    let mut issued = Vec::new();
    let replicas: Vec<ReplicaId> = sys.effective_graph().replicas().collect();
    for v in tree.post_order() {
        let Some(regs) = plan.get(&v) else { continue };
        if regs.is_empty() {
            continue;
        }
        // Hold links from v to every replica that is not an ancestor.
        for &other in &replicas {
            if other != v && !tree.is_ancestor_or_self(other, v) {
                sys.hold_link(v, other);
            }
        }
        // Issue: non-parent registers first, parent-shared last.
        let parent = tree.parent(v);
        let (mut non_parent, mut parent_regs): (Vec<RegisterId>, Vec<RegisterId>) =
            (Vec::new(), Vec::new());
        for &x in regs {
            let shared_with_parent =
                parent.is_some_and(|p| sys.effective_graph().placement().shared(v, p).contains(x));
            if shared_with_parent {
                parent_regs.push(x);
            } else {
                non_parent.push(x);
            }
        }
        for x in non_parent.into_iter().chain(parent_regs) {
            let id = sys.write(v, x, Value::from(issued.len() as u64));
            issued.push(id);
        }
        // Deliver everything currently deliverable (ancestor-bound).
        sys.run_to_quiescence();
    }
    issued
}

/// Releases every held link of `sys` among `replicas` and drains the
/// network.
pub fn release_all(sys: &mut System) {
    let replicas: Vec<ReplicaId> = sys.effective_graph().replicas().collect();
    for &a in &replicas {
        for &b in &replicas {
            if a != b {
                sys.release_link(a, b);
            }
        }
    }
    sys.run_to_quiescence();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use prcc_checker::{causal_past, HbGraph};
    use prcc_net::DelayModel;
    use prcc_sharegraph::topology;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    /// On a path 0–1–2–3 rooted at 0: every replica writes its
    /// parent-shared register; the root's causal past must contain all of
    /// them, while leaves see nothing extra.
    #[test]
    fn root_accumulates_everything() {
        let g = topology::path(4);
        let tree = SpanningTree::bfs(&g, r(0));
        let mut sys = System::builder(g)
            .delay(DelayModel::Fixed(1))
            .seed(0)
            .build();
        let mut plan = WritePlan::new();
        plan.insert(r(1), vec![x(0)]); // shared with parent 0
        plan.insert(r(2), vec![x(1)]); // shared with parent 1
        plan.insert(r(3), vec![x(2)]); // shared with parent 2
        let issued = propagate(&mut sys, &tree, &plan);
        assert_eq!(issued.len(), 3);

        let hb = HbGraph::build(sys.trace());
        let root_past = causal_past(sys.trace(), r(0), &hb);
        for id in &issued {
            assert!(root_past.contains(id), "{id} missing from root's past");
        }
        // r3 (a leaf) saw nothing: its past contains only its own issue.
        let leaf_past = causal_past(sys.trace(), r(3), &hb);
        assert_eq!(leaf_past.len(), 1);
    }

    /// Post-order issuing creates the happened-before chain the paper's
    /// construction needs: deeper updates precede shallower ones.
    #[test]
    fn post_order_creates_hb_chain() {
        let g = topology::path(3);
        let tree = SpanningTree::bfs(&g, r(0));
        let mut sys = System::builder(g)
            .delay(DelayModel::Fixed(1))
            .seed(1)
            .build();
        let mut plan = WritePlan::new();
        plan.insert(r(2), vec![x(1)]);
        plan.insert(r(1), vec![x(0)]);
        let issued = propagate(&mut sys, &tree, &plan);
        let hb = HbGraph::build(sys.trace());
        // r2's update (issued first, applied at r1) precedes r1's.
        assert!(hb.happened_before(issued[0], issued[1]));
    }

    /// Held links keep non-ancestors oblivious; releasing them completes
    /// delivery consistently.
    #[test]
    fn holds_then_release_stays_consistent() {
        let g = topology::ring(5);
        let tree = SpanningTree::bfs(&g, r(0));
        let mut sys = System::builder(g.clone())
            .delay(DelayModel::Fixed(1))
            .seed(2)
            .build();
        let mut plan = WritePlan::new();
        for i in 1..5u32 {
            // Every replica writes every register it stores.
            plan.insert(r(i), g.placement().registers_of(r(i)).iter().collect());
        }
        let issued = propagate(&mut sys, &tree, &plan);
        assert!(!issued.is_empty());
        // Mid-construction the system is NOT settled (held messages).
        assert!(!sys.is_settled());
        release_all(&mut sys);
        assert!(sys.is_settled());
        let rep = sys.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
    }

    /// The root's past grows by exactly the subtree contributions on
    /// registers it stores — the quantitative claim of Appendix C's
    /// Claim 1, specialized to the root.
    #[test]
    fn growth_matches_claim1() {
        let g = topology::binary_tree(7);
        let tree = SpanningTree::bfs(&g, r(0));
        let mut sys = System::builder(g.clone())
            .delay(DelayModel::Fixed(1))
            .seed(3)
            .build();
        let mut plan = WritePlan::new();
        // Children of root (1, 2) write their root-shared registers.
        // binary_tree(7): register 0 shared (0,1), register 1 shared (0,2).
        plan.insert(r(1), vec![x(0)]);
        plan.insert(r(2), vec![x(1)]);
        // Grandchildren write registers shared with their parents.
        plan.insert(r(3), vec![x(2)]); // (1,3)
        plan.insert(r(4), vec![x(3)]); // (1,4)
        let issued = propagate(&mut sys, &tree, &plan);
        let hb = HbGraph::build(sys.trace());
        let root_past = causal_past(sys.trace(), r(0), &hb);
        assert_eq!(root_past.len(), issued.len());
    }
}
